"""Regenerate Table 10 (multiprocessor speedups)."""

from repro.experiments import table10

from conftest import run_once


def test_table10(benchmark, ctx, save_result):
    result = run_once(benchmark, lambda: table10.run(ctx))
    text = save_result("table10", table10.render(result))
    print("\n" + text)
    # Paper shapes: interleaved >= blocked at 4 and 8 contexts for every
    # application; Cholesky shows no gain.  The epsilon absorbs
    # random-latency noise on effectively tied applications.
    for n in (4, 8):
        inter = result[("interleaved", n)]
        blocked = result[("blocked", n)]
        wins = sum(inter[a] >= blocked[a] - 0.05 for a in inter)
        assert wins >= len(inter) - 1       # allow one mp3d-style upset
    assert result[("interleaved", 8)]["cholesky"] < 1.2
    # The paper's one exception: 4-context interleaved beats 8-context
    # blocked for every application except MP3D.
    inter4 = result[("interleaved", 4)]
    blocked8 = result[("blocked", 8)]
    beaten = [a for a in inter4
              if inter4[a] < blocked8[a] - 0.05]
    assert beaten in ([], ["mp3d"]), beaten
