"""Regenerate Figures 8 and 9 (multiprocessor time breakdowns)."""

from repro.experiments import figures8_9

from conftest import run_once


def test_figure8_blocked(benchmark, ctx, save_result):
    result = run_once(benchmark,
                      lambda: figures8_9.run(ctx, scheme="blocked"))
    text = save_result("figure8",
                       figures8_9.render(result, scheme="blocked"))
    print("\n" + text)
    assert "mp3d" in result


def test_figure9_interleaved(benchmark, ctx, save_result):
    result = run_once(benchmark,
                      lambda: figures8_9.run(ctx, scheme="interleaved"))
    text = save_result("figure9",
                       figures8_9.render(result, scheme="interleaved"))
    print("\n" + text)
    # Execution time shrinks with contexts for the memory-bound app.
    times = {n: result["mp3d"][n][0] for n in (1, 4)}
    assert times[4] < times[1]
