"""Regenerate Table 4 (context switch costs)."""

from repro.experiments import table4

from conftest import run_once


def test_table4(benchmark, save_result):
    result = run_once(benchmark, table4.run)
    text = save_result("table4", table4.render(result))
    print("\n" + text)
    assert result[("cache_miss", "blocked")] == 7
    assert result[("explicit", "interleaved")] == 1
