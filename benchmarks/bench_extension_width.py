"""Extension study: issue width x context count (the road to SMT).

Section 7 of the paper looks ahead at superscalar processors; this sweep
shows why that road ends at simultaneous multithreading: a wider
in-order front end gains little from one thread (dependencies starve
it), while interleaved contexts scale utilisation with width.
"""

from dataclasses import replace

from repro.config import SystemConfig
from repro.core.simulator import WorkstationSimulator
from repro.workloads import build_workload
from repro.experiments.report import render_table

from conftest import run_once

_MEASURE = 50_000
_WARMUP = 10_000


def _utilization(width, scheme, n_contexts, engine="burst"):
    """One sweep point; burst engine by default — schedules are packed
    per issue width, so the width sweep now runs on the fast path (all
    engines are bit-identical, enforced by tests/differential)."""
    cfg = SystemConfig.fast()
    cfg = replace(cfg, pipeline=replace(cfg.pipeline, issue_width=width))
    procs, instances, barriers = build_workload("R1", scale=1.0)
    sim = WorkstationSimulator(procs, scheme=scheme,
                               n_contexts=n_contexts, config=cfg,
                               app_instances=instances,
                               barriers=barriers, engine=engine)
    res = sim.measure(_MEASURE, warmup=_WARMUP)
    return res.stats.utilization(), res.total_ipc()


def test_extension_issue_width(benchmark, save_result):
    def sweep():
        out = {}
        for width in (1, 2, 4):
            out[(width, 1)] = _utilization(width, "single", 1)
            out[(width, 4)] = _utilization(width, "interleaved", 4)
        return out

    result = run_once(benchmark, sweep)
    rows = []
    for width in (1, 2, 4):
        u1, ipc1 = result[(width, 1)]
        u4, ipc4 = result[(width, 4)]
        rows.append(("width %d" % width,
                     ["%.2f" % ipc1, "%.0f%%" % (100 * u1),
                      "%.2f" % ipc4, "%.0f%%" % (100 * u4)]))
    text = save_result("extension_width", render_table(
        "Extension: IPC / utilisation vs issue width (R1 workload)",
        ["1-thread IPC", "util", "4-ctx IPC", "util"], rows,
        col_width=14))
    print("\n" + text)
    # One thread cannot use the width...
    assert result[(4, 1)][1] < 2.0 * result[(1, 1)][1]
    # ...but four interleaved contexts convert width into IPC.
    assert result[(2, 4)][1] > 1.15 * result[(1, 4)][1]
    assert result[(2, 4)][1] > result[(2, 1)][1]