"""Serial vs parallel vs warm-cache sweep timing (CI smoke benchmark).

Runs a reduced but representative sweep three ways over a throwaway
cache directory and writes the numbers as JSON (``BENCH_sweep.json`` in
CI), seeding the performance trajectory:

1. serial, cold cache   — the pre-engine baseline path
2. parallel, cold cache — the SweepEngine fan-out
3. parallel, warm cache — must be a small fraction of the cold time

Usage::

    PYTHONPATH=src python benchmarks/sweep_timing.py --jobs 4 --out BENCH_sweep.json
"""

import argparse
import json
import os
import platform
import shutil
import sys
import tempfile
import time

sys.path.insert(0, os.path.join(os.path.dirname(__file__), "..", "src"))

from repro.config import SystemConfig, MultiprocessorParams  # noqa: E402
from repro.experiments.cache import ResultCache              # noqa: E402
from repro.experiments.export import sweep_report_to_dict, \
    write_json                                               # noqa: E402
from repro.experiments.runner import ExperimentContext       # noqa: E402
from repro.experiments.sweep import SweepEngine, \
    default_points                                           # noqa: E402

#: A representative slice: two uniprocessor workloads and two SPLASH
#: apps cover both simulator families without nightly-scale runtimes.
WORKLOADS = ("DC", "R1")
APPS = ("cholesky", "mp3d")


def _make_ctx(cache):
    return ExperimentContext(
        config=SystemConfig.fast(),
        mp_params=MultiprocessorParams(n_nodes=4),
        warmup=10_000, measure=40_000, cache=cache)


def _timed_sweep(points, jobs, cache):
    ctx = _make_ctx(cache)
    engine = SweepEngine(ctx, jobs=jobs)
    t0 = time.perf_counter()
    report = engine.run(points)
    return time.perf_counter() - t0, report, ctx


def main(argv=None):
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--jobs", type=int,
                        default=min(4, os.cpu_count() or 1))
    parser.add_argument("--out", default="BENCH_sweep.json")
    args = parser.parse_args(argv)

    points = default_points(workloads=WORKLOADS, apps=APPS)
    cache_dir = tempfile.mkdtemp(prefix="repro-bench-cache-")
    try:
        serial_s, _, _ = _timed_sweep(points, jobs=1, cache=None)
        parallel_s, report, _ = _timed_sweep(
            points, jobs=args.jobs, cache=ResultCache(cache_dir))
        warm_s, warm_report, warm_ctx = _timed_sweep(
            points, jobs=args.jobs, cache=ResultCache(cache_dir))
        assert warm_ctx.sim_count == 0, "warm rerun re-simulated!"

        payload = sweep_report_to_dict(
            report,
            benchmark="sweep_timing",
            n_points=len(points),
            serial_seconds=round(serial_s, 3),
            parallel_seconds=round(parallel_s, 3),
            warm_cache_seconds=round(warm_s, 3),
            parallel_speedup=round(serial_s / parallel_s, 3),
            warm_fraction_of_cold=round(warm_s / parallel_s, 4),
            warm_cache_hits=warm_report.count("cache"),
            host={"python": platform.python_version(),
                  "machine": platform.machine(),
                  "cpus": os.cpu_count()},
        )
        write_json(args.out, payload)
        print(json.dumps({k: payload[k] for k in (
            "n_points", "serial_seconds", "parallel_seconds",
            "warm_cache_seconds", "parallel_speedup",
            "warm_fraction_of_cold")}, indent=2))
        print("wrote %s" % args.out)
    finally:
        shutil.rmtree(cache_dir, ignore_errors=True)
    return 0


if __name__ == "__main__":
    sys.exit(main())
