"""Regenerate Table 7 (uniprocessor throughput increases)."""

from repro.experiments import table7

from conftest import run_once


def test_table7(benchmark, ctx, save_result):
    result = run_once(benchmark, lambda: table7.run(ctx))
    text = save_result("table7", table7.render(result))
    print("\n" + text)
    # Shape assertions from the paper's Section 5.1.
    means = {}
    for key, row in result.items():
        values = list(row.values())
        means[key] = table7.geometric_mean(values)
    assert means[("interleaved", 4)] > means[("blocked", 4)]
    assert means[("interleaved", 2)] > means[("blocked", 2)]
    assert means[("interleaved", 4)] > 1.2
