"""Verify-at-load overhead: strict verification must stay in the noise.

The ``strict=True`` hook (``Program.__init__`` -> ``verify_program``
at ``level="load"``) is meant to be cheap enough to leave on wherever
programs are built.  This benchmark times the load-level verifier
against the cost of building each of the seven uniprocessor workloads
and gates the *aggregate* overhead at 5% of aggregate build time.

Per-workload ratios are recorded too, but not individually gated: the
sync-heavy workloads (SP) pair a near-trivial build with the full
lock-balance analysis, so their ratio is dominated by the tiny
denominator, not by verifier cost (absolute time stays well under a
millisecond per program).

Run directly to refresh the checked-in record::

    PYTHONPATH=src python benchmarks/bench_lint_overhead.py \
        --write benchmarks/BENCH_lint_baseline.json
"""

import json
import pathlib
import time

from repro.analysis import verify_program
from repro.workloads.uniprocessor import WORKLOAD_ORDER, build_workload

BASELINE_PATH = (pathlib.Path(__file__).resolve().parent /
                 "BENCH_lint_baseline.json")

#: Aggregate verify-time budget as a fraction of aggregate build time.
MAX_OVERHEAD = 0.05

_REPEATS = 3


def measure(scale=1.0):
    """Best-of-N build and load-level verify times per workload."""
    cases = {}
    for name in WORKLOAD_ORDER:
        build_s = verify_s = float("inf")
        n_programs = 0
        for _ in range(_REPEATS):
            t0 = time.perf_counter()
            procs, _instances, _barriers = build_workload(name, scale)
            build_s = min(build_s, time.perf_counter() - t0)
            programs = {id(p.program): p.program for p in procs}
            n_programs = len(programs)
            t0 = time.perf_counter()
            for program in programs.values():
                verify_program(program, level="load")
            verify_s = min(verify_s, time.perf_counter() - t0)
        cases[name] = {
            "build_ms": round(build_s * 1e3, 3),
            "verify_ms": round(verify_s * 1e3, 3),
            "ratio": round(verify_s / build_s, 4),
            "programs": n_programs,
        }
    total_build = sum(c["build_ms"] for c in cases.values())
    total_verify = sum(c["verify_ms"] for c in cases.values())
    return {
        "benchmark": "lint_overhead",
        "max_overhead": MAX_OVERHEAD,
        "cases": cases,
        "aggregate": {
            "build_ms": round(total_build, 3),
            "verify_ms": round(total_verify, 3),
            "ratio": round(total_verify / total_build, 4),
        },
    }


def test_verify_at_load_overhead_under_budget():
    payload = measure()
    agg = payload["aggregate"]
    assert agg["ratio"] < MAX_OVERHEAD, (
        "load-level verification costs %.1f%% of build time "
        "(budget %.0f%%): %s" % (agg["ratio"] * 100, MAX_OVERHEAD * 100,
                                 json.dumps(payload["cases"], indent=2)))


def test_baseline_record_matches_schema():
    recorded = json.loads(BASELINE_PATH.read_text())
    assert recorded["benchmark"] == "lint_overhead"
    assert set(recorded["cases"]) == set(WORKLOAD_ORDER)
    assert recorded["aggregate"]["ratio"] < recorded["max_overhead"]


def main(argv=None):
    import argparse
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--write", metavar="PATH", default=None,
                        help="record the measurement as JSON")
    args = parser.parse_args(argv)
    payload = measure()
    text = json.dumps(payload, indent=2)
    print(text)
    if args.write:
        pathlib.Path(args.write).write_text(text + "\n")
    return 0 if payload["aggregate"]["ratio"] < MAX_OVERHEAD else 1


if __name__ == "__main__":
    raise SystemExit(main())
