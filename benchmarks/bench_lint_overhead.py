"""Verify-at-load overhead: strict verification must stay in the noise.

The ``strict=True`` hook (``Program.__init__`` -> ``verify_program``
at ``level="load"``) is meant to be cheap enough to leave on wherever
programs are built.  This benchmark times the load-level verifier
against the cost of building each of the seven uniprocessor workloads
and gates the *aggregate* overhead at 5% of aggregate build time.

Per-workload ratios are recorded too, but not individually gated: the
sync-heavy workloads (SP) pair a near-trivial build with the full
lock-balance analysis, so their ratio is dominated by the tiny
denominator, not by verifier cost (absolute time stays well under a
millisecond per program).

The race-analysis case gates :func:`repro.analysis.analyze_races` on
the same seven multi-context workload groups: the whole-group interval
+ lockset pass must stay under 10% of the groups' full-verify
(V1xx + B2xx at widths 1/2/4) time, so ``lint --races`` rides along
with program verification at marginal cost.

Run directly to refresh the checked-in record::

    PYTHONPATH=src python benchmarks/bench_lint_overhead.py \
        --write benchmarks/BENCH_lint_baseline.json
"""

import json
import pathlib
import time

from repro.analysis import verify_program
from repro.workloads.uniprocessor import WORKLOAD_ORDER, build_workload

BASELINE_PATH = (pathlib.Path(__file__).resolve().parent /
                 "BENCH_lint_baseline.json")

#: Aggregate verify-time budget as a fraction of aggregate build time.
MAX_OVERHEAD = 0.05

#: Race-analysis budget as a fraction of full-verify time.
MAX_RACE_FRACTION = 0.10

_REPEATS = 3


def measure(scale=1.0):
    """Best-of-N build and load-level verify times per workload."""
    cases = {}
    for name in WORKLOAD_ORDER:
        build_s = verify_s = float("inf")
        n_programs = 0
        for _ in range(_REPEATS):
            t0 = time.perf_counter()
            procs, _instances, _barriers = build_workload(name, scale)
            build_s = min(build_s, time.perf_counter() - t0)
            programs = {id(p.program): p.program for p in procs}
            n_programs = len(programs)
            t0 = time.perf_counter()
            for program in programs.values():
                verify_program(program, level="load")
            verify_s = min(verify_s, time.perf_counter() - t0)
        cases[name] = {
            "build_ms": round(build_s * 1e3, 3),
            "verify_ms": round(verify_s * 1e3, 3),
            "ratio": round(verify_s / build_s, 4),
            "programs": n_programs,
        }
    total_build = sum(c["build_ms"] for c in cases.values())
    total_verify = sum(c["verify_ms"] for c in cases.values())
    return {
        "benchmark": "lint_overhead",
        "max_overhead": MAX_OVERHEAD,
        "cases": cases,
        "aggregate": {
            "build_ms": round(total_build, 3),
            "verify_ms": round(total_verify, 3),
            "ratio": round(total_verify / total_build, 4),
        },
    }


def measure_races(scale=1.0):
    """Best-of-N full-verify vs whole-group race-analysis times."""
    from repro.analysis import analyze_races
    from repro.config import PipelineParams
    threshold = PipelineParams().short_stall_threshold
    cases = {}
    for name in WORKLOAD_ORDER:
        procs, _instances, _barriers = build_workload(name, scale)
        group = [p.program for p in procs]
        programs = {id(p): p for p in group}
        verify_s = races_s = float("inf")
        for _ in range(_REPEATS):
            t0 = time.perf_counter()
            for program in programs.values():
                verify_program(program, level="full",
                               threshold=threshold, widths=(1, 2, 4))
            verify_s = min(verify_s, time.perf_counter() - t0)
            t0 = time.perf_counter()
            analyze_races(group)
            races_s = min(races_s, time.perf_counter() - t0)
        cases[name] = {
            "verify_full_ms": round(verify_s * 1e3, 3),
            "races_ms": round(races_s * 1e3, 3),
            "fraction": round(races_s / verify_s, 4),
            "contexts": len(group),
        }
    total_verify = sum(c["verify_full_ms"] for c in cases.values())
    total_races = sum(c["races_ms"] for c in cases.values())
    return {
        "max_race_fraction": MAX_RACE_FRACTION,
        "cases": cases,
        "aggregate": {
            "verify_full_ms": round(total_verify, 3),
            "races_ms": round(total_races, 3),
            "fraction": round(total_races / total_verify, 4),
        },
    }


def test_verify_at_load_overhead_under_budget():
    payload = measure()
    agg = payload["aggregate"]
    assert agg["ratio"] < MAX_OVERHEAD, (
        "load-level verification costs %.1f%% of build time "
        "(budget %.0f%%): %s" % (agg["ratio"] * 100, MAX_OVERHEAD * 100,
                                 json.dumps(payload["cases"], indent=2)))


def test_race_analysis_overhead_under_budget():
    payload = measure_races()
    agg = payload["aggregate"]
    assert agg["fraction"] < MAX_RACE_FRACTION, (
        "race analysis costs %.1f%% of full-verify time "
        "(budget %.0f%%): %s"
        % (agg["fraction"] * 100, MAX_RACE_FRACTION * 100,
           json.dumps(payload["cases"], indent=2)))


def test_baseline_record_matches_schema():
    recorded = json.loads(BASELINE_PATH.read_text())
    assert recorded["benchmark"] == "lint_overhead"
    assert set(recorded["cases"]) == set(WORKLOAD_ORDER)
    assert recorded["aggregate"]["ratio"] < recorded["max_overhead"]
    races = recorded["races"]
    assert set(races["cases"]) == set(WORKLOAD_ORDER)
    assert (races["aggregate"]["fraction"]
            < races["max_race_fraction"])


def main(argv=None):
    import argparse
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--write", metavar="PATH", default=None,
                        help="record the measurement as JSON")
    args = parser.parse_args(argv)
    payload = measure()
    payload["races"] = measure_races()
    text = json.dumps(payload, indent=2)
    print(text)
    if args.write:
        pathlib.Path(args.write).write_text(text + "\n")
    ok = (payload["aggregate"]["ratio"] < MAX_OVERHEAD
          and payload["races"]["aggregate"]["fraction"]
          < MAX_RACE_FRACTION)
    return 0 if ok else 1


if __name__ == "__main__":
    raise SystemExit(main())
