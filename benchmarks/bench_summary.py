"""The paper-vs-measured verdict report (shares the session's runs)."""

from repro.experiments import summary

from conftest import run_once


def test_summary_verdicts(benchmark, ctx, save_result):
    results = run_once(benchmark, lambda: summary.run(ctx))
    text = save_result("summary", summary.render(results))
    print("\n" + text)
    passed = sum(c.passed for c in summary.CLAIMS)
    assert passed == len(summary.CLAIMS), text
