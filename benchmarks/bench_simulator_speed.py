"""Raw simulator performance (host cycles-per-second).

The one benchmark here that uses pytest-benchmark's statistics properly:
it times the simulator's hot loop over repeated rounds, guarding against
performance regressions of the cycle loop itself.
"""

from repro.config import SystemConfig
from repro.core.simulator import WorkstationSimulator
from repro.workloads import build_workload


def _make_sim(scheme, n_contexts):
    procs, instances, barriers = build_workload("R1", scale=1.0)
    return WorkstationSimulator(procs, scheme=scheme,
                                n_contexts=n_contexts,
                                config=SystemConfig.fast(),
                                app_instances=instances,
                                barriers=barriers)


def test_speed_single_context(benchmark):
    sim = _make_sim("single", 1)
    sim.run(5_000)                      # warm caches
    benchmark.pedantic(lambda: sim.run(10_000), rounds=5, iterations=1)


def test_speed_interleaved_four_contexts(benchmark):
    sim = _make_sim("interleaved", 4)
    sim.run(5_000)
    benchmark.pedantic(lambda: sim.run(10_000), rounds=5, iterations=1)


def test_speed_blocked_four_contexts(benchmark):
    sim = _make_sim("blocked", 4)
    sim.run(5_000)
    benchmark.pedantic(lambda: sim.run(10_000), rounds=5, iterations=1)
