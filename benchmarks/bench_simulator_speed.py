"""Raw simulator performance (host cycles-per-second).

Three families of benchmark live here:

* pytest-benchmark timings of the cycle loop itself (guarding against
  hot-path regressions),
* the event-engine acceptance gate: on a memory-latency-bound SPLASH
  configuration the ``events`` engine must finish the same run at least
  3x faster than the ``naive`` reference loop *with bit-identical
  statistics* — the fast-forward engine is an optimisation, never an
  approximation, and
* the burst-engine acceptance gate: on a compute-bound single-context
  workstation stream (where straight-line bursts are longest) the
  ``burst`` engine must finish the same run at least 2x faster than
  ``events``, again bit-identically.
"""

import time

from repro.config import SystemConfig, MultiprocessorParams
from repro.core.simulator import WorkstationSimulator
from repro.core.mpsimulator import MultiprocessorSimulator
from repro.workloads import build_workload, build_app
from repro.workloads.generator import GenSpec, generate_process

#: Memory-latency-bound machine: DASH-like topology with ~4x the
#: default latencies (a larger/slower interconnect), where single-issue
#: nodes spend most cycles waiting on remote fills — the regime the
#: paper targets and where event-driven fast-forward pays off most.
STRESS_PARAMS = MultiprocessorParams(
    n_nodes=4,
    local_memory=(120, 160),
    remote_memory=(400, 520),
    remote_cache=(520, 640),
)


def _make_sim(scheme, n_contexts, engine="events"):
    procs, instances, barriers = build_workload("R1", scale=1.0)
    return WorkstationSimulator(procs, scheme=scheme,
                                n_contexts=n_contexts,
                                config=SystemConfig.fast(),
                                app_instances=instances,
                                barriers=barriers, engine=engine)


def _run_mp(app, scheme, n_contexts, engine, seed=1994):
    """Run one SPLASH stand-in to completion; returns (RunResult, secs)."""
    instance = build_app(
        app, n_threads=STRESS_PARAMS.n_nodes * n_contexts,
        threads_per_node=n_contexts, scale=0.5)
    sim = MultiprocessorSimulator(
        instance, scheme=scheme, n_contexts=n_contexts,
        params=STRESS_PARAMS, seed=seed, engine=engine)
    t0 = time.perf_counter()
    result = sim.run(until=20_000_000)
    elapsed = time.perf_counter() - t0
    assert result.completed, "%s did not complete" % app
    return result, elapsed


def _assert_identical(events, naive):
    """The bit-identical contract between the two engines."""
    assert events.cycles == naive.cycles
    assert events.retired == naive.retired
    assert events.counts == naive.counts
    assert events.per_process == naive.per_process
    assert events.raw.stats.issued == naive.raw.stats.issued
    assert events.raw.stats.squashed == naive.raw.stats.squashed
    assert (events.raw.stats.context_switches
            == naive.raw.stats.context_switches)
    assert events.raw.stats.backoffs == naive.raw.stats.backoffs


def test_speed_single_context(benchmark):
    sim = _make_sim("single", 1)
    sim.run(until=5_000)                # warm caches
    benchmark.pedantic(lambda: sim.run(until=sim.now + 10_000),
                       rounds=5, iterations=1)


def test_speed_interleaved_four_contexts(benchmark):
    sim = _make_sim("interleaved", 4)
    sim.run(until=5_000)
    benchmark.pedantic(lambda: sim.run(until=sim.now + 10_000),
                       rounds=5, iterations=1)


def test_speed_blocked_four_contexts(benchmark):
    sim = _make_sim("blocked", 4)
    sim.run(until=5_000)
    benchmark.pedantic(lambda: sim.run(until=sim.now + 10_000),
                       rounds=5, iterations=1)


def test_event_engine_speedup_memory_bound(benchmark, save_result):
    """Acceptance gate: >=3x on a memory-latency-bound SPLASH config.

    mp3d (the paper's most latency-bound application) on the stress
    machine: the event engine must produce *bit-identical* statistics to
    the naive per-cycle loop while finishing at least 3x faster in wall
    clock.  The ratio is host-independent (both engines run on the same
    interpreter in the same process), so the assertion is stable in CI.
    """
    def run_both():
        ev, ev_s = _run_mp("mp3d", "interleaved", 2, "events")
        nv, nv_s = _run_mp("mp3d", "interleaved", 2, "naive")
        return ev, ev_s, nv, nv_s

    events, events_s, naive, naive_s = benchmark.pedantic(
        run_both, rounds=1, iterations=1)
    _assert_identical(events, naive)
    speedup = naive_s / events_s
    lines = [
        "Event engine vs naive reference (mp3d, interleaved, 2 contexts,",
        "4 nodes, ~4x DASH latencies; run to completion):",
        "",
        "  cycles simulated : %d" % events.cycles,
        "  naive wall clock : %.2f s" % naive_s,
        "  events wall clock: %.2f s" % events_s,
        "  speedup          : %.1fx" % speedup,
        "  stats identical  : yes (enforced)",
    ]
    save_result("event_engine_speedup", "\n".join(lines))
    assert speedup >= 3.0, (
        "event engine speedup %.2fx below the 3x acceptance floor"
        % speedup)


#: Compute-bound stream: no memory ops, no branches inside blocks, a
#: dense FP mix with short dependency distances.  Exactly the regime
#: the burst engine targets — long straight-line runs whose schedules
#: (including their hazard stalls) precompile completely.
COMPUTE_SPEC = GenSpec(name="compute", load_fraction=0.0,
                       store_fraction=0.0, fp_fraction=0.35,
                       branch_fraction=0.0, dependency_distance=3,
                       seed=11)


def _run_stream(engine, until=330_000):
    """One compute-stream run on the single-context workstation."""
    procs = [generate_process(COMPUTE_SPEC, index=0, verify=False)]
    sim = WorkstationSimulator(procs, scheme="single", n_contexts=1,
                               config=SystemConfig.fast(), engine=engine)
    t0 = time.perf_counter()
    result = sim.run(until=until)
    elapsed = time.perf_counter() - t0
    return result, elapsed


def test_burst_engine_speedup_compute_bound(benchmark, save_result):
    """Acceptance gate: >=2x over the event engine on long bursts.

    Single-context workstation, compute-bound stream: the event engine
    has nothing to fast-forward (the pipeline is never idle), so it
    pays the full per-cycle issue path; the burst engine retires whole
    precompiled segments and bulk-charges hazard-stall windows.  All
    three engines must agree bit for bit.  The ratio is
    host-independent (same interpreter, same process), so the
    assertion is stable in CI.
    """
    def run_all():
        bu, bu_s = _run_stream("burst")
        ev, ev_s = _run_stream("events")
        nv, nv_s = _run_stream("naive")
        return bu, bu_s, ev, ev_s, nv, nv_s

    burst, burst_s, events, events_s, naive, naive_s = benchmark.pedantic(
        run_all, rounds=1, iterations=1)
    _assert_identical(burst, naive)
    _assert_identical(events, naive)
    speedup = events_s / burst_s
    lines = [
        "Burst engine vs event engine (compute-bound stream, single",
        "context workstation; 330k cycles):",
        "",
        "  cycles simulated : %d" % burst.cycles,
        "  instructions     : %d" % burst.retired,
        "  naive wall clock : %.2f s" % naive_s,
        "  events wall clock: %.2f s" % events_s,
        "  burst wall clock : %.2f s" % burst_s,
        "  speedup vs events: %.1fx" % speedup,
        "  speedup vs naive : %.1fx" % (naive_s / burst_s),
        "  stats identical  : yes (enforced, all three engines)",
    ]
    save_result("burst_engine_speedup", "\n".join(lines))
    assert speedup >= 2.0, (
        "burst engine speedup %.2fx below the 2x acceptance floor"
        % speedup)
