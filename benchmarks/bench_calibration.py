"""Calibration sweeps with the synthetic stream generator.

These isolate single workload properties (which the structured kernels
cannot) and confirm the mechanisms behind the paper's results:

* dependency distance — short distances are exactly the "pipeline
  dependencies" the blocked scheme cannot tolerate but cycle-by-cycle
  interleaving hides (Section 3);
* memory intensity — the latency-tolerance gradient between the schemes.
"""

from repro.config import SystemConfig
from repro.core.simulator import WorkstationSimulator
from repro.workloads.generator import GenSpec, generate_process
from repro.experiments.report import render_table

from conftest import run_once

_MEASURE = 40_000
_WARMUP = 8_000


def _throughput(spec, scheme, n_contexts):
    procs = [generate_process(spec, index=i, iterations=None,
                              verify=False)
             for i in range(max(1, n_contexts))]
    sim = WorkstationSimulator(procs, scheme=scheme,
                               n_contexts=n_contexts,
                               config=SystemConfig.fast())
    return sim.measure(_MEASURE, warmup=_WARMUP).total_ipc()


def test_calibration_dependency_distance(benchmark, save_result):
    """Interleaving's edge grows as dependency distance shrinks."""

    def sweep():
        out = {}
        for distance in (1, 2, 4, 8):
            spec = GenSpec(name="dep%d" % distance,
                           dependency_distance=distance,
                           load_fraction=0.05, store_fraction=0.02,
                           fp_fraction=0.25, seed=17)
            single = _throughput(spec, "single", 1)
            inter = _throughput(spec, "interleaved", 4)
            blocked = _throughput(spec, "blocked", 4)
            out[distance] = (single, blocked / single, inter / single)
        return out

    result = run_once(benchmark, sweep)
    rows = [("distance %d" % d,
             ["%.2f" % s, "%.2f" % b, "%.2f" % i])
            for d, (s, b, i) in sorted(result.items())]
    text = save_result("calibration_dependency", render_table(
        "Calibration: IPC and gain vs dependency distance",
        ["single IPC", "blocked x", "interleaved x"], rows,
        col_width=14))
    print("\n" + text)
    # Tight dependencies hurt the baseline most...
    assert result[1][0] < result[8][0]
    # ...and interleaving recovers them better than blocking does.
    assert result[1][2] > result[1][1]


def test_calibration_cache_interference(benchmark, save_result):
    """Multiple contexts share one cache: interference vs footprint.

    Section 5.1 of the paper observes that multiple contexts change the
    cache behaviour of the resident applications.  With workstation-short
    latencies the interference effect is strong: four streaming contexts
    whose combined footprint fits the L1 gain from interleaving, while
    four that blow it lose more to extra misses (each one a doomed-window
    squash) than latency overlap wins back.
    """

    def sweep():
        out = {}
        for footprint in (256, 2048, 6144):
            spec = GenSpec(name="fp%d" % footprint,
                           load_fraction=0.25, store_fraction=0.08,
                           footprint_words=footprint,
                           access_stride=5, seed=23)
            single = _throughput(spec, "single", 1)
            inter = _throughput(spec, "interleaved", 4)
            out[footprint] = (single, inter / single)
        return out

    result = run_once(benchmark, sweep)
    rows = [("%d KB x 4 contexts" % (4 * f // 1024),
             ["%.2f" % s, "%.2f" % g])
            for f, (s, g) in sorted(result.items())]
    text = save_result("calibration_interference", render_table(
        "Calibration: interleaved gain vs combined cache footprint",
        ["single IPC", "interleaved x"], rows, col_width=14))
    print("\n" + text)
    gains = [g for _, (s, g) in sorted(result.items())]
    assert gains[0] > gains[-1]      # interference grows with footprint
    assert gains[0] > 1.0            # cache-resident contexts do gain
