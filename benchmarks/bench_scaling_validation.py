"""Scaling validation: the fast profile preserves the paper profile's
orderings.

DESIGN.md §6 claims the 8x-scaled fast profile preserves the ratios the
results depend on.  This benchmark runs the same experiment on both
profiles and checks that the scheme ordering (and the rough size of the
interleaved gain) carries over.
"""

from repro.config import SystemConfig
from repro.experiments.runner import ExperimentContext
from repro.experiments.report import render_table

from conftest import run_once

_WARMUP = 20_000
_MEASURE = 80_000
_WORKLOAD = "DC"


def _gains(config):
    ctx = ExperimentContext(config=config, warmup=_WARMUP,
                            measure=_MEASURE)
    base = ctx.normalized_throughput(_WORKLOAD, "single", 1)
    return {
        "blocked": ctx.normalized_throughput(_WORKLOAD, "blocked", 4)
        / base,
        "interleaved": ctx.normalized_throughput(
            _WORKLOAD, "interleaved", 4) / base,
    }


def test_scaling_validation(benchmark, save_result):
    def run():
        return {
            "fast": _gains(SystemConfig.fast()),
            "paper": _gains(SystemConfig.paper()),
        }

    result = run_once(benchmark, run)
    rows = [(profile, [vals["blocked"], vals["interleaved"]])
            for profile, vals in sorted(result.items())]
    text = save_result("scaling_validation", render_table(
        "Scaling validation: DC gains at 4 contexts, both profiles",
        ["blocked", "interleaved"], rows, col_width=13))
    print("\n" + text)
    for profile, vals in result.items():
        assert vals["interleaved"] > vals["blocked"], profile
        assert vals["interleaved"] > 1.2, profile
