"""Regenerate Figure 2 and Figure 3 (switch-cost microbenchmarks)."""

from repro.experiments import figure2, figure3

from conftest import run_once


def test_figure2(benchmark, save_result):
    result = run_once(benchmark, figure2.run)
    text = save_result("figure2", figure2.render(result))
    print("\n" + text)
    assert result["blocked"] == 7
    assert result["interleaved"] == 2


def test_figure3(benchmark, save_result):
    result = run_once(benchmark, figure3.run)
    text = save_result("figure3", figure3.render(result))
    print("\n" + text)
    assert result["interleaved"][0] < result["blocked"][0]
