"""Ablation studies for the design choices DESIGN.md calls out.

These are not in the paper's evaluation, but each probes one of its
arguments:

* miss-detection depth — the blocked scheme's 7-cycle flush is exactly
  the pipeline's miss-detection depth; shortening it (the "replicate the
  pipeline registers" proposals of Section 2.2) closes part of the gap;
* memory latency — with long (multiprocessor-like) latencies the blocked
  scheme catches up, with short (workstation) latencies it cannot: the
  paper's central workstation argument;
* context count — throughput as contexts scale;
* backoff length — the interleaved scheme's tool for long instruction
  latency;
* BTB size — control-transfer hazards are part of what interleaving
  tolerates.
"""

from dataclasses import replace

from repro.config import SystemConfig
from repro.experiments.runner import ExperimentContext
from repro.experiments.report import render_table

from conftest import run_once

_WARMUP = 15_000
_MEASURE = 60_000


def _context(config):
    return ExperimentContext(config=config, warmup=_WARMUP,
                             measure=_MEASURE)


def _gain(ctx, workload, scheme, n):
    base = ctx.normalized_throughput(workload, "single", 1)
    return ctx.normalized_throughput(workload, scheme, n) / base


def test_ablation_miss_detect_depth(benchmark, save_result):
    """Blocked switch cost vs pipeline miss-detection depth (DC, 4ctx)."""

    def sweep():
        out = {}
        for offset in (2, 4, 6, 8):
            cfg = SystemConfig.fast().with_pipeline(
                miss_detect_offset=offset)
            ctx = _context(cfg)
            out[offset] = (_gain(ctx, "DC", "blocked", 4),
                           _gain(ctx, "DC", "interleaved", 4))
        return out

    result = run_once(benchmark, sweep)
    rows = [("detect offset %d (flush %d)" % (o, o + 1),
             [b, i]) for o, (b, i) in sorted(result.items())]
    text = save_result("ablation_miss_detect", render_table(
        "Ablation: DC throughput ratio vs miss-detection depth",
        ["blocked", "interleaved"], rows, col_width=13))
    print("\n" + text)
    # A deeper flush must not help the blocked scheme.
    blocked = [b for _, (b, i) in sorted(result.items())]
    assert blocked[0] >= blocked[-1] - 0.05


def test_ablation_memory_latency(benchmark, save_result):
    """The workstation argument: short latencies defeat the blocked
    scheme, long ones rescue it."""

    def sweep():
        out = {}
        for scale in (0.5, 1.0, 3.0, 6.0):
            base = SystemConfig.fast()
            cfg = base.with_memory(
                l2_hit_latency=max(3, int(9 * scale)),
                memory_latency=max(8, int(34 * scale)))
            ctx = _context(cfg)
            out[scale] = (_gain(ctx, "DC", "blocked", 4),
                          _gain(ctx, "DC", "interleaved", 4))
        return out

    result = run_once(benchmark, sweep)
    rows = [("latency x%.1f" % s, [b, i])
            for s, (b, i) in sorted(result.items())]
    text = save_result("ablation_latency", render_table(
        "Ablation: DC throughput ratio vs memory latency",
        ["blocked", "interleaved"], rows, col_width=13))
    print("\n" + text)
    gaps = {s: i - b for s, (b, i) in result.items()}
    # Blocked's relative disadvantage shrinks as latency grows.
    assert gaps[0.5] > gaps[6.0] - 0.05


def test_ablation_context_count(benchmark, save_result):
    """Throughput scaling with hardware contexts (interleaved, R1)."""

    def sweep():
        ctx = _context(SystemConfig.fast())
        return {n: _gain(ctx, "R1", "interleaved", n) if n > 1 else 1.0
                for n in (1, 2, 4)}

    result = run_once(benchmark, sweep)
    rows = [("%d contexts" % n, [v]) for n, v in sorted(result.items())]
    text = save_result("ablation_contexts", render_table(
        "Ablation: R1 throughput ratio vs context count (interleaved)",
        ["ratio"], rows))
    print("\n" + text)
    assert result[4] > result[2] > 0.9


def test_ablation_backoff_length(benchmark, save_result):
    """FP workload sensitivity to the backoff hint length."""
    import repro.workloads.kernels.linalg as linalg

    def sweep():
        out = {}
        original = linalg.FDIV_BACKOFF
        try:
            for length in (0, 13, 52, 104):
                linalg.FDIV_BACKOFF = length
                ctx = _context(SystemConfig.fast())
                out[length] = _gain(ctx, "FP", "interleaved", 4)
        finally:
            linalg.FDIV_BACKOFF = original
        return out

    result = run_once(benchmark, sweep)
    rows = [("backoff %d" % n, [v]) for n, v in sorted(result.items())]
    text = save_result("ablation_backoff", render_table(
        "Ablation: FP throughput ratio vs backoff length (4ctx)",
        ["ratio"], rows))
    print("\n" + text)
    assert max(result.values()) > 1.0


def test_ablation_btb_size(benchmark, save_result):
    """Branchy code (IC workload) vs BTB capacity."""

    def sweep():
        out = {}
        for entries in (4, 64, 2048):
            cfg = SystemConfig.fast().with_pipeline(btb_entries=entries)
            ctx = _context(cfg)
            run = ctx.uniproc_run("IC", "interleaved", 4)
            out[entries] = run.result.stats.utilization()
        return out

    result = run_once(benchmark, sweep)
    rows = [("%d entries" % n, [v]) for n, v in sorted(result.items())]
    text = save_result("ablation_btb", render_table(
        "Ablation: IC utilisation vs BTB size (interleaved, 4ctx)",
        ["busy fraction"], rows, col_width=14))
    print("\n" + text)
    assert result[2048] >= result[4]
