"""Regenerate Figures 6 and 7 (uniprocessor utilisation breakdowns)."""

from repro.experiments import figures6_7

from conftest import run_once


def test_figure6_blocked(benchmark, ctx, save_result):
    result = run_once(benchmark,
                      lambda: figures6_7.run(ctx, scheme="blocked"))
    text = save_result("figure6",
                       figures6_7.render(result, scheme="blocked"))
    print("\n" + text)
    assert set(result) == {"IC", "DC", "DT", "FP", "R0", "R1", "SP"}


def test_figure7_interleaved(benchmark, ctx, save_result):
    result = run_once(benchmark,
                      lambda: figures6_7.run(ctx, scheme="interleaved"))
    text = save_result("figure7",
                       figures6_7.render(result, scheme="interleaved"))
    print("\n" + text)
    # Paper: utilisation increases with contexts under interleaving.
    for workload in ("DC", "SP", "R1"):
        one = result[workload][1]["busy"]
        four = result[workload][4]["busy"]
        assert four > one, workload
