"""Engine core timing: events and burst vs the naive loop (CI gate).

Times identical runs under all three simulation engines and writes the
wall-clock numbers plus the *speedup ratios* (``speedup`` =
naive/events, ``burst_speedup`` = naive/burst,
``burst_vs_events_speedup`` = events/burst) as JSON
(``BENCH_core.json`` in CI).  The ratios are host-independent — the
engines run in the same interpreter on the same machine — so CI can
gate on them: checked-in baselines (``BENCH_core_baseline.json`` for
the event engine, ``BENCH_burst_baseline.json`` for the burst engine)
record the expected ratios and the gate fails when any case regresses
by more than the allowed fraction.

When numpy is installed the run also times the vectorised scoreboard
backend against the pure-python one on the compute stream's precompiled
bursts (the stall-window probe pattern: one candidate set, many probe
cycles) and records ``numpy_vs_python_speedup``; the
``BENCH_numpy_baseline.json`` baseline gates it the same way.  Without
numpy the case and its gate are skipped with a note.

Usage::

    PYTHONPATH=src python benchmarks/core_timing.py --out BENCH_core.json
    PYTHONPATH=src python benchmarks/core_timing.py \
        --baseline benchmarks/BENCH_core_baseline.json \
        --burst-baseline benchmarks/BENCH_burst_baseline.json \
        --numpy-baseline benchmarks/BENCH_numpy_baseline.json \
        --max-regression 0.20
"""

import argparse
import json
import os
import platform
import sys
import time

sys.path.insert(0, os.path.join(os.path.dirname(__file__), "..", "src"))

from repro.config import SystemConfig, MultiprocessorParams  # noqa: E402
from repro.experiments.export import write_json              # noqa: E402
from repro.api import Simulation                             # noqa: E402

#: Memory-latency-bound DASH-like machine (~4x default latencies); see
#: bench_simulator_speed.STRESS_PARAMS for the rationale.
STRESS_PARAMS = MultiprocessorParams(
    n_nodes=4,
    local_memory=(120, 160),
    remote_memory=(400, 520),
    remote_cache=(520, 640),
)

#: Compute-bound stream for the burst engine's best case; mirrors
#: bench_simulator_speed.COMPUTE_SPEC.
_COMPUTE_SPEC = dict(name="compute", load_fraction=0.0,
                     store_fraction=0.0, fp_fraction=0.35,
                     branch_fraction=0.0, dependency_distance=3, seed=11)

#: name -> simulation builder kwargs; each case runs once per engine.
CASES = {
    "mp3d_interleaved_2": dict(
        kind="mp", workload="mp3d", scheme="interleaved", n_contexts=2,
        scale=0.5),
    "cholesky_interleaved_2": dict(
        kind="mp", workload="cholesky", scheme="interleaved", n_contexts=2,
        scale=0.5),
    "DC_interleaved_4": dict(
        kind="ws", workload="DC", scheme="interleaved", n_contexts=4,
        warmup=10_000, measure=60_000),
    "compute_single_1": dict(
        kind="stream", scheme="single", n_contexts=1, until=330_000),
    # The Section 7 multi-issue extension on the burst fast path: same
    # compute-bound stream, dual-issue pipeline.  Gated on
    # ``burst_vs_events_speedup`` — precompiled width-2 schedules must
    # stay well ahead of per-cycle event stepping.
    "compute_width2_1": dict(
        kind="stream", scheme="single", n_contexts=1, until=330_000,
        width=2),
}


def _run_case(spec, engine):
    """Run one case under one engine; returns (RunResult, seconds)."""
    if spec["kind"] == "mp":
        simulation = Simulation.from_config(
            STRESS_PARAMS, scheme=spec["scheme"],
            n_contexts=spec["n_contexts"], seed=1994,
            engine=engine).load(spec["workload"], scale=spec["scale"])
        t0 = time.perf_counter()
        result = simulation.run(until=20_000_000)
        elapsed = time.perf_counter() - t0
        if not result.completed:
            raise RuntimeError("%s did not complete" % spec["workload"])
    elif spec["kind"] == "stream":
        from repro.core.simulator import WorkstationSimulator
        from repro.workloads.generator import (
            GenSpec, generate_process)
        procs = [generate_process(GenSpec(**_COMPUTE_SPEC), index=0,
                                  verify=False)]
        config = SystemConfig.fast().with_pipeline(
            issue_width=spec.get("width", 1))
        sim = WorkstationSimulator(
            procs, scheme=spec["scheme"], n_contexts=spec["n_contexts"],
            config=config, seed=1994, engine=engine)
        t0 = time.perf_counter()
        result = sim.run(until=spec["until"])
        elapsed = time.perf_counter() - t0
    else:
        simulation = Simulation.from_config(
            SystemConfig.fast(), scheme=spec["scheme"],
            n_contexts=spec["n_contexts"], seed=1994,
            engine=engine).load(spec["workload"])
        t0 = time.perf_counter()
        result = simulation.run(warmup=spec["warmup"],
                                measure=spec["measure"])
        elapsed = time.perf_counter() - t0
    return result, elapsed


#: The scoreboard-backend case: contexts per batch and probe cycles.
#: 32 contexts is the parked-context scale the batched stall-window
#: probe exists for (well past any single workstation's context count,
#: the whole point of vectorising).
BACKEND_CASE = dict(n_contexts=32, rounds=6_000, threshold=4)


def _compute_bursts(threshold):
    """The compute stream's precompiled bursts (guard/write arrays)."""
    from repro.isa.segments import build_burst_table
    from repro.workloads.generator import GenSpec, generate_process
    program = generate_process(GenSpec(**_COMPUTE_SPEC),
                               index=0).program
    return [b for b in build_burst_table(program, threshold)
            if b is not None]


def _drive_backend(backend, bursts, n_contexts, rounds):
    """Stall-window probe loop on one backend; returns (sb, verdicts,
    seconds).

    One stable candidate set (context -> burst at its resume PC) probed
    across ``rounds`` advancing cycles, with a context teardown per
    round — the batched bulk ops the numpy backend vectorises.  The
    final verdict list and scoreboard state let the caller assert both
    backends computed the same machine before trusting the ratio.
    """
    from repro.pipeline.scoreboard import make_scoreboard
    sb = make_scoreboard(n_contexts, backend)
    ctx_ids = list(range(n_contexts))
    cand = [bursts[i % len(bursts)] for i in range(n_contexts)]
    verdicts = None
    t0 = time.perf_counter()
    for r in range(rounds):
        verdicts = sb.can_dispatch_bursts(ctx_ids, cand, 10_000 + r)
        sb.clear_context(r % n_contexts)
    return sb, verdicts, time.perf_counter() - t0


def run_backend_case():
    """Time the scoreboard backends against each other; one case dict.

    Returns None when numpy is not installed (the case needs both
    backends).
    """
    from repro.pipeline.scoreboard import HAVE_NUMPY
    if not HAVE_NUMPY:
        return None
    spec = BACKEND_CASE
    bursts = _compute_bursts(spec["threshold"])
    args = (bursts, spec["n_contexts"], spec["rounds"])
    _drive_backend("python", *args)          # warm both paths
    _drive_backend("numpy", *args)
    py_sb, py_verdicts, py_s = _drive_backend("python", *args)
    np_sb, np_verdicts, np_s = _drive_backend("numpy", *args)
    if (py_verdicts != np_verdicts
            or list(py_sb.reg_ready) != np_sb.reg_ready.tolist()
            or bytes(py_sb.reg_mem) != bytes(np_sb.reg_mem.tolist())):
        raise AssertionError(
            "scoreboard backends disagree on the benchmark case")
    return {
        "contexts": spec["n_contexts"],
        "rounds": spec["rounds"],
        "bursts": len(bursts),
        "python_seconds": round(py_s, 3),
        "numpy_seconds": round(np_s, 3),
        "numpy_vs_python_speedup": round(py_s / np_s, 3),
    }


def run_cases():
    """Time every case under all three engines; returns the payload."""
    cases = {}
    for name, spec in CASES.items():
        events, events_s = _run_case(spec, "events")
        naive, naive_s = _run_case(spec, "naive")
        burst, burst_s = _run_case(spec, "burst")
        for engine_name, other in (("events", events), ("burst", burst)):
            if (other.cycles != naive.cycles
                    or other.retired != naive.retired
                    or other.counts != naive.counts):
                raise AssertionError(
                    "engines disagree on %s: %s/naive stats differ"
                    % (name, engine_name))
        cases[name] = {
            "cycles": events.cycles,
            "retired": events.retired,
            "events_seconds": round(events_s, 3),
            "naive_seconds": round(naive_s, 3),
            "burst_seconds": round(burst_s, 3),
            "speedup": round(naive_s / events_s, 3),
            "burst_speedup": round(naive_s / burst_s, 3),
            "burst_vs_events_speedup": round(events_s / burst_s, 3),
        }
    backend_case = run_backend_case()
    if backend_case is not None:
        cases["compute_scoreboard_32ctx"] = backend_case
    else:
        print("numpy not installed: skipping the scoreboard-backend case")
    return {
        "benchmark": "core_timing",
        "cases": cases,
        "host": {"python": platform.python_version(),
                 "machine": platform.machine(),
                 "cpus": os.cpu_count()},
    }


def check_against_baseline(payload, baseline, max_regression):
    """Compare speedup ratios; returns a list of failure strings.

    Every key ending in ``speedup`` in a baseline case is gated — a
    baseline that records only ``burst_speedup`` gates only the burst
    engine, the original events baseline gates only ``speedup``.
    """
    failures = []
    for name, base in baseline["cases"].items():
        current = payload["cases"].get(name)
        if current is None:
            failures.append("case %r missing from current run" % name)
            continue
        for key, base_ratio in base.items():
            if not key.endswith("speedup"):
                continue
            ratio = current.get(key)
            if ratio is None:
                failures.append("%s: %r missing from current run"
                                % (name, key))
                continue
            floor = base_ratio * (1.0 - max_regression)
            if ratio < floor:
                failures.append(
                    "%s: %s %.2fx below floor %.2fx (baseline %.2fx, "
                    "max regression %.0f%%)"
                    % (name, key, ratio, floor, base_ratio,
                       max_regression * 100))
    return failures


def main(argv=None):
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--out", default="BENCH_core.json")
    parser.add_argument("--baseline", default=None,
                        help="event-engine baseline JSON to gate against "
                             "(omit to skip the gate, e.g. when "
                             "regenerating it)")
    parser.add_argument("--burst-baseline", default=None,
                        help="burst-engine baseline JSON to gate against")
    parser.add_argument("--numpy-baseline", default=None,
                        help="scoreboard-backend baseline JSON to gate "
                             "against (skipped when numpy is absent)")
    parser.add_argument("--max-regression", type=float, default=0.20,
                        help="allowed fractional speedup regression vs "
                             "the baseline (default 0.20)")
    args = parser.parse_args(argv)

    payload = run_cases()
    write_json(args.out, payload)
    print(json.dumps({name: {key: value for key, value in case.items()
                             if key.endswith("speedup")}
                      for name, case in payload["cases"].items()},
                     indent=2))
    print("wrote %s" % args.out)

    numpy_baseline = args.numpy_baseline
    if numpy_baseline and "compute_scoreboard_32ctx" not in payload["cases"]:
        print("numpy not installed: skipping the backend baseline gate")
        numpy_baseline = None
    failures = []
    for path in (args.baseline, args.burst_baseline, numpy_baseline):
        if not path:
            continue
        with open(path) as fh:
            baseline = json.load(fh)
        failures.extend(check_against_baseline(payload, baseline,
                                               args.max_regression))
    if failures:
        for failure in failures:
            print("REGRESSION: %s" % failure, file=sys.stderr)
        return 1
    if args.baseline or args.burst_baseline or numpy_baseline:
        print("baseline gate passed (max regression %.0f%%)"
              % (args.max_regression * 100))
    return 0


if __name__ == "__main__":
    sys.exit(main())
