"""Event-engine vs naive-loop core timing (CI regression gate).

Times identical runs under both simulation engines and writes the
wall-clock numbers plus the events/naive *speedup ratios* as JSON
(``BENCH_core.json`` in CI).  The ratios are host-independent — both
engines run in the same interpreter on the same machine — so CI can
gate on them: a checked-in baseline (``BENCH_core_baseline.json``)
records the expected ratios and the gate fails when any case regresses
by more than the allowed fraction.

Usage::

    PYTHONPATH=src python benchmarks/core_timing.py --out BENCH_core.json
    PYTHONPATH=src python benchmarks/core_timing.py \
        --baseline benchmarks/BENCH_core_baseline.json --max-regression 0.20
"""

import argparse
import json
import os
import platform
import sys
import time

sys.path.insert(0, os.path.join(os.path.dirname(__file__), "..", "src"))

from repro.config import SystemConfig, MultiprocessorParams  # noqa: E402
from repro.experiments.export import write_json              # noqa: E402
from repro.api import Simulation                             # noqa: E402

#: Memory-latency-bound DASH-like machine (~4x default latencies); see
#: bench_simulator_speed.STRESS_PARAMS for the rationale.
STRESS_PARAMS = MultiprocessorParams(
    n_nodes=4,
    local_memory=(120, 160),
    remote_memory=(400, 520),
    remote_cache=(520, 640),
)

#: name -> simulation builder kwargs; each case runs once per engine.
CASES = {
    "mp3d_interleaved_2": dict(
        kind="mp", workload="mp3d", scheme="interleaved", n_contexts=2,
        scale=0.5),
    "cholesky_interleaved_2": dict(
        kind="mp", workload="cholesky", scheme="interleaved", n_contexts=2,
        scale=0.5),
    "DC_interleaved_4": dict(
        kind="ws", workload="DC", scheme="interleaved", n_contexts=4,
        warmup=10_000, measure=60_000),
}


def _run_case(spec, engine):
    """Run one case under one engine; returns (RunResult, seconds)."""
    if spec["kind"] == "mp":
        simulation = Simulation.from_config(
            STRESS_PARAMS, scheme=spec["scheme"],
            n_contexts=spec["n_contexts"], seed=1994,
            engine=engine).load(spec["workload"], scale=spec["scale"])
        t0 = time.perf_counter()
        result = simulation.run(until=20_000_000)
        elapsed = time.perf_counter() - t0
        if not result.completed:
            raise RuntimeError("%s did not complete" % spec["workload"])
    else:
        simulation = Simulation.from_config(
            SystemConfig.fast(), scheme=spec["scheme"],
            n_contexts=spec["n_contexts"], seed=1994,
            engine=engine).load(spec["workload"])
        t0 = time.perf_counter()
        result = simulation.run(warmup=spec["warmup"],
                                measure=spec["measure"])
        elapsed = time.perf_counter() - t0
    return result, elapsed


def run_cases():
    """Time every case under both engines; returns the JSON payload."""
    cases = {}
    for name, spec in CASES.items():
        events, events_s = _run_case(spec, "events")
        naive, naive_s = _run_case(spec, "naive")
        if (events.cycles != naive.cycles
                or events.retired != naive.retired
                or events.counts != naive.counts):
            raise AssertionError(
                "engines disagree on %s: events/naive stats differ" % name)
        cases[name] = {
            "cycles": events.cycles,
            "retired": events.retired,
            "events_seconds": round(events_s, 3),
            "naive_seconds": round(naive_s, 3),
            "speedup": round(naive_s / events_s, 3),
        }
    return {
        "benchmark": "core_timing",
        "cases": cases,
        "host": {"python": platform.python_version(),
                 "machine": platform.machine(),
                 "cpus": os.cpu_count()},
    }


def check_against_baseline(payload, baseline, max_regression):
    """Compare speedup ratios; returns a list of failure strings."""
    failures = []
    for name, base in baseline["cases"].items():
        current = payload["cases"].get(name)
        if current is None:
            failures.append("case %r missing from current run" % name)
            continue
        floor = base["speedup"] * (1.0 - max_regression)
        if current["speedup"] < floor:
            failures.append(
                "%s: speedup %.2fx below floor %.2fx (baseline %.2fx, "
                "max regression %.0f%%)"
                % (name, current["speedup"], floor, base["speedup"],
                   max_regression * 100))
    return failures


def main(argv=None):
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--out", default="BENCH_core.json")
    parser.add_argument("--baseline", default=None,
                        help="baseline JSON to gate against (omit to "
                             "skip the gate, e.g. when regenerating it)")
    parser.add_argument("--max-regression", type=float, default=0.20,
                        help="allowed fractional speedup regression vs "
                             "the baseline (default 0.20)")
    args = parser.parse_args(argv)

    payload = run_cases()
    write_json(args.out, payload)
    print(json.dumps({name: case["speedup"]
                      for name, case in payload["cases"].items()},
                     indent=2))
    print("wrote %s" % args.out)

    if args.baseline:
        with open(args.baseline) as fh:
            baseline = json.load(fh)
        failures = check_against_baseline(payload, baseline,
                                          args.max_regression)
        if failures:
            for failure in failures:
                print("REGRESSION: %s" % failure, file=sys.stderr)
            return 1
        print("baseline gate passed (max regression %.0f%%)"
              % (args.max_regression * 100))
    return 0


if __name__ == "__main__":
    sys.exit(main())
