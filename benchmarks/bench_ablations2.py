"""Second ablation batch: OS and memory-system design parameters."""

from dataclasses import replace

from repro.config import SystemConfig
from repro.experiments.runner import ExperimentContext
from repro.experiments.report import render_table

from conftest import run_once

_WARMUP = 15_000
_MEASURE = 60_000


def _ctx(config):
    return ExperimentContext(config=config, warmup=_WARMUP,
                             measure=_MEASURE)


def _gain(ctx, workload, scheme, n):
    base = ctx.normalized_throughput(workload, "single", 1)
    return ctx.normalized_throughput(workload, scheme, n) / base


def test_ablation_mshr_capacity(benchmark, save_result):
    """Outstanding-miss capacity vs multithreaded memory overlap."""

    def sweep():
        out = {}
        for capacity in (1, 2, 4, 8):
            cfg = SystemConfig.fast().with_memory(mshr_capacity=capacity)
            out[capacity] = _gain(_ctx(cfg), "DC", "interleaved", 4)
        return out

    result = run_once(benchmark, sweep)
    rows = [("%d MSHRs" % c, [g]) for c, g in sorted(result.items())]
    text = save_result("ablation_mshr", render_table(
        "Ablation: DC interleaved gain vs MSHR capacity (4ctx)",
        ["gain"], rows))
    print("\n" + text)
    # One outstanding miss cannot overlap four contexts' misses.
    assert result[8] >= result[1]


def test_ablation_time_slice(benchmark, save_result):
    """Scheduler slice length vs cache-reload overhead (single ctx)."""

    def sweep():
        out = {}
        for slice_len in (1_000, 5_000, 20_000):
            cfg = SystemConfig.fast()
            cfg = replace(cfg, os=replace(cfg.os,
                                          time_slice=slice_len))
            ctx = _ctx(cfg)
            run = ctx.uniproc_run("DC", "single", 1)
            out[slice_len] = run.result.stats.utilization()
        return out

    result = run_once(benchmark, sweep)
    rows = [("slice %d" % s, [u]) for s, u in sorted(result.items())]
    text = save_result("ablation_slice", render_table(
        "Ablation: DC single-context utilisation vs time slice",
        ["busy fraction"], rows, col_width=14))
    print("\n" + text)
    # Longer slices amortise the post-swap cache reload.
    assert result[20_000] >= result[1_000] - 0.02


def test_ablation_lock_transfer(benchmark, save_result):
    """Lock handoff latency vs a lock-heavy application (locus)."""
    from repro.config import MultiprocessorParams

    def sweep():
        out = {}
        for latency in (5, 20, 80):
            params = MultiprocessorParams(n_nodes=4,
                                          lock_transfer_latency=latency)
            ctx = ExperimentContext(mp_params=params)
            base = ctx.mp_run("locus", "single", 1).cycles
            run = ctx.mp_run("locus", "interleaved", 4)
            out[latency] = base / run.cycles
        return out

    result = run_once(benchmark, sweep)
    rows = [("handoff %d" % l, [s]) for l, s in sorted(result.items())]
    text = save_result("ablation_lock_transfer", render_table(
        "Ablation: locus speedup vs lock transfer latency (4ctx)",
        ["speedup"], rows))
    print("\n" + text)
    assert result[5] >= result[80] - 0.05
