"""Shared fixtures for the benchmark suite.

A session-scoped :class:`ExperimentContext` memoises simulations across
benchmarks (Table 7 and Figures 6/7 intentionally share runs, exactly as
the paper's tables and figures describe the same experiments), and every
benchmark writes its rendered table/figure under ``results/`` so
EXPERIMENTS.md can be assembled from real output.
"""

import pathlib

import pytest

from repro.experiments.runner import ExperimentContext

RESULTS_DIR = pathlib.Path(__file__).resolve().parent.parent / "results"


@pytest.fixture(scope="session")
def ctx():
    return ExperimentContext()


@pytest.fixture(scope="session")
def save_result():
    RESULTS_DIR.mkdir(exist_ok=True)

    def _save(name, text):
        (RESULTS_DIR / ("%s.txt" % name)).write_text(text + "\n")
        return text

    return _save


def run_once(benchmark, fn):
    """Run an experiment exactly once under the benchmark clock.

    The simulations are deterministic and expensive; multiple rounds
    would only repeat identical work.
    """
    return benchmark.pedantic(fn, rounds=1, iterations=1)
