"""Service-path timing: job latency and burst-cache warmup (CI gate).

Submits the same burst-engine sweep job twice through a
:class:`~repro.service.manager.JobManager`:

* **cold** — empty burst-table cache: every worker compiles its
  program's tables and publishes them;
* **warm** — same burst directory, a *fresh* result cache: every point
  recomputes its simulation but loads its burst tables from the shared
  cache (validated by ``audit_bursts``) instead of compiling.

then runs the same job a third time as a **net** case: a TCP
:class:`~repro.service.net.ServiceServer` fronting the manager, with a
:class:`~repro.service.client.ServiceClient` submitting and streaming
the results over a real socket (warm burst tables, fresh result cache
— so the simulation work matches the warm case and the delta is the
wire).

Records submit-to-first-result latency and points/sec for every run
plus two host-independent ratios CI gates against a checked-in
baseline (``BENCH_service_baseline.json``): ``warm_speedup`` (warm /
cold points-per-sec) and ``net_vs_warm_speedup`` (net / warm — how
much throughput the TCP hop costs).  Three correctness gates are
unconditional: the warm run must *hit* the table cache on every point,
no run may reject a cached entry, and the streamed TCP payloads must
be byte-identical to the manager's in-process results.

Usage::

    PYTHONPATH=src python benchmarks/bench_service.py --out BENCH_service.json
    PYTHONPATH=src python benchmarks/bench_service.py \
        --baseline benchmarks/BENCH_service_baseline.json \
        --max-regression 0.50
"""

import argparse
import json
import os
import platform
import shutil
import sys
import tempfile
import time

sys.path.insert(0, os.path.join(os.path.dirname(__file__), "..", "src"))

from repro.config import SystemConfig, MultiprocessorParams  # noqa: E402
from repro.experiments.cache import ResultCache              # noqa: E402
from repro.experiments.export import write_json              # noqa: E402
from repro.service import JobManager, JobSpec                # noqa: E402

#: One workload, several schemes/context counts: every point shares one
#: program, so the table cache's cross-worker sharing is on the hot path.
POINTS = (
    ("uniproc", "R1", "single", 1),
    ("uniproc", "R1", "blocked", 2),
    ("uniproc", "R1", "interleaved", 2),
    ("uniproc", "R1", "interleaved", 4),
)

WARMUP = 2_000
MEASURE = 12_000
WORKERS = 2


def _run_once(burst_dir, result_dir):
    """One submit -> drain cycle; returns the timing/stat dict."""
    spec = JobSpec(points=POINTS, config=SystemConfig.fast(),
                   mp_params=MultiprocessorParams(n_nodes=2),
                   warmup=WARMUP, measure=MEASURE, engine="burst")
    with JobManager(workers=WORKERS, cache=ResultCache(result_dir),
                    burst_dir=burst_dir) as manager:
        t0 = time.perf_counter()
        job_id = manager.submit(spec)
        first = None
        n = 0
        for _payload in manager.iter_results(job_id, timeout=600):
            if first is None:
                first = time.perf_counter() - t0
            n += 1
        total = time.perf_counter() - t0
        status = manager.status(job_id)
    if status["status"] != "completed" or n != len(POINTS):
        raise RuntimeError("benchmark job did not complete: %r"
                           % (status,))
    return {
        "submit_to_first_result_seconds": round(first, 3),
        "total_seconds": round(total, 3),
        "points_per_second": round(n / total, 3),
        "burst": status["burst_cache"],
    }


def _run_net(burst_dir, result_dir):
    """The same job over a real TCP socket; returns the timing dict.

    Uses the already-warm burst directory with a fresh result cache,
    so the compute matches the warm in-process run and the measured
    difference is the protocol itself.
    """
    from repro.service import connect
    from repro.service.net import ServiceServer
    spec = JobSpec(points=POINTS, config=SystemConfig.fast(),
                   mp_params=MultiprocessorParams(n_nodes=2),
                   warmup=WARMUP, measure=MEASURE, engine="burst")
    with JobManager(workers=WORKERS, cache=ResultCache(result_dir),
                    burst_dir=burst_dir) as manager:
        with ServiceServer(manager) as server:
            with connect(server.host, server.port) as client:
                t0 = time.perf_counter()
                job_id = client.submit(spec)
                first = None
                streamed = []
                for payload in client.stream(job_id):
                    if first is None:
                        first = time.perf_counter() - t0
                    streamed.append(payload)
                total = time.perf_counter() - t0
                status = client.status(job_id)
            stats = server.stats.snapshot()
        direct = manager.results(job_id, timeout=600)
    if status["status"] != "completed" or len(streamed) != len(POINTS):
        raise RuntimeError("network benchmark job did not complete: %r"
                           % (status,))
    if streamed != direct:
        raise RuntimeError(
            "TCP stream diverged from the in-process results")
    return {
        "submit_to_first_result_seconds": round(first, 3),
        "total_seconds": round(total, 3),
        "points_per_second": round(len(streamed) / total, 3),
        "burst": status["burst_cache"],
        "server": {key: stats[key] for key in
                   ("requests", "bytes_in", "bytes_out", "frames_out",
                    "streams", "resumes")},
    }


def run_benchmark():
    root = tempfile.mkdtemp(prefix="bench_service_")
    try:
        burst_dir = os.path.join(root, "bursts")
        cold = _run_once(burst_dir, os.path.join(root, "rc_cold"))
        # Fresh result cache: the simulations recompute, only the
        # compiled burst tables carry over.
        warm = _run_once(burst_dir, os.path.join(root, "rc_warm"))
        net = _run_net(burst_dir, os.path.join(root, "rc_net"))
    finally:
        shutil.rmtree(root, ignore_errors=True)
    sweep_case = {
        "cold": cold,
        "warm": warm,
        "warm_speedup": round(warm["points_per_second"]
                              / cold["points_per_second"], 3),
    }
    net_case = {
        "net": net,
        "net_vs_warm_speedup": round(net["points_per_second"]
                                     / warm["points_per_second"], 3),
    }
    return {
        "benchmark": "bench_service",
        "n_points": len(POINTS),
        "workers": WORKERS,
        "cases": {"service_burst_sweep": sweep_case,
                  "service_net_stream": net_case},
        "host": {"python": platform.python_version(),
                 "machine": platform.machine(),
                 "cpus": os.cpu_count()},
    }


def check(payload, baseline, max_regression):
    """Correctness gates plus the ratio gate; returns failure strings."""
    failures = []
    case = payload["cases"]["service_burst_sweep"]
    warm_burst = case["warm"]["burst"]
    if warm_burst["hits"] < payload["n_points"]:
        failures.append(
            "warm run hit the burst cache on %d/%d points — table "
            "sharing is not on the hot path"
            % (warm_burst["hits"], payload["n_points"]))
    for phase in ("cold", "warm"):
        if case[phase]["burst"]["rejected"]:
            failures.append("%s run rejected %d cached burst tables"
                            % (phase, case[phase]["burst"]["rejected"]))
    net = payload["cases"]["service_net_stream"]["net"]
    if net["burst"]["rejected"]:
        failures.append("net run rejected %d cached burst tables"
                        % (net["burst"]["rejected"],))
    if baseline is not None:
        for case_name, base in baseline["cases"].items():
            measured = payload["cases"].get(case_name)
            if measured is None:
                failures.append("case %r in baseline but not measured"
                                % (case_name,))
                continue
            for key, base_ratio in base.items():
                if not key.endswith("speedup"):
                    continue
                ratio = measured.get(key)
                floor = base_ratio * (1.0 - max_regression)
                if ratio is None or ratio < floor:
                    failures.append(
                        "%s: %s %s below floor %.2fx "
                        "(baseline %.2fx, max regression %.0f%%)"
                        % (case_name, key, "%.2fx" % ratio
                           if ratio is not None else "missing",
                           floor, base_ratio, max_regression * 100))
    return failures


def main(argv=None):
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--out", default="BENCH_service.json")
    parser.add_argument("--baseline", default=None,
                        help="baseline JSON to gate warm_speedup against "
                             "(omit when regenerating the baseline)")
    parser.add_argument("--max-regression", type=float, default=0.50,
                        help="allowed fractional warm_speedup regression "
                             "vs the baseline (default 0.50 — process "
                             "scheduling makes this ratio noisier than "
                             "the in-process engine ratios)")
    args = parser.parse_args(argv)

    payload = run_benchmark()
    write_json(args.out, payload)
    case = payload["cases"]["service_burst_sweep"]
    net_case = payload["cases"]["service_net_stream"]
    print(json.dumps({
        "submit_to_first_result_seconds": {
            phase: case[phase]["submit_to_first_result_seconds"]
            for phase in ("cold", "warm")},
        "points_per_second": {
            phase: case[phase]["points_per_second"]
            for phase in ("cold", "warm")},
        "warm_speedup": case["warm_speedup"],
        "warm_burst": case["warm"]["burst"],
        "net": {
            "submit_to_first_result_seconds":
                net_case["net"]["submit_to_first_result_seconds"],
            "points_per_second": net_case["net"]["points_per_second"],
            "bytes_out": net_case["net"]["server"]["bytes_out"],
        },
        "net_vs_warm_speedup": net_case["net_vs_warm_speedup"],
    }, indent=2))
    print("wrote %s" % args.out)

    baseline = None
    if args.baseline:
        with open(args.baseline) as fh:
            baseline = json.load(fh)
    failures = check(payload, baseline, args.max_regression)
    if failures:
        for failure in failures:
            print("REGRESSION: %s" % failure, file=sys.stderr)
        return 1
    print("service gate passed%s"
          % (" (max regression %.0f%%)" % (args.max_regression * 100)
             if baseline is not None else " (correctness gates only)"))
    return 0


if __name__ == "__main__":
    sys.exit(main())
