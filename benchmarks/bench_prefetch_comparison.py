"""Prefetching vs multiple contexts (the paper's cited alternatives).

The paper's introduction lists relaxed consistency, prefetching, and
multiple contexts as the latency-tolerance candidates.  This benchmark
pits software prefetching against interleaved multithreading on the
synthetic streaming workload where prefetching is at its best
(predictable addresses), and shows they compose.
"""

from repro.config import SystemConfig
from repro.core.simulator import WorkstationSimulator
from repro.workloads.generator import GenSpec, generate_process
from repro.experiments.report import render_table

from conftest import run_once

_MEASURE = 40_000
_WARMUP = 8_000


def _ipc(prefetch_distance, scheme, n_contexts):
    spec = GenSpec(name="pfd%d" % prefetch_distance,
                   load_fraction=0.25, store_fraction=0.05,
                   footprint_words=6144, access_stride=8,
                   prefetch_distance=prefetch_distance, seed=31)
    procs = [generate_process(spec, index=i, verify=False)
             for i in range(max(1, n_contexts))]
    sim = WorkstationSimulator(procs, scheme=scheme,
                               n_contexts=n_contexts,
                               config=SystemConfig.fast())
    return sim.measure(_MEASURE, warmup=_WARMUP).total_ipc()


def test_prefetch_vs_multithreading(benchmark, save_result):
    def sweep():
        return {
            "baseline": _ipc(0, "single", 1),
            "prefetch": _ipc(6, "single", 1),
            "interleaved 4ctx": _ipc(0, "interleaved", 4),
            "both": _ipc(6, "interleaved", 4),
        }

    result = run_once(benchmark, sweep)
    base = result["baseline"]
    rows = [(name, ["%.3f" % v, "%.2fx" % (v / base)])
            for name, v in result.items()]
    text = save_result("prefetch_comparison", render_table(
        "Alternatives: streaming IPC under each latency-tolerance scheme",
        ["IPC", "vs baseline"], rows, col_width=13))
    print("\n" + text)
    # Prefetching must help the predictable stream...
    assert result["prefetch"] > result["baseline"]
    # ...and not be *defeated* by also adding contexts.
    assert result["both"] > 0.8 * result["prefetch"]
