"""Cycle accounting for the utilisation/execution-time breakdowns.

Every processor issue slot lands in exactly one :class:`Stall` bucket;
the figures of the paper are different groupings of these buckets
(see :mod:`repro.pipeline.stalls`).
"""

from repro.pipeline.stalls import (
    Stall,
    UNIPROCESSOR_CATEGORIES,
    MULTIPROCESSOR_CATEGORIES,
)


class CycleStats:
    """Per-processor cycle and instruction accounting."""

    __slots__ = ("counts", "retired", "issued", "squashed",
                 "context_switches", "backoffs", "run_count",
                 "run_inst_sum", "run_max")

    def __init__(self):
        self.counts = [0] * (max(Stall) + 1)
        self.retired = 0
        self.issued = 0
        self.squashed = 0
        self.context_switches = 0
        self.backoffs = 0
        # Runlength statistics (instructions between unavailability
        # events; paper Section 5.1).
        self.run_count = 0
        self.run_inst_sum = 0
        self.run_max = 0

    # -- recording -----------------------------------------------------------

    def add(self, stall, n=1):
        self.counts[stall] += n

    def end_run(self, length):
        """Record one runlength (instructions until unavailability)."""
        self.run_count += 1
        self.run_inst_sum += length
        if length > self.run_max:
            self.run_max = length

    def mean_runlength(self):
        return (self.run_inst_sum / self.run_count
                if self.run_count else 0.0)

    # -- reading -------------------------------------------------------------

    @property
    def total_cycles(self):
        return sum(self.counts)

    @property
    def busy(self):
        return self.counts[Stall.BUSY]

    def utilization(self):
        total = self.total_cycles
        return self.busy / total if total else 0.0

    def ipc(self):
        total = self.total_cycles
        return self.retired / total if total else 0.0

    def breakdown(self, categories=UNIPROCESSOR_CATEGORIES):
        """Cycle counts grouped into the requested figure's categories."""
        return {name: sum(self.counts[s] for s in stalls)
                for name, stalls in categories}

    def breakdown_fractions(self, categories=UNIPROCESSOR_CATEGORIES):
        total = self.total_cycles
        if not total:
            return {name: 0.0 for name, _ in categories}
        return {name: count / total
                for name, count in self.breakdown(categories).items()}

    def mp_breakdown(self):
        return self.breakdown(MULTIPROCESSOR_CATEGORIES)

    def snapshot(self):
        """A copy, for warmup-subtraction by the experiment harness."""
        s = CycleStats()
        s.counts = list(self.counts)
        s.retired = self.retired
        s.issued = self.issued
        s.squashed = self.squashed
        s.context_switches = self.context_switches
        s.backoffs = self.backoffs
        s.run_count = self.run_count
        s.run_inst_sum = self.run_inst_sum
        s.run_max = self.run_max
        return s

    def delta_since(self, earlier):
        """Stats accumulated since ``earlier`` (a snapshot of self)."""
        s = CycleStats()
        s.counts = [a - b for a, b in zip(self.counts, earlier.counts)]
        s.retired = self.retired - earlier.retired
        s.issued = self.issued - earlier.issued
        s.squashed = self.squashed - earlier.squashed
        s.context_switches = self.context_switches - earlier.context_switches
        s.backoffs = self.backoffs - earlier.backoffs
        s.run_count = self.run_count - earlier.run_count
        s.run_inst_sum = self.run_inst_sum - earlier.run_inst_sum
        s.run_max = self.run_max
        return s

    def merged_with(self, other):
        """Sum of two stats objects (aggregating processors)."""
        s = CycleStats()
        s.counts = [a + b for a, b in zip(self.counts, other.counts)]
        s.retired = self.retired + other.retired
        s.issued = self.issued + other.issued
        s.squashed = self.squashed + other.squashed
        s.context_switches = self.context_switches + other.context_switches
        s.backoffs = self.backoffs + other.backoffs
        s.run_count = self.run_count + other.run_count
        s.run_inst_sum = self.run_inst_sum + other.run_inst_sum
        s.run_max = max(self.run_max, other.run_max)
        return s

    def __repr__(self):
        return ("CycleStats(cycles=%d, retired=%d, util=%.3f)"
                % (self.total_cycles, self.retired, self.utilization()))
