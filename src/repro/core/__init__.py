"""Core: the multiple-context processor and its context-selection schemes.

This package implements the paper's contribution — the *interleaved*
multiple-context processor — alongside the *blocked* scheme it is compared
against and the single-context baseline, plus the simulators that drive
them in the workstation and multiprocessor environments.
"""

from repro.core.stats import CycleStats
from repro.core.context import HardwareContext, Status
from repro.core.policies import (
    ContextPolicy,
    SinglePolicy,
    BlockedPolicy,
    InterleavedPolicy,
    make_policy,
)
from repro.core.processor import Processor
from repro.core.sync import SyncManager
from repro.core.simulator import WorkstationSimulator, Process
from repro.core.mpsimulator import MultiprocessorSimulator
from repro.core.tracing import TimelineRecorder

__all__ = [
    "CycleStats",
    "HardwareContext",
    "Status",
    "ContextPolicy",
    "SinglePolicy",
    "BlockedPolicy",
    "InterleavedPolicy",
    "make_policy",
    "Processor",
    "SyncManager",
    "WorkstationSimulator",
    "Process",
    "MultiprocessorSimulator",
    "TimelineRecorder",
]
