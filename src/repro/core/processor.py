"""The multiple-context processor timing model.

One :class:`Processor` owns up to N hardware contexts, a scoreboard, a
BTB, and a context-selection policy, and issues at most one instruction
per cycle into the Figure 5 pipeline.  Timing is modelled at issue
granularity with three mechanisms that together reproduce the paper's
switch-cost behaviour exactly (Table 4):

**Doomed window** (cache-miss squash).  A memory operation's hit/miss
outcome is architecturally visible only at the WB stage, 6 cycles after
issue.  When a miss is detected, every instruction the offending context
issued in the window (including the memory op itself) is squashed and
re-executed after the fill.  Under the blocked scheme the context owns
every slot of the window — 7 lost cycles, the pipeline depth; under the
interleaved scheme it owns only its round-robin share — 1..7 slots,
usually 2-3.  Squashed slots are charged to the context-switch category.

**Processor-wide stall window.**  Blocking events that freeze the whole
front end — instruction-cache misses (the paper's I-cache is blocking and
never causes a context switch) and the tail of the blocked scheme's
3-cycle explicit-switch instruction — park the processor until a given
cycle with a fixed stall category.

**Stall-on-use** (single-context baseline).  With one context the lockup-
free cache lets execution continue past a load miss until a consumer
needs the value; the scoreboard's register ready-time is simply pushed
out to the fill-completion cycle.
"""

from repro.isa.opcodes import Op
from repro.isa.executor import execute
from repro.isa.instruction import (
    KIND_CONTROL, KIND_MEM, KIND_PREFETCH, KIND_LOCK, KIND_UNLOCK,
    KIND_BARRIER, KIND_BACKOFF, KIND_SWITCH,
)
from repro.pipeline.btb import BranchTargetBuffer
from repro.pipeline.scoreboard import make_scoreboard
from repro.pipeline.stalls import Stall
from repro.core.context import HardwareContext, Status, NEVER
from repro.core.stats import CycleStats
from repro.core.policies import make_policy, idle_wake_info


class Processor:
    """An N-context processor attached to a memory system."""

    def __init__(self, scheme, n_contexts, pipeline_params, memsys,
                 memory, sync=None, proc_id=0, backend=None):
        self.scheme = scheme
        self.pp = pipeline_params
        self.policy = make_policy(scheme, n_contexts, pipeline_params)
        self.contexts = [HardwareContext(i) for i in range(n_contexts)]
        # Scoreboard backend ("python" list-based or "numpy" vectorised;
        # see repro.pipeline.scoreboard).  Bit-identical by contract —
        # the differential harness's backend axis enforces it — so the
        # choice never enters config fingerprints or cache keys.
        self.scoreboard = make_scoreboard(n_contexts, backend)
        self.backend = self.scoreboard.backend
        self.btb = BranchTargetBuffer(pipeline_params.btb_entries)
        self.memsys = memsys
        self.memory = memory          # functional memory (shared image)
        self.sync = sync
        self.proc_id = proc_id
        self.stats = CycleStats()
        self.stall_until = 0
        self.stall_category = Stall.ICACHE
        #: Optional hook fired when a context executes HALT; the
        #: workstation simulator uses it to restart finite processes for
        #: continuous throughput measurement.
        self.on_halt = None
        #: Optional per-slot trace hook ``fn(cycle, ctx_or_None, kind)``
        #: with kind in {"busy", "squash", "stall", "idle"}; used by the
        #: Figure 2/3 trace reproductions.  None (the default) is free.
        self.trace = None
        #: Optional data-access hook ``fn(cycle, ctx, pc, addr, is_write)``
        #: fired once per retired load/store, before it executes — the
        #: dynamic oracle of the race analysis
        #: (:class:`repro.core.tracing.SharedAccessRecorder`).  Like
        #: ``trace``, setting it disables burst dispatch so every access
        #: passes through the per-instruction retire path; None (the
        #: default) is free.
        self.access_log = None
        # Event-engine parking state (see park/unpark below): while
        # parked, idle-slot accounting is deferred and settled lazily so
        # a fast-forwarding loop never steps this processor cycle by
        # cycle through a known-idle window.
        self._parked_from = None
        self._parked_wake = 0
        self._parked_reason = Stall.IDLE
        # Burst-engine state: when enabled, straight-line runs whose
        # precompiled schedule is valid retire in one step (_try_burst)
        # and the processor is busy — fully accounted — until
        # burst_until.  burst_limit bounds a dispatch so a burst never
        # crosses the advance window or a scheduler interrupt, and
        # extern_wakes marks machines (the multiprocessor) where a
        # lock/barrier handoff from another processor could land inside
        # a burst window.
        self.burst_enabled = False
        self.burst_until = 0
        self.burst_limit = NEVER
        self.extern_wakes = False

    # -- process management ----------------------------------------------------

    def load_process(self, slot, process):
        """Put ``process`` on hardware context ``slot``."""
        ctx = self.contexts[slot]
        ctx.load(process)
        self.scoreboard.clear_context(slot)
        if self.burst_enabled:
            ctx.burst_table = process.program.bursts_for(
                self.pp.short_stall_threshold, self.pp.issue_width)
        return ctx

    def unload_process(self, slot):
        self.contexts[slot].unload()
        self.scoreboard.clear_context(slot)

    def all_halted(self):
        return all(c.status in (Status.HALTED, Status.EMPTY)
                   for c in self.contexts)

    # -- simulation interface ----------------------------------------------------

    def step(self, now):
        """Simulate one cycle; returns True when the cycle was idle.

        With ``issue_width > 1`` (the Section 7 in-order multi-issue
        extension) each cycle offers several issue slots; every slot is
        accounted separately, so utilisation and breakdown fractions are
        per-slot.  A processor-wide stall (blocking I-miss, TLB refill,
        blocked-scheme switch tail) wastes all of a cycle's slots.
        """
        stats = self.stats
        width = self.pp.issue_width
        if now < self.burst_until:
            # Inside a dispatched burst window: every slot up to
            # burst_until was charged at dispatch time.
            return False
        if now < self.stall_until:
            stats.add(self.stall_category, width)
            if self.trace is not None:
                self.trace(now, None, "stall")
            return False
        self._update_contexts(now)
        idle = True
        for _slot in range(width):
            ctx = self.policy.select(self.contexts, now)
            if ctx is None:
                _, reason = idle_wake_info(self.contexts)
                stats.add(reason)
                if self.trace is not None:
                    self.trace(now, None, "idle")
                continue
            idle = False
            if ctx.status is Status.DOOMED:
                ctx.doomed_count += 1
                stats.add(Stall.SWITCH)
                stats.squashed += 1
                if self.trace is not None:
                    self.trace(now, ctx, "squash")
                continue
            if (_slot == 0 and self.burst_enabled and self.trace is None
                    and self.access_log is None
                    and self._try_burst(ctx, now)):
                # A dispatched burst accounts every slot of every cycle
                # in its window, including this cycle's.  (Dispatch is
                # legal only at slot 0: the packed schedule starts at a
                # cycle boundary.)
                break
            retired_before = stats.retired
            squashed_before = stats.squashed
            self._try_issue(ctx, now, width - _slot)
            if self.trace is not None:
                if stats.squashed != squashed_before:
                    kind = "squash"   # the memory op's own doomed slot
                elif stats.retired != retired_before:
                    kind = "busy"
                else:
                    kind = "stall"
                self.trace(now, ctx, kind)
            if now < self.burst_until:
                # _skip_stall_window opened a bulk-charged stall window
                # covering this cycle's remaining slots.
                break
            if now < self.stall_until:
                # The slot froze the front end (I-miss / TLB refill /
                # switch tail): the cycle's remaining slots are lost.
                remaining = width - _slot - 1
                if remaining:
                    stats.add(self.stall_category, remaining)
                break
        return idle

    def idle_until(self, now):
        """(wake_cycle, reason) when nothing can issue before wake_cycle.

        Returns None when the processor has work this cycle.  A wake_cycle
        of None means the processor can only be woken externally (lock or
        barrier release from another processor) or is fully halted.
        """
        if now < self.stall_until:
            return self.stall_until, self.stall_category
        self._update_contexts(now)
        for ctx in self.contexts:
            if ctx.status is Status.RUNNING or ctx.status is Status.DOOMED:
                return None
        return idle_wake_info(self.contexts)

    def skip_idle(self, now, target, reason):
        """Account an idle jump from ``now`` to ``target``.

        Charges every issue slot of the skipped window, exactly as
        cycle-by-cycle stepping would (``issue_width`` slots per cycle).
        """
        if target > now:
            self.stats.add(reason, (target - now) * self.pp.issue_width)

    # -- event-engine protocol ----------------------------------------------------

    def next_event_cycle(self, now):
        """Earliest cycle >= ``now`` at which this processor can issue.

        The processor-level composition of the event protocol: ``now``
        when a context is selectable this cycle, the end of a processor-
        wide stall window, the earliest context wake (MSHR fill, TLB
        refill, backoff, doomed completion), or :data:`NEVER` when only
        an external event (lock/barrier handoff from another processor)
        can make progress.
        """
        info = self.idle_until(now)
        if info is None:
            return now
        wake, _ = info
        return NEVER if wake is None else wake

    def park(self, now):
        """Begin deferring idle accounting from cycle ``now``.

        Returns True when the processor has nothing to issue at ``now``
        (it is then parked); the owning loop must not step a parked
        processor again before :meth:`parked_due`, and must
        :meth:`unpark` it before doing so.  Equivalent to stepping every
        cycle of the window: idle slots are charged on unpark with the
        reason cycle-stepping would have used, and external wakes are
        reconciled by :meth:`context_woken`.
        """
        info = self.idle_until(now)
        if info is None:
            return False
        self._parked_from = now
        self._parked_wake, self._parked_reason = info
        return True

    def parked_due(self):
        """Cycle a parked processor must be stepped again, None if only
        an external wake (or nothing) can ever make it runnable."""
        wake = self._parked_wake
        if wake is None:
            return None
        return wake if wake > self._parked_from else self._parked_from

    def unpark(self, now):
        """Settle the deferred idle window [parked_from, ``now``)."""
        start = self._parked_from
        if start is None:
            return
        if now > start:
            self.stats.add(self._parked_reason,
                           (now - start) * self.pp.issue_width)
        self._parked_from = None

    def context_woken(self, ctx, wake_at, now, waker=None):
        """Sync-event wake of ``ctx`` scheduled for ``wake_at``.

        Called by the SyncManager (instead of a bare ``ctx.wake``) when
        another processor's lock release or barrier arrival at cycle
        ``now`` wakes one of this processor's contexts.  For a parked
        processor the deferred window is settled with the pre-wake stall
        reason up to the cycle the wake becomes visible, then parking
        resumes with the post-wake idle information — reproducing naive
        stepping exactly: within a cycle processors step in id order, so
        this processor observes the wake at ``now`` when it steps after
        the waker and at ``now + 1`` otherwise.
        """
        if self._parked_from is None:
            ctx.wake(wake_at)
            return
        boundary = now
        if waker is None or self.proc_id < waker.proc_id:
            boundary = now + 1
        if boundary < self._parked_from:
            boundary = self._parked_from
        self.unpark(boundary)
        ctx.wake(wake_at)
        self._parked_from = boundary
        self._parked_wake, self._parked_reason = \
            idle_wake_info(self.contexts)

    # -- internals ---------------------------------------------------------------

    def _update_contexts(self, now):
        for ctx in self.contexts:
            status = ctx.status
            if status is Status.WAITING:
                if ctx.wake_at <= now:
                    ctx.status = Status.RUNNING
            elif status is Status.DOOMED and now >= ctx.doomed_detect:
                # WB-stage miss determination: squash and go unavailable.
                self.stats.context_switches += 1
                ctx.wait_until(max(ctx.doomed_completion, now), Stall.DCACHE)
                ctx.fetch_valid = False
                if ctx.wake_at <= now:
                    ctx.status = Status.RUNNING

    def _enter_doomed(self, ctx, result, now):
        """A late-detected memory stall: squash-window entry (Table 4).

        When the fill completes the context re-issues the memory op,
        which is satisfied directly from the MSHR fill data (no cache
        re-probe — see :attr:`HardwareContext.satisfied_pc`).
        """
        self.stats.add(Stall.SWITCH)
        self.stats.squashed += 1
        self._end_run(ctx)
        ctx.enter_doomed(now + self.pp.miss_detect_offset + 1, result.ready)
        ctx.doomed_count = 1
        ctx.satisfied_pc = ctx.state.pc

    def _end_run(self, ctx):
        """The context is leaving the available pool: record the
        runlength (paper Section 5.1)."""
        if ctx.run_instructions:
            self.stats.end_run(ctx.run_instructions)
            ctx.run_instructions = 0

    def _pay_off_cost(self, now):
        """Charge the tail of an explicit switch/backoff (Table 4).

        The instruction's own slot is charged by the caller; the blocked
        scheme's explicit switch costs 3 cycles total, so two more slots
        freeze the processor.
        """
        extra = self.policy.off_cost - 1
        if extra > 0:
            self.stall_until = now + 1 + extra
            self.stall_category = Stall.SWITCH

    def _retire(self, ctx, inst, now):
        """Functionally execute and commit ``inst`` for ``ctx``."""
        state = ctx.state
        if self.access_log is not None and inst.kind == KIND_MEM:
            self.access_log(now, ctx, state.pc,
                            state.regs[inst.rs1] + inst.imm,
                            inst.info.is_store)
        execute(state, inst, self.memory)
        self.scoreboard.issue(ctx.cid, inst, now)
        stats = self.stats
        stats.add(Stall.BUSY)
        stats.issued += 1
        stats.retired += 1
        ctx.run_instructions += 1
        if ctx.process is not None:
            ctx.process.retired += 1
        ctx.fetch_valid = False
        if state.halted:
            self._end_run(ctx)
            ctx.status = Status.HALTED
            if ctx.process is not None:
                ctx.process.finished_at = now
            if self.on_halt is not None:
                self.on_halt(ctx, now)

    def _try_burst(self, ctx, now):
        """Dispatch a precompiled straight-line burst, if legal at ``now``.

        Legality mirrors what per-cycle stepping would observe over the
        window ``[now, now + duration)``:

        * the context's PC heads a precompiled burst and no redirect
          bubble is pending;
        * the window fits under :attr:`burst_limit` (the advance loop's
          horizon / next scheduler interrupt);
        * this context is the *sole runner* for the whole window — no
          other context is RUNNING or DOOMED, none wakes before the
          window ends, and (on machines with external wakes) none is
          parked on a lock/barrier that another processor could release
          mid-window;
        * every live-in register is ready early enough that the
          precomputed schedule is exact (scoreboard guard);
        * every instruction line of the run is present in the I-cache
          (checked last: the hit counters are bumped only on success).

        On success the whole run is executed functionally, the
        scoreboard and stats take one bulk update each, and the
        processor is busy until ``now + duration``.  The burst's
        schedule is packed for this pipeline's issue width (the table
        is built per ``(threshold, width)``), so its stall counts
        already cover every slot of every cycle in the window —
        ``n + short + long == duration * width`` — and dispatch happens
        only at slot 0 of a cycle, matching the packed schedule's
        cycle-boundary start.
        """
        burst = ctx.burst_table[ctx.state.pc]
        if burst is None or now < ctx.next_issue_min:
            return False
        end = now + burst.duration
        if end > self.burst_limit:
            return False
        extern = self.extern_wakes
        for other in self.contexts:
            if other is ctx:
                continue
            status = other.status
            if status is Status.WAITING:
                if other.wake_at < end or (extern and
                                           other.wake_at >= NEVER):
                    return False
            elif status is Status.RUNNING or status is Status.DOOMED:
                return False
        if not self.scoreboard.can_dispatch_burst(ctx.cid, burst, now):
            return False
        pc = ctx.state.pc
        fetch_addr = ctx.program.code_base + 4 * pc
        already = 1 if (ctx.fetch_valid and ctx.fetch_pc == pc) else 0
        if not self.memsys.inst_run_hits(fetch_addr, burst.n, already):
            return False
        state = ctx.state
        memory = self.memory
        for inst in burst.instructions:
            execute(state, inst, memory)
        self.scoreboard.apply_burst_compiled(ctx.cid, now, burst)
        stats = self.stats
        n = burst.n
        stats.add(Stall.BUSY, n)
        if burst.short_stalls:
            stats.add(Stall.INST_SHORT, burst.short_stalls)
        if burst.long_stalls:
            stats.add(Stall.INST_LONG, burst.long_stalls)
        stats.issued += n
        stats.retired += n
        ctx.run_instructions += n
        if ctx.process is not None:
            ctx.process.retired += n
        ctx.fetch_valid = False
        self.burst_until = end
        return True

    def can_dispatch_bursts(self, ctx_ids, now):
        """Batched scoreboard guard probe over several contexts at once.

        For each context id, answers whether the burst at that context's
        current PC passes the scoreboard guard at ``now`` (None — no
        burst compiled at the PC, or a pending redirect bubble — probes
        as False).  On the numpy backend the whole batch is one
        vectorised compare over the concatenated precompiled guard
        arrays; the python backend loops.  The dispatch path itself is
        single-candidate by construction (bursts require a sole runner),
        so this probe serves the batch consumers: wake-scan heuristics,
        the backend property tests, and the scoreboard benchmark.
        Guard-only by design — burst_limit, sole-runner, and I-cache
        legality stay with :meth:`_try_burst`.
        """
        probe_ids = []
        probe_bursts = []
        slots = []                      # position in `out` per probe
        out = [False] * len(ctx_ids)
        for pos, cid in enumerate(ctx_ids):
            ctx = self.contexts[cid]
            if ctx.burst_table is None or now < ctx.next_issue_min:
                continue
            burst = ctx.burst_table[ctx.state.pc]
            if burst is None:
                continue
            probe_ids.append(cid)
            probe_bursts.append(burst)
            slots.append(pos)
        if probe_ids:
            verdicts = self.scoreboard.can_dispatch_bursts(
                probe_ids, probe_bursts, now)
            for pos, ok in zip(slots, verdicts):
                out[pos] = ok
        return out

    def _skip_stall_window(self, ctx, now, until, kind, slots_left):
        """Bulk-charge a hazard-stall window (burst engine only).

        While the stalled context is the sole runner nothing can touch
        the scoreboard before ``until``, so every stall slot naive
        stepping would charge over ``[now, until)`` is known now: the
        data-cache category for a miss-pending register, otherwise the
        short/long split of the closing gap.  ``slots_left`` is the
        number of issue slots (this one included) remaining in cycle
        ``now`` — the hazard wastes all of them, then ``issue_width``
        slots of every later stall cycle, exactly as per-slot stepping
        would charge.  Charges the window (capped at
        :attr:`burst_limit`) in one bulk-add and marks the processor
        busy to its end; returns False — leaving the per-cycle charge to
        the caller — when the window is trivial or another context could
        run or wake inside it.
        """
        tgt = until if until <= self.burst_limit else self.burst_limit
        if tgt <= now + 1:
            return False
        extern = self.extern_wakes
        for other in self.contexts:
            if other is ctx:
                continue
            status = other.status
            if status is Status.WAITING:
                if other.wake_at < tgt or (extern and
                                           other.wake_at >= NEVER):
                    return False
            elif status is Status.RUNNING or status is Status.DOOMED:
                return False
        width = self.pp.issue_width
        n = tgt - now                       # stall cycles charged
        stats = self.stats
        if kind == "memory":
            stats.add(Stall.DCACHE, slots_left + (n - 1) * width)
        else:
            # Cycle t of the window stalls short when until - t is at
            # most the threshold, long before that.  The first cycle
            # contributes ``slots_left`` slots, every later one
            # ``width``.
            long_ = until - self.pp.short_stall_threshold - now
            if long_ > n:
                long_ = n
            if long_ > 0:
                stats.add(Stall.INST_LONG,
                          slots_left + (long_ - 1) * width)
                if n > long_:
                    stats.add(Stall.INST_SHORT, (n - long_) * width)
            else:
                stats.add(Stall.INST_SHORT, slots_left + (n - 1) * width)
        self.burst_until = tgt
        return True

    def _try_issue(self, ctx, now, slots_left=1):
        stats = self.stats
        if now < ctx.next_issue_min:
            # Redirect bubble after a branch mispredict.
            stats.add(Stall.INST_SHORT)
            return
        state = ctx.state
        pc = state.pc
        inst = ctx.program.instructions[pc]

        # Instruction fetch (once per instruction instance).
        fetch_addr = ctx.program.code_base + 4 * pc
        if not (ctx.fetch_valid and ctx.fetch_pc == pc):
            res = self.memsys.inst_fetch(fetch_addr, now)
            ctx.fetch_pc = pc
            ctx.fetch_valid = True
            if res.level != "l1":
                # Blocking I-cache: the whole processor stalls, and no
                # context switch happens (paper Section 4.1).
                stats.add(Stall.ICACHE)
                self.stall_until = res.ready
                self.stall_category = Stall.ICACHE
                return

        # Register / functional-unit hazards.
        until, kind = self.scoreboard.hazard_until(ctx.cid, inst, now)
        if until > now:
            if self.burst_enabled and self._skip_stall_window(
                    ctx, now, until, kind, slots_left):
                return
            if kind == "memory":
                stats.add(Stall.DCACHE)
            elif until - now <= self.pp.short_stall_threshold:
                stats.add(Stall.INST_SHORT)
            else:
                stats.add(Stall.INST_LONG)
            return

        # Dispatch on the decode-time issue kind (precomputed on the
        # Instruction, so the hot path never re-inspects OpInfo flags).
        kind = inst.kind
        if kind == KIND_MEM:
            self._issue_memory(ctx, inst, now)
        elif kind == KIND_CONTROL:
            self._retire(ctx, inst, now)
            self._resolve_control(ctx, inst, fetch_addr, now)
        elif kind == KIND_PREFETCH:
            self._issue_prefetch(ctx, inst, now)
        elif kind == KIND_LOCK:
            self._issue_lock(ctx, inst, now)
        elif kind == KIND_UNLOCK:
            self._issue_unlock(ctx, inst, now)
        elif kind == KIND_BARRIER:
            self._issue_barrier(ctx, inst, now)
        elif kind == KIND_BACKOFF:
            self._issue_backoff(ctx, inst, now)
        elif kind == KIND_SWITCH:
            self._issue_switch(ctx, inst, now)
        else:
            self._retire(ctx, inst, now)

    def _access_satisfied(self, ctx, inst, now):
        """Perform the timing access for a memory op; True when usable.

        Covers the MSHR-forwarding retry (a previously doomed/stalled
        access whose fill completed), the inline software TLB refill
        (which freezes the whole pipeline — the handler's instructions
        occupy it, so no scheme can switch over it), and the
        scheme-specific miss behaviour.
        """
        if ctx.satisfied_pc == ctx.state.pc:
            # Re-issue after the fill: data forwarded from the MSHR.
            ctx.satisfied_pc = -1
            return True
        addr = ctx.state.regs[inst.rs1] + inst.imm
        res = self.memsys.data_access(addr, inst.info.is_store or
                                      inst.op in (Op.LOCK, Op.UNLOCK),
                                      now, self.proc_id)
        if res.level == "l1":
            return True
        if res.level == "tlb":
            # Software-refilled TLB: the handler runs in-line and
            # occupies the pipeline for every scheme.
            self.stats.add(Stall.DCACHE)
            self.stall_until = res.ready
            self.stall_category = Stall.DCACHE
            return False
        if res.level == "mshr":
            # Structural stall: all MSHRs busy; retry when one frees.
            self.stats.add(Stall.DCACHE)
            ctx.wait_until(res.ready, Stall.DCACHE)
            return False
        if self.policy.uses_doomed_window:
            self._enter_doomed(ctx, res, now)
            return False
        # Single-context baseline.
        if inst.info.is_load and inst.writes >= 0:
            # Stall-on-use: commit now, data arrives at res.ready.
            self._retire(ctx, inst, now)
            self.scoreboard.set_ready(ctx.cid, inst.writes, res.ready,
                                      memory=True)
            return False   # already retired
        if inst.info.is_store:
            # Write-allocate store miss completes in the background.
            self._retire(ctx, inst, now)
            return False
        # LOCK/UNLOCK on the baseline: wait for the line, then operate.
        self.stats.add(Stall.DCACHE)
        ctx.wait_until(res.ready, Stall.DCACHE)
        ctx.satisfied_pc = ctx.state.pc
        return False

    def _issue_memory(self, ctx, inst, now):
        if self._access_satisfied(ctx, inst, now):
            self._retire(ctx, inst, now)

    def _issue_prefetch(self, ctx, inst, now):
        """Non-binding prefetch: start the fill, never stall or squash.

        The line lands in the cache (and an MSHR tracks it) so a timely
        later load hits or merges; a useless prefetch costs only its
        issue slot and cache traffic — exactly the software-prefetch
        trade the paper's introduction describes.  A prefetch that
        misses the TLB is dropped (it refills the TLB entry but fetches
        no line), like real non-faulting prefetches.
        """
        addr = ctx.state.regs[inst.rs1] + inst.imm
        self.memsys.data_access(addr, False, now, self.proc_id)
        self._retire(ctx, inst, now)

    def _issue_lock(self, ctx, inst, now):
        if not self._access_satisfied(ctx, inst, now):
            return
        addr = ctx.state.regs[inst.rs1] + inst.imm
        if self.sync.try_acquire(addr, self, ctx):
            self._retire(ctx, inst, now)
            return
        # Lock held elsewhere: leave the processor until handoff.
        if self.policy.off_cost > 0:
            self.stats.add(Stall.SWITCH)
            self._pay_off_cost(now)
        else:
            self.stats.add(Stall.SYNC)
        self._end_run(ctx)
        ctx.wait_on_lock(addr)
        ctx.fetch_valid = False

    def _issue_unlock(self, ctx, inst, now):
        if not self._access_satisfied(ctx, inst, now):
            return
        addr = ctx.state.regs[inst.rs1] + inst.imm
        self.sync.release(addr, self, ctx, now)
        self._retire(ctx, inst, now)

    def _issue_barrier(self, ctx, inst, now):
        released = self.sync.barrier_arrive(inst.imm, self, ctx, now)
        self._retire(ctx, inst, now)
        if not released:
            if self.policy.off_cost > 0:
                self._pay_off_cost(now)
            self._end_run(ctx)
            ctx.wait_on_lock(None, Stall.SYNC)
            ctx.fetch_valid = False

    def _issue_backoff(self, ctx, inst, now):
        if self.policy.off_cost == 0:
            # The single-context baseline treats the hint as a NOP.
            self._retire(ctx, inst, now)
            return
        execute(ctx.state, inst, self.memory)   # just advances the PC
        self.stats.add(Stall.SWITCH)
        self.stats.issued += 1
        self.stats.backoffs += 1
        self._pay_off_cost(now)
        self._end_run(ctx)
        ctx.wait_until(now + 1 + inst.imm, Stall.INST_LONG)
        ctx.fetch_valid = False

    def _issue_switch(self, ctx, inst, now):
        if self.policy.name != "blocked":
            self._retire(ctx, inst, now)
            return
        execute(ctx.state, inst, self.memory)
        self.stats.add(Stall.SWITCH)
        self.stats.issued += 1
        self._pay_off_cost(now)
        self.policy.force_switch(self.contexts)
        ctx.fetch_valid = False

    def _resolve_control(self, ctx, inst, fetch_addr, now):
        predicted = self.btb.predict(fetch_addr)
        actual = ctx.state.pc          # already updated by execute()
        correct = self.btb.resolve(fetch_addr, predicted, actual,
                                   inst.index + 1)
        if not correct:
            ctx.next_issue_min = now + 1 + self.pp.mispredict_penalty
