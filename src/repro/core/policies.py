"""Context-selection policies: single, blocked, interleaved.

This module is the paper's Sections 2 and 3 in executable form.  A policy
decides (a) which context owns each issue slot and (b) what a context pays
to get off the processor when it hits a long-latency event:

**single** (baseline)
    One context.  Loads that miss are stall-on-use (the lockup-free cache
    lets execution continue until a consumer needs the data); BACKOFF and
    SWITCH are no-ops.

**blocked** (Weber & Gupta / MIT APRIL style)
    One context owns the processor until it suffers a cache miss, which is
    detected at the WB stage — the whole 7-deep pipeline is flushed, so
    the switch costs 7 cycles (Figure 2).  An explicit switch instruction
    (3 cycles) tolerates non-miss latencies.

**interleaved** (the paper's proposal)
    Issue round-robins among *available* contexts every cycle.  On a miss
    only the offending context's in-flight instructions are squashed —
    between 1 and 7 slots depending on the dynamic interleaving — and a
    1-cycle BACKOFF instruction removes a context during long instruction
    latencies.  A context whose next instruction is hazarded wastes its
    own slot (the paper's strict round-robin), which is exactly why
    BACKOFF exists.

With a single hardware context both multithreaded schemes degrade to the
baseline (the paper's constraint that single-thread performance be
unchanged), which :func:`make_policy` enforces.
"""

from repro.core.context import Status, NEVER
from repro.pipeline.stalls import Stall


class ContextPolicy:
    """Base class: slot selection + off-processor costs."""

    name = "abstract"
    #: Whether late-detected misses squash via the doomed-window mechanism.
    uses_doomed_window = True
    #: Cycles charged when a context voluntarily leaves the processor
    #: (explicit switch / backoff instruction, Table 4).
    off_cost = 1

    def __init__(self, n_contexts, params):
        self.n_contexts = n_contexts
        self.params = params

    def select(self, contexts, now):
        """The context owning this issue slot (or None)."""
        raise NotImplementedError

    def note_unavailable(self, ctx):
        """Called when ``ctx`` stops being selectable (miss/halt/wait)."""

    def reset(self):
        """Forget selection state (used when the OS reschedules)."""


class SinglePolicy(ContextPolicy):
    """The single-context baseline processor."""

    name = "single"
    uses_doomed_window = False
    off_cost = 0

    def select(self, contexts, now):
        ctx = contexts[0]
        if ctx.status is Status.RUNNING or ctx.status is Status.DOOMED:
            return ctx
        return None


class BlockedPolicy(ContextPolicy):
    """Run one context until it blocks; flush and switch."""

    name = "blocked"
    uses_doomed_window = True

    def __init__(self, n_contexts, params):
        super().__init__(n_contexts, params)
        self.current = 0
        self.off_cost = params.explicit_switch_cost

    def select(self, contexts, now):
        ctx = contexts[self.current]
        if ctx.status is Status.RUNNING or ctx.status is Status.DOOMED:
            return ctx
        # Current context is unavailable: rotate to the next ready one.
        n = self.n_contexts
        for step in range(1, n):
            cand = contexts[(self.current + step) % n]
            if cand.status is Status.RUNNING:
                self.current = cand.cid
                return cand
        return None

    def force_switch(self, contexts):
        """Explicit SWITCH instruction: move on even though runnable."""
        self.current = (self.current + 1) % self.n_contexts

    def reset(self):
        self.current = 0


class InterleavedPolicy(ContextPolicy):
    """The paper's proposal: cycle-by-cycle round-robin issue."""

    name = "interleaved"
    uses_doomed_window = True

    def __init__(self, n_contexts, params):
        super().__init__(n_contexts, params)
        self.pointer = 0
        self.off_cost = params.backoff_cost

    def select(self, contexts, now):
        n = self.n_contexts
        start = self.pointer
        for step in range(n):
            cand = contexts[(start + step) % n]
            if cand.status is Status.RUNNING or cand.status is Status.DOOMED:
                # Strict round-robin: the *next* slot goes to the context
                # after this one, whether or not this one manages to issue.
                self.pointer = (cand.cid + 1) % n
                return cand
        return None

    def reset(self):
        self.pointer = 0


_POLICIES = {
    "single": SinglePolicy,
    "blocked": BlockedPolicy,
    "interleaved": InterleavedPolicy,
}


def make_policy(scheme, n_contexts, params):
    """Build the policy for ``scheme`` with ``n_contexts`` contexts.

    A one-context multithreaded processor behaves identically to the
    single-context baseline (there is nobody to switch to, and the paper
    normalises both schemes' results to the same single-context bar), so
    ``n_contexts == 1`` always yields :class:`SinglePolicy`.
    """
    if scheme not in _POLICIES:
        raise ValueError("unknown scheme %r (want one of %s)"
                         % (scheme, ", ".join(sorted(_POLICIES))))
    if n_contexts < 1:
        raise ValueError("n_contexts must be >= 1")
    if n_contexts == 1:
        return SinglePolicy(1, params)
    if scheme == "single" and n_contexts != 1:
        raise ValueError("the single-context scheme takes one context")
    return _POLICIES[scheme](n_contexts, params)


def idle_wake_info(contexts):
    """(earliest wake cycle, stall reason) over all waiting contexts.

    Returns (None, IDLE) when nothing will ever wake by itself — all
    contexts halted/empty, or waiting on locks held elsewhere.
    """
    earliest = None
    reason = Stall.IDLE
    for ctx in contexts:
        if ctx.status is Status.WAITING and ctx.wake_at < NEVER:
            if earliest is None or ctx.wake_at < earliest:
                earliest = ctx.wake_at
                reason = ctx.wake_reason
        elif ctx.status is Status.DOOMED:
            # Shouldn't happen (doomed contexts are selectable) but be safe.
            if earliest is None or ctx.doomed_detect < earliest:
                earliest = ctx.doomed_detect
                reason = Stall.SWITCH
    if earliest is None:
        for ctx in contexts:
            if ctx.status is Status.WAITING:
                # Waiting on a lock/barrier: woken externally.
                return None, ctx.wake_reason
    return earliest, reason
