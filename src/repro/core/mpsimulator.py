"""Multiprocessor simulator: N nodes stepped in lockstep.

The paper's multiprocessor study runs each SPLASH application to
completion of its measured section and reports speedups from adding
hardware contexts; more contexts per processor means the application is
partitioned into proportionally more threads (n_nodes × n_contexts).
"""

from repro.config import MultiprocessorParams, PipelineParams
from repro.coherence.dsm import DSMachine
from repro.core.processor import Processor
from repro.core.simulator import Process, SimulationDeadlock
from repro.core.sync import SyncManager
from repro.core.stats import CycleStats
from repro.pipeline.stalls import Stall


class MPResult:
    """Outcome of one run-to-completion."""

    def __init__(self, cycles, node_stats, machine):
        self.cycles = cycles
        self.node_stats = node_stats
        self.machine = machine
        merged = CycleStats()
        for s in node_stats:
            merged = merged.merged_with(s)
        self.stats = merged

    def breakdown_fractions(self, categories=None):
        from repro.pipeline.stalls import MULTIPROCESSOR_CATEGORIES
        cats = categories or MULTIPROCESSOR_CATEGORIES
        return self.stats.breakdown_fractions(cats)


class MultiprocessorSimulator:
    """Run a parallel application instance on the DASH-like machine."""

    def __init__(self, app_instance, scheme="interleaved", n_contexts=1,
                 params=None, pipeline=None, seed=None):
        self.params = params if params is not None else MultiprocessorParams()
        self.pipeline = pipeline if pipeline is not None else PipelineParams()
        self.app = app_instance
        n_nodes = self.params.n_nodes
        threads = app_instance.programs
        if len(threads) != n_nodes * n_contexts:
            raise ValueError(
                "app built with %d threads but machine has %d nodes x %d "
                "contexts" % (len(threads), n_nodes, n_contexts))

        self.machine = DSMachine(self.params, seed=seed)
        app_instance.load(self.machine.memory)
        for addr, n_words, node in app_instance.placement:
            if node != "interleave":
                self.machine.place(addr, n_words, node)

        self.sync = SyncManager(
            lock_transfer_latency=self.params.lock_transfer_latency,
            barrier_release_latency=self.params.barrier_release_latency)
        for barrier_id, expected in app_instance.barriers.items():
            self.sync.configure_barrier(barrier_id, expected)

        self.processors = []
        self.processes = []
        for node_id in range(n_nodes):
            proc = Processor(scheme, n_contexts, self.pipeline,
                             self.machine.nodes[node_id],
                             self.machine.memory, sync=self.sync,
                             proc_id=node_id)
            self.processors.append(proc)
        for t, program in enumerate(threads):
            node_id, slot = t // n_contexts, t % n_contexts
            process = Process("%s.t%d" % (app_instance.name, t), program)
            self.processes.append(process)
            self.processors[node_id].load_process(slot, process)
        self.now = 0

    def run_to_completion(self, max_cycles=50_000_000):
        """Step all nodes until every thread halts; returns MPResult."""
        procs = self.processors
        now = self.now
        end = now + max_cycles
        while now < end:
            if all(p.all_halted() for p in procs):
                break
            all_idle = True
            for p in procs:
                if not p.step(now):
                    all_idle = False
            now += 1
            if all_idle:
                now = self._skip_global_idle(now, end)
        else:
            raise RuntimeError(
                "application %r did not finish within %d cycles"
                % (self.app.name, max_cycles))
        self.now = now
        return MPResult(now, [p.stats for p in procs], self.machine)

    def _skip_global_idle(self, now, end):
        """All processors idle: jump to the earliest machine-wide wake."""
        infos = []
        target = None
        for p in self.processors:
            info = p.idle_until(now)
            if info is None:
                return now  # raced awake (e.g. a lock handoff this cycle)
            infos.append(info)
            wake, _ = info
            if wake is not None and (target is None or wake < target):
                target = wake
        if target is None:
            if all(p.all_halted() for p in self.processors):
                return now
            raise SimulationDeadlock(
                "all processors blocked on external events at cycle %d"
                % now)
        target = min(target, end)
        for p, (wake, reason) in zip(self.processors, infos):
            p.skip_idle(now, target, reason)
        return target
