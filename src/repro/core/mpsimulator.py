"""Multiprocessor simulator: N nodes stepped in lockstep.

The paper's multiprocessor study runs each SPLASH application to
completion of its measured section and reports speedups from adding
hardware contexts; more contexts per processor means the application is
partitioned into proportionally more threads (n_nodes × n_contexts).
"""

import warnings

from repro.config import MultiprocessorParams, PipelineParams
from repro.coherence.dsm import DSMachine
from repro.core.processor import Processor
from repro.core.simulator import Process, SimulationDeadlock
from repro.core.sync import SyncManager
from repro.core.stats import CycleStats


class MPResult:
    """Outcome of one run-to-completion."""

    def __init__(self, cycles, node_stats, machine):
        self.cycles = cycles
        self.node_stats = node_stats
        self.machine = machine
        merged = CycleStats()
        for s in node_stats:
            merged = merged.merged_with(s)
        self.stats = merged

    def breakdown_fractions(self, categories=None):
        from repro.pipeline.stalls import MULTIPROCESSOR_CATEGORIES
        cats = categories or MULTIPROCESSOR_CATEGORIES
        return self.stats.breakdown_fractions(cats)


class MultiprocessorSimulator:
    """Run a parallel application instance on the DASH-like machine."""

    #: Default completion bound of :meth:`run` (cycles).
    DEFAULT_MAX_CYCLES = 50_000_000

    def __init__(self, app_instance, scheme="interleaved", n_contexts=1,
                 params=None, pipeline=None, seed=None, engine="events",
                 backend=None):
        if engine not in ("events", "naive", "burst"):
            raise ValueError(
                "engine must be 'events', 'naive' or 'burst', not %r"
                % (engine,))
        self.engine = engine
        self.params = params if params is not None else MultiprocessorParams()
        self.pipeline = pipeline if pipeline is not None else PipelineParams()
        self.app = app_instance
        self.scheme = scheme
        self.n_contexts = n_contexts
        self.seed = seed
        n_nodes = self.params.n_nodes
        threads = app_instance.programs
        if len(threads) != n_nodes * n_contexts:
            raise ValueError(
                "app built with %d threads but machine has %d nodes x %d "
                "contexts" % (len(threads), n_nodes, n_contexts))

        self.machine = DSMachine(self.params, seed=seed)
        app_instance.load(self.machine.memory)
        for addr, n_words, node in app_instance.placement:
            if node != "interleave":
                self.machine.place(addr, n_words, node)

        self.sync = SyncManager(
            lock_transfer_latency=self.params.lock_transfer_latency,
            barrier_release_latency=self.params.barrier_release_latency)
        for barrier_id, expected in app_instance.barriers.items():
            self.sync.configure_barrier(barrier_id, expected)

        self.processors = []
        self.processes = []
        for node_id in range(n_nodes):
            proc = Processor(scheme, n_contexts, self.pipeline,
                             self.machine.nodes[node_id],
                             self.machine.memory, sync=self.sync,
                             proc_id=node_id, backend=backend)
            if engine == "burst":
                proc.burst_enabled = True
                # Another node's lock release or barrier arrival can
                # wake a context here mid-window, so burst dispatch must
                # veto whenever such a wake is possible.
                proc.extern_wakes = True
            self.processors.append(proc)
        for t, program in enumerate(threads):
            node_id, slot = t // n_contexts, t % n_contexts
            process = Process("%s.t%d" % (app_instance.name, t), program)
            self.processes.append(process)
            self.processors[node_id].load_process(slot, process)
        # Resolved scoreboard backend, identical across nodes.
        self.backend = self.processors[0].backend
        self.now = 0
        # Completion tracking for the event engine: counting HALTs as
        # they retire beats scanning every context every cycle.
        self._halted = 0
        for proc in self.processors:
            proc.on_halt = self._note_halt

    def _note_halt(self, ctx, now):
        self._halted += 1

    def all_halted(self):
        """True when every thread of the application has executed HALT."""
        return self._halted >= len(self.processes)

    def next_event_cycle(self):
        """Event-protocol report for the whole machine: the earliest
        cycle any node can issue (NEVER when fully halted/blocked)."""
        return min(p.next_event_cycle(self.now) for p in self.processors)

    def run(self, cycles=None, *, until=None):
        """Advance until completion or ``until``; returns a
        :class:`repro.api.RunResult`.

        The unified entry point shared with the workstation simulator:
        ``until`` is an *absolute* cycle bound; the run stops early when
        every thread has halted, and the result's ``completed`` flag
        records which happened.  The historical relative form
        ``run(n_cycles)`` is accepted but deprecated.
        """
        if cycles is not None:
            if until is not None:
                raise TypeError(
                    "pass either cycles (deprecated) or until, not both")
            warnings.warn(
                "MultiprocessorSimulator.run(cycles) is deprecated; use "
                "run(until=<absolute cycle>) or repro.api.Simulation",
                DeprecationWarning, stacklevel=2)
            until = self.now + cycles
        if until is None:
            until = self.now + self.DEFAULT_MAX_CYCLES
        from repro.api import multiprocessor_run_result
        self._advance(until)
        return multiprocessor_run_result(self, self._result())

    def run_to_completion(self, max_cycles=50_000_000):
        """Deprecated shim: step all nodes until every thread halts.

        Returns the historical :class:`MPResult` and raises when the
        application does not finish within ``max_cycles``.  New code
        should call ``run(until=...)`` (or the :class:`repro.api.
        Simulation` facade) and inspect ``RunResult.completed``.
        """
        warnings.warn(
            "run_to_completion(max_cycles) is deprecated; use "
            "run(until=<absolute cycle>) or repro.api.Simulation",
            DeprecationWarning, stacklevel=2)
        self._advance(self.now + max_cycles)
        if not self.all_halted():
            raise RuntimeError(
                "application %r did not finish within %d cycles"
                % (self.app.name, max_cycles))
        return self._result()

    def _result(self):
        return MPResult(self.now, [p.stats for p in self.processors],
                        self.machine)

    def _advance(self, end):
        if self.engine == "naive":
            self._advance_naive(end)
        elif self.engine == "burst":
            self._advance_burst(end)
        else:
            self._advance_events(end)

    def _advance_naive(self, end):
        """Reference engine: lockstep-step every node every cycle.

        The event engine's contract is defined against this loop — any
        run must produce bit-identical statistics and cycle counts.
        """
        procs = self.processors
        now = self.now
        n_live = len(self.processes)
        while now < end:
            if self._halted >= n_live:
                break
            for p in procs:
                p.step(now)
            now += 1
        self.now = now

    def _advance_burst(self, end):
        """Burst engine: the event loop plus one-step burst retire.

        A node that dispatched a burst is busy — and fully accounted —
        until its ``burst_until``; it is simply skipped (not stepped,
        not parked) while other nodes keep their per-cycle lockstep.
        When every node is parked or mid-burst the loop jumps to the
        earliest due cycle, which includes burst ends.  Bursts contain
        no memory or synchronisation operations, so a mid-burst node
        cannot affect (or, thanks to the dispatch-time wake guards, be
        affected by) any other node.
        """
        procs = self.processors
        for p in procs:
            p.burst_limit = end
        now = self.now
        n_live = len(self.processes)
        while now < end:
            if self._halted >= n_live:
                break
            stepped = False
            min_due = None
            for p in procs:
                due = p.burst_until
                if due > now:
                    if min_due is None or due < min_due:
                        min_due = due
                    continue
                if p._parked_from is not None:
                    due = p.parked_due()
                    if due is None:
                        continue
                    if due > now:
                        if min_due is None or due < min_due:
                            min_due = due
                        continue
                    p.unpark(now)
                idle = p.step(now)
                stepped = True
                if p.burst_until > now:
                    continue
                if idle or p.stall_until > now + 1:
                    p.park(now + 1)
            if stepped:
                now += 1
                continue
            if min_due is None:
                raise SimulationDeadlock(
                    "all processors blocked on external events at cycle"
                    " %d" % now)
            now = min(min_due, end)
        for p in procs:
            p.unpark(now)
        self.now = now

    def _advance_events(self, end):
        """Event engine: park idle nodes, fast-forward global idle.

        Each cycle only the nodes with work are stepped (in node order,
        preserving the lockstep access interleaving exactly); a node
        that reports nothing runnable is *parked* — its idle accounting
        is deferred until it is woken by its own clock (``parked_due``),
        by a sync handoff (``context_woken``), or by the run ending.
        When every node is parked the loop jumps straight to the
        earliest due cycle.
        """
        procs = self.processors
        now = self.now
        n_live = len(self.processes)
        while now < end:
            if self._halted >= n_live:
                break
            stepped = False
            min_due = None
            for p in procs:
                if p._parked_from is not None:
                    due = p.parked_due()
                    if due is None:
                        continue
                    if due > now:
                        if min_due is None or due < min_due:
                            min_due = due
                        continue
                    p.unpark(now)
                idle = p.step(now)
                stepped = True
                if idle or p.stall_until > now + 1:
                    p.park(now + 1)
            if stepped:
                now += 1
                continue
            if min_due is None:
                # Nothing will ever run again by itself; if threads
                # remain unhalted they wait on sync no one can provide.
                raise SimulationDeadlock(
                    "all processors blocked on external events at cycle"
                    " %d" % now)
            now = min(min_due, end)
        for p in procs:
            p.unpark(now)
        self.now = now
