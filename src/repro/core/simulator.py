"""Workstation (uniprocessor) simulator with the OS scheduler model.

Section 4.3 of the paper: a 30 ms time slice (six million cycles at
200 MHz — scaled in the fast profile), an affinity mechanism that keeps a
group of N processes resident for three time slices each, and scheduler
cache interference per Table 6.  The scheduler itself runs in negligible
time; its only modelled effect is the cache pollution.
"""

import random
import warnings

from repro.isa.executor import ArchState, Memory
from repro.config import SystemConfig
from repro.memory.hierarchy import MemorySystem
from repro.core.processor import Processor
from repro.core.sync import SyncManager
from repro.core.context import Status
from repro.pipeline.stalls import Stall


class Process:
    """A software process: a program plus its persistent register state."""

    __slots__ = ("name", "program", "state", "retired", "finished_at",
                 "pid", "completions")

    def __init__(self, name, program, pid=0):
        self.name = name
        self.program = program
        self.state = ArchState(entry=program.entry)
        self.retired = 0
        self.finished_at = None
        self.pid = pid
        #: Times the program ran to HALT (restart-on-halt mode).
        self.completions = 0

    def __repr__(self):
        return "<Process %s retired=%d>" % (self.name, self.retired)


class SimulationDeadlock(RuntimeError):
    """All contexts wait on events that can never fire."""


class RunResult:
    """Outcome of one measured window."""

    def __init__(self, duration, stats, per_process):
        self.duration = duration
        self.stats = stats
        #: process name -> instructions retired during the window
        self.per_process = per_process

    def rate(self, name):
        return self.per_process[name] / self.duration

    def total_ipc(self):
        return sum(self.per_process.values()) / self.duration


class WorkstationSimulator:
    """One multiple-context processor running a multiprogrammed mix."""

    def __init__(self, processes, scheme="interleaved", n_contexts=1,
                 config=None, seed=1994, app_instances=(), barriers=None,
                 restart_halted=True, engine="events", backend=None):
        if not processes:
            raise ValueError("need at least one process")
        if engine not in ("events", "naive", "burst"):
            raise ValueError(
                "engine must be 'events', 'naive' or 'burst', not %r"
                % (engine,))
        #: "events" fast-forwards idle windows via the next_event_cycle
        #: protocol; "burst" additionally retires precompiled straight-
        #: line runs in one step; "naive" steps every cycle and is the
        #: reference both fast engines must match bit for bit.
        self.engine = engine
        self.config = config if config is not None else SystemConfig.fast()
        self.seed = seed
        self.processes = list(processes)
        for pid, p in enumerate(self.processes):
            p.pid = pid
        self.memory = Memory()
        for p in self.processes:
            p.program.load(self.memory)
        for instance in app_instances:
            # SPLASH uniprocessor members bring shared data of their own.
            instance.load(self.memory)
        self.memsys = MemorySystem(self.config.memory)
        self.sync = SyncManager()
        for barrier_id, expected in (barriers or {}).items():
            self.sync.configure_barrier(barrier_id, expected)
        self.n_contexts = n_contexts
        self.processor = Processor(scheme, n_contexts,
                                   self.config.pipeline, self.memsys,
                                   self.memory, sync=self.sync,
                                   backend=backend)
        #: Resolved scoreboard backend ("python" or "numpy") — like
        #: ``engine``, an implementation choice with no observable
        #: effect on results, so it stays out of RunResult and caches.
        self.backend = self.processor.backend
        if engine == "burst":
            # Schedules are packed per issue width (Program.bursts_for
            # keys its memo on it), so the Section 7 multi-issue
            # extension dispatches bursts too.
            self.processor.burst_enabled = True
        if restart_halted:
            self.processor.on_halt = self._restart_process
        self.rng = random.Random(seed)
        self.now = 0
        self._next_resident = 0     # index of the next process to schedule
        self._slices_elapsed = 0
        #: Active SharedAccessRecorder (see trace_shared_accesses).
        self.access_recorder = None
        self._load_group()

    def trace_shared_accesses(self):
        """Opt-in dynamic access log for the race-analysis oracle.

        Attaches a :class:`repro.core.tracing.SharedAccessRecorder` to
        the processor (disabling burst dispatch while installed, like
        the slot tracer) and returns it.  Subsequent ``run()`` windows
        attach the JSON-ready log to their core window result as
        ``shared_accesses``.
        """
        from repro.core.tracing import SharedAccessRecorder
        self.access_recorder = SharedAccessRecorder(self.sync).attach(
            self.processor)
        return self.access_recorder

    # -- scheduling ------------------------------------------------------------

    def _restart_process(self, ctx, now):
        """Restart a finished process for continuous throughput runs."""
        process = ctx.process
        process.completions += 1
        process.state.pc = process.program.entry
        process.state.halted = False
        ctx.status = Status.RUNNING
        ctx.fetch_valid = False

    def _load_group(self):
        """Load the next group of N processes onto the hardware contexts.

        Default policy is round-robin rotation.  With the paper's
        context-usage feedback enabled, the scheduler instead picks the
        N least-served processes (by retired instructions), evening out
        the cycles each application receives — the countermeasure to the
        blocked scheme's bias toward low-miss-rate applications.
        """
        n = min(self.n_contexts, len(self.processes))
        total = len(self.processes)
        if self.config.os.usage_feedback:
            group = sorted(self.processes,
                           key=lambda p: (p.retired, p.pid))[:n]
        else:
            group = [self.processes[(self._next_resident + slot) % total]
                     for slot in range(n)]
            self._next_resident = (self._next_resident + n) % total
        for slot, proc in enumerate(group):
            self.processor.load_process(slot, proc)
        # More hardware contexts than processes: the extras stay empty
        # (loading one process onto two contexts would alias its state).
        for slot in range(n, self.n_contexts):
            self.processor.unload_process(slot)

    def _scheduler_interrupt(self):
        """Called every time slice; swaps groups at affinity boundaries."""
        self._slices_elapsed += 1
        os_params = self.config.os
        residency = os_params.affinity_slices * self.n_contexts
        if len(self.processes) <= self.n_contexts:
            # Everything fits in hardware: nothing to swap, no pollution
            # ("the number of processes switched will either be zero or
            # the number of hardware contexts supported").
            return
        if self._slices_elapsed % residency:
            return
        for slot in range(self.n_contexts):
            self.processor.unload_process(slot)
        self._load_group()
        self.processor.policy.reset()
        self.memsys.scheduler_interference(self.n_contexts, os_params,
                                           self.rng)

    # -- running ------------------------------------------------------------------

    def next_event_cycle(self):
        """Event-protocol report for the whole workstation.

        The earliest of the processor's next issue opportunity and the
        scheduler's next slice interrupt; the event engine never jumps
        past this cycle.
        """
        slice_len = self.config.os.time_slice
        next_interrupt = ((self.now // slice_len) + 1) * slice_len
        return min(self.processor.next_event_cycle(self.now),
                   next_interrupt)

    def run(self, cycles=None, *, until=None):
        """Advance the machine; returns a :class:`repro.api.RunResult`.

        The unified entry point shared with the multiprocessor
        simulator: ``run(until=cycle)`` advances to the *absolute* cycle
        ``until``.  The historical relative form ``run(n_cycles)`` still
        works but is deprecated — use ``until`` or the
        :class:`repro.api.Simulation` facade.
        """
        if cycles is not None:
            if until is not None:
                raise TypeError(
                    "pass either cycles (deprecated) or until, not both")
            warnings.warn(
                "WorkstationSimulator.run(cycles) is deprecated; use "
                "run(until=<absolute cycle>) or repro.api.Simulation",
                DeprecationWarning, stacklevel=2)
            until = self.now + cycles
        if until is None:
            raise TypeError("run() requires until=<absolute cycle>")
        from repro.api import workstation_run_result
        start = self.now
        stats_before = self.processor.stats.snapshot()
        retired_before = {p.name: p.retired for p in self.processes}
        self._advance(until)
        stats = self.processor.stats.delta_since(stats_before)
        per_process = {p.name: p.retired - retired_before[p.name]
                       for p in self.processes}
        window = RunResult(self.now - start, stats, per_process)
        if self.access_recorder is not None:
            window.shared_accesses = self.access_recorder.to_payload()
        return workstation_run_result(self, window)

    def _advance(self, end):
        if self.engine == "naive":
            self._advance_naive(end)
        elif self.engine == "burst":
            self._advance_burst(end)
        else:
            self._advance_events(end)

    def _advance_naive(self, end):
        """Reference engine: step every cycle.

        The event engine's contract is defined against this loop — any
        run must produce bit-identical statistics either way.
        """
        proc = self.processor
        now = self.now
        slice_len = self.config.os.time_slice
        next_interrupt = ((now // slice_len) + 1) * slice_len
        while now < end:
            if now >= next_interrupt:
                self._scheduler_interrupt()
                next_interrupt += slice_len
            proc.step(now)
            now += 1
        self.now = now

    def _advance_events(self, end):
        """Event engine: fast-forward idle windows.

        The idle probe (``Processor.idle_until`` — the accounting
        variant of ``next_event_cycle``) is only taken when the previous
        step was idle or froze the front end, keeping it off the busy
        hot path; jumps never cross ``end`` or a scheduler interrupt.
        """
        proc = self.processor
        now = self.now
        slice_len = self.config.os.time_slice
        next_interrupt = ((now // slice_len) + 1) * slice_len
        check_idle = True
        while now < end:
            if now >= next_interrupt:
                self._scheduler_interrupt()
                next_interrupt += slice_len
                check_idle = True
            if check_idle:
                idle = proc.idle_until(now)
                if idle is not None:
                    wake, reason = idle
                    if wake is None:
                        if reason is Stall.IDLE:
                            # Everything halted: idle out the window.
                            proc.skip_idle(now, end, Stall.IDLE)
                            now = end
                            break
                        raise SimulationDeadlock(
                            "all contexts blocked on %s with nothing "
                            "running" % reason.name)
                    target = min(wake, end, next_interrupt)
                    if target > now:
                        proc.skip_idle(now, target, reason)
                        now = target
                        continue
            check_idle = proc.step(now)
            now += 1
            if not check_idle and proc.stall_until > now:
                check_idle = True
        self.now = now

    def _advance_burst(self, end):
        """Burst engine: event fast-forward plus one-step burst retire.

        The event loop with one extra fast path: when ``step`` dispatched
        a precompiled burst the processor is busy — and fully accounted —
        until ``burst_until``, so the clock jumps straight there.
        ``burst_limit`` keeps any dispatch inside both the advance window
        and the current time slice, so scheduler interrupts fire on
        exactly the cycle naive stepping would fire them.
        """
        proc = self.processor
        now = self.now
        slice_len = self.config.os.time_slice
        next_interrupt = ((now // slice_len) + 1) * slice_len
        proc.burst_limit = min(end, next_interrupt)
        check_idle = True
        while now < end:
            if now >= next_interrupt:
                self._scheduler_interrupt()
                next_interrupt += slice_len
                proc.burst_limit = min(end, next_interrupt)
                check_idle = True
            if check_idle:
                idle = proc.idle_until(now)
                if idle is not None:
                    wake, reason = idle
                    if wake is None:
                        if reason is Stall.IDLE:
                            proc.skip_idle(now, end, Stall.IDLE)
                            now = end
                            break
                        raise SimulationDeadlock(
                            "all contexts blocked on %s with nothing "
                            "running" % reason.name)
                    target = min(wake, end, next_interrupt)
                    if target > now:
                        proc.skip_idle(now, target, reason)
                        now = target
                        continue
            check_idle = proc.step(now)
            if proc.burst_until > now:
                now = proc.burst_until
                check_idle = False
            else:
                now += 1
            if not check_idle and proc.stall_until > now:
                check_idle = True
        self.now = now

    def measure(self, cycles, warmup=0):
        """Warm up, then measure a window; returns a :class:`RunResult`.

        Mirrors the paper's methodology: "each application in the workload
        was run for a time slice before simulation statistics are
        gathered" so caches are loaded and initialisation is excluded.
        """
        if warmup:
            self._advance(self.now + warmup)
        stats_before = self.processor.stats.snapshot()
        retired_before = {p.name: p.retired for p in self.processes}
        self._advance(self.now + cycles)
        stats = self.processor.stats.delta_since(stats_before)
        per_process = {p.name: p.retired - retired_before[p.name]
                       for p in self.processes}
        return RunResult(cycles, stats, per_process)
