"""Hardware contexts.

A hardware context is the replicated per-process state of the paper's
Section 6: program counter, register file, and the availability machinery
(EPC/NPC in hardware; here a status field and wake times).
"""

import enum

from repro.isa.executor import ArchState
from repro.pipeline.stalls import Stall


class Status(enum.IntEnum):
    EMPTY = 0      # no process loaded
    RUNNING = 1    # available for issue
    DOOMED = 2     # issued a late-detected miss; issuing slots that will
                   # be squashed until the WB-stage detection point
    WAITING = 3    # unavailable until wake_at (memory, backoff, sync)
    HALTED = 4     # process executed HALT


class HardwareContext:
    """One hardware context of a multiple-context processor."""

    __slots__ = ("cid", "status", "state", "program", "process",
                 "wake_at", "wake_reason", "doomed_detect",
                 "doomed_completion", "doomed_count", "next_issue_min",
                 "waiting_on_lock", "fetch_pc", "fetch_valid",
                 "satisfied_pc", "run_instructions", "burst_table")

    def __init__(self, cid):
        self.cid = cid
        self.status = Status.EMPTY
        self.state = None        # ArchState of the loaded process
        self.program = None
        self.process = None      # owning software process/thread
        self.wake_at = 0
        self.wake_reason = Stall.DCACHE
        self.doomed_detect = 0
        self.doomed_completion = 0
        self.doomed_count = 0
        #: Redirect bubble after a branch mispredict: no issue before this.
        self.next_issue_min = 0
        #: Lock address this context is blocked on (None otherwise).
        self.waiting_on_lock = None
        #: Instruction-fetch tracking: the I-cache is probed once per
        #: instruction, not once per (possibly stalled) issue attempt.
        self.fetch_pc = -1
        self.fetch_valid = False
        #: PC whose memory access was satisfied by an MSHR fill while the
        #: context was unavailable: the re-issued instruction takes its
        #: data from the fill without re-probing the cache (so a line
        #: evicted during the wait cannot livelock the retry).
        self.satisfied_pc = -1
        #: Instructions retired since the context last became available
        #: (the paper's "runlength"; Section 5.1 relates it to the share
        #: of the processor an application receives).
        self.run_instructions = 0
        #: Burst-per-entry-PC table of the loaded program (burst engine
        #: only; None under the naive/event engines).
        self.burst_table = None

    def load(self, process):
        """Load a software process onto this hardware context."""
        self.process = process
        self.state = process.state
        self.program = process.program
        self.status = Status.HALTED if process.state.halted else Status.RUNNING
        self.wake_at = 0
        self.doomed_count = 0
        self.next_issue_min = 0
        self.waiting_on_lock = None
        self.fetch_valid = False
        self.satisfied_pc = -1
        self.run_instructions = 0
        self.burst_table = None

    def unload(self):
        """Remove the current process (its ArchState persists with it)."""
        self.process = None
        self.state = None
        self.program = None
        self.status = Status.EMPTY
        self.burst_table = None

    def wait_until(self, cycle, reason):
        self.status = Status.WAITING
        self.wake_at = cycle
        self.wake_reason = reason

    def wait_on_lock(self, lock_addr, reason=Stall.SYNC):
        """Block until an explicit wake (lock release / barrier)."""
        self.status = Status.WAITING
        self.wake_at = _NEVER
        self.wake_reason = reason
        self.waiting_on_lock = lock_addr

    def wake(self, cycle=None):
        """Make the context available again (at ``cycle`` if given)."""
        self.waiting_on_lock = None
        if cycle is None or cycle <= 0:
            self.status = Status.RUNNING
            self.next_issue_min = 0
        else:
            self.status = Status.WAITING
            self.wake_at = cycle

    def next_event_cycle(self, now):
        """Event-protocol report for one context.

        ``now`` for a selectable context (RUNNING/DOOMED), the scheduled
        wake for a clock-waiting one, and :data:`NEVER` for contexts that
        can only be woken externally (lock/barrier handoff) or not at all
        (halted/empty).
        """
        if self.status is Status.RUNNING or self.status is Status.DOOMED:
            return now
        if self.status is Status.WAITING:
            return self.wake_at
        return _NEVER

    def enter_doomed(self, detect_at, completion):
        self.status = Status.DOOMED
        self.doomed_detect = detect_at
        self.doomed_completion = completion
        self.doomed_count = 0

    def __repr__(self):
        return ("<ctx%d %s %s>"
                % (self.cid, self.status.name,
                   self.process.name if self.process else "-"))


#: Sentinel wake time for "woken explicitly, not by the clock".
_NEVER = 1 << 62
NEVER = _NEVER
