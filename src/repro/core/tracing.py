"""Issue-slot trace recording.

The processor's ``trace`` hook fires once per issue slot with
``(cycle, context_or_None, kind)``; :class:`TimelineRecorder` collects
those events into the paper's Figure 3 notation — one character per
slot: the context's letter for an issued instruction, the lowercase
letter for a squashed slot, ``.`` for a stall or idle slot.
"""


class TimelineRecorder:
    """Collects per-slot events into a printable timeline."""

    def __init__(self):
        self.events = []          # (cycle, ctx_name_or_None, kind)

    def __call__(self, cycle, ctx, kind):
        name = ctx.process.name if (ctx is not None
                                    and ctx.process is not None) else None
        self.events.append((cycle, name, kind))

    def attach(self, processor):
        """Install on a processor; returns self for chaining."""
        processor.trace = self
        return self

    # -- rendering ----------------------------------------------------------

    @staticmethod
    def _cell(name, kind):
        if kind == "busy" and name:
            return name[0].upper()
        if kind == "squash" and name:
            return name[0].lower()
        return "."

    def lane(self):
        """One character per slot, in event order."""
        return "".join(self._cell(name, kind)
                       for _, name, kind in self.events)

    def per_context_lanes(self):
        """{context_letter: lane} with '.' where others own the slot."""
        names = sorted({n[0].upper() for _, n, _ in self.events if n})
        lanes = {n: [] for n in names}
        for _, name, kind in self.events:
            cell = self._cell(name, kind)
            for n in names:
                lanes[n].append(cell if cell.upper() == n else ".")
        return {n: "".join(cells) for n, cells in lanes.items()}

    def slot_counts(self):
        """{kind: count} over all recorded slots."""
        counts = {}
        for _, _, kind in self.events:
            counts[kind] = counts.get(kind, 0) + 1
        return counts

    def __len__(self):
        return len(self.events)
