"""Issue-slot trace and shared-access recording.

The processor's ``trace`` hook fires once per issue slot with
``(cycle, context_or_None, kind)``; :class:`TimelineRecorder` collects
those events into the paper's Figure 3 notation — one character per
slot: the context's letter for an issued instruction, the lowercase
letter for a squashed slot, ``.`` for a stall or idle slot.

The ``access_log`` hook fires once per retired load/store;
:class:`SharedAccessRecorder` stamps each access with the lock words
its context held and the global barrier episode, producing the replay
log the dynamic race oracle (:func:`repro.analysis.dynamic_races`)
checks the static analysis against.
"""


class TimelineRecorder:
    """Collects per-slot events into a printable timeline."""

    def __init__(self):
        self.events = []          # (cycle, ctx_name_or_None, kind)

    def __call__(self, cycle, ctx, kind):
        name = ctx.process.name if (ctx is not None
                                    and ctx.process is not None) else None
        self.events.append((cycle, name, kind))

    def attach(self, processor):
        """Install on a processor; returns self for chaining."""
        processor.trace = self
        return self

    # -- rendering ----------------------------------------------------------

    @staticmethod
    def _cell(name, kind):
        if kind == "busy" and name:
            return name[0].upper()
        if kind == "squash" and name:
            return name[0].lower()
        return "."

    def lane(self):
        """One character per slot, in event order."""
        return "".join(self._cell(name, kind)
                       for _, name, kind in self.events)

    def per_context_lanes(self):
        """{context_letter: lane} with '.' where others own the slot."""
        names = sorted({n[0].upper() for _, n, _ in self.events if n})
        lanes = {n: [] for n in names}
        for _, name, kind in self.events:
            cell = self._cell(name, kind)
            for n in names:
                lanes[n].append(cell if cell.upper() == n else ".")
        return {n: "".join(cells) for n, cells in lanes.items()}

    def slot_counts(self):
        """{kind: count} over all recorded slots."""
        counts = {}
        for _, _, kind in self.events:
            counts[kind] = counts.get(kind, 0) + 1
        return counts

    def __len__(self):
        return len(self.events)


class SharedAccessRecorder:
    """Collects every retired data access with its synchronisation
    context (the ``trace_shared_accesses`` hook).

    Installing the recorder disables burst dispatch on the processor
    (like the slot tracer) so every load/store passes through the
    per-instruction retire path.  Each record carries the context id
    (``Process.pid``), the cycle, pc, byte address, direction, the lock
    words the context held at that instant, and the global barrier
    episode — exactly the tuple :func:`repro.analysis.dynamic_races`
    replays for the static-⊇-dynamic soundness check.
    """

    def __init__(self, sync):
        self.sync = sync
        self.processor = None
        self.records = []

    def attach(self, processor):
        """Install on a processor; returns self for chaining."""
        self.processor = processor
        processor.access_log = self
        return self

    def _held_locks(self, ctx):
        held = [addr for addr, lock in self.sync.locks.items()
                if lock.holder == (self.processor, ctx)]
        return frozenset(held)

    def __call__(self, cycle, ctx, pc, addr, is_write):
        from repro.analysis.races import AccessRecord
        pid = ctx.process.pid if ctx.process is not None else -1
        self.records.append(AccessRecord(
            cycle=cycle, ctx=pid, pc=pc, addr=addr,
            is_write=bool(is_write), locks=self._held_locks(ctx),
            phase=self.sync.barrier_episodes))

    def to_payload(self):
        """JSON-serialisable access log for the stats payload."""
        return [{"cycle": r.cycle, "ctx": r.ctx, "pc": r.pc,
                 "addr": r.addr, "w": int(r.is_write),
                 "locks": sorted(r.locks), "phase": r.phase}
                for r in self.records]

    def __len__(self):
        return len(self.records)
