"""Synchronisation primitives: locks and barriers.

The ISA's LOCK/UNLOCK/BARRIER magic operations land here.  The manager is
shared by all processors of a machine (for the uniprocessor it simply
serialises the contexts of the one processor).

Semantics modelled:

* **Locks** behave like test&test&set with queued handoff: an acquire on a
  free lock succeeds with the timing of a write to the lock's cache line
  (the caller performs that access); an acquire on a held lock blocks the
  context until the holder releases, plus a transfer latency — the cache
  line moving from the releaser to the next waiter.  Waiting time is
  charged to the synchronisation category, and each scheme pays its own
  cost to get off the processor (blocked: explicit switch; interleaved:
  backoff — paper Table 4).
* **Barriers** are sense-reversing counter barriers: arrival is a write to
  the barrier line; the last arrival releases everyone after a release
  latency.
"""


class Lock:
    __slots__ = ("holder", "waiters")

    def __init__(self):
        self.holder = None
        self.waiters = []   # FIFO of (processor, context) pairs


class Barrier:
    __slots__ = ("expected", "arrived")

    def __init__(self, expected):
        self.expected = expected
        self.arrived = []   # (processor, context) pairs


class SyncManager:
    """Machine-wide lock table and barrier state."""

    def __init__(self, lock_transfer_latency=20, barrier_release_latency=20):
        self.locks = {}
        self.barriers = {}
        self.lock_transfer_latency = lock_transfer_latency
        self.barrier_release_latency = barrier_release_latency
        self.lock_acquires = 0
        self.lock_contentions = 0
        self.barrier_episodes = 0

    def configure_barrier(self, barrier_id, n_participants):
        """Declare how many threads join barrier ``barrier_id``."""
        self.barriers[barrier_id] = Barrier(n_participants)

    def next_event_cycle(self, now):
        """Always None: sync state only changes when a processor acts.

        Lock handoffs and barrier releases are delivered eagerly to the
        woken contexts (via :meth:`_wake`), so the earliest sync-driven
        event is already visible as a context wake time.
        """
        return None

    @staticmethod
    def _wake(target_proc, target_ctx, wake_at, now, waker):
        """Wake ``target_ctx`` at ``wake_at``, via its processor's
        event-engine hook when it has one.

        ``context_woken`` lets a processor that is fast-forwarded past
        idle cycles settle its deferred accounting at the exact cycle
        the wake becomes visible; unit tests drive the manager with bare
        contexts (no processor), for which a plain wake is equivalent.
        """
        hook = getattr(target_proc, "context_woken", None)
        if hook is not None:
            hook(target_ctx, wake_at, now, waker)
        else:
            target_ctx.wake(wake_at)

    # -- locks ---------------------------------------------------------------

    def try_acquire(self, lock_addr, processor, ctx):
        """Attempt to take the lock; returns True on success.

        On failure the caller must block the context; it will be woken by
        :meth:`release` (handoff is FIFO).
        """
        lock = self.locks.setdefault(lock_addr, Lock())
        if lock.holder == (processor, ctx):
            # Handed off to this context by a release while it slept:
            # the retried LOCK instruction completes (already counted).
            return True
        if lock.holder is None:
            lock.holder = (processor, ctx)
            self.lock_acquires += 1
            return True
        self.lock_contentions += 1
        lock.waiters.append((processor, ctx))
        return False

    def release(self, lock_addr, processor, ctx, now):
        """Release the lock; hands off to the first waiter if any."""
        lock = self.locks.get(lock_addr)
        if lock is None or lock.holder != (processor, ctx):
            # Releasing an unheld lock is a program bug worth failing on.
            raise RuntimeError(
                "context %r released lock 0x%x it does not hold"
                % (ctx, lock_addr))
        if lock.waiters:
            next_proc, next_ctx = lock.waiters.pop(0)
            lock.holder = (next_proc, next_ctx)
            self.lock_acquires += 1
            self._wake(next_proc, next_ctx,
                       now + self.lock_transfer_latency, now, processor)
        else:
            lock.holder = None

    def holder_of(self, lock_addr):
        lock = self.locks.get(lock_addr)
        return lock.holder if lock else None

    # -- barriers ------------------------------------------------------------

    def barrier_arrive(self, barrier_id, processor, ctx, now):
        """Join the barrier; returns True when this arrival releases it.

        When False is returned the caller must block the context; the
        releasing arrival wakes every earlier one.
        """
        barrier = self.barriers.get(barrier_id)
        if barrier is None:
            raise RuntimeError("barrier %d was never configured"
                               % barrier_id)
        if barrier.expected <= 1:
            return True
        barrier.arrived.append((processor, ctx))
        if len(barrier.arrived) < barrier.expected:
            return False
        release_at = now + self.barrier_release_latency
        for waiting_proc, waiting_ctx in barrier.arrived[:-1]:
            self._wake(waiting_proc, waiting_ctx, release_at, now,
                       processor)
        barrier.arrived.clear()
        self.barrier_episodes += 1
        return True
