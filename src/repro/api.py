"""The stable public facade over the simulation core.

Callers build and run simulations through three names::

    from repro.api import Simulation

    result = (Simulation.from_config(SystemConfig.fast(),
                                     scheme="interleaved", n_contexts=4)
              .load("DC")
              .run(warmup=30_000, measure=120_000))
    print(result.ipc, result.breakdown["busy"])
    print(result.to_json())

    mp = (Simulation.from_config(MultiprocessorParams(n_nodes=8),
                                 scheme="interleaved", n_contexts=4)
          .load("mp3d")
          .run())                      # to completion
    print(mp.cycles, mp.completed)

:class:`Simulation` dispatches on the configuration type — a
:class:`~repro.config.SystemConfig` builds the workstation simulator, a
:class:`~repro.config.MultiprocessorParams` the DASH-like
multiprocessor — and ``load`` accepts a Table 5 workload mix name, a
single kernel name (dedicated/calibration runs), or a SPLASH stand-in
app name respectively.  :class:`RunResult` is one result type for both
machine families, bundling the stats, utilisation breakdown, and
runlength data every table and figure needs, with a stable
``to_json()``.

Everything underneath (``WorkstationSimulator``, ``Processor``,
``MemorySystem`` wiring...) remains importable for tests and
microarchitectural experiments, but the experiment layer goes through
this module only.
"""

import json
from dataclasses import dataclass, field, fields, replace

from repro.config import SystemConfig, MultiprocessorParams
from repro.pipeline.stalls import (
    Stall,
    UNIPROCESSOR_CATEGORIES,
    MULTIPROCESSOR_CATEGORIES,
)

#: Default completion bound for multiprocessor runs without ``until``.
DEFAULT_MP_MAX_CYCLES = 50_000_000


@dataclass
class RunResult:
    """Outcome of one simulation run, for either machine family.

    ``raw`` keeps the underlying core result (a
    :class:`repro.core.simulator.RunResult` window for workstations, an
    :class:`repro.core.mpsimulator.MPResult` for multiprocessors) for
    code that needs the full stats object; it is excluded from
    ``to_json`` and comparisons.
    """

    kind: str                 # "workstation" | "multiprocessor"
    workload: str             # load() name (None for hand-built sims)
    scheme: str
    n_contexts: int
    seed: int
    engine: str               # "events" | "naive" | "burst"
    cycles: int               # window length / completion cycle
    completed: bool           # mp: every thread halted within the bound
    retired: int
    issued: int
    squashed: int
    context_switches: int
    backoffs: int
    ipc: float                # retired instructions per machine cycle
    utilization: float        # busy fraction of all issue slots
    breakdown: dict           # category -> fraction (paper's figures)
    runlength: dict           # {"count", "mean", "max"} (Section 5.1)
    counts: dict              # Stall name -> issue slots
    per_process: dict         # process/thread name -> retired
    raw: object = field(default=None, repr=False, compare=False)

    #: Version of the ``to_json`` payload layout.  Carried in every
    #: serialized result so remote clients (the service wire protocol,
    #: archived ``results.jsonl`` files) can detect layout drift.
    SCHEMA_VERSION = 1

    def to_json(self, indent=None):
        """Stable JSON rendering (sorted keys, ``raw`` excluded)."""
        payload = {f.name: getattr(self, f.name) for f in fields(self)
                   if f.name != "raw"}
        payload["schema_version"] = self.SCHEMA_VERSION
        return json.dumps(payload, sort_keys=True, indent=indent)

    def with_workload(self, workload):
        return replace(self, workload=workload)


def _stats_fields(stats, cycles, categories):
    """The RunResult fields shared by both machine families."""
    return dict(
        retired=stats.retired,
        issued=stats.issued,
        squashed=stats.squashed,
        context_switches=stats.context_switches,
        backoffs=stats.backoffs,
        ipc=stats.retired / cycles if cycles else 0.0,
        utilization=stats.utilization(),
        breakdown=stats.breakdown_fractions(categories),
        runlength={"count": stats.run_count,
                   "mean": stats.mean_runlength(),
                   "max": stats.run_max},
        counts={Stall(i).name: n for i, n in enumerate(stats.counts)},
    )


def workstation_run_result(sim, window, workload=None):
    """Wrap a workstation measurement window as a :class:`RunResult`."""
    stats = window.stats
    return RunResult(
        kind="workstation",
        workload=workload,
        scheme=sim.processor.scheme,
        n_contexts=sim.n_contexts,
        seed=sim.seed,
        engine=sim.engine,
        cycles=window.duration,
        completed=True,
        per_process=dict(window.per_process),
        raw=window,
        **_stats_fields(stats, window.duration, UNIPROCESSOR_CATEGORIES),
    )


def multiprocessor_run_result(sim, mp_result, workload=None):
    """Wrap a multiprocessor run as a :class:`RunResult`."""
    stats = mp_result.stats
    return RunResult(
        kind="multiprocessor",
        workload=workload if workload is not None else sim.app.name,
        scheme=sim.scheme,
        n_contexts=sim.n_contexts,
        seed=sim.seed,
        engine=sim.engine,
        cycles=mp_result.cycles,
        completed=sim.all_halted(),
        per_process={p.name: p.retired for p in sim.processes},
        raw=mp_result,
        **_stats_fields(stats, mp_result.cycles,
                        MULTIPROCESSOR_CATEGORIES),
    )


class Simulation:
    """Fluent facade: ``Simulation.from_config(cfg).load(name).run()``.

    The configuration type selects the machine family:

    * :class:`~repro.config.SystemConfig` (or None, meaning
      ``SystemConfig.fast()``) — the multiprogrammed workstation.
      ``load`` accepts a Table 5 workload mix name (``"DC"``, ``"R1"``,
      ...) or a single kernel name (a dedicated calibration run on the
      single-context scheme's semantics of whatever scheme was asked
      for).
    * :class:`~repro.config.MultiprocessorParams` — the DASH-like
      multiprocessor.  ``load`` accepts a SPLASH stand-in app name
      (``"mp3d"``, ``"cholesky"``, ...); the application is partitioned
      into ``n_nodes x n_contexts`` threads, as the paper scales them.
    """

    def __init__(self, config=None, *, scheme="interleaved", n_contexts=1,
                 seed=1994, engine="events", pipeline=None, backend=None):
        if config is None:
            config = SystemConfig.fast()
        if isinstance(config, MultiprocessorParams):
            self.kind = "multiprocessor"
        elif isinstance(config, SystemConfig):
            self.kind = "workstation"
        else:
            raise TypeError(
                "config must be a SystemConfig (workstation) or "
                "MultiprocessorParams (multiprocessor), not %r"
                % type(config).__name__)
        self.config = config
        self.scheme = scheme
        self.n_contexts = n_contexts
        self.seed = seed
        self.engine = engine
        #: Scoreboard backend knob ("python" | "numpy" | "auto" | None,
        #: None deferring to $REPRO_BACKEND).  Like ``engine`` it is an
        #: implementation choice with no observable effect on results —
        #: the differential harness's backend axis enforces this — so it
        #: appears in neither RunResult nor any cache key.
        self.backend = backend
        self.pipeline = pipeline
        self.workload = None
        self.simulator = None

    @classmethod
    def from_config(cls, config=None, **kwargs):
        """Build an unloaded simulation around ``config``."""
        return cls(config, **kwargs)

    # -- loading ---------------------------------------------------------------

    def load(self, workload, scale=None):
        """Construct the simulator around ``workload``; returns self."""
        if self.simulator is not None:
            raise RuntimeError("a workload is already loaded; build a "
                               "fresh Simulation per run")
        if self.kind == "multiprocessor":
            self._load_multiprocessor(workload, scale)
        else:
            self._load_workstation(workload, scale)
        self.workload = workload
        return self

    def _load_workstation(self, workload, scale):
        from repro.core.simulator import WorkstationSimulator
        from repro.workloads import build_workload, build_process
        from repro.workloads.uniprocessor import WORKLOADS
        if scale is None:
            scale = self.config.workload_scale
        if workload.startswith("gen:"):
            # A generated family: "gen:<GenSpec text>" (the canonical
            # k=v;k=v form or "" for the default spec), one process per
            # context.  The family head is verified at birth.
            from repro.workloads.generator import (GenSpec,
                                                   generate_processes)
            spec = GenSpec.from_text(workload[len("gen:"):])
            self.simulator = WorkstationSimulator(
                generate_processes(spec, max(1, self.n_contexts)),
                scheme=self.scheme, n_contexts=self.n_contexts,
                config=self.config, seed=self.seed,
                engine=self.engine, backend=self.backend)
            return
        if workload in WORKLOADS:
            processes, instances, barriers = build_workload(
                workload, scale=scale)
        else:
            process, instance = build_process(workload, index=0,
                                              scale=scale)
            processes = [process]
            instances = [instance] if instance is not None else []
            barriers = instance.barriers if instance is not None else {}
        self.simulator = WorkstationSimulator(
            processes, scheme=self.scheme, n_contexts=self.n_contexts,
            config=self.config, seed=self.seed,
            app_instances=instances, barriers=barriers,
            engine=self.engine, backend=self.backend)

    def _load_multiprocessor(self, workload, scale):
        from repro.core.mpsimulator import MultiprocessorSimulator
        from repro.workloads.splash import build_app
        app = build_app(workload,
                        n_threads=self.config.n_nodes * self.n_contexts,
                        threads_per_node=self.n_contexts,
                        scale=scale if scale is not None else 1.0)
        self.simulator = MultiprocessorSimulator(
            app, scheme=self.scheme, n_contexts=self.n_contexts,
            params=self.config, pipeline=self.pipeline, seed=self.seed,
            engine=self.engine, backend=self.backend)

    # -- running ---------------------------------------------------------------

    def run(self, until=None, *, warmup=0, measure=None):
        """Run the loaded workload; returns a :class:`RunResult`.

        Workstation: warm up for ``warmup`` cycles, then measure a
        window — ``measure`` cycles when given, otherwise up to the
        absolute cycle ``until``.  Multiprocessor: run to completion,
        bounded by the absolute cycle ``until`` (default
        ``DEFAULT_MP_MAX_CYCLES``); ``warmup``/``measure`` do not apply
        (the paper times SPLASH runs whole).
        """
        sim = self.simulator
        if sim is None:
            raise RuntimeError("call load(workload) before run()")
        if self.kind == "multiprocessor":
            if warmup or measure is not None:
                raise ValueError("warmup/measure only apply to "
                                 "workstation simulations")
            bound = (until if until is not None
                     else sim.now + DEFAULT_MP_MAX_CYCLES)
            sim._advance(bound)
            return multiprocessor_run_result(sim, sim._result(),
                                             workload=self.workload)
        if measure is None:
            if until is None:
                raise TypeError("workstation run() needs measure=<n> "
                                "or until=<absolute cycle>")
            measure = until - sim.now - warmup
            if measure < 0:
                raise ValueError("until=%d is before the end of the "
                                 "%d-cycle warmup" % (until, warmup))
        window = sim.measure(measure, warmup=warmup)
        return workstation_run_result(sim, window,
                                      workload=self.workload)
