"""PTHOR stand-in: distributed-time logic simulation via task queues.

Sharing pattern reproduced: threads repeatedly pop element indices from
lock-protected work queues and evaluate them (integer logic over the
element's state words).  Like real PTHOR there are several distributed
queues (one per queue group, threads hash onto them), so dequeue is
lock-serialised *within* a group but groups proceed in parallel; the
queue heads migrate between processors and element state is touched by
whichever thread dequeues it — PTHOR's irregular, lock-heavy behaviour.
"""

from repro.workloads.kernels.util import Loop, scaled
from repro.workloads.splash.base import (
    SharedLayout,
    AppInstance,
    thread_builder,
)

_ELEM_WORDS = 8
_EVAL_ROUNDS = 16
_N_QUEUES = 8
_BATCH = 4


def build(n_threads, threads_per_node=1, scale=1.0,
          tid_offset=0, shared_base=None, barrier_base=1, n_elements=None):
    if n_elements is None:
        n_elements = scaled(384, scale, minimum=max(16, n_threads))
    layout = (SharedLayout() if shared_base is None
              else SharedLayout(shared_base))
    n_queues = min(_N_QUEUES, n_threads)
    per_queue = n_elements // n_queues
    heads = [layout.alloc("head%d" % q, 8, init=[q * per_queue] + [0] * 7)
             for q in range(n_queues)]
    qlocks = [layout.alloc("qlock%d" % q, 8, init=[0] * 8)
              for q in range(n_queues)]
    elems = layout.alloc(
        "elems", n_elements * _ELEM_WORDS,
        init=[(5 * i) % 251 for i in range(n_elements * _ELEM_WORDS)])

    programs = []
    for tid in range(n_threads):
        q = tid % n_queues
        limit = ((q + 1) * per_queue if q < n_queues - 1
                 else n_elements)
        b = thread_builder("pthor", tid + tid_offset)
        b.li("s0", heads[q])
        b.li("s1", qlocks[q])
        b.li("s2", elems)
        b.li("s3", limit)
        top = b.fresh_label("top")
        done = b.fresh_label("done")
        batch_top = b.fresh_label("batch")
        clip = b.fresh_label("clip")
        b.label(top)
        # dequeue a batch under my queue's lock (amortises the handoff
        # and the queue-head line migration)
        b.lock(0, "s1")
        b.lw("t0", 0, "s0")                 # first element of my batch
        b.addi("t1", "t0", _BATCH)
        b.sw("t1", 0, "s0")
        b.unlock(0, "s1")
        b.bge("t0", "s3", done)
        # s4 = min(t0 + BATCH, limit)
        b.addi("s4", "t0", _BATCH)
        b.bge("s3", "s4", clip)
        b.move("s4", "s3")
        b.label(clip)
        b.label(batch_top)
        # evaluate element t0: logic network update
        b.sll("t2", "t0", 3 + 2)            # * ELEM_WORDS * 4
        b.add("t2", "t2", "s2")
        b.move("t8", "t2")                  # element base
        b.li("t9", 0)                       # word offset (wraps at 8)
        with Loop(b, "t5", _EVAL_ROUNDS):
            b.lw("t3", 0, "t2")
            b.lw("t4", 4, "t2")
            b.xor("t6", "t3", "t4")
            b.nor("t7", "t3", "t4")
            b.sll("t3", "t6", 1)
            b.add("t3", "t3", "t7")
            b.andi("t3", "t3", 0xFFF)
            b.sw("t3", 0, "t2")
            b.addi("t9", "t9", 4)
            b.andi("t9", "t9", 0xF)             # wrap within the element
            b.add("t2", "t8", "t9")
        b.addi("t0", "t0", 1)
        b.blt("t0", "s4", batch_top)
        b.j(top)
        b.label(done)
        b.barrier(barrier_base)
        b.halt()
        programs.append(b.build())

    return AppInstance("pthor", programs, layout,
                       barriers={barrier_base: n_threads},
                       total_work=n_elements * _EVAL_ROUNDS)
