"""Water stand-in: molecular-dynamics pairwise interactions.

Sharing pattern reproduced: molecule state is read-shared during the
pairwise phase; a lock-protected global potential-energy accumulator is
updated by every thread each step.  Like Barnes, Water is dominated by
long floating-point latencies (several divides per pair group), which is
why the paper reports the largest interleaved-vs-blocked gap on it.
"""

from repro.workloads.kernels.util import Loop, scaled
from repro.workloads.kernels.linalg import FDIV_BACKOFF
from repro.workloads.splash.base import (
    SharedLayout,
    AppInstance,
    thread_builder,
    chunk_bounds,
)


def build(n_threads, threads_per_node=1, scale=1.0,
          tid_offset=0, shared_base=None, barrier_base=1, steps=2,
          n_molecules=None):
    if n_molecules is None:
        n_molecules = scaled(96, scale, minimum=max(8, n_threads))
    layout = (SharedLayout() if shared_base is None
              else SharedLayout(shared_base))
    mx = layout.alloc("mx", n_molecules,
                      init=[(3 * i) % 61 + 1 for i in range(n_molecules)])
    menergy = layout.alloc("menergy", n_molecules,
                           init=[0] * n_molecules)
    # Partial potential-energy accumulators: one per lock group, each on
    # its own cache line, like Water's per-processor partial sums.  The
    # final reduction is left to the (sequential) end-of-run consumer.
    n_groups = min(8, n_threads)
    global_pe = layout.alloc("global_pe", 8 * n_groups,
                             init=[0] * (8 * n_groups))
    pe_lock = layout.alloc("pe_lock", 8 * n_groups,
                           init=[0] * (8 * n_groups))

    programs = []
    for tid in range(n_threads):
        node = tid // threads_per_node
        lo, hi = chunk_bounds(n_molecules, n_threads, tid)
        b = thread_builder("water", tid + tid_offset)
        one = b.word("one", [1])
        with Loop(b, "s6", steps):
            b.li("t3", one)
            b.lwf("f1", 0, "t3")
            b.li("s0", mx + 4 * lo)
            b.li("s7", menergy + 4 * lo)
            b.fcvtif("f10", "zero")              # thread-local energy
            with Loop(b, "s4", hi - lo):
                b.lwf("f2", 0, "s0")             # my molecule
                b.li("t0", mx)
                b.fcvtif("f4", "zero")
                with Loop(b, "t5", n_molecules):
                    b.lwf("f5", 0, "t0")
                    b.fsub("f5", "f5", "f2")     # dr
                    b.fmul("f5", "f5", "f5")
                    b.fadd("f4", "f4", "f5")
                    b.addi("t0", "t0", 4)
                # O-O and O-H terms: two divides per molecule.
                b.fadd("f4", "f4", "f1")
                b.fdiv("f6", "f1", "f4")
                b.backoff(FDIV_BACKOFF)
                b.fmul("f7", "f6", "f6")
                b.fadd("f7", "f7", "f1")
                b.fdiv("f9", "f6", "f7")
                b.backoff(FDIV_BACKOFF)
                b.fadd("f10", "f10", "f9")
                b.swf("f9", 0, "s7")
                b.addi("s0", "s0", 4)
                b.addi("s7", "s7", 4)
            # Update phase: move our own molecules (writes invalidate
            # the read-shared copies on every other node, recreating the
            # per-step communication of real Water).
            b.li("s0", mx + 4 * lo)
            b.li("s7", menergy + 4 * lo)
            with Loop(b, "s4", hi - lo):
                b.lwf("f2", 0, "s0")
                b.lwf("f3", 0, "s7")
                b.fadd("f2", "f2", "f3")
                b.swf("f2", 0, "s0")
                b.addi("s0", "s0", 4)
                b.addi("s7", "s7", 4)
            # Lock-protected global accumulation (real Water's *POTENG).
            group = tid % n_groups
            b.li("t6", pe_lock + 32 * group)
            b.li("t7", global_pe + 32 * group)
            b.lock(0, "t6")
            b.lwf("f11", 0, "t7")
            b.fadd("f11", "f11", "f10")
            b.swf("f11", 0, "t7")
            b.unlock(0, "t6")
            b.barrier(barrier_base)
        b.halt()
        programs.append(b.build())
        layout.placement.append((menergy + 4 * lo, hi - lo, node))

    return AppInstance("water", programs, layout,
                       barriers={barrier_base: n_threads},
                       total_work=n_molecules * n_molecules * steps)
