"""SPLASH stand-in applications (paper Table 9).

=========  =====================================  =======================
App        Behaviour reproduced                   Dominant behaviour
=========  =====================================  =======================
mp3d       particle scatter into shared cells     write-shared migratory
barnes     N-body force computation               read-shared + FP divide
water      pairwise molecular dynamics            FP divide + lock
ocean      banded grid relaxation                 neighbour comm + barrier
locus      wire routing through a cost grid       locks + migratory data
pthor      logic simulation via task queue        lock-serialised dequeue
cholesky   serial column-chain factorisation      no usable parallelism
=========  =====================================  =======================
"""

from repro.workloads.splash import (
    mp3d,
    barnes,
    water,
    ocean,
    locus,
    pthor,
    cholesky,
)
from repro.workloads.splash.base import AppInstance, SharedLayout

#: App name -> builder ``build(n_threads, threads_per_node, scale, ...)``.
SPLASH_APPS = {
    "mp3d": mp3d.build,
    "barnes": barnes.build,
    "water": water.build,
    "ocean": ocean.build,
    "locus": locus.build,
    "pthor": pthor.build,
    "cholesky": cholesky.build,
}

#: Presentation order used by the paper's Tables 9 and 10.
SPLASH_ORDER = ("mp3d", "barnes", "water", "ocean", "locus", "pthor",
                "cholesky")


def build_app(name, n_threads, threads_per_node=1, scale=1.0, **kwargs):
    """Build a SPLASH stand-in instance by name."""
    try:
        builder = SPLASH_APPS[name]
    except KeyError:
        raise KeyError("unknown SPLASH app %r (have %s)"
                       % (name, ", ".join(sorted(SPLASH_APPS)))) from None
    return builder(n_threads, threads_per_node=threads_per_node,
                   scale=scale, **kwargs)


__all__ = ["SPLASH_APPS", "SPLASH_ORDER", "build_app", "AppInstance",
           "SharedLayout"]
