"""LocusRoute stand-in: wire routing through a shared cost grid.

Sharing pattern reproduced: threads route wires by read-modify-writing
runs of a shared cost array under per-region locks; which region a wire
lands in is pseudo-random (per-thread LCG), so both the cost-grid lines
and the locks migrate between processors.
"""

from repro.workloads.kernels.util import Loop, scaled
from repro.workloads.splash.base import (
    SharedLayout,
    AppInstance,
    thread_builder,
    chunk_bounds,
)

_REGIONS = 16
_REGION_WORDS = 64
_RUN = 12           # cells touched per wire


def build(n_threads, threads_per_node=1, scale=1.0,
          tid_offset=0, shared_base=None, barrier_base=1, n_wires=None):
    if n_wires is None:
        n_wires = scaled(256, scale, minimum=max(16, n_threads))
    layout = (SharedLayout() if shared_base is None
              else SharedLayout(shared_base))
    cost = layout.alloc("cost", _REGIONS * _REGION_WORDS,
                        init=[1] * (_REGIONS * _REGION_WORDS))
    # One lock per region, each on its own cache line.
    locks = layout.alloc("locks", _REGIONS * 8,
                         init=[0] * (_REGIONS * 8))

    programs = []
    for tid in range(n_threads):
        lo, hi = chunk_bounds(n_wires, n_threads, tid)
        b = thread_builder("locus", tid + tid_offset)
        b.li("s0", 12345 + 7 * tid)           # per-thread LCG state
        b.li("s1", cost)
        b.li("s2", locks)
        with Loop(b, "s4", hi - lo):          # my wires
            # region = lcg() % REGIONS
            b.sll("t0", "s0", 3)
            b.add("s0", "s0", "t0")
            b.addi("s0", "s0", 4093)
            b.andi("s0", "s0", 0x3FFF)
            b.andi("t1", "s0", _REGIONS - 1)
            # lock address: locks + region * 32 bytes
            b.sll("t2", "t1", 5)
            b.add("t2", "t2", "s2")
            # cost-run address: cost + region * REGION_WORDS * 4
            b.sll("t3", "t1", 8)              # * 64 words * 4 bytes
            b.add("t3", "t3", "s1")
            b.lock(0, "t2")
            with Loop(b, "t5", _RUN):         # bump the run of cells
                b.lw("t4", 0, "t3")
                b.addi("t4", "t4", 1)
                b.sw("t4", 0, "t3")
                b.addi("t3", "t3", 4)
            b.unlock(0, "t2")
        b.barrier(barrier_base)
        b.halt()
        programs.append(b.build())

    return AppInstance("locus", programs, layout,
                       barriers={barrier_base: n_threads},
                       total_work=n_wires * _RUN)
