"""Shared infrastructure for the SPLASH stand-in applications.

Each application builds one program per thread plus a shared data layout.
Thread-private data is page-aligned and pinned to the thread's node (the
home-node placement a DASH-era OS would do); shared arrays default to
round-robin page interleaving.
"""

from repro.isa.builder import AsmBuilder

#: Shared data region (above all code and private segments).
SHARED_BASE = 0x8000000
#: Per-thread code regions.
CODE_BASE = 0x0C00000
CODE_STRIDE = 0x80000
#: Per-thread private data-segment bases (for AsmBuilder scratch).
PRIVATE_BASE = 0x4000000
PRIVATE_STRIDE = 0x100000

_PAGE = 4096
_LINE = 32


class SharedLayout:
    """Allocator for the application's shared address space."""

    def __init__(self, base=SHARED_BASE):
        self.base = base
        self.cursor = base
        self.symbols = {}
        self.inits = []          # (addr, [values])
        self.placement = []      # (addr, n_words, node | "interleave")

    def alloc(self, name, n_words, init=None, placement="interleave"):
        """Reserve ``n_words``; returns the address.

        ``placement`` of a node id page-aligns the block and pins its
        pages to that node; "interleave" line-aligns it and leaves the
        default round-robin page homes.
        """
        align = _PAGE if placement != "interleave" else _LINE
        self.cursor = (self.cursor + align - 1) // align * align
        addr = self.cursor
        self.cursor += 4 * n_words
        self.symbols[name] = addr
        if init is not None:
            if len(init) != n_words:
                raise ValueError("init length mismatch for %r" % name)
            self.inits.append((addr, list(init)))
        self.placement.append((addr, n_words, placement))
        return addr

    def load(self, memory):
        for addr, values in self.inits:
            memory.store_words(addr, values)


class AppInstance:
    """A built application: thread programs + shared state + metadata."""

    def __init__(self, name, programs, layout, barriers=None,
                 total_work=0):
        self.name = name
        self.programs = programs
        self.layout = layout
        self.barriers = dict(barriers or {})
        #: Nominal work units (for sanity checks / reporting).
        self.total_work = total_work

    @property
    def n_threads(self):
        return len(self.programs)

    @property
    def placement(self):
        return self.layout.placement

    def load(self, memory):
        self.layout.load(memory)
        for program in self.programs:
            program.load(memory)


def thread_builder(app_name, tid):
    """An AsmBuilder for thread ``tid`` with standard code/data bases.

    Bases are staggered by odd line-multiples so that identically
    laid-out thread programs do not alias onto the same direct-mapped
    cache sets (the multiprocessor's I-cache is ideal, but the SP
    uniprocessor workload shares one real I-cache between four of
    these programs).
    """
    return AsmBuilder("%s.t%d" % (app_name, tid),
                      code_base=CODE_BASE + tid * (CODE_STRIDE + 0x10E0),
                      data_base=PRIVATE_BASE + tid * (PRIVATE_STRIDE
                                                      + 0x1280))


def chunk_bounds(total, n_threads, tid):
    """[start, end) of thread ``tid``'s contiguous share of ``total``."""
    base = total // n_threads
    extra = total % n_threads
    start = tid * base + min(tid, extra)
    end = start + base + (1 if tid < extra else 0)
    return start, end
