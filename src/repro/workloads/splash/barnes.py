"""Barnes-Hut stand-in: N-body force computation.

Sharing pattern reproduced: body positions and masses are read-shared by
every thread each step (broadcast-style communication), accelerations are
thread-private.  The force kernel is floating-point-divide heavy — the
paper singles out Barnes (with Water) as gaining the most from the
interleaved scheme because of its long instruction latencies.
"""

from repro.workloads.kernels.util import Loop, scaled
from repro.workloads.kernels.linalg import FDIV_BACKOFF
from repro.workloads.splash.base import (
    SharedLayout,
    AppInstance,
    thread_builder,
    chunk_bounds,
)


def build(n_threads, threads_per_node=1, scale=1.0,
          tid_offset=0, shared_base=None, barrier_base=1, steps=2,
          n_bodies=None):
    if n_bodies is None:
        n_bodies = scaled(160, scale, minimum=max(16, n_threads))
    layout = (SharedLayout() if shared_base is None
              else SharedLayout(shared_base))
    px = layout.alloc("px", n_bodies,
                      init=[(5 * i) % 89 + 1 for i in range(n_bodies)])
    py = layout.alloc("py", n_bodies,
                      init=[(11 * i) % 83 + 1 for i in range(n_bodies)])
    mass = layout.alloc("mass", n_bodies,
                        init=[1 + (i % 7) for i in range(n_bodies)])
    acc = layout.alloc("acc", n_bodies, init=[0] * n_bodies)

    programs = []
    for tid in range(n_threads):
        node = tid // threads_per_node
        lo, hi = chunk_bounds(n_bodies, n_threads, tid)
        b = thread_builder("barnes", tid + tid_offset)
        one = b.word("one", [1])
        with Loop(b, "s6", steps):
            b.li("t3", one)
            b.lwf("f1", 0, "t3")             # 1.0 (softening)
            b.li("s0", px + 4 * lo)          # my body cursor (x)
            b.li("s1", py + 4 * lo)
            b.li("s7", acc + 4 * lo)
            with Loop(b, "s4", hi - lo):     # for each of my bodies
                b.lwf("f2", 0, "s0")         # xi
                b.lwf("f3", 0, "s1")         # yi
                b.fcvtif("f4", "zero")       # r2 accumulator
                b.li("t0", px)               # walk all bodies
                b.li("t1", py)
                with Loop(b, "t5", n_bodies):
                    b.lwf("f5", 0, "t0")
                    b.lwf("f6", 0, "t1")
                    b.fsub("f5", "f5", "f2")     # dx
                    b.fsub("f6", "f6", "f3")     # dy
                    b.fmul("f5", "f5", "f5")
                    b.fmul("f6", "f6", "f6")
                    b.fadd("f5", "f5", "f6")
                    b.fadd("f4", "f4", "f5")     # accumulate r^2
                    b.addi("t0", "t0", 4)
                    b.addi("t1", "t1", 4)
                # Normalisations: the divide-heavy tail of the kernel.
                b.fadd("f4", "f4", "f1")
                b.fdiv("f7", "f1", "f4")         # 1 / sum r^2
                b.backoff(FDIV_BACKOFF)
                b.fmul("f8", "f7", "f2")
                b.fadd("f9", "f8", "f7")
                b.swf("f9", 0, "s7")             # store acceleration
                b.addi("s0", "s0", 4)
                b.addi("s1", "s1", 4)
                b.addi("s7", "s7", 4)
            b.barrier(barrier_base)
            # Update phase: integrate our own bodies' positions.  The
            # writes invalidate every other node's cached copies, so the
            # next step's force phase re-communicates — barnes's
            # per-step broadcast pattern.
            b.li("s0", px + 4 * lo)
            b.li("s1", py + 4 * lo)
            b.li("s7", acc + 4 * lo)
            with Loop(b, "s4", hi - lo):
                b.lwf("f2", 0, "s0")
                b.lwf("f3", 0, "s1")
                b.lwf("f4", 0, "s7")
                b.fadd("f2", "f2", "f4")
                b.fadd("f3", "f3", "f4")
                b.swf("f2", 0, "s0")
                b.swf("f3", 0, "s1")
                b.addi("s0", "s0", 4)
                b.addi("s1", "s1", 4)
                b.addi("s7", "s7", 4)
            b.barrier(barrier_base)
        b.halt()
        programs.append(b.build())
        layout.placement.append((acc + 4 * lo, hi - lo, node))

    return AppInstance("barnes", programs, layout,
                       barriers={barrier_base: n_threads},
                       total_work=n_bodies * n_bodies * steps)
