"""Ocean stand-in: red-black relaxation over a banded grid.

Sharing pattern reproduced: the grid is partitioned into bands of rows,
each band placed on its thread's node; a five-point stencil makes each
sweep read the neighbouring bands' edge rows (nearest-neighbour
communication), and a barrier separates the sweeps.
"""

from repro.workloads.kernels.util import Loop, scaled
from repro.workloads.splash.base import (
    SharedLayout,
    AppInstance,
    thread_builder,
    chunk_bounds,
)

_COLS = 64


def build(n_threads, threads_per_node=1, scale=1.0,
          tid_offset=0, shared_base=None, barrier_base=1, sweeps=3,
          n_rows=None):
    if n_rows is None:
        n_rows = scaled(64, scale, minimum=max(8, n_threads))
    n_rows = max(n_rows, n_threads)          # at least one row per thread
    layout = (SharedLayout() if shared_base is None
              else SharedLayout(shared_base))
    grid = layout.alloc(
        "grid", n_rows * _COLS,
        init=[(3 * i) % 17 for i in range(n_rows * _COLS)])

    programs = []
    for tid in range(n_threads):
        node = tid // threads_per_node
        lo, hi = chunk_bounds(n_rows, n_threads, tid)
        # interior rows only (stencil needs row-1 and row+1)
        start = max(lo, 1)
        end = min(hi, n_rows - 1)
        b = thread_builder("ocean", tid + tid_offset)
        four = b.word("four", [4])
        with Loop(b, "s6", sweeps):
            if end > start:
                b.li("t3", four)
                b.lwf("f1", 0, "t3")                  # 4.0
                b.li("s0", grid + 4 * (start * _COLS + 1))
                with Loop(b, "s4", end - start):      # rows of my band
                    b.move("t0", "s0")
                    with Loop(b, "t5", _COLS - 2):    # interior columns
                        b.lwf("f2", -4 * _COLS, "t0")   # north
                        b.lwf("f3", 4 * _COLS, "t0")    # south
                        b.lwf("f4", -4, "t0")           # west
                        b.lwf("f5", 4, "t0")            # east
                        b.fadd("f2", "f2", "f3")
                        b.fadd("f4", "f4", "f5")
                        b.fadd("f2", "f2", "f4")
                        b.lwf("f6", 0, "t0")
                        b.fadd("f2", "f2", "f6")
                        b.fmul("f2", "f2", "f1")        # relax
                        b.swf("f2", 0, "t0")
                        b.addi("t0", "t0", 4)
                    b.addi("s0", "s0", 4 * _COLS)
            b.barrier(barrier_base)
        b.halt()
        programs.append(b.build())
        layout.placement.append((grid + 4 * lo * _COLS,
                                 (hi - lo) * _COLS, node))

    return AppInstance("ocean", programs, layout,
                       barriers={barrier_base: n_threads},
                       total_work=n_rows * _COLS * sweeps)
