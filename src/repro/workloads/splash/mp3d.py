"""MP3D stand-in: rarefied hypersonic flow (particle-in-cell).

Sharing pattern reproduced: each thread owns a contiguous slice of the
particle arrays (placed on its node), but all threads scatter increments
into a small shared array of space cells — the migratory, write-shared
traffic that makes MP3D the highest-communication SPLASH application.
A barrier separates the time steps.
"""

from repro.workloads.kernels.util import Loop, scaled
from repro.workloads.splash.base import (
    SharedLayout,
    AppInstance,
    thread_builder,
    chunk_bounds,
)

_CELLS = 64
_CELL_SHIFT = 2   # cell = (int(position) >> shift) & (CELLS-1)


def build(n_threads, threads_per_node=1, scale=1.0,
          tid_offset=0, shared_base=None, barrier_base=1, steps=2,
          n_particles=None):
    if n_particles is None:
        n_particles = scaled(1536, scale, minimum=n_threads * 8)
    layout = (SharedLayout() if shared_base is None
              else SharedLayout(shared_base))
    pos = layout.alloc("pos", n_particles,
                       init=[(7 * i) % 97 for i in range(n_particles)])
    vel = layout.alloc("vel", n_particles,
                       init=[1 + (i % 5) for i in range(n_particles)])
    cells = layout.alloc("cells", _CELLS, init=[0] * _CELLS)

    programs = []
    for tid in range(n_threads):
        node = tid // threads_per_node
        lo, hi = chunk_bounds(n_particles, n_threads, tid)
        b = thread_builder("mp3d", tid + tid_offset)
        with Loop(b, "s6", steps):
            b.li("s0", pos + 4 * lo)
            b.li("s1", vel + 4 * lo)
            b.li("s2", cells)
            with Loop(b, "s4", hi - lo):
                b.lw("t0", 0, "s0")          # position (int-valued)
                b.lw("t1", 0, "s1")          # velocity
                b.add("t0", "t0", "t1")      # move
                b.andi("t0", "t0", 0x3FF)    # stay in the domain
                b.sw("t0", 0, "s0")
                # space-cell scatter: the write-shared hot spot
                b.srl("t2", "t0", _CELL_SHIFT)
                b.andi("t2", "t2", _CELLS - 1)
                b.sll("t2", "t2", 2)
                b.add("t2", "t2", "s2")
                b.note("lint: allow(R701, R702) -- unsynchronised "
                       "cell scatter is MP3D's defining migratory "
                       "write-share (Table 9); lost increments only "
                       "perturb the statistics")
                b.lw("t3", 0, "t2")
                b.addi("t3", "t3", 1)
                b.note("lint: allow(R701, R702) -- unsynchronised "
                       "cell scatter is MP3D's defining migratory "
                       "write-share (Table 9); lost increments only "
                       "perturb the statistics")
                b.sw("t3", 0, "t2")
                # occasional collision: reverse velocity
                b.andi("t4", "t0", 7)
                no_coll = b.fresh_label("nc")
                b.bne("t4", "zero", no_coll)
                b.sub("t1", "zero", "t1")
                b.sw("t1", 0, "s1")
                b.label(no_coll)
                b.addi("s0", "s0", 4)
                b.addi("s1", "s1", 4)
            b.barrier(barrier_base)
        b.halt()
        programs.append(b.build())
        # Pin this thread's particle slice to its node.
        layout.placement.append((pos + 4 * lo, hi - lo, node))
        layout.placement.append((vel + 4 * lo, hi - lo, node))

    return AppInstance("mp3d", programs, layout,
                       barriers={barrier_base: n_threads},
                       total_work=n_particles * steps)
