"""Cholesky stand-in: sparse factorisation with a serial column chain.

Sharing pattern reproduced: each column update depends on the previous
column, so the factorisation is a chain of phases in which exactly one
thread does work while the rest wait at a barrier.  Adding hardware
contexts adds threads but no extra usable parallelism — the paper's
Cholesky is the one SPLASH application that shows *no* gain from
multiple contexts, and this is why.
"""

from repro.workloads.kernels.util import Loop, scaled
from repro.workloads.kernels.linalg import FDIV_BACKOFF
from repro.workloads.splash.base import (
    SharedLayout,
    AppInstance,
    thread_builder,
)

_COL_WORDS = 48


def build(n_threads, threads_per_node=1, scale=1.0,
          tid_offset=0, shared_base=None, barrier_base=1, n_columns=None):
    if n_columns is None:
        n_columns = scaled(40, scale, minimum=8)
    layout = (SharedLayout() if shared_base is None
              else SharedLayout(shared_base))
    matrix = layout.alloc(
        "matrix", n_columns * _COL_WORDS,
        init=[(3 * i) % 29 + 1 for i in range(n_columns * _COL_WORDS)])

    programs = []
    for tid in range(n_threads):
        b = thread_builder("cholesky", tid + tid_offset)
        one = b.word("one", [1])
        b.li("t3", one)
        b.lwf("f1", 0, "t3")
        for j in range(n_columns):
            if j % n_threads == tid:
                # This thread owns column j: pivot divide + column scale.
                col = matrix + 4 * j * _COL_WORDS
                b.li("s0", col)
                b.lwf("f0", 0, "s0")
                b.fadd("f0", "f0", "f1")
                b.fdiv("f2", "f1", "f0")
                b.backoff(FDIV_BACKOFF)
                with Loop(b, "t5", _COL_WORDS - 1):
                    b.addi("s0", "s0", 4)
                    b.lwf("f3", 0, "s0")
                    b.fmul("f3", "f3", "f2")
                    b.swf("f3", 0, "s0")
            b.barrier(barrier_base)
        b.halt()
        programs.append(b.build())

    return AppInstance("cholesky", programs, layout,
                       barriers={barrier_base: n_threads},
                       total_work=n_columns * _COL_WORDS)
