"""Parameterised workload generator.

All 56 committed programs are hand-written; this module generates
unbounded *families* of programs with controlled statistical properties
along exactly the axes the paper's results hinge on (Tables 7/10,
Figures 6-9): instruction mix, dependency distance, memory footprint,
branch/loop structure, and — new over the old ad-hoc
:class:`~repro.workloads.synthetic.StreamSpec` randomisation — integer
multiply/shift pressure, multi-block loop bodies (instruction-cache
footprint), two-deep loop nests, and a multi-context *sharing pattern*
(private / shared-read / shared-read-write / lock-protected counter).

Design contract:

* **Deterministic**: every byte of a generated program is a pure
  function of its :class:`GenSpec` — all randomness is drawn from one
  seeded generator at build time, so the same spec always produces the
  same :func:`~repro.analysis.program_fingerprint`.
* **Canonical**: a ``GenSpec`` round-trips through
  :func:`repro.config.to_canonical` / :meth:`GenSpec.from_dict` and the
  colon-free text form of :meth:`GenSpec.to_text` /
  :meth:`GenSpec.from_text`, so generated programs are cacheable (the
  result cache keys on the canonical text) and service-submittable
  (``--points gen:block_size=32;fp_fraction=0.2:interleaved:4``) like
  committed ones.
* **Verified at birth**: every generated program is passed through the
  :mod:`repro.analysis` verifier — V1xx structural/dataflow checks and
  the B2xx burst-schedule audit — and the generator *raises* on any
  error-level finding, making the static analyzer the generator's
  oracle.  (V104 read-before-write warnings are expected: streams read
  scratch-pool registers defined by the zero-reset architectural
  state.)

The emission machinery here is the single source of truth for random
streams: the deprecated ``build_stream``/``build_stream_process`` shims
in :mod:`repro.workloads.synthetic` delegate to it with a compatible
spec, drawing the *same* random sequence the old generator drew, so
legacy callers keep their exact programs.
"""

import json
import random
from dataclasses import dataclass, fields, replace

from repro.config import fingerprint as config_fingerprint, to_canonical
from repro.isa.builder import AsmBuilder
from repro.workloads.kernels.util import Loop, OuterLoop, ipattern

#: Sharing patterns a multi-context family can be generated with.
SHARING_PATTERNS = ("private", "read", "rw", "lock")

#: Base address of the cross-context shared region (word 0 is the lock
#: word, the ``shared_words`` data words follow).  Sits below the
#: per-index private data regions at 0x6000000+ and above every code
#: region, so generated families never alias it.
SHARED_BASE = 0x5F00000

#: Address of the cross-context lock word — word 0 of the shared
#: region (the data words start at ``SHARED_BASE + 4``).  Lock-using
#: programs name it with a ``.equ SHARED_LOCK`` directive so the slot
#: is self-describing in emitted source and the race analysis's
#: lockset diagnostics.
SHARED_LOCK = SHARED_BASE

#: Issue widths the verify-at-birth burst audit covers (the Section 7
#: extension grid, matching the differential matrix).
AUDIT_WIDTHS = (1, 2, 4)

#: Per-index base staggering (odd offsets decorrelate direct-mapped
#: cache sets, exactly like the committed workloads' layout).
_CODE_BASE = 0x600000
_CODE_STRIDE = 0x40000 + 0x11E0
_DATA_BASE = 0x6000000
_DATA_STRIDE = 0x200000 + 0x12A0


class GenerationError(ValueError):
    """A spec could not be turned into a verifier-clean program."""


@dataclass(frozen=True)
class GenSpec:
    """Statistical recipe for one generated-program family.

    Mix fractions are of the generated block body; they need not sum to
    one — the remainder is filled with single-cycle integer ALU
    operations.  Every knob is JSON-serialisable and participates in
    the canonical form / fingerprint.
    """

    name: str = "gen"
    seed: int = 42

    # -- instruction-mix weights -----------------------------------------
    load_fraction: float = 0.15
    store_fraction: float = 0.08
    fp_fraction: float = 0.10
    branch_fraction: float = 0.05   # forward data-dependent branches
    mul_fraction: float = 0.0       # non-pipelined integer multiplies
    shift_fraction: float = 0.0     # two-cycle shifter ops
    fdiv_per_block: int = 0         # non-pipelined FP divides per block

    # -- dependency structure --------------------------------------------
    #: average register-dependency distance (instructions between a
    #: producer and its consumer); small = stall-prone code
    dependency_distance: int = 4

    # -- memory footprint (data cache / TLB axes) ------------------------
    footprint_words: int = 2048     # words streamed cyclically
    access_stride: int = 1          # words between accesses (1024 = page)
    prefetch_distance: int = 0      # accesses ahead (0 = none)

    # -- branch/loop structure (instruction-cache axis) ------------------
    block_size: int = 64            # instructions per straight-line block
    blocks_per_iteration: int = 1   # distinct blocks per inner iteration
    loop_iterations: int = 64       # inner trip count (total, nest-split)
    loop_nest: int = 1              # 1 = flat inner loop, 2 = two-deep

    # -- multi-context sharing pattern -----------------------------------
    sharing: str = "private"        # see SHARING_PATTERNS
    shared_words: int = 256         # size of the shared data region
    #: ``sharing="rw"`` only: True (default) emits the historical
    #: unsynchronised read-modify-write — a *deliberate* data race the
    #: race analysis must report (R701/R702).  False wraps the same
    #: access in the shared lock, and the generated group must verify
    #: race-clean (checked at birth by :func:`generate_processes`).
    racy: bool = True

    # -- validation -------------------------------------------------------

    def validate(self):
        total = (self.load_fraction + self.store_fraction
                 + self.fp_fraction + self.branch_fraction
                 + self.mul_fraction + self.shift_fraction)
        if total > 0.9:
            raise ValueError("instruction-mix fractions exceed 90%")
        if self.block_size < 8:
            raise ValueError("block_size must be at least 8")
        if self.footprint_words < 16:
            raise ValueError("footprint_words must be at least 16")
        if self.blocks_per_iteration < 1:
            raise ValueError("blocks_per_iteration must be at least 1")
        if self.loop_nest not in (1, 2):
            raise ValueError("loop_nest must be 1 or 2")
        if self.sharing not in SHARING_PATTERNS:
            raise ValueError("sharing must be one of %s, not %r"
                             % ("/".join(SHARING_PATTERNS), self.sharing))
        if not 4 <= self.shared_words <= 1024:
            # upper bound keeps static shared offsets within the 14-bit
            # immediate range of one load/store
            raise ValueError("shared_words must be within [4, 1024]")
        return self

    # -- canonical form / fingerprint -------------------------------------

    def to_dict(self):
        """JSON-serialisable canonical form (cache keys, service)."""
        return to_canonical(self)

    def fingerprint(self):
        """Stable content hash of the spec (not of a program)."""
        return config_fingerprint(self)

    @classmethod
    def from_dict(cls, payload):
        """Inverse of :meth:`to_dict`; rejects unknown keys."""
        known = {f.name: f.type for f in fields(cls)}
        unknown = sorted(set(payload) - set(known))
        if unknown:
            raise ValueError("unknown GenSpec field(s): %s"
                             % ", ".join(unknown))
        return cls(**payload).validate()

    def to_text(self):
        """Canonical colon-free text form: ``k=v;k=v`` of every field
        that differs from the default, keys sorted.

        Colon-free so a spec embeds in the service CLI's
        ``kind:name:scheme:n_contexts`` point syntax; canonical (same
        spec -> same text) so it is a stable cache-key component.
        """
        default = GenSpec()
        parts = []
        for f in sorted(fields(self), key=lambda f: f.name):
            value = getattr(self, f.name)
            if value != getattr(default, f.name):
                parts.append("%s=%s" % (f.name, value))
        return ";".join(parts)

    @classmethod
    def from_text(cls, text):
        """Parse the ``k=v;k=v`` text form (or a JSON object string)."""
        text = text.strip()
        if not text:
            return cls().validate()
        if text.startswith("{"):
            return cls.from_dict(json.loads(text))
        types = {f.name: f.type for f in fields(cls)}
        payload = {}
        for part in text.replace(",", ";").split(";"):
            part = part.strip()
            if not part:
                continue
            if "=" not in part:
                raise ValueError("bad GenSpec assignment %r (want k=v)"
                                 % (part,))
            key, value = (t.strip() for t in part.split("=", 1))
            if key not in types:
                raise ValueError("unknown GenSpec field %r" % (key,))
            if types[key] in (bool, "bool"):
                if value.lower() in ("true", "1", "yes"):
                    payload[key] = True
                elif value.lower() in ("false", "0", "no"):
                    payload[key] = False
                else:
                    raise ValueError("bad boolean %r for GenSpec field %r"
                                     % (value, key))
            elif types[key] in (int, "int"):
                payload[key] = int(value, 0)
            elif types[key] in (float, "float"):
                payload[key] = float(value)
            else:
                payload[key] = value
        return cls.from_dict(payload)


# Rotating register pools; destinations round-robin, sources from
# recently written registers to hit the requested dependency distance.
_INT_POOL = ("t0", "t1", "t2", "t3", "t4", "t5", "t6", "t7")
_FP_POOL = ("f2", "f3", "f4", "f5", "f6", "f7", "f8")


class _Emitter:
    """Emits one spec's loop-body blocks into an :class:`AsmBuilder`.

    The draw order is load-bearing: for the StreamSpec-compatible knob
    subset (mul/shift fractions 0, one block, flat nest, private
    sharing) it consumes the random sequence exactly as the historical
    ``synthetic._Generator`` did, which keeps the deprecated
    ``build_stream`` shim bit-identical for its callers.
    """

    def __init__(self, spec, builder, rng):
        self.spec = spec
        self.b = builder
        self.rng = rng
        self.int_written = list(_INT_POOL)
        self.fp_written = list(_FP_POOL)
        self.counter = 0

    def _dest(self, pool):
        self.counter += 1
        return pool[self.counter % len(pool)]

    def _source(self, written):
        """A recently written register, ~dependency_distance back."""
        d = max(1, int(self.rng.expovariate(
            1.0 / self.spec.dependency_distance)))
        return written[-min(d, len(written))]

    def emit_block(self):
        spec, b, rng = self.spec, self.b, self.rng
        c_load = spec.load_fraction
        c_store = c_load + spec.store_fraction
        c_fp = c_store + spec.fp_fraction
        c_branch = c_fp + spec.branch_fraction
        c_mul = c_branch + spec.mul_fraction
        c_shift = c_mul + spec.shift_fraction
        for _ in range(spec.block_size):
            r = rng.random()
            if r < c_load:
                dest = self._dest(_INT_POOL)
                if spec.prefetch_distance:
                    ahead = (4 * spec.access_stride
                             * spec.prefetch_distance)
                    b.pref(ahead, "s1")
                b.lw(dest, 0, "s1")
                self._advance_pointer()
                self.int_written.append(dest)
            elif r < c_store:
                b.sw(self._source(self.int_written), 0, "s1")
                self._advance_pointer()
            elif r < c_fp:
                dest = self._dest(_FP_POOL)
                b.fadd(dest, self._source(self.fp_written),
                       self._source(self.fp_written))
                self.fp_written.append(dest)
            elif r < c_branch:
                skip = b.fresh_label("syn")
                b.andi("t8", self._source(self.int_written), 1)
                b.beq("t8", "zero", skip)
                b.addi("t9", "t9", 1)
                b.label(skip)
            elif r < c_mul:
                dest = self._dest(_INT_POOL)
                b.mul(dest, self._source(self.int_written),
                      self._source(self.int_written))
                self.int_written.append(dest)
            elif r < c_shift:
                dest = self._dest(_INT_POOL)
                b.sll(dest, self._source(self.int_written),
                      rng.randrange(1, 8))
                self.int_written.append(dest)
            else:
                dest = self._dest(_INT_POOL)
                b.addi(dest, self._source(self.int_written), 1)
                self.int_written.append(dest)
        for _ in range(spec.fdiv_per_block):
            dest = self._dest(_FP_POOL)
            b.fadd("f1", "f1", "f0")         # keep the divisor nonzero
            b.fdiv(dest, "f0", "f1")
            b.backoff(52)
            self.fp_written.append(dest)

    def _advance_pointer(self):
        spec, b = self.spec, self.b
        b.addi("s1", "s1", 4 * spec.access_stride)
        # wrap within the footprint
        wrap = b.fresh_label("wrap")
        b.blt("s1", "s2", wrap)
        b.move("s1", "s0")
        b.label(wrap)

    def emit_sharing_op(self):
        """One cross-context access to the shared region.

        The word touched is drawn at *generation* time (a static
        offset), so no wrap bookkeeping is emitted; ``k0`` holds the
        shared data base and ``k1`` the lock word's address.
        """
        spec, b, rng = self.spec, self.b, self.rng
        off = 4 * rng.randrange(spec.shared_words)
        if spec.sharing == "read":
            b.lw("t8", off, "k0")
        elif spec.sharing == "rw" and spec.racy:
            b.lw("t8", off, "k0")
            b.addi("t8", "t8", 1)
            b.sw("t8", off, "k0")
        elif spec.sharing in ("lock", "rw"):
            # "lock", or the race-free rw variant (racy=False): the
            # read-modify-write rides inside the shared lock.
            b.lock(0, "k1")
            b.lw("t8", off, "k0")
            b.addi("t8", "t8", 1)
            b.sw("t8", off, "k0")
            b.unlock(0, "k1")


def _emit_program(spec, b, rng, iterations):
    """Emit the full program structure for ``spec`` into ``b``."""
    data = b.word("data", ipattern(spec.footprint_words, 3, 63))
    b.li("s0", data, note="s0 = &data (footprint base)")
    b.li("s2", data + 4 * spec.footprint_words,
         note="s2 = footprint end")
    b.fcvtif("f0", "zero")
    b.li("t0", 1)
    b.fcvtif("f1", "t0")                  # f1 = 1.0 (divisor seed)
    if spec.sharing != "private":
        if spec.sharing == "lock" or (spec.sharing == "rw"
                                      and not spec.racy):
            # Lock-using programs carry the lock word's name in their
            # emitted source (its own .equ slot).
            b.equ("SHARED_LOCK", SHARED_LOCK)
        b.li("k1", SHARED_LOCK, note="k1 = &shared lock word")
        b.li("k0", SHARED_BASE + 4, note="k0 = shared data base")
    emitter = _Emitter(spec, b, rng)

    def body():
        for _ in range(spec.blocks_per_iteration):
            emitter.emit_block()
        if spec.sharing != "private":
            emitter.emit_sharing_op()

    with OuterLoop(b, iterations):
        b.move("s1", "s0")
        if spec.loop_nest == 2:
            outer = max(1, int(spec.loop_iterations ** 0.5))
            inner = max(1, spec.loop_iterations // outer)
            with Loop(b, "s6", outer):
                with Loop(b, "s5", inner):
                    body()
        else:
            with Loop(b, "s6", spec.loop_iterations):
                body()


def verify_generated(program, widths=AUDIT_WIDTHS):
    """The generator's oracle: V1xx + B2xx clean or raise.

    Runs the full static verifier (structural, reachability, dataflow,
    lock balance) plus the symbolic burst-schedule audit across
    ``widths``; any *error*-level finding raises
    :class:`GenerationError` carrying the diagnostics.  V104
    read-before-write warnings are tolerated by design (the
    architectural registers reset to zero, so scratch-pool reads are
    defined); any other warning code is reported too, keeping the
    oracle loud.
    """
    from repro.analysis import verify_program
    from repro.config import PipelineParams
    diags = verify_program(
        program, level="full",
        threshold=PipelineParams().short_stall_threshold,
        widths=tuple(widths))
    bad = [d for d in diags if d.is_error or d.code != "V104"]
    if bad:
        raise GenerationError(
            "generated program %r failed its birth verification:\n%s"
            % (program.name, "\n".join("  " + d.render() for d in bad)))
    return program


def generate_program(spec, code_base=0, data_base=0x100000,
                     iterations=None, verify=True):
    """Build one :class:`~repro.isa.program.Program` from a spec.

    ``iterations=None`` (throughput mode) loops forever; an integer
    runs the loop body that many times and falls through to HALT.
    ``verify=True`` (the default) runs :func:`verify_generated` — the
    verifier is the generator's oracle, so birth verification is only
    skipped by explicit request (the deprecated StreamSpec shim, hot
    loops that already verified the family head).
    """
    spec.validate()
    rng = random.Random(spec.seed)
    b = AsmBuilder(spec.name, code_base, data_base)
    _emit_program(spec, b, rng, iterations)
    program = b.build()
    if verify:
        verify_generated(program)
    return program


def generate_process(spec, index=0, iterations=None, verify=True):
    """A ready-to-schedule Process around a generated program.

    Processes of one family share the spec (identical code) at bases
    staggered by odd offsets, exactly like the committed workloads.
    """
    from repro.core.simulator import Process
    program = generate_program(
        spec,
        code_base=_CODE_BASE + index * _CODE_STRIDE,
        data_base=_DATA_BASE + index * _DATA_STRIDE,
        iterations=iterations, verify=verify)
    return Process("%s.%d" % (spec.name, index), program)


def verify_group_races(spec, programs):
    """Race-check a generated multi-context group against its spec.

    ``sharing="rw", racy=True`` is a *deliberate* race: the static race
    analysis must report it (R701/R702) or the analyzer has lost the
    generator as a ground-truth source.  Every other spec — private,
    read-only, lock-protected, and the ``racy=False`` lock-wrapped rw
    variant — must come back R-clean.  Either violation raises
    :class:`GenerationError`, making the race analysis part of the
    group's birth verification.
    """
    from repro.analysis import analyze_races
    diags = [d for d in analyze_races(programs)
             if d.code in ("R701", "R702")]
    expect_racy = spec.sharing == "rw" and spec.racy
    if expect_racy and not diags:
        raise GenerationError(
            "generated group %r is a deliberate data race "
            "(sharing=rw, racy=True) but the race analysis reported "
            "no R701/R702 finding" % spec.name)
    if not expect_racy and diags:
        raise GenerationError(
            "generated group %r must be race-free but the race "
            "analysis found:\n%s"
            % (spec.name, "\n".join("  " + d.render() for d in diags)))
    return programs


def generate_processes(spec, n_contexts, iterations=None, verify=True):
    """One process per context; index 0 is verified for the family.

    Fingerprints differ only in the staggered code base, so verifying
    the first member covers the family's code (the remaining members
    are the same instruction sequence relocated).  Multi-context groups
    additionally pass :func:`verify_group_races` — the cross-context
    race analysis agrees with the spec's ``racy`` declaration or the
    group is rejected at birth.
    """
    processes = [generate_process(spec, index=i, iterations=iterations,
                                  verify=verify and i == 0)
                 for i in range(n_contexts)]
    if verify and n_contexts >= 2:
        verify_group_races(spec, [p.program for p in processes])
    return processes


def generate_family(spec, count, iterations=None, verify=True):
    """``count`` programs with derived seeds ``spec.seed + i``.

    Returns a list of ``(member_spec, program)`` pairs; each member is
    the base spec with its derived seed and an indexed name, so any
    member regenerates independently from its own spec.
    """
    out = []
    for i in range(count):
        member = replace(spec, seed=spec.seed + i,
                         name="%s-%04d" % (spec.name, i))
        out.append((member, generate_program(
            member,
            code_base=_CODE_BASE + i * _CODE_STRIDE,
            data_base=_DATA_BASE + i * _DATA_STRIDE,
            iterations=iterations, verify=verify)))
    return out
