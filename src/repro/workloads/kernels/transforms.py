"""Transform/stencil kernels: stand-ins for Cfft2d, Emit, and Btrix.

* **cfft2d** — butterfly sweeps with doubling strides over a complex
  array: the classic FFT access pattern that thrashes a direct-mapped
  cache (DC stress).
* **emit** — vortex-emission style short FP loops over small state with
  divide chains (FP stress, small footprint).
* **btrix** — block-tridiagonal solver walking a 4-D array: page-sized
  strides touch one line per page across dozens of pages (DT stress).
"""

from repro.isa.builder import AsmBuilder
from repro.workloads.kernels.util import (
    Loop,
    OuterLoop,
    scaled,
    fpattern,
)
from repro.workloads.kernels.linalg import FDIV_BACKOFF


def cfft2d(name="cfft2d", code_base=0, data_base=0x100000, scale=1.0,
           iterations=None, n=None):
    """Butterfly passes with doubling stride over a complex array.

    Standard radix-2 pass structure: pass p pairs elements s = 2**p
    apart within blocks of 2s.  Each pass streams the whole array with a
    different stride, which is the access pattern that makes FFTs hard
    on direct-mapped caches.  The pass loop is unrolled at build time
    (log2 n passes), so all strides are immediate constants.
    """
    if n is None:
        n = scaled(2048, scale, minimum=64)
    if n & (n - 1):
        raise ValueError("cfft2d size must be a power of two")
    passes = n.bit_length() - 1
    b = AsmBuilder(name, code_base, data_base)
    re = b.word("re", fpattern(n, 7, 31))
    im = b.word("im", fpattern(n, 11, 31))
    with OuterLoop(b, iterations):
        for p in range(passes):
            s_el = 1 << p                   # stride in elements
            stride = 4 * s_el               # stride in bytes
            blocks = n >> (p + 1)
            b.li("s0", re)
            b.li("s1", im)
            b.li("s2", stride)      # register: strides can exceed imm range
            with Loop(b, "s6", blocks):
                with Loop(b, "s5", s_el):
                    b.add("t0", "s0", "s2")      # partner (re)
                    b.add("t1", "s1", "s2")      # partner (im)
                    b.lwf("f0", 0, "s0")
                    b.lwf("f1", 0, "t0")
                    b.lwf("f2", 0, "s1")
                    b.lwf("f3", 0, "t1")
                    b.fadd("f4", "f0", "f1")     # butterfly
                    b.fsub("f5", "f0", "f1")
                    b.fadd("f6", "f2", "f3")
                    b.fsub("f7", "f2", "f3")
                    b.swf("f4", 0, "s0")
                    b.swf("f5", 0, "t0")
                    b.swf("f6", 0, "s1")
                    b.swf("f7", 0, "t1")
                    b.addi("s0", "s0", 4)
                    b.addi("s1", "s1", 4)
                # skip the partner half of the block
                b.add("s0", "s0", "s2")
                b.add("s1", "s1", "s2")
    return b.build()


def emit(name="emit", code_base=0, data_base=0x100000, scale=1.0,
         iterations=None, n=None):
    """Short FP loops over small particle state with divide chains."""
    if n is None:
        n = scaled(96, scale, minimum=16)
    b = AsmBuilder(name, code_base, data_base)
    vel = b.word("vel", fpattern(n, 5, 15))
    pos = b.word("pos", fpattern(n, 3, 15))
    one = b.word("one", [1])
    with OuterLoop(b, iterations):
        b.li("t3", one)
        b.lwf("f1", 0, "t3")
        b.li("s0", vel)
        b.li("s1", pos)
        with Loop(b, "s4", n):
            b.lwf("f0", 0, "s0")
            b.lwf("f2", 0, "s1")
            b.fadd("f3", "f0", "f1")        # v + 1
            b.fdiv("f4", "f2", "f3")        # x / (v + 1)
            b.backoff(FDIV_BACKOFF)
            b.fmul("f5", "f4", "f0")
            b.fadd("f2", "f2", "f5")
            b.swf("f2", 0, "s1")
            b.addi("s0", "s0", 4)
            b.addi("s1", "s1", 4)
    return b.build()


def btrix(name="btrix", code_base=0, data_base=0x100000, scale=1.0,
          iterations=None, n_pages=None):
    """Page-strided sweep over a large block array (data-TLB stress).

    Touches a handful of words on each of ``n_pages`` 4 KB pages per
    sweep — far more pages than the TLB holds — with a small FP update
    per touch, mimicking btrix's walk across its 4-D array blocks.
    """
    if n_pages is None:
        # More pages than the TLB holds (16 in the fast profile) but a
        # footprint that still fits the L2, so btrix stresses the TLB
        # without turning every miss into a full memory access.
        n_pages = scaled(24, scale, minimum=20)
    words_per_page = 1024                       # 4 KB pages
    b = AsmBuilder(name, code_base, data_base)
    # The first line of each page is pre-initialised (build-time data);
    # the rest of each page is zero-filled pad that only exists to space
    # the touched lines one page apart.
    page_image = []
    for page in range(n_pages):
        page_image.extend([float(3 + 7 * page)] * 2)
        page_image.extend([0.0] * (words_per_page - 2))
    blocks = b.word("blocks", page_image)
    with OuterLoop(b, iterations):
        b.li("s0", blocks)
        b.li("s2", 4 * words_per_page)          # page stride
        with Loop(b, "s4", n_pages):
            b.lwf("f0", 0, "s0")
            b.lwf("f1", 4, "s0")
            b.fadd("f2", "f0", "f1")
            b.fmul("f2", "f2", "f1")
            b.swf("f2", 0, "s0")
            b.add("s0", "s0", "s2")             # next page
    return b.build()
