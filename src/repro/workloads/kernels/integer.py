"""Integer/branchy kernels: stand-ins for Doduc, Li, and Eqntott.

* **doduc** — Monte-Carlo reactor simulation: a large, branchy body of
  floating-point code.  The stand-in generates many distinct basic
  blocks (code footprint beyond the primary instruction cache) selected
  by data-dependent branches, with occasional divides (IC + FP stress).
* **li** — the xlisp interpreter: pointer chasing through cons cells
  with data-dependent branches (IC + irregular D stress).
* **eqntott** — bit-vector comparison in a sort inner loop: compare-
  heavy integer code with highly biased branches.
"""

from repro.isa.builder import AsmBuilder
from repro.workloads.kernels.util import (
    Loop,
    OuterLoop,
    scaled,
    ipattern,
)
from repro.workloads.kernels.linalg import FDIV_BACKOFF


def doduc(name="doduc", code_base=0, data_base=0x100000, scale=1.0,
          iterations=None, n_blocks=None):
    """Branchy FP code whose text footprint exceeds the I-cache.

    Generates ``n_blocks`` distinct basic blocks (about 12 instructions
    each, ~2700 instructions at the default 288 blocks — beyond the fast
    profile's 2048-instruction I-cache).  Control flows block to block
    through a data-dependent LCG, so the I-cache keeps missing, exactly
    doduc's behaviour in the paper's IC workload.
    """
    if n_blocks is None:
        n_blocks = scaled(288, scale, minimum=32)
    b = AsmBuilder(name, code_base, data_base)
    state = b.space("state", 64)
    one = b.word("one", [1])
    b.li("t3", one)
    b.lwf("f1", 0, "t3")            # 1.0
    b.li("s0", 12345)               # LCG state
    b.la("s1", "state")
    with OuterLoop(b, iterations):
        # Visit a fixed chain of blocks; each block branches over a
        # data-dependent condition, computes a little FP, and updates
        # the LCG.
        for blk in range(n_blocks):
            skip = b.fresh_label("blk%d" % blk)
            b.sll("t1", "s0", 3)
            b.add("s0", "s0", "t1")
            b.addi("s0", "s0", 4093)
            b.andi("s0", "s0", 0x3FFF)
            b.andi("t2", "s0", 1)
            b.beq("t2", "zero", skip)
            b.fadd("f2", "f2", "f1")
            b.fmul("f3", "f2", "f1")
            b.label(skip)
            if blk % 16 == 15:
                # occasional divide, like doduc's physics kernels
                b.fadd("f4", "f2", "f1")
                b.fdiv("f5", "f1", "f4")
                b.backoff(FDIV_BACKOFF)
            b.swf("f2", 4 * (blk % 64), "s1")
    return b.build()


def li(name="li", code_base=0, data_base=0x100000, scale=1.0,
       iterations=None, n_cells=None):
    """Cons-cell pointer chasing with data-dependent branches.

    Builds a ring of cons cells (car = value, cdr = next pointer) with a
    shuffled successor ordering, then repeatedly interprets it: follow
    cdr, branch on car's low bits, update a tally — xlisp's memory
    behaviour at a miniature scale.
    """
    if n_cells is None:
        n_cells = scaled(512, scale, minimum=32)
    b = AsmBuilder(name, code_base, data_base)
    # Cons cells [car, cdr], built at assembly time: cell i holds value
    # (3*i) & 0xff and points at cell (i*5 + 1) % n — a shuffled walk.
    cells_addr = data_base  # first symbol lands at the segment base
    image = []
    for i in range(n_cells):
        image.append((3 * i) & 0xFF)
        image.append(cells_addr + 8 * ((i * 5 + 1) % n_cells))
    cells = b.word("cells", image)
    assert cells == cells_addr
    with OuterLoop(b, iterations):
        b.li("t0", cells)                     # current cell
        b.li("s2", 0)                         # tally
        with Loop(b, "s4", n_cells):
            b.lw("t1", 0, "t0")               # car
            b.andi("t2", "t1", 3)
            is_odd = b.fresh_label("odd")
            done = b.fresh_label("done")
            b.bgtz("t2", is_odd)
            b.add("s2", "s2", "t1")
            b.j(done)
            b.label(is_odd)
            b.sub("s2", "s2", "t1")
            b.label(done)
            b.lw("t0", 4, "t0")               # follow cdr
    return b.build()


def eqntott(name="eqntott", code_base=0, data_base=0x100000, scale=1.0,
            iterations=None, n=None):
    """Bit-vector comparison loops (eqntott's cmppt inner loop).

    Walks two arrays of packed bit-vectors comparing word by word with
    early-out branches; eqntott famously spends most of its time here.
    """
    if n is None:
        n = scaled(768, scale, minimum=64)
    b = AsmBuilder(name, code_base, data_base)
    va = b.word("va", ipattern(n, 13, 0xFF))
    vb_image = ipattern(n, 13, 0xFF)         # mostly equal to va...
    for i in range(0, n, 9):
        vb_image[i] ^= 5                     # ...with sprinkled diffs
    vb = b.word("vb", vb_image)
    with OuterLoop(b, iterations):
        b.li("s0", va)
        b.li("s1", vb)
        b.li("s2", 0)                         # comparison tally
        with Loop(b, "s4", n):
            b.lw("t1", 0, "s0")
            b.lw("t2", 0, "s1")
            eq = b.fresh_label("eq")
            b.beq("t1", "t2", eq)
            gt = b.fresh_label("gt")
            b.blt("t2", "t1", gt)
            b.addi("s2", "s2", -1)
            b.j(eq)
            b.label(gt)
            b.addi("s2", "s2", 1)
            b.label(eq)
            b.addi("s0", "s0", 4)
            b.addi("s1", "s1", 4)
    return b.build()
