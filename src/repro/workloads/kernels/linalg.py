"""Dense linear-algebra kernels: stand-ins for Mxm, Matrix300, Cholsky,
Gmtry, Vpenta, and Tomcatv.

Characteristics targeted (paper Section 4.3 / Table 5):

* **mxm** — NASA7's matrix-multiply kernel; unit-stride FP multiply-add
  with moderate footprint.
* **matrix300** — larger matrices, column-strided inner loop: streams
  through the data cache (DC stress).
* **cholsky** — triangular factorisation with a reciprocal (FP divide)
  per pivot and column-major strides (FP + DT stress).
* **gmtry** — Gaussian elimination: a divide per pivot row and row
  operations across a wide matrix (DC + DT stress).
* **vpenta** — pentadiagonal inversion: streams five diagonals with a
  divide per element (DC + FP stress).
* **tomcatv** — mesh-generation sweep: several co-walked arrays with a
  divide per point (DC + FP stress).

BACKOFF hints follow the divides whose consumers are nearby — the paper's
compiler support for tolerating long instruction latency on multithreaded
processors (interpreted as an explicit switch by the blocked scheme and
as a NOP by the single-context baseline).
"""

from repro.isa.builder import AsmBuilder
from repro.workloads.kernels.util import (
    Loop,
    OuterLoop,
    scaled,
    fpattern,
)

#: Backoff hint length after an FP divide: slightly under the 61-cycle
#: divide latency so the context wakes just before its result is ready.
FDIV_BACKOFF = 52


def mxm(name="mxm", code_base=0, data_base=0x100000, scale=1.0,
        iterations=None, n=None):
    """C = A @ B with unit-stride inner product (n defaults to 20·scale)."""
    if n is None:
        n = scaled(20, scale)
    b = AsmBuilder(name, code_base, data_base)
    a = b.word("a", fpattern(n * n, 7, 31))
    bm = b.word("b", fpattern(n * n, 3, 15))
    c = b.space("c", n * n)
    with OuterLoop(b, iterations):
        b.li("s0", a)                  # &A[i,0]
        b.li("s2", c)                  # &C[i,0]
        with Loop(b, "s4", n):         # i loop
            b.li("s1", bm)             # &B[0,j]
            b.move("s3", "s2")         # &C[i,j]
            with Loop(b, "s5", n):     # j loop
                b.move("t0", "s0")     # &A[i,k]
                b.move("t1", "s1")     # &B[k,j]
                b.fcvtif("f2", "zero")  # sum = 0.0
                with Loop(b, "t5", n):  # k loop
                    b.lwf("f0", 0, "t0")
                    b.lwf("f1", 0, "t1")
                    b.addi("t0", "t0", 4)
                    b.addi("t1", "t1", 4 * n)
                    b.fmul("f3", "f0", "f1")
                    b.fadd("f2", "f2", "f3")
                b.swf("f2", 0, "s3")
                b.addi("s3", "s3", 4)
                b.addi("s1", "s1", 4)
            b.addi("s0", "s0", 4 * n)
            b.addi("s2", "s2", 4 * n)
    return b.build()


def matrix300(name="matrix300", code_base=0, data_base=0x100000,
              scale=1.0, iterations=None, n=None):
    """Streaming rank-1 updates over a large matrix (DC stress).

    ``M[i,j] += x[i] * y[j]`` with a column-major walk, so consecutive
    accesses are ``4n`` bytes apart and every line is touched once per
    sweep — the data cache sees a pure streaming pattern.
    """
    if n is None:
        n = scaled(64, scale)
    b = AsmBuilder(name, code_base, data_base)
    m = b.word("m", fpattern(n * n, 5, 63))
    x = b.word("x", fpattern(n, 11, 31))
    y = b.word("y", fpattern(n, 13, 31))
    with OuterLoop(b, iterations):
        b.li("s1", y)
        b.li("s2", m)                  # &M[0,j]
        with Loop(b, "s4", n):         # j loop (columns)
            b.lwf("f1", 0, "s1")       # y[j]
            b.li("s0", x)
            b.move("t0", "s2")         # &M[i,j], stride 4n... column-major
            with Loop(b, "t5", n):     # i loop
                b.lwf("f0", 0, "s0")   # x[i]
                b.lwf("f2", 0, "t0")   # M[i,j]
                b.fmul("f3", "f0", "f1")
                b.fadd("f2", "f2", "f3")
                b.swf("f2", 0, "t0")
                b.addi("s0", "s0", 4)
                b.addi("t0", "t0", 4 * n)
            b.addi("s1", "s1", 4)
            b.addi("s2", "s2", 4)      # next column start
    return b.build()


def cholsky(name="cholsky", code_base=0, data_base=0x100000, scale=1.0,
            iterations=None, n=None):
    """Column-oriented triangular factorisation sweep (FP divide + DT).

    For each pivot j: one reciprocal (FP divide), then scale the column
    and update the trailing columns with large strides.
    """
    if n is None:
        n = scaled(28, scale)
    b = AsmBuilder(name, code_base, data_base)
    # The fixed-length column walk from late pivots runs past row n, so
    # the matrix carries (n//2 + 1) rows of padding — the walk stays
    # inside this kernel's own array.
    m = b.word("m", fpattern(n * n + (n // 2 + 1) * n, 9, 63))
    one = b.word("one", [1])
    with OuterLoop(b, iterations):
        b.li("s0", m)                   # &M[j,j] walks the diagonal
        with Loop(b, "s4", n - 1):      # pivot loop
            b.lwf("f0", 0, "s0")        # pivot
            b.li("t3", one)
            b.lwf("f1", 0, "t3")        # 1.0
            b.fadd("f0", "f0", "f1")    # keep the pivot away from zero
            b.fdiv("f2", "f1", "f0")    # reciprocal: 61-cycle divide
            b.backoff(FDIV_BACKOFF)     # hint: consumer follows shortly
            b.move("t0", "s0")
            with Loop(b, "t5", n // 2):  # scale part of the column
                b.addi("t0", "t0", 4 * n)   # column-major: stride n
                b.lwf("f3", 0, "t0")
                b.fmul("f3", "f3", "f2")
                b.swf("f3", 0, "t0")
            b.addi("s0", "s0", 4 * n + 4)   # next diagonal element
    return b.build()


def gmtry(name="gmtry", code_base=0, data_base=0x100000, scale=1.0,
          iterations=None, n=None):
    """Gaussian elimination sweep (DC + DT stress).

    One divide per pivot row, then a row elimination walking two rows in
    lockstep; the matrix is wide so each sweep streams well beyond the
    primary cache.
    """
    if n is None:
        n = scaled(40, scale)
    width = 2 * n
    b = AsmBuilder(name, code_base, data_base)
    m = b.word("m", fpattern(n * width, 7, 63))
    one = b.word("one", [1])
    with OuterLoop(b, iterations):
        b.li("s0", m)                        # pivot row
        with Loop(b, "s4", n - 1):           # pivot loop
            b.li("t3", one)
            b.lwf("f1", 0, "t3")
            b.lwf("f0", 0, "s0")
            b.fadd("f0", "f0", "f1")
            b.fdiv("f2", "f1", "f0")         # 1 / pivot
            b.backoff(FDIV_BACKOFF)
            b.move("t0", "s0")               # pivot row walker
            b.addi("t1", "s0", 4 * width)    # next row walker
            with Loop(b, "t5", width):       # eliminate next row
                b.lwf("f3", 0, "t0")
                b.lwf("f4", 0, "t1")
                b.fmul("f5", "f3", "f2")
                b.fsub("f4", "f4", "f5")
                b.swf("f4", 0, "t1")
                b.addi("t0", "t0", 4)
                b.addi("t1", "t1", 4)
            b.addi("s0", "s0", 4 * width)
    return b.build()


def vpenta(name="vpenta", code_base=0, data_base=0x100000, scale=1.0,
           iterations=None, n=None):
    """Pentadiagonal forward elimination (DC + FP-divide stress).

    Streams five diagonal arrays and the RHS in lockstep with one divide
    per element — NASA7's vpenta is exactly this shape.
    """
    if n is None:
        n = scaled(700, scale, minimum=64)
    b = AsmBuilder(name, code_base, data_base)
    diags = [b.word("d%d" % i, fpattern(n, 3 + 2 * i, 31))
             for i in range(5)]
    rhs = b.word("rhs", fpattern(n, 5, 31))
    one = b.word("one", [1])
    with OuterLoop(b, iterations):
        for i, d in enumerate(diags):
            b.li(("s%d" % i), d)
        b.li("s5", rhs)
        b.li("t3", one)
        b.lwf("f1", 0, "t3")               # 1.0
        with Loop(b, "s6", n):
            b.lwf("f0", 0, "s0")           # main diagonal
            b.fadd("f0", "f0", "f1")
            b.fdiv("f2", "f1", "f0")       # reciprocal
            b.backoff(FDIV_BACKOFF)
            b.lwf("f3", 0, "s1")
            b.lwf("f4", 0, "s2")
            b.lwf("f5", 0, "s3")
            b.lwf("f6", 0, "s4")
            b.lwf("f7", 0, "s5")
            b.fmul("f3", "f3", "f2")
            b.fmul("f4", "f4", "f2")
            b.fmul("f5", "f5", "f2")
            b.fmul("f6", "f6", "f2")
            b.fmul("f7", "f7", "f2")
            b.swf("f3", 0, "s1")
            b.swf("f7", 0, "s5")
            for r in range(6):
                b.addi("s%d" % r, "s%d" % r, 4)
    return b.build()


def tomcatv(name="tomcatv", code_base=0, data_base=0x100000, scale=1.0,
            iterations=None, n=None):
    """Mesh-generation relaxation sweep over two co-walked 2D grids.

    A 3-point relaxation with one divide per point, walking rows of two
    grids simultaneously (tomcatv's X/Y coordinate arrays).
    """
    if n is None:
        n = scaled(52, scale)
    b = AsmBuilder(name, code_base, data_base)
    gx = b.word("gx", fpattern(n * n, 5, 31))
    gy = b.word("gy", fpattern(n * n, 7, 31))
    two = b.word("two", [2])
    with OuterLoop(b, iterations):
        b.li("t3", two)
        b.lwf("f1", 0, "t3")               # 2.0
        b.li("s0", gx)
        b.li("s1", gy)
        with Loop(b, "s4", n * n - 2):
            b.lwf("f2", 0, "s0")
            b.lwf("f3", 4, "s0")
            b.lwf("f4", 8, "s0")
            b.fadd("f5", "f2", "f4")
            b.lwf("f6", 0, "s1")
            b.fadd("f6", "f6", "f1")
            b.fdiv("f7", "f5", "f6")       # relaxation quotient
            b.backoff(FDIV_BACKOFF)
            b.fadd("f3", "f3", "f7")
            b.swf("f3", 4, "s0")
            b.addi("s0", "s0", 4)
            b.addi("s1", "s1", 4)
    return b.build()
