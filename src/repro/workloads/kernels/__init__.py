"""Spec89 stand-in kernel registry.

Each kernel is ``fn(name=..., code_base=..., data_base=..., scale=...,
iterations=...) -> Program``.  ``iterations=None`` builds the continuous
(throughput-measurement) form that loops forever; an integer builds a
finite, functionally-testable form.
"""

from repro.workloads.kernels.linalg import (
    mxm,
    matrix300,
    cholsky,
    gmtry,
    vpenta,
    tomcatv,
)
from repro.workloads.kernels.transforms import cfft2d, emit, btrix
from repro.workloads.kernels.integer import doduc, li, eqntott

#: Kernel name -> builder.
KERNELS = {
    "mxm": mxm,
    "matrix300": matrix300,
    "cholsky": cholsky,
    "gmtry": gmtry,
    "vpenta": vpenta,
    "tomcatv": tomcatv,
    "cfft2d": cfft2d,
    "emit": emit,
    "btrix": btrix,
    "doduc": doduc,
    "li": li,
    "eqntott": eqntott,
}

__all__ = ["KERNELS"] + sorted(KERNELS)
