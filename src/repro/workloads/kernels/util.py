"""Helpers for writing kernels against :class:`AsmBuilder`.

The kernels are the "compiled output" of our pretend toolchain, so they
are written the way a compiler would schedule them for this pipeline:
counted loops, address strength-reduction, and BACKOFF hints after
floating-point divides whose consumers are nearby (the paper's compiler
support for the interleaved/blocked schemes' switch instructions).
"""

from repro.isa.builder import AsmBuilder


class Loop:
    """A counted loop: ``with Loop(b, "t7", n):`` emits body once.

    Uses ``reg`` as the down-counter; the loop body must preserve it.
    """

    def __init__(self, builder, reg, count):
        self.b = builder
        self.reg = reg
        self.count = count
        self.top = builder.fresh_label("loop")

    def __enter__(self):
        self.b.li(self.reg, self.count)
        self.b.label(self.top)
        return self

    def __exit__(self, exc_type, exc, tb):
        if exc_type is None:
            self.b.addi(self.reg, self.reg, -1)
            self.b.bgtz(self.reg, self.top)
        return False


class OuterLoop:
    """The kernel's repetition wrapper.

    ``iterations=None`` (the throughput-measurement mode) loops forever;
    an integer runs the body that many times and falls through to HALT.
    """

    def __init__(self, builder, iterations, counter_reg="s7"):
        self.b = builder
        self.iterations = iterations
        self.reg = counter_reg
        self.top = builder.fresh_label("outer")

    def __enter__(self):
        if self.iterations is not None:
            self.b.li(self.reg, self.iterations)
        self.b.label(self.top)
        return self

    def __exit__(self, exc_type, exc, tb):
        if exc_type is not None:
            return False
        b = self.b
        if self.iterations is None:
            b.j(self.top)
        else:
            b.addi(self.reg, self.reg, -1)
            b.bgtz(self.reg, self.top)
        b.halt()
        return False


def scaled(n, scale, minimum=4):
    """Scale a footprint parameter, keeping it even and bounded below."""
    v = max(minimum, int(round(n * scale)))
    return v + (v & 1)


def fpattern(n, mult, mask):
    """``[float((i * mult) & mask) for i in range(n)]``.

    Kernel arrays are initialised at *build* time in the data segment
    rather than by emitted code: the paper explicitly excludes each
    application's initialisation phase from simulation ("not generating
    references to the simulator until the initialization phase ... had
    been completed"), and runtime init loops would dominate our short
    measurement windows.
    """
    return [float((i * mult) & mask) for i in range(n)]


def ipattern(n, mult, mask):
    """``[(i * mult) & mask for i in range(n)]`` (see fpattern)."""
    return [(i * mult) & mask for i in range(n)]
