"""Synthetic statistical workloads.

Generates programs with *controlled* statistical properties — instruction
mix, dependency distance, memory footprint, branch behaviour — instead of
the hand-written kernels' natural ones.  Two uses:

* **calibration**: sweep one property at a time (e.g. dependency
  distance) and watch its isolated effect on each multithreading scheme,
  which the structured kernels cannot do;
* **property tests**: random-but-valid programs for exercising the
  pipeline model across a much wider space than the kernel suite.

The generator emits straight-line blocks of the requested mix wrapped in
a loop, with all randomness drawn from a seeded generator at *build*
time, so any generated program is deterministic and encodable.
"""

import random
from dataclasses import dataclass

from repro.isa.builder import AsmBuilder
from repro.workloads.kernels.util import Loop, OuterLoop, ipattern


@dataclass(frozen=True)
class StreamSpec:
    """Statistical recipe for a synthetic instruction stream.

    Fractions are of the generated block body; they need not sum to one
    — the remainder is filled with integer ALU operations.
    """

    name: str = "synthetic"
    block_size: int = 64          # instructions per loop body
    loop_iterations: int = 64     # inner-loop trip count
    load_fraction: float = 0.15
    store_fraction: float = 0.08
    fp_fraction: float = 0.10
    branch_fraction: float = 0.05  # forward data-dependent branches
    fdiv_per_block: int = 0
    #: average register-dependency distance (instructions between a
    #: producer and its consumer); small = stall-prone code
    dependency_distance: int = 4
    #: words of data footprint (streamed cyclically)
    footprint_words: int = 2048
    #: stride between consecutive memory accesses, in words
    access_stride: int = 1
    #: software-prefetch distance in accesses ahead (0 = no prefetch)
    prefetch_distance: int = 0
    seed: int = 42

    def validate(self):
        total = (self.load_fraction + self.store_fraction +
                 self.fp_fraction + self.branch_fraction)
        if total > 0.9:
            raise ValueError("instruction-mix fractions exceed 90%")
        if self.block_size < 8:
            raise ValueError("block_size must be at least 8")
        if self.footprint_words < 16:
            raise ValueError("footprint_words must be at least 16")
        return self


# Rotating register pools; the generator picks destinations round-robin
# and sources from recently written registers to hit the requested
# dependency distance.
_INT_POOL = ("t0", "t1", "t2", "t3", "t4", "t5", "t6", "t7")
_FP_POOL = ("f2", "f3", "f4", "f5", "f6", "f7", "f8")


class _Generator:
    def __init__(self, spec, builder, rng):
        self.spec = spec
        self.b = builder
        self.rng = rng
        self.int_written = list(_INT_POOL)
        self.fp_written = list(_FP_POOL)
        self.counter = 0

    def _dest(self, pool):
        self.counter += 1
        return pool[self.counter % len(pool)]

    def _source(self, written):
        """A recently written register, ~dependency_distance back."""
        d = max(1, int(self.rng.expovariate(
            1.0 / self.spec.dependency_distance)))
        return written[-min(d, len(written))]

    def emit_block(self):
        spec, b, rng = self.spec, self.b, self.rng
        for _ in range(spec.block_size):
            r = rng.random()
            if r < spec.load_fraction:
                dest = self._dest(_INT_POOL)
                if spec.prefetch_distance:
                    ahead = (4 * spec.access_stride
                             * spec.prefetch_distance)
                    b.pref(ahead, "s1")
                b.lw(dest, 0, "s1")
                self._advance_pointer()
                self.int_written.append(dest)
            elif r < spec.load_fraction + spec.store_fraction:
                b.sw(self._source(self.int_written), 0, "s1")
                self._advance_pointer()
            elif r < (spec.load_fraction + spec.store_fraction
                      + spec.fp_fraction):
                dest = self._dest(_FP_POOL)
                b.fadd(dest, self._source(self.fp_written),
                       self._source(self.fp_written))
                self.fp_written.append(dest)
            elif r < (spec.load_fraction + spec.store_fraction
                      + spec.fp_fraction + spec.branch_fraction):
                skip = b.fresh_label("syn")
                b.andi("t8", self._source(self.int_written), 1)
                b.beq("t8", "zero", skip)
                b.addi("t9", "t9", 1)
                b.label(skip)
            else:
                dest = self._dest(_INT_POOL)
                b.addi(dest, self._source(self.int_written), 1)
                self.int_written.append(dest)
        for _ in range(spec.fdiv_per_block):
            dest = self._dest(_FP_POOL)
            b.fadd("f1", "f1", "f0")         # keep the divisor nonzero
            b.fdiv(dest, "f0", "f1")
            b.backoff(52)
            self.fp_written.append(dest)

    def _advance_pointer(self):
        spec, b = self.spec, self.b
        b.addi("s1", "s1", 4 * spec.access_stride)
        # wrap within the footprint
        wrap = b.fresh_label("wrap")
        b.blt("s1", "s2", wrap)
        b.move("s1", "s0")
        b.label(wrap)


def build_stream(spec, code_base=0, data_base=0x100000,
                 iterations=None):
    """Build a synthetic program from a :class:`StreamSpec`."""
    spec.validate()
    rng = random.Random(spec.seed)
    b = AsmBuilder(spec.name, code_base, data_base)
    data = b.word("data", ipattern(spec.footprint_words, 3, 63))
    b.li("s0", data)                      # footprint base
    b.li("s2", data + 4 * spec.footprint_words)   # footprint end
    b.fcvtif("f0", "zero")
    b.li("t0", 1)
    b.fcvtif("f1", "t0")                  # f1 = 1.0 (divisor seed)
    gen = _Generator(spec, b, rng)
    with OuterLoop(b, iterations):
        b.move("s1", "s0")
        with Loop(b, "s6", spec.loop_iterations):
            gen.emit_block()
    return b.build()


def build_stream_process(spec, index=0, iterations=None):
    """A ready-to-schedule Process around a synthetic stream."""
    from repro.core.simulator import Process
    program = build_stream(
        spec,
        code_base=0x600000 + index * (0x40000 + 0x11E0),
        data_base=0x6000000 + index * (0x200000 + 0x12A0),
        iterations=iterations)
    return Process("%s.%d" % (spec.name, index), program)
