"""Deprecated synthetic-stream shim.

The ad-hoc randomisation that lived here moved to
:mod:`repro.workloads.generator`, which generalises it (mul/shift
pressure, multi-block bodies, loop nests, sharing patterns) behind the
canonical :class:`~repro.workloads.generator.GenSpec`.  This module
keeps the old API alive for out-of-tree callers:

* :class:`StreamSpec` still constructs and validates silently (it is a
  plain recipe object);
* :func:`build_stream` / :func:`build_stream_process` emit a
  :class:`DeprecationWarning` and delegate to the generator with a
  compatible spec, producing **bit-identical** programs to the historical
  implementation (same seed, same draw order — regression-tested in
  ``tests/workloads/test_synthetic.py``).
"""

import warnings
from dataclasses import dataclass

from repro.workloads.generator import (GenSpec, generate_process,
                                       generate_program)


@dataclass(frozen=True)
class StreamSpec:
    """Deprecated recipe; superseded by
    :class:`repro.workloads.generator.GenSpec` (a strict superset)."""

    name: str = "synthetic"
    block_size: int = 64          # instructions per loop body
    loop_iterations: int = 64     # inner-loop trip count
    load_fraction: float = 0.15
    store_fraction: float = 0.08
    fp_fraction: float = 0.10
    branch_fraction: float = 0.05  # forward data-dependent branches
    fdiv_per_block: int = 0
    #: average register-dependency distance (instructions between a
    #: producer and its consumer); small = stall-prone code
    dependency_distance: int = 4
    #: words of data footprint (streamed cyclically)
    footprint_words: int = 2048
    #: stride between consecutive memory accesses, in words
    access_stride: int = 1
    #: software-prefetch distance in accesses ahead (0 = no prefetch)
    prefetch_distance: int = 0
    seed: int = 42

    def validate(self):
        self.to_genspec()
        return self

    def to_genspec(self):
        """The equivalent :class:`GenSpec` (same program, same seed)."""
        return GenSpec(
            name=self.name, seed=self.seed,
            block_size=self.block_size,
            loop_iterations=self.loop_iterations,
            load_fraction=self.load_fraction,
            store_fraction=self.store_fraction,
            fp_fraction=self.fp_fraction,
            branch_fraction=self.branch_fraction,
            fdiv_per_block=self.fdiv_per_block,
            dependency_distance=self.dependency_distance,
            footprint_words=self.footprint_words,
            access_stride=self.access_stride,
            prefetch_distance=self.prefetch_distance,
        ).validate()


def _deprecated(old, new):
    warnings.warn(
        "%s is deprecated; use repro.workloads.generator.%s with a "
        "GenSpec" % (old, new), DeprecationWarning, stacklevel=3)


def build_stream(spec, code_base=0, data_base=0x100000,
                 iterations=None):
    """Deprecated: delegates to :func:`generator.generate_program`."""
    _deprecated("build_stream", "generate_program")
    return generate_program(spec.to_genspec(), code_base=code_base,
                            data_base=data_base, iterations=iterations,
                            verify=False)


def build_stream_process(spec, index=0, iterations=None):
    """Deprecated: delegates to :func:`generator.generate_process`."""
    _deprecated("build_stream_process", "generate_process")
    return generate_process(spec.to_genspec(), index=index,
                            iterations=iterations, verify=False)
