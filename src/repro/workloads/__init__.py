"""Workloads: Spec89 stand-ins, Table 5 mixes, and SPLASH stand-ins.

The paper drives its uniprocessor study with Spec89 programs compiled by
the MIPS compilers and its multiprocessor study with the SPLASH suite.
Neither is available (nor runnable on this ISA), so each program is
replaced by a *stand-in kernel*: a small program written for our ISA whose
instruction mix, dependency structure, memory footprint, and sharing
pattern stress the same resources the original stresses.  DESIGN.md
documents the substitution per program.
"""

from repro.workloads.uniprocessor import (
    WORKLOADS,
    build_workload,
    build_process,
    kernel_names,
)
from repro.workloads.splash import SPLASH_APPS, build_app
from repro.workloads.generator import (
    GenSpec,
    GenerationError,
    generate_program,
    generate_process,
    generate_processes,
    generate_family,
    verify_generated,
)
from repro.workloads.synthetic import (
    StreamSpec,
    build_stream,
    build_stream_process,
)
from repro.workloads.characterize import (
    profile_program,
    profile_kernel,
    characterization_table,
)

__all__ = [
    "WORKLOADS",
    "build_workload",
    "build_process",
    "kernel_names",
    "SPLASH_APPS",
    "build_app",
    "GenSpec",
    "GenerationError",
    "generate_program",
    "generate_process",
    "generate_processes",
    "generate_family",
    "verify_generated",
    "StreamSpec",
    "build_stream",
    "build_stream_process",
    "profile_program",
    "profile_kernel",
    "characterization_table",
]
