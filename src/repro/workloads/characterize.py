"""Workload characterisation: measure what each stand-in actually does.

DESIGN.md claims each kernel stresses particular resources (instruction
mix, memory intensity, divide density, branchiness, footprint).  This
module *measures* those properties by functional execution, so the
claims are testable and the characterisation table can be printed next
to the paper's workload descriptions.
"""

from dataclasses import dataclass, field

from repro.isa.opcodes import Op, OP_INFO, FU
from repro.isa.executor import ArchState, Memory, execute


@dataclass
class Profile:
    """Dynamic-instruction profile of one program run."""

    name: str
    instructions: int = 0
    loads: int = 0
    stores: int = 0
    branches: int = 0
    taken_branches: int = 0
    fp_ops: int = 0
    fp_divides: int = 0
    int_muldiv: int = 0
    sync_ops: int = 0
    backoffs: int = 0
    #: distinct data words touched (footprint proxy)
    data_words: int = 0
    #: distinct 4 KB data pages touched
    data_pages: int = 0
    #: distinct instructions executed (code working set, words)
    code_words: int = 0
    touched_words: set = field(default_factory=set, repr=False)
    touched_pcs: set = field(default_factory=set, repr=False)

    def rate(self, count):
        return count / self.instructions if self.instructions else 0.0

    @property
    def memory_fraction(self):
        return self.rate(self.loads + self.stores)

    @property
    def fp_fraction(self):
        return self.rate(self.fp_ops)

    @property
    def branch_fraction(self):
        return self.rate(self.branches)

    @property
    def divides_per_kinst(self):
        return 1000.0 * self.rate(self.fp_divides)

    def finalize(self):
        self.data_words = len(self.touched_words)
        self.data_pages = len({w >> 10 for w in self.touched_words})
        self.code_words = len(self.touched_pcs)
        return self


_FP_UNITS = (FU.FPADD, FU.FPDIV)


def profile_program(program, max_steps=2_000_000, memory=None):
    """Execute ``program`` functionally, collecting a :class:`Profile`."""
    if memory is None:
        memory = Memory()
        program.load(memory)
    state = ArchState(entry=program.entry)
    profile = Profile(program.name)
    instructions = program.instructions
    steps = 0
    while not state.halted and steps < max_steps:
        pc = state.pc
        inst = instructions[pc]
        info = inst.info
        profile.instructions += 1
        profile.touched_pcs.add(pc)
        if info.is_load or info.is_store:
            addr = state.regs[inst.rs1] + inst.imm
            profile.touched_words.add(addr >> 2)
            if info.is_load:
                profile.loads += 1
            else:
                profile.stores += 1
        if info.is_branch:
            profile.branches += 1
        if info.unit in _FP_UNITS:
            profile.fp_ops += 1
        if info.unit is FU.FPDIV:
            profile.fp_divides += 1
        if info.unit is FU.MULDIV:
            profile.int_muldiv += 1
        if info.is_sync:
            profile.sync_ops += 1
        if inst.op is Op.BACKOFF:
            profile.backoffs += 1
        execute(state, inst, memory)
        if info.is_branch and state.pc != pc + 1:
            profile.taken_branches += 1
        steps += 1
    return profile.finalize()


def profile_kernel(name, scale=0.25, **kwargs):
    """Profile one Spec89 stand-in by registry name."""
    from repro.workloads.kernels import KERNELS
    program = KERNELS[name](iterations=1, scale=scale,
                            data_base=0x100000, **kwargs)
    return profile_program(program)


def characterization_table(scale=0.25, kernels=None):
    """Render the measured characterisation of every kernel."""
    from repro.workloads.kernels import KERNELS
    from repro.experiments.report import render_table
    names = sorted(kernels or KERNELS)
    rows = []
    for name in names:
        p = profile_kernel(name, scale=scale)
        rows.append((name, [
            p.instructions,
            "%.0f%%" % (100 * p.memory_fraction),
            "%.0f%%" % (100 * p.fp_fraction),
            "%.0f%%" % (100 * p.branch_fraction),
            "%.1f" % p.divides_per_kinst,
            p.data_pages,
            p.code_words,
        ]))
    return render_table(
        "Kernel characterisation (measured, one iteration)",
        ["dyn.inst", "mem", "fp", "branch", "div/ki", "pages", "code"],
        rows, col_width=10)
