"""The seven uniprocessor workloads of the paper's Table 5.

=====  ========================================  =====================
Name   Members                                   Stresses
=====  ========================================  =====================
IC     doduc, li, eqntott, mxm                   instruction cache
DC     cfft2d, gmtry, tomcatv, vpenta            data cache
DT     btrix, cholsky, gmtry, vpenta             data TLB
FP     emit, cholsky, doduc, matrix300           floating point
R0     emit, btrix, cfft2d, eqntott              random mix
R1     mxm, li, matrix300, tomcatv               random mix
SP     mp3d, water, locus, barnes (1-thread)     SPLASH uniprocessor
=====  ========================================  =====================

Each process is assembled into its own region of the physical address
space; bases are staggered by odd page/line offsets so that identically
laid-out programs do not map onto identical cache sets.
"""

from repro.core.simulator import Process
from repro.workloads.kernels import KERNELS
from repro.workloads import splash as splash_pkg

#: Table 5 (SP uses the uniprocessor versions of four SPLASH apps).
WORKLOADS = {
    "IC": ("doduc", "li", "eqntott", "mxm"),
    "DC": ("cfft2d", "gmtry", "tomcatv", "vpenta"),
    "DT": ("btrix", "cholsky", "gmtry", "vpenta"),
    "FP": ("emit", "cholsky", "doduc", "matrix300"),
    "R0": ("emit", "btrix", "cfft2d", "eqntott"),
    "R1": ("mxm", "li", "matrix300", "tomcatv"),
    "SP": ("mp3d", "water", "locus", "barnes"),
}

#: Presentation order used by Table 7 and Figures 6/7.
WORKLOAD_ORDER = ("IC", "DC", "DT", "FP", "R0", "R1", "SP")

_CODE_STRIDE = 0x100000
_DATA_BASE = 0x2000000
_DATA_STRIDE = 0x400000
#: Odd page+line offsets decorrelating the processes' cache sets: without
#: them, identically laid-out programs at power-of-two bases map onto
#: identical direct-mapped cache indices and thrash each other.
_STAGGER = 0x1260
_CODE_STAGGER = 0x11A0


def kernel_names():
    return sorted(KERNELS)


def _bases(index):
    code = _CODE_STRIDE * (index + 1) + index * _CODE_STAGGER
    data = _DATA_BASE + index * _DATA_STRIDE + index * _STAGGER
    return code, data


def build_process(kernel_name, index=0, scale=1.0, iterations=None,
                  barrier_base=None):
    """Build one process around a Spec89 or SPLASH stand-in kernel.

    Returns ``(process, extra)`` where ``extra`` is None for Spec89
    kernels and the :class:`AppInstance` for SPLASH kernels (the caller
    must arrange for its shared data to be loaded and its barrier to be
    configured).
    """
    code_base, data_base = _bases(index)
    if kernel_name in KERNELS:
        program = KERNELS[kernel_name](
            name="%s.%d" % (kernel_name, index), code_base=code_base,
            data_base=data_base, scale=scale, iterations=iterations)
        return Process(program.name, program), None
    if kernel_name in splash_pkg.SPLASH_APPS:
        bid = barrier_base if barrier_base is not None else 100 + index
        instance = splash_pkg.build_app(
            kernel_name, n_threads=1, scale=scale,
            tid_offset=16 + index, shared_base=0x8000000 + index * 0x800000,
            barrier_base=bid)
        program = instance.programs[0]
        return Process(program.name, program), instance
    raise KeyError("unknown kernel %r" % kernel_name)


def build_workload(name, scale=1.0):
    """Build a Table 5 workload.

    Returns ``(processes, app_instances, barrier_configs)``; the caller
    hands ``app_instances`` to the simulator for shared-data loading and
    ``barrier_configs`` to the SyncManager.  For the non-SP workloads
    both extras are empty.
    """
    try:
        members = WORKLOADS[name]
    except KeyError:
        raise KeyError("unknown workload %r (have %s)"
                       % (name, ", ".join(WORKLOAD_ORDER))) from None
    processes = []
    instances = []
    barriers = {}
    for i, kernel in enumerate(members):
        process, extra = build_process(kernel, index=i, scale=scale)
        processes.append(process)
        if extra is not None:
            instances.append(extra)
            barriers.update(extra.barriers)
    return processes, instances, barriers
