"""Figure 2: the context-switch cost of blocked vs interleaved.

The paper's Figure 2 shows a four-context processor where context A's
cache miss, detected at WB, forces the blocked scheme to squash the whole
7-deep pipeline while the interleaved scheme squashes only A's two
in-flight instructions.  We measure exactly those squash counts.
"""

from repro.experiments.microbench import measure_miss_cost
from repro.experiments.report import render_table


def run(latency=40):
    """Returns {scheme: squashed slots} for a 4-context processor."""
    return {
        "blocked": measure_miss_cost("blocked", 4, latency=latency),
        "interleaved": measure_miss_cost("interleaved", 4,
                                         latency=latency),
    }


def render(result=None):
    if result is None:
        result = run()
    rows = [
        ("blocked (flush pipeline)", [result["blocked"]]),
        ("interleaved (squash A only)", [result["interleaved"]]),
    ]
    table = render_table(
        "Figure 2: switch cost of one cache miss, 4 active contexts",
        ["lost slots"], rows)
    note = ("\npaper: blocked = 7 (pipeline depth), "
            "interleaved = 2 (context A's share of the window)")
    return table + note
