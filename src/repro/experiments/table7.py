"""Table 7: increase in application throughput with multiple contexts.

For each Table 5 workload and each (scheme, context-count), the
fair-share normalised throughput is measured and reported as a ratio to
the single-context run of the same workload — the paper's "increase in
application throughput".  Paper headline: interleaved +22% (2 contexts) /
+50% (4); blocked +3% / +11%; DC and DT reach +65% / +46% with 4-context
interleaving.
"""

import math

from repro.workloads.uniprocessor import WORKLOAD_ORDER
from repro.experiments.runner import ExperimentContext
from repro.experiments.report import render_table

CONFIGS = (("interleaved", 2), ("blocked", 2),
           ("interleaved", 4), ("blocked", 4))


def points(workloads=WORKLOAD_ORDER):
    """Every (kind, name, scheme, n_contexts) simulation this table
    needs, for the sweep engine to schedule ahead of rendering."""
    from repro.workloads.uniprocessor import WORKLOADS
    out = []
    for w in workloads:
        out.append(("uniproc", w, "single", 1))
        for scheme, n in CONFIGS:
            out.append(("uniproc", w, scheme, n))
        for kernel in WORKLOADS[w]:
            out.append(("dedicated", kernel, "single", 1))
    return out


def run(ctx=None, workloads=WORKLOAD_ORDER):
    """Returns {(scheme, n): {workload: throughput ratio}}."""
    if ctx is None:
        ctx = ExperimentContext()
    table = {}
    base = {w: ctx.normalized_throughput(w, "single", 1)
            for w in workloads}
    for scheme, n in CONFIGS:
        row = {}
        for w in workloads:
            tp = ctx.normalized_throughput(w, scheme, n)
            row[w] = tp / base[w]
        table[(scheme, n)] = row
    return table


def geometric_mean(values):
    return math.exp(sum(math.log(v) for v in values) / len(values))


def render(result=None, workloads=WORKLOAD_ORDER):
    if result is None:
        result = run(workloads=workloads)
    rows = []
    for n in (2, 4):
        for scheme in ("interleaved", "blocked"):
            row = result[(scheme, n)]
            values = [row[w] for w in workloads]
            values.append(geometric_mean(values))
            rows.append(("%d ctx %s" % (n, scheme), values))
    table = render_table(
        "Table 7: application throughput ratio vs single context",
        list(workloads) + ["Mean"], rows, col_width=8, first_width=20)
    note = ("\npaper means: 2ctx interleaved 1.22 / blocked 1.03; "
            "4ctx interleaved 1.50 / blocked 1.11")
    return table + note
