"""Text rendering for the regenerated tables and figures."""


def render_table(title, col_names, rows, col_width=12, first_width=24):
    """Render a simple aligned table.

    ``rows`` is a list of (label, values) with one value per column;
    values may be strings or numbers.
    """
    lines = [title, "=" * len(title)]
    header = " " * first_width + "".join(
        "%*s" % (col_width, c) for c in col_names)
    lines.append(header)
    lines.append("-" * len(header))
    for label, values in rows:
        cells = []
        for v in values:
            if isinstance(v, float):
                cells.append("%*.2f" % (col_width, v))
            else:
                cells.append("%*s" % (col_width, v))
        lines.append("%-*s%s" % (first_width, label, "".join(cells)))
    return "\n".join(lines)


_BAR_CHARS = {
    "busy": "#",
    "instruction": "i",
    "instruction_short": "i",
    "instruction_long": "I",
    "inst_cache": "c",
    "data_cache": "d",
    "memory": "m",
    "synchronization": "s",
    "context_switch": "x",
    "idle": ".",
}


def render_stacked_bars(title, bars, width=60, normalize=True):
    """ASCII stacked bars (the paper's Figures 6-9 style).

    ``bars`` is a list of (label, {category: value}).  With
    ``normalize=True`` every bar fills ``width`` characters (utilisation
    breakdown, Figures 6/7); with ``normalize=False`` the values are
    treated as fractions of the *reference* bar, so total bar length
    tracks normalised execution time (Figures 8/9).
    """
    lines = [title, "=" * len(title)]
    legend = "  ".join("%s=%s" % (ch, name)
                       for name, ch in _BAR_CHARS.items()
                       if any(name in b for _, b in bars))
    lines.append("legend: " + legend)
    for label, breakdown in bars:
        total = sum(breakdown.values())
        denom = total if normalize else 1.0
        bar = []
        for name, value in breakdown.items():
            n = int(round(width * value / denom)) if denom else 0
            bar.append(_BAR_CHARS.get(name, "?") * n)
        bar_text = "".join(bar)
        if normalize:
            bar_text = bar_text[:width]
        bar_text = bar_text.ljust(width)
        busy_pct = 100.0 * breakdown.get("busy", 0.0) / total if total else 0
        lines.append("%-28s |%s| busy=%4.1f%%" % (label, bar_text, busy_pct))
    return "\n".join(lines)


def render_timeline(title, lanes, max_cycles=80):
    """Cycle-by-cycle issue timeline (the paper's Figure 3 style).

    ``lanes`` is a list of (label, string) where each character of the
    string describes one cycle: a context letter for an issued
    instruction, 'x' for a squashed slot, '.' for a stall/idle cycle.
    """
    lines = [title, "=" * len(title)]
    ruler = "".join("%-10s" % i for i in range(0, max_cycles, 10))
    lines.append(" " * 24 + ruler[:max_cycles])
    for label, cells in lanes:
        lines.append("%-23s %s" % (label, cells[:max_cycles]))
    return "\n".join(lines)
