"""Command-line entry point: regenerate any table or figure.

Usage::

    interleaving-experiments figure3
    interleaving-experiments table7
    interleaving-experiments all
"""

import argparse
import sys
import time

from repro.experiments import (
    figure2,
    figure3,
    table4,
    table7,
    figures6_7,
    table10,
    figures8_9,
    configs,
)
from repro.experiments.runner import ExperimentContext


def _uniproc(ctx):
    print(table7.render(table7.run(ctx)))
    print()
    print(figures6_7.render(figures6_7.run(ctx, scheme="blocked"),
                            scheme="blocked"))
    print()
    print(figures6_7.render(figures6_7.run(ctx, scheme="interleaved"),
                            scheme="interleaved"))


def _mp(ctx):
    print(table10.render(table10.run(ctx)))
    print()
    print(figures8_9.render(figures8_9.run(ctx, scheme="blocked"),
                            scheme="blocked"))
    print()
    print(figures8_9.render(figures8_9.run(ctx, scheme="interleaved"),
                            scheme="interleaved"))


def _summary(ctx):
    from repro.experiments import summary
    print(summary.render(ctx=ctx))


def _analyze(ctx):
    """Deep-dive analysis of a representative run of each environment."""
    from repro.experiments import analysis
    run = ctx.uniproc_run("DC", "interleaved", 4)
    print(analysis.render_workstation(
        analysis.analyze_workstation(run.simulator, run.result)))
    print()
    from repro.core.mpsimulator import MultiprocessorSimulator
    from repro.workloads.splash import build_app
    app = build_app("mp3d", n_threads=ctx.mp_params.n_nodes * 4,
                    threads_per_node=4)
    sim = MultiprocessorSimulator(app, scheme="interleaved",
                                  n_contexts=4, params=ctx.mp_params,
                                  seed=ctx.seed)
    result = sim.run_to_completion()
    print(analysis.render_multiprocessor(
        analysis.analyze_multiprocessor(sim, result)))


def _export(ctx):
    """Run the core tables and dump every memoised run as JSON."""
    from repro.experiments import export
    table7.run(ctx)
    table10.run(ctx)
    path = export.write_json("results.json", export.context_to_dict(ctx))
    print("wrote %s" % path)


EXPERIMENTS = {
    "summary": _summary,
    "analyze": _analyze,
    "export": _export,
    "configs": lambda ctx: print(configs.render_all()),
    "figure2": lambda ctx: print(figure2.render()),
    "figure3": lambda ctx: print(figure3.render()),
    "table4": lambda ctx: print(table4.render()),
    "table7": lambda ctx: print(table7.render(table7.run(ctx))),
    "figure6": lambda ctx: print(figures6_7.render(
        figures6_7.run(ctx, scheme="blocked"), scheme="blocked")),
    "figure7": lambda ctx: print(figures6_7.render(
        figures6_7.run(ctx, scheme="interleaved"), scheme="interleaved")),
    "table10": lambda ctx: print(table10.render(table10.run(ctx))),
    "figure8": lambda ctx: print(figures8_9.render(
        figures8_9.run(ctx, scheme="blocked"), scheme="blocked")),
    "figure9": lambda ctx: print(figures8_9.render(
        figures8_9.run(ctx, scheme="interleaved"), scheme="interleaved")),
    "uniprocessor": _uniproc,
    "multiprocessor": _mp,
}


def main(argv=None):
    parser = argparse.ArgumentParser(
        description="Regenerate the paper's tables and figures.")
    parser.add_argument("experiment",
                        choices=sorted(EXPERIMENTS) + ["all"],
                        help="which table/figure to regenerate")
    parser.add_argument("--profile", choices=("fast", "paper"),
                        default="fast",
                        help="machine profile (paper = full-size caches; "
                             "orders of magnitude slower)")
    parser.add_argument("--nodes", type=int, default=None,
                        help="multiprocessor node count (default 8)")
    parser.add_argument("--measure", type=int, default=None,
                        help="uniprocessor measurement window, cycles")
    parser.add_argument("--warmup", type=int, default=None,
                        help="uniprocessor warmup, cycles")
    parser.add_argument("--seed", type=int, default=1994)
    args = parser.parse_args(argv)

    from repro.config import SystemConfig, MultiprocessorParams
    config = (SystemConfig.paper() if args.profile == "paper"
              else SystemConfig.fast())
    kwargs = {"config": config, "seed": args.seed}
    if args.nodes is not None:
        kwargs["mp_params"] = MultiprocessorParams(n_nodes=args.nodes)
    if args.measure is not None:
        kwargs["measure"] = args.measure
    if args.warmup is not None:
        kwargs["warmup"] = args.warmup
    ctx = ExperimentContext(**kwargs)
    t0 = time.time()
    if args.experiment == "all":
        for name in ("configs", "figure2", "figure3", "table4"):
            EXPERIMENTS[name](ctx)
            print()
        _uniproc(ctx)
        print()
        _mp(ctx)
    else:
        EXPERIMENTS[args.experiment](ctx)
    print("\n[%.1f s]" % (time.time() - t0), file=sys.stderr)
    return 0


if __name__ == "__main__":
    sys.exit(main())
