"""Command-line entry point: regenerate any table or figure.

Usage::

    repro-experiments figure3
    repro-experiments table7
    repro-experiments all
    repro-experiments sweep --jobs 4          # parallel, cached
    repro-experiments cache stats
    repro-experiments cache clear
    repro-experiments submit --workloads R1   # queue a job in the spool
    repro-experiments serve --once            # run queued jobs, then exit
    repro-experiments jobs                    # list spool job statuses
    repro-experiments jobs sj-00001           # one job's full status

(``interleaving-experiments`` is the historical alias of the same
entry point.)
"""

import argparse
import os
import sys
import time
import warnings

from repro.experiments import (
    figure2,
    figure3,
    table4,
    table7,
    figures6_7,
    table10,
    figures8_9,
    configs,
)
from repro.experiments.runner import ExperimentContext


def _uniproc(ctx, workloads=None):
    from repro.workloads.uniprocessor import WORKLOAD_ORDER
    workloads = tuple(workloads) if workloads else WORKLOAD_ORDER
    print(table7.render(table7.run(ctx, workloads=workloads),
                        workloads=workloads))
    print()
    for scheme in ("blocked", "interleaved"):
        print(figures6_7.render(
            figures6_7.run(ctx, scheme=scheme, workloads=workloads),
            scheme=scheme, workloads=workloads))
        print()


def _mp(ctx, apps=None):
    from repro.workloads.splash import SPLASH_ORDER
    apps = tuple(apps) if apps else SPLASH_ORDER
    print(table10.render(table10.run(ctx, apps=apps), apps=apps))
    print()
    for scheme in ("blocked", "interleaved"):
        print(figures8_9.render(
            figures8_9.run(ctx, scheme=scheme, apps=apps),
            scheme=scheme, apps=apps))
        print()


def _summary(ctx):
    from repro.experiments import summary
    print(summary.render(ctx=ctx))


def _analyze(ctx):
    """Deep-dive analysis of a representative run of each environment."""
    from repro.experiments import analysis
    # Analysis inspects the simulator's end state, which the on-disk
    # cache does not persist; force a live simulation if necessary.
    run = ctx.uniproc_run("DC", "interleaved", 4, need_simulator=True)
    print(analysis.render_workstation(
        analysis.analyze_workstation(run.simulator, run.result)))
    print()
    from repro.api import Simulation
    simulation = Simulation.from_config(
        ctx.mp_params, scheme="interleaved", n_contexts=4,
        seed=ctx.seed).load("mp3d")
    result = simulation.run()
    print(analysis.render_multiprocessor(
        analysis.analyze_multiprocessor(simulation.simulator,
                                        result.raw)))


def _export(ctx):
    """Run the core tables and dump every memoised run as JSON."""
    from repro.experiments import export
    table7.run(ctx)
    table10.run(ctx)
    path = export.write_json("results.json", export.context_to_dict(ctx))
    print("wrote %s" % path)


def _render_everything(ctx, workloads=None, apps=None):
    """Render every table and figure from an (ideally pre-warmed) ctx."""
    for name in ("configs", "figure2", "figure3", "table4"):
        EXPERIMENTS[name](ctx)
        print()
    _uniproc(ctx, workloads=workloads)
    print()
    _mp(ctx, apps=apps)


def _sweep(ctx, args):
    """Compute every figure/table point in parallel, then render."""
    from repro.experiments import sweep
    from repro.workloads.uniprocessor import WORKLOADS
    from repro.workloads.splash import SPLASH_APPS
    workloads = args.workloads.split(",") if args.workloads else None
    apps = args.apps.split(",") if args.apps else None
    unknown = ([w for w in workloads or () if w not in WORKLOADS]
               + [a for a in apps or () if a not in SPLASH_APPS])
    if unknown:
        sys.exit("error: unknown workload/app name(s): %s (workloads: "
                 "%s; apps: %s)" % (", ".join(unknown),
                                    ", ".join(sorted(WORKLOADS)),
                                    ", ".join(sorted(SPLASH_APPS))))
    engine = sweep.SweepEngine(
        ctx, jobs=args.jobs,
        progress=lambda msg: print(msg, file=sys.stderr))
    report = engine.run(sweep.default_points(workloads=workloads,
                                             apps=apps))
    print("sweep: %s" % report.summary(), file=sys.stderr)
    if ctx.cache is not None:
        print("cache: %r" % (ctx.cache.session_stats(),), file=sys.stderr)
    _render_everything(ctx, workloads=workloads, apps=apps)
    return report


def _write_profile(profiler, path):
    """Persist a cProfile run: raw pstats dump plus a readable summary.

    The dump loads into ``pstats``/``snakeviz`` for interactive digging;
    the ``.txt`` sidecar holds the top 25 functions by cumulative time
    for a quick look without any tooling.
    """
    import io
    import pstats
    directory = os.path.dirname(path)
    if directory:
        os.makedirs(directory, exist_ok=True)
    profiler.dump_stats(path)
    stream = io.StringIO()
    pstats.Stats(path, stream=stream).strip_dirs() \
        .sort_stats("cumulative").print_stats(25)
    summary_path = path + ".txt"
    with open(summary_path, "w") as fh:
        fh.write(stream.getvalue())
    print("profile: %s (summary: %s)" % (path, summary_path),
          file=sys.stderr)


def _cache_admin(args):
    from repro.experiments.cache import ResultCache
    cache = ResultCache(args.cache_dir)
    action = args.action or "stats"
    if action == "clear":
        removed = cache.clear()
        print("cleared %d cache entries under %s" % (removed, cache.root))
    else:
        stats = cache.disk_stats()
        print("cache directory : %s" % stats["root"])
        print("entries         : %d" % stats["entries"])
        print("size            : %.1f KiB" % (stats["bytes"] / 1024.0))
        for kind in sorted(stats["by_kind"]):
            print("  %-10s : %d" % (kind, stats["by_kind"][kind]))
    return 0


def _validate_subsets(workloads, apps):
    """Reject unknown workload/app names with the sweep's error text."""
    from repro.workloads.uniprocessor import WORKLOADS
    from repro.workloads.splash import SPLASH_APPS
    unknown = ([w for w in workloads or () if w not in WORKLOADS]
               + [a for a in apps or () if a not in SPLASH_APPS])
    if unknown:
        sys.exit("error: unknown workload/app name(s): %s (workloads: "
                 "%s; apps: %s)" % (", ".join(unknown),
                                    ", ".join(sorted(WORKLOADS)),
                                    ", ".join(sorted(SPLASH_APPS))))


def _service_spec(args):
    """A JobSpec from the same flags the batch verbs use."""
    from repro.config import SystemConfig, MultiprocessorParams
    from repro.service import JobSpec
    workloads = args.workloads.split(",") if args.workloads else None
    apps = args.apps.split(",") if args.apps else None
    _validate_subsets(workloads, apps)
    kwargs = {
        "config": (SystemConfig.paper() if args.profile == "paper"
                   else SystemConfig.fast()),
        "mp_params": MultiprocessorParams(
            n_nodes=args.nodes if args.nodes is not None else 8),
        "seed": args.seed,
        "engine": args.engine,
        "backend": args.backend,
        "timeout": args.job_timeout,
        "max_retries": args.max_retries,
    }
    if args.warmup is not None:
        kwargs["warmup"] = args.warmup
    if args.measure is not None:
        kwargs["measure"] = args.measure
    if args.points:
        points = []
        for text in args.points.split(","):
            parts = text.split(":")
            if len(parts) != 4 or parts[0] not in ("uniproc", "dedicated",
                                                   "mp", "gen"):
                sys.exit("error: --points entries are "
                         "kind:name:scheme:n_contexts with kind one of "
                         "uniproc/dedicated/mp/gen, not %r" % (text,))
            try:
                points.append((parts[0], parts[1], parts[2],
                               int(parts[3])))
            except ValueError:
                sys.exit("error: bad context count in %r" % (text,))
        # gen points carry a GenSpec text instead of a workload name;
        # validate it parses (the colon-free k=v;k=v form) up front.
        from repro.workloads.generator import GenSpec
        for p in points:
            if p[0] == "gen":
                try:
                    GenSpec.from_text(p[1])
                except ValueError as exc:
                    sys.exit("error: bad gen spec in %r: %s" % (p, exc))
        _validate_subsets(
            [p[1] for p in points if p[0] in ("uniproc", "dedicated")],
            [p[1] for p in points if p[0] == "mp"])
        return JobSpec(points=tuple(points), **kwargs)
    return JobSpec.sweep(workloads=workloads, apps=apps, **kwargs)


def _spool_root(args):
    """The spool directory, honouring the deprecated positional form.

    ``repro-experiments submit <dir>`` (the spool directory as the
    positional action) predates ``--spool``; it still works but warns,
    mirroring the ``run(cycles)`` deprecation shim on the simulators.
    """
    if args.action is not None:
        looks_like_path = (os.sep in args.action
                           or args.action in (".", "..")
                           or os.path.isdir(args.action))
        if args.experiment in ("submit", "serve") or (
                args.experiment == "jobs" and looks_like_path):
            warnings.warn(
                "passing the spool directory positionally is "
                "deprecated; use --spool %s" % args.action,
                DeprecationWarning, stacklevel=2)
            root, args.action = args.action, None
            return root
    return args.spool


def _client_transport(args):
    """The Transport a client verb should use: TCP or spool."""
    from repro.service import connect, open_spool
    if args.connect:
        return connect(args.connect)
    return open_spool(_spool_root(args))


def _transport_name(transport):
    from repro.service.spool import SpoolTransport
    if isinstance(transport, SpoolTransport):
        return str(transport.root)
    return "%s:%d" % (transport.host, transport.port)


def _submit(args):
    """The 'submit' verb: queue a job, print its id (optionally stream).

    ``--spool`` queues into a shared directory; ``--connect HOST:PORT``
    submits over TCP to a ``serve --listen`` process — same spec, same
    results, no shared filesystem.
    """
    spec = _service_spec(args)
    with _client_transport(args) as transport:
        job_id = transport.submit(
            spec, idempotency_key=args.idempotency_key)
        print(job_id)
        if args.stream:
            for payload in transport.stream(job_id):
                print(payload)
    return 0


def _serve(args, _ready=None):
    """The 'serve' verb: run submitted jobs on a worker pool.

    Without ``--listen`` it polls the spool directory (the historical
    transport); with ``--listen HOST:PORT`` it serves the TCP protocol
    of :mod:`repro.service.net` instead.
    """
    from repro.experiments.cache import ResultCache
    from repro.service import JobManager
    from repro.service.burst_cache import default_burst_cache_dir
    from repro.service.spool import Spool, serve_forever
    cache = None if args.no_cache else ResultCache(args.cache_dir)
    manager = JobManager(
        workers=args.workers,
        cache=cache,
        burst_dir=(args.burst_cache_dir if args.burst_cache_dir is not None
                   else default_burst_cache_dir()),
        default_timeout=args.job_timeout)
    if args.listen:
        from repro.service.net import ServiceServer, parse_address
        host, port = parse_address(args.listen)
        server = ServiceServer(manager, host=host, port=port)

        def announce(srv):
            print("listening on %s:%d with %d worker(s)"
                  % (srv.host, srv.port, args.workers), file=sys.stderr)
            if _ready is not None:     # test seam: report the bound port
                _ready(srv.host, srv.port)

        try:
            server.serve(max_seconds=args.serve_seconds, ready=announce)
        except KeyboardInterrupt:
            pass
        finally:
            manager.shutdown(wait=True)
        stats = server.stats.snapshot()
        print("served %d request(s) over %d connection(s)"
              % (stats["requests"], stats["connections"]),
              file=sys.stderr)
        return 0
    spool = Spool(_spool_root(args))
    print("serving spool %s with %d worker(s)%s"
          % (spool.root, args.workers, " (once)" if args.once else ""),
          file=sys.stderr)
    served = serve_forever(spool, manager, once=args.once,
                           max_seconds=args.serve_seconds)
    print("served %d job(s)" % served, file=sys.stderr)
    return 0


def _jobs(args):
    """The 'jobs' verb: list jobs, or show one job in full.

    Reads through the same Transport as 'submit': the spool files
    directly (works with no server up), or a ``serve --listen`` server
    via ``--connect``.
    """
    import json as _json
    from repro.service import ServiceError
    transport = _client_transport(args)
    with transport:
        where = _transport_name(transport)
        if args.action:
            try:
                status = dict(transport.status(args.action))
            except (KeyError, ServiceError):
                sys.exit("error: unknown job id %r under %s"
                         % (args.action, where))
            try:
                status["results"] = len(transport.payloads(args.action))
            except (KeyError, ServiceError):
                status["results"] = 0
            print(_json.dumps(status, indent=2, sort_keys=True))
            return 0
        statuses = transport.jobs()
        if not statuses:
            print("no jobs under %s" % where)
            return 0
        print("%-10s %-10s %9s %9s %6s" % ("JOB", "STATUS", "COMPLETED",
                                           "POINTS", "HITS"))
        for st in statuses:
            print("%-10s %-10s %9s %9s %6s"
                  % (st.get("job_id", "?"), st.get("status", "?"),
                     st.get("completed", "-"), st.get("n_points", "-"),
                     st.get("cache_hits", "-")))
    return 0


def _generate(args):
    """The 'generate' verb: emit a family of generated programs.

    Deterministic: the same ``--spec``/``--seed`` always produces the
    same programs (same ``program_fingerprint``).  Programs are
    verified at birth unless ``--no-verify``; ``--emit-asm DIR`` dumps
    each member's re-assemblable source next to its fingerprint.
    """
    import dataclasses
    from repro.analysis import program_fingerprint
    from repro.workloads.generator import (GenSpec, GenerationError,
                                           generate_family)
    try:
        spec = GenSpec.from_text(args.spec or "")
    except (ValueError, TypeError) as exc:
        sys.exit("error: bad --spec: %s" % (exc,))
    if "seed=" not in (args.spec or ""):
        # --seed names the family head unless the spec text pins one.
        spec = dataclasses.replace(spec, seed=args.seed)
    verify = not args.no_verify
    try:
        family = generate_family(spec, max(1, args.count), verify=verify)
    except GenerationError as exc:
        print("error: %s" % (exc,), file=sys.stderr)
        return 1
    print("spec            : %s" % (spec.to_text() or "<defaults>"))
    print("spec fingerprint: %s" % spec.fingerprint())
    if args.emit_asm:
        os.makedirs(args.emit_asm, exist_ok=True)
    for member, program in family:
        print("%-12s seed=%-6d %5d insts  %s%s"
              % (member.name, member.seed, len(program),
                 program_fingerprint(program),
                 "  verified" if verify else ""))
        if args.emit_asm:
            path = os.path.join(args.emit_asm, "%s.s" % member.name)
            with open(path, "w") as fh:
                fh.write(program.to_source())
            print("  wrote %s" % path)
    return 0


def _lint_programs(widths=(1, 2, 4)):
    """Verify every committed example program (workloads + SPLASH)."""
    from repro.analysis import verify_program
    from repro.config import PipelineParams
    from repro.workloads.uniprocessor import WORKLOAD_ORDER, build_workload
    from repro.workloads.splash import SPLASH_ORDER, build_app
    threshold = PipelineParams().short_stall_threshold
    diags = []
    programs = 0
    seen = set()
    for name in WORKLOAD_ORDER:
        processes, _instances, _barriers = build_workload(name, scale=1.0)
        for process in processes:
            program = process.program
            if id(program) in seen:
                continue
            seen.add(id(program))
            programs += 1
            diags.extend(verify_program(program, level="full",
                                        threshold=threshold,
                                        widths=widths))
    for name in SPLASH_ORDER:
        app = build_app(name, 4, threads_per_node=2)
        for program in app.programs:
            if id(program) in seen:
                continue
            seen.add(id(program))
            programs += 1
            diags.extend(verify_program(program, level="full",
                                        threshold=threshold,
                                        widths=widths))
    return diags, programs


def _race_groups():
    """Every committed multi-context group: (label, [program, ...])."""
    from repro.workloads.uniprocessor import WORKLOAD_ORDER, build_workload
    from repro.workloads.splash import SPLASH_ORDER, build_app
    groups = []
    for name in WORKLOAD_ORDER:
        processes, _instances, _barriers = build_workload(name, scale=1.0)
        if len(processes) >= 2:
            groups.append(("workload:%s" % name,
                           [p.program for p in processes]))
    for name in SPLASH_ORDER:
        app = build_app(name, 4, threads_per_node=2)
        if len(app.programs) >= 2:
            groups.append(("splash:%s" % name, list(app.programs)))
    return groups


def _race_pass():
    """Race-check every committed group.

    Returns ``(diags, suppressed, summary)``: the active (unsanctioned)
    diagnostics across all groups, the sanctioned findings as
    ``{"group", "code", "site", "rationale"}`` entries, and a per-code
    count summary.
    """
    from repro.analysis.races import (race_findings, split_sanctioned,
                                      findings_to_diagnostics)
    diags, suppressed = [], []
    counts = {}
    groups = _race_groups()
    for label, programs in groups:
        findings = race_findings(programs)
        active, sanctioned, rationales = split_sanctioned(findings,
                                                          programs)
        for diag in findings_to_diagnostics(active):
            diags.append(diag)
            counts[diag.code] = counts.get(diag.code, 0) + 1
        seen = set()
        for finding in sanctioned:
            site = "%s@pc=%d" % (finding.a.program, finding.a.pc)
            if (finding.code, site) in seen:
                continue
            seen.add((finding.code, site))
            suppressed.append({"group": label, "code": finding.code,
                               "site": site,
                               "rationale": rationales[finding]})
    summary = dict(sorted(counts.items()))
    summary["groups"] = len(groups)
    summary["suppressed"] = len(suppressed)
    return diags, suppressed, summary


def _render_races_text(diags, suppressed):
    """Race-pass text report: R704 summarised, everything else full."""
    from repro.analysis import render_report
    lines = []
    loud = [d for d in diags if d.code != "R704"]
    if loud:
        lines.append(render_report(loud))
    audits = {}
    for d in diags:
        if d.code == "R704":
            audits[d.program] = audits.get(d.program, 0) + 1
    if audits:
        lines.append("R704 unbounded-access audits (run with --json "
                     "for the full list): %s"
                     % ", ".join("%s=%d" % kv
                                 for kv in sorted(audits.items())))
    for entry in suppressed:
        lines.append("suppressed %(code)s %(group)s %(site)s "
                     "-- %(rationale)s" % entry)
    return "\n".join(lines)


def _races(args):
    """The 'races' verb: cross-context race analysis of every
    committed multi-context group (R7xx rules)."""
    import json as _json
    from repro.analysis import has_errors
    diags, suppressed, summary = _race_pass()
    if args.json:
        payload = {"races": summary,
                   "suppressed": suppressed,
                   "diagnostics": [d.to_dict() for d in diags]}
        print(_json.dumps(payload, indent=2, sort_keys=True))
    else:
        text = _render_races_text(diags, suppressed)
        if text:
            print(text)
        print("races: %s" % summary)
    return 1 if has_errors(diags) else 0


def _lint(args):
    """The 'lint' verb: codebase rules and/or program verification."""
    import json as _json
    from repro.analysis import (lint_codebase, render_report, has_errors)
    both = args.lint_all or not (args.codebase or args.programs)
    do_codebase = args.codebase or both
    do_programs = args.programs or both
    diags = []
    summary = {}
    suppressed_races = []
    if do_codebase:
        codebase_diags, codebase_summary = lint_codebase()
        diags.extend(codebase_diags)
        summary["codebase"] = codebase_summary
    if do_programs:
        program_diags, programs = _lint_programs()
        diags.extend(program_diags)
        summary["programs"] = {
            "verified": programs,
            "errors": sum(1 for d in program_diags if d.is_error),
            "warnings": sum(1 for d in program_diags if not d.is_error),
        }
    if args.races:
        race_diags, suppressed_races, race_summary = _race_pass()
        diags.extend(race_diags)
        summary["races"] = race_summary
    if args.json:
        payload = dict(summary)
        if suppressed_races:
            payload["suppressed_races"] = suppressed_races
        payload["diagnostics"] = [d.to_dict() for d in diags]
        print(_json.dumps(payload, indent=2, sort_keys=True))
    else:
        loud = [d for d in diags if d.code != "R704"]
        if loud:
            print(render_report(loud))
        race_text = _render_races_text(
            [d for d in diags if d.code == "R704"], suppressed_races)
        if race_text:
            print(race_text)
        for section in sorted(summary):
            print("%s: %s" % (section, summary[section]))
    return 1 if has_errors(diags) else 0


EXPERIMENTS = {
    "summary": _summary,
    "analyze": _analyze,
    "export": _export,
    "configs": lambda ctx: print(configs.render_all()),
    "figure2": lambda ctx: print(figure2.render()),
    "figure3": lambda ctx: print(figure3.render()),
    "table4": lambda ctx: print(table4.render()),
    "table7": lambda ctx: print(table7.render(table7.run(ctx))),
    "figure6": lambda ctx: print(figures6_7.render(
        figures6_7.run(ctx, scheme="blocked"), scheme="blocked")),
    "figure7": lambda ctx: print(figures6_7.render(
        figures6_7.run(ctx, scheme="interleaved"), scheme="interleaved")),
    "table10": lambda ctx: print(table10.render(table10.run(ctx))),
    "figure8": lambda ctx: print(figures8_9.render(
        figures8_9.run(ctx, scheme="blocked"), scheme="blocked")),
    "figure9": lambda ctx: print(figures8_9.render(
        figures8_9.run(ctx, scheme="interleaved"), scheme="interleaved")),
    "uniprocessor": _uniproc,
    "multiprocessor": _mp,
}


def main(argv=None, _ready=None):
    from repro.experiments.cache import ResultCache, default_cache_dir
    parser = argparse.ArgumentParser(
        description="Regenerate the paper's tables and figures.")
    parser.add_argument("experiment",
                        choices=sorted(EXPERIMENTS) + ["all", "sweep",
                                                       "cache", "lint",
                                                       "races",
                                                       "generate",
                                                       "serve", "submit",
                                                       "jobs"],
                        help="which table/figure to regenerate; 'sweep' "
                             "computes every point in parallel through "
                             "the on-disk cache and renders everything; "
                             "'cache' administers the cache; 'lint' runs "
                             "the static-analysis layer (codebase rules "
                             "and program verification); 'races' runs "
                             "the cross-context race analysis over every "
                             "committed multi-context group; 'generate' "
                             "emits a family of generated programs from "
                             "--spec/--seed; 'submit' queues "
                             "a job in the spool, 'serve' runs queued "
                             "jobs on a worker pool, 'jobs' lists their "
                             "statuses")
    parser.add_argument("action", nargs="?", default=None,
                        help="for the 'cache' verb: stats (default) or "
                             "clear; for the 'jobs' verb: a job id to "
                             "show in full")
    parser.add_argument("--profile", choices=("fast", "paper"),
                        default="fast",
                        help="machine profile (paper = full-size caches; "
                             "orders of magnitude slower)")
    parser.add_argument("--nodes", type=int, default=None,
                        help="multiprocessor node count (default 8)")
    parser.add_argument("--measure", type=int, default=None,
                        help="uniprocessor measurement window, cycles")
    parser.add_argument("--warmup", type=int, default=None,
                        help="uniprocessor warmup, cycles")
    parser.add_argument("--engine", choices=("events", "naive", "burst"),
                        default="events",
                        help="simulation engine for every computed point "
                             "(bit-identical by contract: naive is the "
                             "per-cycle reference, events fast-forwards "
                             "idle windows, burst additionally retires "
                             "precompiled straight-line runs in one step)")
    parser.add_argument("--backend", choices=("auto", "python", "numpy"),
                        default=None,
                        help="scoreboard backend for every computed point "
                             "(bit-identical by contract: python is the "
                             "list-based reference, numpy vectorises the "
                             "register files — needs the repro[fast] "
                             "extra; auto picks numpy when available; "
                             "default: $REPRO_BACKEND or python)")
    parser.add_argument("--cprofile", nargs="?", metavar="PATH",
                        const=os.path.join("results", "profile.pstats"),
                        default=None,
                        help="wrap the whole run in cProfile; writes the "
                             "pstats dump to PATH (default "
                             "results/profile.pstats) and a top-25 "
                             "cumulative summary to PATH.txt")
    parser.add_argument("--seed", type=int, default=1994)
    parser.add_argument("--jobs", type=int,
                        default=os.cpu_count() or 1,
                        help="worker processes for 'sweep' (default: all "
                             "cores; 1 = serial)")
    parser.add_argument("--workloads", default=None,
                        help="comma-separated uniprocessor workload "
                             "subset for 'sweep' (default: all)")
    parser.add_argument("--apps", default=None,
                        help="comma-separated SPLASH app subset for "
                             "'sweep' (default: all)")
    service_group = parser.add_argument_group(
        "service", "options for the 'serve'/'submit'/'jobs' verbs")
    service_group.add_argument(
        "--spool", default=None,
        help="spool directory shared by serve/submit/jobs (default "
             "$REPRO_SPOOL_DIR or .repro_spool)")
    service_group.add_argument(
        "--listen", default=None, metavar="HOST:PORT",
        help="'serve': listen for TCP clients on HOST:PORT instead of "
             "polling the spool directory (PORT 0 = ephemeral)")
    service_group.add_argument(
        "--connect", default=None, metavar="HOST:PORT",
        help="'submit'/'jobs': talk to a 'serve --listen' server over "
             "TCP instead of the spool directory")
    service_group.add_argument(
        "--stream", action="store_true",
        help="'submit': after printing the job id, stream each "
             "result payload to stdout as its point completes")
    service_group.add_argument(
        "--idempotency-key", default=None,
        help="'submit': client-chosen key; re-submitting with the same "
             "key returns the existing job id instead of duplicating "
             "the work (--connect submits always carry one)")
    service_group.add_argument(
        "--points", default=None,
        help="'submit': explicit comma-separated points as "
             "kind:name:scheme:n_contexts (e.g. uniproc:R1:single:1,"
             "uniproc:R1:interleaved:2); default: the full sweep of "
             "--workloads/--apps")
    service_group.add_argument(
        "--workers", type=int, default=2,
        help="worker processes for 'serve' (default 2)")
    service_group.add_argument(
        "--once", action="store_true",
        help="'serve': drain the current queue, wait for every claimed "
             "job to finish, then exit (CI mode)")
    service_group.add_argument(
        "--serve-seconds", type=float, default=None,
        help="'serve': hard wall-clock stop for the serving loop")
    service_group.add_argument(
        "--job-timeout", type=float, default=None,
        help="per-job wall-clock timeout in seconds (submit: recorded "
             "in the spec; serve: default for specs without one)")
    service_group.add_argument(
        "--max-retries", type=int, default=2,
        help="'submit': per-point retry budget on worker death")
    service_group.add_argument(
        "--burst-cache-dir", default=None,
        help="'serve': shared compiled-burst-table cache directory "
             "(default $REPRO_BURST_CACHE_DIR or .repro_burst_cache)")
    gen_group = parser.add_argument_group(
        "generate", "options for the 'generate' verb")
    gen_group.add_argument(
        "--spec", default=None,
        help="'generate': GenSpec as k=v;k=v (or a JSON object); "
             "omitted fields take their defaults, e.g. "
             "\"fp_fraction=0.25;sharing=lock\"")
    gen_group.add_argument(
        "--count", type=int, default=1,
        help="'generate': family size; member i uses seed+i and is "
             "named <name>-%%04d (default 1)")
    gen_group.add_argument(
        "--emit-asm", default=None, metavar="DIR",
        help="'generate': write each member's re-assemblable source "
             "to DIR/<name>.s")
    gen_group.add_argument(
        "--verify", action="store_true",
        help="'generate': verify every program at birth (V1xx + B2xx; "
             "this is the default — the flag exists to state it "
             "explicitly in CI invocations)")
    gen_group.add_argument(
        "--no-verify", action="store_true",
        help="'generate': skip birth verification (fast bulk emission)")
    lint_group = parser.add_argument_group(
        "lint", "options for the 'lint' verb")
    lint_group.add_argument("--codebase", action="store_true",
                            help="lint src/repro with the determinism "
                                 "and stats-parity rules")
    lint_group.add_argument("--programs", action="store_true",
                            help="run the static verifier + burst audit "
                                 "on every committed example program")
    lint_group.add_argument("--all", dest="lint_all", action="store_true",
                            help="both --codebase and --programs (the "
                                 "default when neither is given)")
    lint_group.add_argument("--races", action="store_true",
                            help="also race-check every committed "
                                 "multi-context group (R7xx rules)")
    lint_group.add_argument("--json", action="store_true",
                            help="emit lint results as JSON")
    parser.add_argument("--no-cache", action="store_true",
                        help="disable the on-disk result cache")
    parser.add_argument("--cache-dir", default=None,
                        help="result cache directory (default $%s or %r); "
                             "passing this enables the cache for any verb"
                             % ("REPRO_CACHE_DIR", default_cache_dir()))
    args = parser.parse_args(argv)

    if args.experiment == "cache":
        if args.action not in (None, "stats", "clear"):
            parser.error("cache action must be 'stats' or 'clear', "
                         "not %r" % (args.action,))
        if args.cache_dir is None:
            args.cache_dir = default_cache_dir()
        return _cache_admin(args)
    if args.experiment == "lint":
        return _lint(args)
    if args.experiment == "races":
        return _races(args)
    if args.experiment == "generate":
        if args.verify and args.no_verify:
            parser.error("--verify and --no-verify are mutually "
                         "exclusive")
        return _generate(args)
    if args.experiment == "submit":
        return _submit(args)
    if args.experiment == "serve":
        return _serve(args, _ready=_ready)
    if args.experiment == "jobs":
        return _jobs(args)

    from repro.config import SystemConfig, MultiprocessorParams
    config = (SystemConfig.paper() if args.profile == "paper"
              else SystemConfig.fast())
    kwargs = {"config": config, "seed": args.seed,
              "engine": args.engine, "backend": args.backend}
    if args.nodes is not None:
        kwargs["mp_params"] = MultiprocessorParams(n_nodes=args.nodes)
    if args.measure is not None:
        kwargs["measure"] = args.measure
    if args.warmup is not None:
        kwargs["warmup"] = args.warmup
    # The cache is on for 'sweep' unless --no-cache; other verbs opt in
    # by passing --cache-dir (keeps single-figure runs side-effect free).
    if not args.no_cache and (args.experiment == "sweep"
                              or args.cache_dir is not None):
        kwargs["cache"] = ResultCache(args.cache_dir)
    ctx = ExperimentContext(**kwargs)
    profiler = None
    if args.cprofile is not None:
        import cProfile
        profiler = cProfile.Profile()
    t0 = time.time()
    if profiler is not None:
        profiler.enable()
    try:
        if args.experiment == "sweep":
            _sweep(ctx, args)
        elif args.experiment == "all":
            _render_everything(ctx)
        else:
            EXPERIMENTS[args.experiment](ctx)
    finally:
        if profiler is not None:
            profiler.disable()
            _write_profile(profiler, args.cprofile)
    print("\n[%.1f s]" % (time.time() - t0), file=sys.stderr)
    return 0


if __name__ == "__main__":
    sys.exit(main())
