"""Figure 3: cycle-by-cycle execution of four threads, both schemes.

Reproduces the paper's trace: threads A (two instructions), B (three,
with a two-cycle pipeline dependency), C (four), and D (six), each ending
in a cache miss.  The rendered timeline shows who owns every issue slot;
the blocked scheme flushes seven slots per miss and stalls on B's
dependency, while the interleaved scheme hides the dependency and loses
only each context's own in-flight instructions.
"""

from repro.experiments.microbench import build_four_thread_processor
from repro.experiments.report import render_timeline


def run(latency=30):
    """Returns {scheme: (finish_cycle, lane_string, squashed)}."""
    out = {}
    for scheme in ("blocked", "interleaved"):
        cells = []

        def trace(now, ctx, kind, cells=cells):
            while len(cells) < now:
                cells.append(".")
            if kind == "busy":
                cells.append(ctx.process.name)
            elif kind == "squash":
                cells.append(ctx.process.name.lower())
            else:
                cells.append(".")

        proc = build_four_thread_processor(scheme, latency=latency,
                                           trace=trace)
        now = 0
        while not proc.all_halted() and now < 1000:
            proc.step(now)
            now += 1
        out[scheme] = (now, "".join(cells), proc.stats.squashed)
    return out


def render(result=None, latency=30):
    if result is None:
        result = run(latency=latency)
    lanes = []
    for scheme in ("blocked", "interleaved"):
        finish, cells, squashed = result[scheme]
        lanes.append(("%s (%d cyc)" % (scheme, finish), cells))
    timeline = render_timeline(
        "Figure 3: four threads, miss latency %d "
        "(UPPER=issue, lower=squashed, .=stall)" % latency,
        lanes, max_cycles=max(len(c) for _, c in lanes))
    summary = ("\nsquashed slots: blocked=%d interleaved=%d "
               "(paper: 7 per miss vs 2-3 per miss)"
               % (result["blocked"][2], result["interleaved"][2]))
    return timeline + summary
