"""Table 10: multiprocessor speedup from adding hardware contexts.

For each SPLASH stand-in and each (scheme, contexts-per-processor), the
speedup of the run-to-completion time over the single-context machine.
Paper headline shapes: everything except Cholesky gains; interleaved
beats blocked everywhere at 4 and 8 contexts; Barnes and Water (FP-divide
heavy) show the largest gap; 4-context interleaved beats 8-context
blocked for every application except MP3D.
"""

import math

from repro.workloads.splash import SPLASH_ORDER
from repro.experiments.runner import ExperimentContext
from repro.experiments.report import render_table

CONFIGS = (("interleaved", 2), ("blocked", 2),
           ("interleaved", 4), ("blocked", 4),
           ("interleaved", 8), ("blocked", 8))


def points(apps=SPLASH_ORDER, configs=CONFIGS):
    """Every simulation point this table needs (sweep scheduling).

    ``mp_speedup`` reports the optimum over powers-of-two context
    counts up to the maximum, so all intermediate counts are needed.
    """
    out = []
    for app in apps:
        out.append(("mp", app, "single", 1))
        for scheme, n in configs:
            c = 2
            while c <= n:
                out.append(("mp", app, scheme, c))
                c *= 2
    return out


def run(ctx=None, apps=SPLASH_ORDER, configs=CONFIGS):
    """Returns {(scheme, n): {app: speedup}}."""
    if ctx is None:
        ctx = ExperimentContext()
    table = {}
    for scheme, n in configs:
        table[(scheme, n)] = {app: ctx.mp_speedup(app, scheme, n)
                              for app in apps}
    return table


def geometric_mean(values):
    return math.exp(sum(math.log(v) for v in values) / len(values))


def render(result=None, apps=SPLASH_ORDER, configs=CONFIGS):
    if result is None:
        result = run(apps=apps, configs=configs)
    rows = []
    seen_counts = sorted({n for _, n in configs})
    for n in seen_counts:
        for scheme in ("interleaved", "blocked"):
            if (scheme, n) not in result:
                continue
            row = result[(scheme, n)]
            values = [row[a] for a in apps]
            values.append(geometric_mean(values))
            rows.append(("%d ctx %s" % (n, scheme), values))
    table = render_table(
        "Table 10: application speedup due to multiple contexts",
        list(apps) + ["Mean"], rows, col_width=9, first_width=20)
    note = ("\npaper shapes: interleaved >= blocked everywhere at 4/8 "
            "contexts; barnes/water show the largest gap; cholesky ~1.0")
    return table + note
