"""Table 4: context-switch costs by cause.

=========================  =======  ===========
Switch cause               Blocked  Interleaved
=========================  =======  ===========
Cache miss                 7        1..7 (dynamic)
Explicit switch / backoff  3        1
=========================  =======  ===========

The cache-miss rows are *measured* by injecting one miss into an
otherwise uniform instruction stream and counting squashed issue slots;
the explicit-switch/backoff rows are measured from the instructions'
charged overhead.
"""

from repro.config import PipelineParams
from repro.experiments.microbench import measure_miss_cost
from repro.experiments.report import render_table


def run():
    pp = PipelineParams()
    result = {
        ("cache_miss", "blocked"): measure_miss_cost("blocked", 2),
        ("cache_miss", "interleaved_2ctx"): measure_miss_cost(
            "interleaved", 2),
        ("cache_miss", "interleaved_4ctx"): measure_miss_cost(
            "interleaved", 4),
        ("explicit", "blocked"): pp.explicit_switch_cost,
        ("explicit", "interleaved"): pp.backoff_cost,
    }
    return result


def render(result=None):
    if result is None:
        result = run()
    rows = [
        ("cache miss", [result[("cache_miss", "blocked")],
                        "%d / %d" % (
                            result[("cache_miss", "interleaved_2ctx")],
                            result[("cache_miss", "interleaved_4ctx")])]),
        ("explicit switch/backoff", [result[("explicit", "blocked")],
                                     result[("explicit", "interleaved")]]),
    ]
    table = render_table(
        "Table 4: context switch costs (cycles)",
        ["blocked", "interleaved"], rows, col_width=14)
    note = ("\npaper: cache miss 7 vs 1..7 (interleaved cost = in-flight"
            " instructions, here shown for 2/4 contexts); explicit 3 vs 1")
    return table + note
