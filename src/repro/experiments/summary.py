"""Paper-vs-measured verdict report.

Runs the full experiment suite and checks every *claim* the paper makes
(the shapes its conclusions rest on) against the measured results,
printing a pass/fail verdict per claim — the executable form of
EXPERIMENTS.md.
"""

from repro.experiments import figure2, figure3, table4, table7, table10
from repro.experiments.runner import ExperimentContext
from repro.workloads.uniprocessor import WORKLOAD_ORDER
from repro.workloads.splash import SPLASH_ORDER


class Claim:
    """One checkable claim from the paper."""

    def __init__(self, source, text, check):
        self.source = source
        self.text = text
        self.check = check       # fn(results) -> bool
        self.passed = None

    def evaluate(self, results):
        self.passed = bool(self.check(results))
        return self.passed


def _t7_mean(results, scheme, n):
    row = results["table7"][(scheme, n)]
    return table7.geometric_mean(list(row.values()))


def _t10(results, scheme, n, app):
    return results["table10"][(scheme, n)][app]


CLAIMS = [
    Claim("Figure 2",
          "a miss costs the blocked scheme 7 slots (the pipeline depth)",
          lambda r: r["figure2"]["blocked"] == 7),
    Claim("Figure 2",
          "with 4 contexts the interleaved scheme loses only 2 slots",
          lambda r: r["figure2"]["interleaved"] == 2),
    Claim("Figure 3",
          "the interleaved processor finishes the four threads first",
          lambda r: r["figure3"]["interleaved"][0]
          < r["figure3"]["blocked"][0]),
    Claim("Table 4",
          "explicit switch costs 3 cycles, backoff costs 1",
          lambda r: r["table4"][("explicit", "blocked")] == 3
          and r["table4"][("explicit", "interleaved")] == 1),
    Claim("Table 7",
          "interleaved beats blocked at every context count (means)",
          lambda r: _t7_mean(r, "interleaved", 2) > _t7_mean(r, "blocked", 2)
          and _t7_mean(r, "interleaved", 4) > _t7_mean(r, "blocked", 4)),
    Claim("Table 7",
          "4-context interleaving gains substantially (paper: +50%)",
          lambda r: _t7_mean(r, "interleaved", 4) > 1.3),
    Claim("Table 7",
          "blocked gains stay modest and saturate (paper: +3%/+11%)",
          lambda r: _t7_mean(r, "blocked", 4) < 1.35),
    Claim("Table 7",
          "DC is among the biggest interleaved winners (paper: +65%)",
          lambda r: r["table7"][("interleaved", 4)]["DC"]
          >= sorted(r["table7"][("interleaved", 4)].values())[-2] - 1e-9),
    Claim("Table 10",
          "interleaved >= blocked for every application at 4 contexts",
          lambda r: all(_t10(r, "interleaved", 4, a)
                        >= _t10(r, "blocked", 4, a) - 0.05
                        for a in SPLASH_ORDER)),
    Claim("Table 10",
          "4-ctx interleaved beats 8-ctx blocked except (at most) MP3D",
          lambda r: all(_t10(r, "interleaved", 4, a)
                        >= _t10(r, "blocked", 8, a) - 0.05
                        for a in SPLASH_ORDER if a != "mp3d")),
    Claim("Table 10",
          "Barnes and Water show the largest interleaved-blocked gaps",
          lambda r: max(_t10(r, "interleaved", 4, a)
                        - _t10(r, "blocked", 4, a)
                        for a in ("barnes", "water"))
          >= max(_t10(r, "interleaved", 4, a) - _t10(r, "blocked", 4, a)
                 for a in ("mp3d", "cholesky"))),
    Claim("Table 10",
          "Cholesky shows no gain from multiple contexts",
          lambda r: _t10(r, "interleaved", 8, "cholesky") < 1.15),
]


def run(ctx=None):
    """Execute all experiments and evaluate every claim."""
    if ctx is None:
        ctx = ExperimentContext()
    results = {
        "figure2": figure2.run(),
        "figure3": figure3.run(),
        "table4": table4.run(),
        "table7": table7.run(ctx),
        "table10": table10.run(ctx),
    }
    for claim in CLAIMS:
        claim.evaluate(results)
    return results


def render(results=None, ctx=None):
    if results is None:
        results = run(ctx)
    lines = ["Reproduction verdicts (paper claims vs measured)",
             "=" * 49]
    passed = 0
    for claim in CLAIMS:
        mark = "PASS" if claim.passed else "FAIL"
        passed += claim.passed
        lines.append("[%s] %-9s %s" % (mark, claim.source, claim.text))
    lines.append("-" * 49)
    lines.append("%d/%d claims reproduced" % (passed, len(CLAIMS)))
    return "\n".join(lines)
