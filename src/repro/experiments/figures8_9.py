"""Figures 8 and 9: multiprocessor execution-time breakdowns.

Execution time of each SPLASH stand-in for 1, 2, 4, and 8 contexts per
processor, normalised to the single-context time and split into busy,
short/long instruction stalls, memory, synchronisation, and context
switching.  Figure 8 is the blocked scheme, Figure 9 the interleaved.
"""

from repro.workloads.splash import SPLASH_ORDER
from repro.experiments.runner import ExperimentContext
from repro.experiments.report import render_stacked_bars

CONTEXT_COUNTS = (1, 2, 4, 8)


def points(scheme="blocked", apps=SPLASH_ORDER,
           context_counts=CONTEXT_COUNTS):
    """Every simulation point this figure needs (sweep scheduling)."""
    return [("mp", app, scheme if n > 1 else "single", n)
            for app in apps for n in context_counts]


def run(ctx=None, scheme="blocked", apps=SPLASH_ORDER,
        context_counts=CONTEXT_COUNTS):
    """{app: {n: (normalized_time, {category: fraction})}}."""
    if ctx is None:
        ctx = ExperimentContext()
    out = {}
    for app in apps:
        base = ctx.mp_run(app, "single", 1).cycles
        per_n = {}
        for n in context_counts:
            actual = scheme if n > 1 else "single"
            r = ctx.mp_run(app, actual, n)
            per_n[n] = (r.cycles / base, r.breakdown_fractions())
        out[app] = per_n
    return out


def render(result=None, scheme="blocked", apps=SPLASH_ORDER,
           context_counts=CONTEXT_COUNTS):
    figure = "Figure 8" if scheme == "blocked" else "Figure 9"
    if result is None:
        result = run(scheme=scheme, apps=apps,
                     context_counts=context_counts)
    bars = []
    for app in apps:
        for n in context_counts:
            if n not in result[app]:
                continue
            norm_time, fractions = result[app][n]
            # Scale the bar to the normalised execution time so shorter
            # bars mean faster runs, like the paper's figures.
            scaled = {k: v * norm_time for k, v in fractions.items()}
            bars.append(("%s %d ctx (%.2fx)" % (app, n, norm_time),
                         scaled))
    return render_stacked_bars(
        "%s: %s scheme execution time breakdown (bar length ~ time)"
        % (figure, scheme), bars, width=50, normalize=False)
