"""Content-addressed on-disk cache for experiment results.

Every simulation point behind the paper's tables and figures is pure: it
is fully determined by (machine configuration, workload/app name, scheme,
context count, seed, measurement window) plus the simulator code itself.
This module hashes exactly those inputs into a cache key and persists the
simulation's result as JSON, so

* shared runs (Table 7 / Figures 6-7; Table 10 / Figures 8-9) are
  computed once, across processes *and* across invocations;
* interrupted sweeps resume where they stopped;
* results computed by parallel workers are identical to — and
  interchangeable with — serial ones.

The *code version* component is a hash over the simulator's own source
files, so editing the simulator invalidates the cache automatically
instead of silently serving stale numbers.

Corruption is detected (bad JSON, schema drift, key or checksum
mismatch) and treated as a miss: the entry is discarded and recomputed.
"""

import hashlib
import json
import os
import pathlib
import tempfile

from repro.config import to_canonical
from repro.core.simulator import RunResult
from repro.core.stats import CycleStats
from repro.core.mpsimulator import MPResult

#: Bump when the on-disk payload layout changes.
#: 2: DSM protocol counters gained remote_fills and nack_retries.
CACHE_SCHEMA = 2

#: Default cache location (overridable via CLI flag or environment).
CACHE_DIR_ENV = "REPRO_CACHE_DIR"
DEFAULT_CACHE_DIR = ".repro_cache"

#: Subpackages whose source determines simulation results.  Experiment
#: rendering/orchestration code is deliberately excluded: reformatting a
#: table must not invalidate every simulation.
_VERSIONED_SOURCES = ("config.py", "isa", "pipeline", "memory", "core",
                      "coherence", "workloads")

_code_version_cache = None


def default_cache_dir():
    return os.environ.get(CACHE_DIR_ENV, DEFAULT_CACHE_DIR)


def code_version():
    """Hash of the simulation-relevant source tree (memoised)."""
    global _code_version_cache
    if _code_version_cache is None:
        root = pathlib.Path(__file__).resolve().parent.parent
        h = hashlib.sha256()
        for entry in _VERSIONED_SOURCES:
            path = root / entry
            files = sorted(path.rglob("*.py")) if path.is_dir() else [path]
            for f in files:
                h.update(str(f.relative_to(root)).encode())
                h.update(b"\0")
                h.update(f.read_bytes())
                h.update(b"\0")
        _code_version_cache = h.hexdigest()
    return _code_version_cache


def point_key(kind, name, scheme, n_contexts, config, mp_params, seed,
              warmup, measure, version=None):
    """The cache key of one simulation point.

    Any change to any field — any config value, the seed, the window, or
    the simulator source (``version``) — produces a different key.
    """
    payload = {
        "schema": CACHE_SCHEMA,
        "kind": kind,
        "name": name,
        "scheme": scheme,
        "n_contexts": n_contexts,
        "config": to_canonical(config),
        "mp_params": to_canonical(mp_params),
        "seed": seed,
        "warmup": warmup,
        "measure": measure,
        "code_version": version if version is not None else code_version(),
    }
    blob = json.dumps(payload, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(blob.encode()).hexdigest()


# -- result (de)serialisation -------------------------------------------------

def stats_to_state(stats):
    return {
        "counts": list(stats.counts),
        "retired": stats.retired,
        "issued": stats.issued,
        "squashed": stats.squashed,
        "context_switches": stats.context_switches,
        "backoffs": stats.backoffs,
        "run_count": stats.run_count,
        "run_inst_sum": stats.run_inst_sum,
        "run_max": stats.run_max,
    }


def stats_from_state(state):
    s = CycleStats()
    s.counts = list(state["counts"])
    s.retired = state["retired"]
    s.issued = state["issued"]
    s.squashed = state["squashed"]
    s.context_switches = state["context_switches"]
    s.backoffs = state["backoffs"]
    s.run_count = state["run_count"]
    s.run_inst_sum = state["run_inst_sum"]
    s.run_max = state["run_max"]
    return s


def uniproc_to_state(result):
    """A WorkstationSimulator RunResult as a plain dictionary."""
    return {
        "duration": result.duration,
        "per_process": dict(result.per_process),
        "stats": stats_to_state(result.stats),
    }


def uniproc_from_state(state):
    return RunResult(state["duration"], stats_from_state(state["stats"]),
                     dict(state["per_process"]))


class CachedProtocol:
    """The DSMachine protocol counters an exported MPResult needs."""

    __slots__ = ("read_misses", "write_misses", "upgrades",
                 "invalidations_sent", "dirty_remote_services",
                 "remote_fills", "nack_retries")

    def __init__(self, read_misses, write_misses, upgrades,
                 invalidations_sent, dirty_remote_services,
                 remote_fills, nack_retries):
        self.read_misses = read_misses
        self.write_misses = write_misses
        self.upgrades = upgrades
        self.invalidations_sent = invalidations_sent
        self.dirty_remote_services = dirty_remote_services
        self.remote_fills = remote_fills
        self.nack_retries = nack_retries


def mp_to_state(result):
    """An MPResult as a plain dictionary."""
    return {
        "cycles": result.cycles,
        "node_stats": [stats_to_state(s) for s in result.node_stats],
        "protocol": {
            "read_misses": result.machine.read_misses,
            "write_misses": result.machine.write_misses,
            "upgrades": result.machine.upgrades,
            "invalidations_sent": result.machine.invalidations_sent,
            "dirty_remote_services": result.machine.dirty_remote_services,
            "remote_fills": result.machine.remote_fills,
            "nack_retries": result.machine.nack_retries,
        },
    }


def mp_from_state(state):
    node_stats = [stats_from_state(s) for s in state["node_stats"]]
    return MPResult(state["cycles"], node_stats,
                    CachedProtocol(**state["protocol"]))


SERIALIZERS = {
    "uniproc": (uniproc_to_state, uniproc_from_state),
    "dedicated": (uniproc_to_state, uniproc_from_state),
    # Generated families run on the workstation simulator, so their
    # results serialise exactly like uniprocessor points; the cache key
    # carries the spec's canonical text, making generated points as
    # cacheable as committed ones.
    "gen": (uniproc_to_state, uniproc_from_state),
    "mp": (mp_to_state, mp_from_state),
}


def _checksum(result_state):
    blob = json.dumps(result_state, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(blob.encode()).hexdigest()


class CorruptEntry(Exception):
    """An on-disk entry failed validation (treated as a miss)."""


class ResultCache:
    """Content-addressed store of simulation results under one directory.

    Layout: ``<root>/<key[:2]>/<key>.json``; each payload carries a
    schema number, its own key, a checksum of the result body, and a
    human-readable ``meta`` block describing the point.  Writes are
    atomic (temp file + rename) so a killed sweep never leaves a
    half-written entry that later reads as valid.
    """

    def __init__(self, root=None):
        self.root = pathlib.Path(root if root is not None
                                 else default_cache_dir())
        self.hits = 0
        self.misses = 0
        self.stores = 0
        self.corrupt = 0

    def _path(self, key):
        return self.root / key[:2] / (key + ".json")

    def get(self, key, kind):
        """The deserialised result for ``key``, or None on miss.

        Any validation failure counts as corruption: the entry is
        deleted so the caller recomputes and overwrites it.
        """
        path = self._path(key)
        try:
            payload = self._load_validated(path, key, kind)
        except FileNotFoundError:
            self.misses += 1
            return None
        except CorruptEntry:
            self.corrupt += 1
            self.misses += 1
            try:
                path.unlink()
            except OSError:
                pass
            return None
        self.hits += 1
        return SERIALIZERS[kind][1](payload["result"])

    def get_state(self, key, kind):
        """The still-serialised result state for ``key``, or None.

        Same validation and miss/corruption accounting as :meth:`get`,
        but skips deserialisation — for callers (the service's job
        manager) that hold results in the wire format and only
        materialise objects at the edge.
        """
        path = self._path(key)
        try:
            payload = self._load_validated(path, key, kind)
        except FileNotFoundError:
            self.misses += 1
            return None
        except CorruptEntry:
            self.corrupt += 1
            self.misses += 1
            try:
                path.unlink()
            except OSError:
                pass
            return None
        self.hits += 1
        return payload["result"]

    def _load_validated(self, path, key, kind):
        try:
            payload = json.loads(path.read_text())
        except (ValueError, UnicodeDecodeError) as exc:
            raise CorruptEntry("undecodable: %s" % exc)
        except OSError as exc:
            if isinstance(exc, FileNotFoundError):
                raise
            raise CorruptEntry("unreadable: %s" % exc)
        if not isinstance(payload, dict):
            raise CorruptEntry("payload is not an object")
        if payload.get("schema") != CACHE_SCHEMA:
            raise CorruptEntry("schema mismatch")
        if payload.get("key") != key or payload.get("kind") != kind:
            raise CorruptEntry("key/kind mismatch")
        result = payload.get("result")
        if (not isinstance(result, dict)
                or payload.get("checksum") != _checksum(result)):
            raise CorruptEntry("checksum mismatch")
        return payload

    def put(self, key, kind, result, meta=None):
        """Persist a result object under ``key`` (atomic)."""
        return self.put_state(key, kind, SERIALIZERS[kind][0](result),
                              meta=meta)

    def put_state(self, key, kind, state, meta=None):
        """Persist an already-serialised result state (sweep workers)."""
        payload = {
            "schema": CACHE_SCHEMA,
            "key": key,
            "kind": kind,
            "meta": dict(meta) if meta else {},
            "checksum": _checksum(state),
            "result": state,
        }
        path = self._path(key)
        path.parent.mkdir(parents=True, exist_ok=True)
        fd, tmp = tempfile.mkstemp(dir=str(path.parent), suffix=".tmp")
        try:
            with os.fdopen(fd, "w") as fh:
                json.dump(payload, fh, sort_keys=True)
            os.replace(tmp, path)
        except BaseException:
            try:
                os.unlink(tmp)
            except OSError:
                pass
            raise
        self.stores += 1
        return path

    # -- maintenance ---------------------------------------------------------

    def _entries(self):
        if not self.root.is_dir():
            return
        for path in sorted(self.root.glob("*/*.json")):
            yield path

    def disk_stats(self):
        """Scan the directory: entry/byte counts, split by kind."""
        n = 0
        total_bytes = 0
        by_kind = {}
        for path in self._entries():
            n += 1
            total_bytes += path.stat().st_size
            try:
                kind = json.loads(path.read_text()).get("kind", "?")
            except (ValueError, OSError):
                kind = "corrupt"
            by_kind[kind] = by_kind.get(kind, 0) + 1
        return {"root": str(self.root), "entries": n,
                "bytes": total_bytes, "by_kind": by_kind}

    def clear(self):
        """Delete every entry; returns the number removed."""
        removed = 0
        for path in self._entries():
            try:
                path.unlink()
                removed += 1
            except OSError:
                pass
        for sub in sorted(self.root.glob("*")):
            if sub.is_dir():
                try:
                    sub.rmdir()
                except OSError:
                    pass
        return removed

    def session_stats(self):
        return {"hits": self.hits, "misses": self.misses,
                "stores": self.stores, "corrupt": self.corrupt}
