"""Shared experiment machinery: building, running, and memoising runs.

The tables and figures share underlying simulations (Table 7 and
Figures 6/7 use the same uniprocessor runs; Table 10 and Figures 8/9 the
same multiprocessor runs), so an :class:`ExperimentContext` memoises them.
"""

from repro.config import SystemConfig, MultiprocessorParams
from repro.core.simulator import WorkstationSimulator
from repro.core.mpsimulator import MultiprocessorSimulator
from repro.workloads import build_workload, build_process
from repro.workloads.splash import build_app

#: Default measurement window lengths (cycles) for the fast profile.
UNIPROC_WARMUP = 30_000
UNIPROC_MEASURE = 120_000
MP_MAX_CYCLES = 20_000_000


class UniprocRun:
    """One uniprocessor measurement plus its simulator's end state."""

    def __init__(self, result, simulator):
        self.result = result
        self.simulator = simulator


class ExperimentContext:
    """Runs and memoises the simulations behind the tables/figures."""

    def __init__(self, config=None, mp_params=None, seed=1994,
                 warmup=UNIPROC_WARMUP, measure=UNIPROC_MEASURE):
        self.config = config if config is not None else SystemConfig.fast()
        self.mp_params = (mp_params if mp_params is not None
                          else MultiprocessorParams())
        self.seed = seed
        self.warmup = warmup
        self.measure = measure
        self._uniproc = {}
        self._dedicated = {}
        self._mp = {}

    # -- uniprocessor ----------------------------------------------------------

    def uniproc_run(self, workload, scheme, n_contexts):
        """Measured run of a Table 5 workload; memoised."""
        key = (workload, scheme, n_contexts)
        if key not in self._uniproc:
            processes, instances, barriers = build_workload(
                workload, scale=self.config.workload_scale)
            sim = WorkstationSimulator(
                processes, scheme=scheme, n_contexts=n_contexts,
                config=self.config, seed=self.seed,
                app_instances=instances, barriers=barriers)
            result = sim.measure(self.measure, warmup=self.warmup)
            self._uniproc[key] = UniprocRun(result, sim)
        return self._uniproc[key]

    def dedicated_rate(self, kernel_name):
        """Instructions/cycle of one application run alone (calibration).

        The paper normalises multiprogrammed throughput against each
        application receiving a fair 1/N share of a dedicated processor;
        this is the dedicated-processor rate that normalisation needs.
        """
        if kernel_name not in self._dedicated:
            process, instance = build_process(
                kernel_name, index=0, scale=self.config.workload_scale)
            instances = [instance] if instance is not None else []
            barriers = instance.barriers if instance is not None else {}
            sim = WorkstationSimulator(
                [process], scheme="single", n_contexts=1,
                config=self.config, seed=self.seed,
                app_instances=instances, barriers=barriers)
            result = sim.measure(self.measure, warmup=self.warmup)
            rate = sum(result.per_process.values()) / result.duration
            self._dedicated[kernel_name] = rate
        return self._dedicated[kernel_name]

    def normalized_throughput(self, workload, scheme, n_contexts):
        """The paper's fair-share throughput metric.

        Sum over applications of (measured rate / dedicated rate): the
        single-context timesliced run scores ~1.0; perfect latency
        overlap with N contexts scores up to N (bounded by issue width).
        This normalisation is what makes the metric robust to the
        blocked scheme's bias toward low-miss-rate applications
        (Section 5.1 of the paper).
        """
        from repro.workloads.uniprocessor import WORKLOADS
        run = self.uniproc_run(workload, scheme, n_contexts)
        members = WORKLOADS[workload]
        total = 0.0
        for i, kernel in enumerate(members):
            name = [n for n in run.result.per_process
                    if n.startswith(kernel + ".")][0]
            rate = run.result.per_process[name] / run.result.duration
            total += rate / self.dedicated_rate(kernel)
        return total

    # -- multiprocessor ------------------------------------------------------------

    def mp_run(self, app_name, scheme, n_contexts):
        """Run-to-completion of a SPLASH stand-in; memoised."""
        key = (app_name, scheme, n_contexts)
        if key not in self._mp:
            n_nodes = self.mp_params.n_nodes
            app = build_app(app_name, n_threads=n_nodes * n_contexts,
                            threads_per_node=n_contexts)
            sim = MultiprocessorSimulator(
                app, scheme=scheme, n_contexts=n_contexts,
                params=self.mp_params, seed=self.seed)
            self._mp[key] = sim.run_to_completion(MP_MAX_CYCLES)
        return self._mp[key]

    def mp_speedup(self, app_name, scheme, n_contexts):
        """Speedup over the single-context run of the same machine.

        Like the paper's Table 10, the reported value is for the optimum
        number of contexts up to ``n_contexts`` ("on occasion, the best
        performance was encountered with fewer than the maximum number
        of hardware contexts").
        """
        base = self.mp_run(app_name, "single", 1).cycles
        best = 0.0
        c = 1
        while c <= n_contexts:
            if c == 1:
                cycles = base
            else:
                cycles = self.mp_run(app_name, scheme, c).cycles
            best = max(best, base / cycles)
            c *= 2
        return best
