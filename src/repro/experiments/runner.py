"""Shared experiment machinery: building, running, and memoising runs.

The tables and figures share underlying simulations (Table 7 and
Figures 6/7 use the same uniprocessor runs; Table 10 and Figures 8/9 the
same multiprocessor runs), so an :class:`ExperimentContext` memoises them
in process memory — and, when given a :class:`~repro.experiments.cache.
ResultCache`, reads/writes a content-addressed on-disk cache so the same
simulation is never computed twice across processes or invocations.

The module-level ``compute_*`` functions are the *only* way a simulation
point is ever produced: the serial context calls them directly and the
parallel :class:`~repro.experiments.sweep.SweepEngine` calls them inside
worker processes, so parallel results are bit-identical to serial ones
by construction (each point is seeded independently from the context's
seed; no state is shared between points).
"""

from repro.api import Simulation
from repro.config import SystemConfig, MultiprocessorParams

#: Default measurement window lengths (cycles) for the fast profile.
UNIPROC_WARMUP = 30_000
UNIPROC_MEASURE = 120_000
MP_MAX_CYCLES = 20_000_000


def compute_uniproc(workload, scheme, n_contexts, config, seed,
                    warmup, measure, engine="events", backend=None):
    """Measured run of a Table 5 workload; returns (RunResult, sim)."""
    simulation = Simulation.from_config(
        config, scheme=scheme, n_contexts=n_contexts,
        seed=seed, engine=engine, backend=backend).load(workload)
    result = simulation.run(warmup=warmup, measure=measure)
    return result.raw, simulation.simulator


def compute_dedicated(kernel_name, config, seed, warmup, measure,
                      engine="events", backend=None):
    """Calibration run of one application alone; returns RunResult."""
    simulation = Simulation.from_config(
        config, scheme="single", n_contexts=1,
        seed=seed, engine=engine, backend=backend).load(kernel_name)
    return simulation.run(warmup=warmup, measure=measure).raw


def compute_mp(app_name, scheme, n_contexts, mp_params, seed,
               max_cycles=MP_MAX_CYCLES, engine="events", backend=None):
    """Run-to-completion of a SPLASH stand-in; returns MPResult."""
    simulation = Simulation.from_config(
        mp_params, scheme=scheme, n_contexts=n_contexts,
        seed=seed, engine=engine, backend=backend).load(app_name)
    result = simulation.run(until=max_cycles)
    if not result.completed:
        raise RuntimeError(
            "application %r did not finish within %d cycles"
            % (app_name, max_cycles))
    return result.raw


def dedicated_rate_of(result):
    """Instructions/cycle of a dedicated calibration RunResult."""
    return sum(result.per_process.values()) / result.duration


class UniprocRun:
    """One uniprocessor measurement plus its simulator's end state.

    ``simulator`` is None when the result was loaded from the on-disk
    cache (only the measured numbers are persisted, not the machine).
    """

    def __init__(self, result, simulator):
        self.result = result
        self.simulator = simulator


class ExperimentContext:
    """Runs and memoises the simulations behind the tables/figures.

    Lookup order for every point: in-process memo, then the on-disk
    ``cache`` (if any), then an actual simulation (which populates
    both).  ``sim_count`` counts actual simulations, so tests and the
    sweep engine can assert that cache hits skip simulation.
    """

    def __init__(self, config=None, mp_params=None, seed=1994,
                 warmup=UNIPROC_WARMUP, measure=UNIPROC_MEASURE,
                 cache=None, engine="events", backend=None):
        self.config = config if config is not None else SystemConfig.fast()
        self.mp_params = (mp_params if mp_params is not None
                          else MultiprocessorParams())
        self.seed = seed
        self.warmup = warmup
        self.measure = measure
        self.cache = cache
        #: Simulation engine for every point this context computes.  By
        #: contract all engines produce bit-identical results (enforced
        #: by the engine test suites), so the choice deliberately does
        #: NOT enter the cache keys: points computed under one engine
        #: are valid hits for any other.
        self.engine = engine
        #: Scoreboard backend for every point; bit-identical across
        #: backends by the same contract, so it too stays out of keys.
        self.backend = backend
        self.sim_count = 0
        self._uniproc = {}
        self._dedicated = {}
        self._mp = {}

    # -- cache plumbing ------------------------------------------------------

    def point_cache_key(self, kind, name, scheme="single", n_contexts=1):
        """The on-disk cache key of one of this context's points."""
        from repro.experiments import cache as cache_mod
        if kind == "mp":
            warmup, measure = 0, MP_MAX_CYCLES
        else:
            warmup, measure = self.warmup, self.measure
        return cache_mod.point_key(
            kind, name, scheme, n_contexts, self.config, self.mp_params,
            self.seed, warmup, measure)

    def _cache_get(self, kind, name, scheme, n_contexts):
        if self.cache is None:
            return None
        return self.cache.get(
            self.point_cache_key(kind, name, scheme, n_contexts), kind)

    def _cache_put(self, kind, name, scheme, n_contexts, result):
        if self.cache is None:
            return
        self.cache.put(
            self.point_cache_key(kind, name, scheme, n_contexts), kind,
            result, meta={"kind": kind, "name": name, "scheme": scheme,
                          "n_contexts": n_contexts, "seed": self.seed})

    def store_point(self, kind, name, scheme, n_contexts, result):
        """Inject an externally computed result (sweep worker) into the
        in-process memo, exactly as a cache load would."""
        if kind == "uniproc":
            self._uniproc[(name, scheme, n_contexts)] = UniprocRun(
                result, None)
        elif kind == "dedicated":
            self._dedicated[name] = dedicated_rate_of(result)
        elif kind == "mp":
            self._mp[(name, scheme, n_contexts)] = result
        else:
            raise ValueError("unknown point kind %r" % kind)

    # -- uniprocessor ----------------------------------------------------------

    def uniproc_run(self, workload, scheme, n_contexts,
                    need_simulator=False):
        """Measured run of a Table 5 workload; memoised and cached.

        Pass ``need_simulator=True`` to guarantee a live simulator on
        the returned run (forces a simulation if the memoised result
        came from the on-disk cache).
        """
        key = (workload, scheme, n_contexts)
        entry = self._uniproc.get(key)
        if entry is not None and (entry.simulator is not None
                                  or not need_simulator):
            return entry
        if not need_simulator:
            cached = self._cache_get("uniproc", *key)
            if cached is not None:
                self._uniproc[key] = UniprocRun(cached, None)
                return self._uniproc[key]
        result, sim = compute_uniproc(
            workload, scheme, n_contexts, self.config, self.seed,
            self.warmup, self.measure, engine=self.engine,
            backend=self.backend)
        self.sim_count += 1
        self._cache_put("uniproc", workload, scheme, n_contexts, result)
        self._uniproc[key] = UniprocRun(result, sim)
        return self._uniproc[key]

    def dedicated_rate(self, kernel_name):
        """Instructions/cycle of one application run alone (calibration).

        The paper normalises multiprogrammed throughput against each
        application receiving a fair 1/N share of a dedicated processor;
        this is the dedicated-processor rate that normalisation needs.
        """
        if kernel_name not in self._dedicated:
            result = self._cache_get("dedicated", kernel_name, "single", 1)
            if result is None:
                result = compute_dedicated(
                    kernel_name, self.config, self.seed, self.warmup,
                    self.measure, engine=self.engine,
                    backend=self.backend)
                self.sim_count += 1
                self._cache_put("dedicated", kernel_name, "single", 1,
                                result)
            self._dedicated[kernel_name] = dedicated_rate_of(result)
        return self._dedicated[kernel_name]

    def normalized_throughput(self, workload, scheme, n_contexts):
        """The paper's fair-share throughput metric.

        Sum over applications of (measured rate / dedicated rate): the
        single-context timesliced run scores ~1.0; perfect latency
        overlap with N contexts scores up to N (bounded by issue width).
        This normalisation is what makes the metric robust to the
        blocked scheme's bias toward low-miss-rate applications
        (Section 5.1 of the paper).
        """
        from repro.workloads.uniprocessor import WORKLOADS
        run = self.uniproc_run(workload, scheme, n_contexts)
        members = WORKLOADS[workload]
        total = 0.0
        for i, kernel in enumerate(members):
            name = [n for n in run.result.per_process
                    if n.startswith(kernel + ".")][0]
            rate = run.result.per_process[name] / run.result.duration
            total += rate / self.dedicated_rate(kernel)
        return total

    # -- multiprocessor ------------------------------------------------------------

    def mp_run(self, app_name, scheme, n_contexts):
        """Run-to-completion of a SPLASH stand-in; memoised and cached."""
        key = (app_name, scheme, n_contexts)
        if key not in self._mp:
            result = self._cache_get("mp", *key)
            if result is None:
                result = compute_mp(app_name, scheme, n_contexts,
                                    self.mp_params, self.seed,
                                    engine=self.engine,
                                    backend=self.backend)
                self.sim_count += 1
                self._cache_put("mp", app_name, scheme, n_contexts, result)
            self._mp[key] = result
        return self._mp[key]

    def mp_speedup(self, app_name, scheme, n_contexts):
        """Speedup over the single-context run of the same machine.

        Like the paper's Table 10, the reported value is for the optimum
        number of contexts up to ``n_contexts`` ("on occasion, the best
        performance was encountered with fewer than the maximum number
        of hardware contexts").
        """
        base = self.mp_run(app_name, "single", 1).cycles
        best = 0.0
        c = 1
        while c <= n_contexts:
            if c == 1:
                cycles = base
            else:
                cycles = self.mp_run(app_name, scheme, c).cycles
            best = max(best, base / cycles)
            c *= 2
        return best
