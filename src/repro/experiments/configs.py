"""The paper's configuration tables (1, 2, 3, 5, 6, 8, 9) as rendered
from the live configuration objects, so documentation cannot drift from
what the simulator actually uses."""

from repro.config import SystemConfig, MultiprocessorParams
from repro.isa.opcodes import Op, OP_INFO
from repro.workloads.uniprocessor import WORKLOADS, WORKLOAD_ORDER
from repro.workloads.splash import SPLASH_ORDER
from repro.experiments.report import render_table


def table1(config=None):
    cfg = config or SystemConfig.paper()
    rows = []
    for cache in (cfg.memory.l1d, cfg.memory.l1i, cfg.memory.l2):
        rows.append((cache.name, [
            "%dK" % (cache.size // 1024), cache.line_size,
            cache.read_occupancy, cache.write_occupancy,
            cache.invalidate_occupancy, cache.fill_occupancy]))
    return render_table(
        "Table 1: cache parameters (all direct-mapped)",
        ["size", "line", "rd occ", "wr occ", "inv occ", "fill occ"],
        rows, col_width=9)


def table2(config=None):
    cfg = config or SystemConfig.paper()
    rows = [
        ("hit in primary cache", [cfg.memory.l1_hit_latency]),
        ("hit in secondary cache", [cfg.memory.l2_hit_latency]),
        ("reply from memory", [cfg.memory.memory_latency]),
    ]
    return render_table("Table 2: memory latencies (cycles)",
                        ["latency"], rows)


_TABLE3_OPS = (Op.DIV, Op.MUL, Op.SLL, Op.LW, Op.FADD, Op.FDIV, Op.FDIVS)


def table3():
    rows = [(OP_INFO[op].mnemonic,
             [OP_INFO[op].issue, OP_INFO[op].latency])
            for op in _TABLE3_OPS]
    return render_table("Table 3: long-latency operations",
                        ["issue", "latency"], rows)


def table5():
    rows = [(name, [" ".join(WORKLOADS[name])])
            for name in WORKLOAD_ORDER]
    return render_table("Table 5: uniprocessor workloads",
                        ["members"], rows, col_width=42)


def table6(config=None):
    cfg = config or SystemConfig.paper()
    rows = [(str(n), list(cfg.os.interference[n]))
            for n in sorted(cfg.os.interference)]
    return render_table(
        "Table 6: scheduler interference (lines displaced)",
        ["icache", "dcache"], rows)


def table8(params=None):
    p = params or MultiprocessorParams()
    rows = [
        ("hit in primary cache", ["1"]),
        ("reply from local memory", ["%d-%d" % p.local_memory]),
        ("reply from remote memory", ["%d-%d" % p.remote_memory]),
        ("reply from remote cache", ["%d-%d" % p.remote_cache]),
    ]
    return render_table(
        "Table 8: multiprocessor memory latencies (uniform ranges)",
        ["cycles"], rows)


def table9():
    rows = [(name, ["(stand-in)"]) for name in SPLASH_ORDER]
    return render_table("Table 9: SPLASH stand-in suite",
                        ["source"], rows)


def render_all(config=None):
    return "\n\n".join([
        table1(config), table2(config), table3(), table5(),
        table6(config), table8(), table9(),
    ])
