"""Parallel sweep engine: every figure/table point, fanned out over cores.

The paper's result set is an embarrassingly parallel sweep: each
(workload, scheme, n_contexts) / (app, scheme, n_contexts) point is an
independent, deterministic simulation.  :class:`SweepEngine` enumerates
the points the figures and tables declare (their ``points()`` hooks),
skips everything already memoised or in the on-disk cache, and runs the
remainder over a :class:`concurrent.futures.ProcessPoolExecutor`.

Determinism contract: a worker computes a point with the *same*
module-level ``compute_*`` function, the same configuration objects, and
the same per-point seed that the serial :class:`ExperimentContext` path
uses, and no state is shared between points — so parallel results are
bit-identical to serial ones, and cache entries written by either path
are interchangeable.
"""

import os
import time
from collections import namedtuple
from concurrent.futures import ProcessPoolExecutor, as_completed

from repro.experiments import cache as cache_mod
from repro.experiments import runner as runner_mod
from repro.experiments.runner import ExperimentContext

#: One simulation point.  ``kind`` is "uniproc" (measured workload run),
#: "dedicated" (single-application calibration run), or "mp" (SPLASH
#: run-to-completion).
SweepPoint = namedtuple("SweepPoint", "kind name scheme n_contexts")

#: One finished point: where its result came from and how long it took.
PointOutcome = namedtuple("PointOutcome", "point source seconds")


def default_points(workloads=None, apps=None):
    """Every point behind Table 7, Figures 6/7, Table 10, Figures 8/9.

    Deduplicated in first-need order; the overlap between tables and
    figures (they intentionally share runs) collapses here, which is
    exactly why a shared cache computes each simulation once.
    """
    from repro.experiments import table7, figures6_7, table10, figures8_9
    from repro.workloads.uniprocessor import WORKLOAD_ORDER
    from repro.workloads.splash import SPLASH_ORDER
    workloads = tuple(workloads) if workloads else WORKLOAD_ORDER
    apps = tuple(apps) if apps else SPLASH_ORDER
    raw = []
    raw += table7.points(workloads)
    raw += figures6_7.points("blocked", workloads)
    raw += figures6_7.points("interleaved", workloads)
    raw += table10.points(apps)
    raw += figures8_9.points("blocked", apps)
    raw += figures8_9.points("interleaved", apps)
    return dedupe(SweepPoint(*p) for p in raw)


def dedupe(points):
    seen = set()
    out = []
    for p in points:
        p = SweepPoint(*p)
        if p not in seen:
            seen.add(p)
            out.append(p)
    return out


def _cost_rank(point):
    """Schedule heaviest points first to shrink the parallel tail.

    Multiprocessor run-to-completion dominates; within a kind, more
    contexts means more threads and more work.
    """
    return (point.kind == "mp", point.n_contexts)


def _compute_point_state(kind, name, scheme, n_contexts, config,
                         mp_params, seed, warmup, measure,
                         engine="events", backend=None):
    """Worker entry: compute one point, return its serialised state.

    Runs in a forked/spawned process; must only touch its arguments.
    """
    if kind == "uniproc":
        result, _ = runner_mod.compute_uniproc(
            name, scheme, n_contexts, config, seed, warmup, measure,
            engine=engine, backend=backend)
    elif kind == "dedicated":
        result = runner_mod.compute_dedicated(
            name, config, seed, warmup, measure, engine=engine,
            backend=backend)
    elif kind == "mp":
        result = runner_mod.compute_mp(name, scheme, n_contexts,
                                       mp_params, seed, engine=engine,
                                       backend=backend)
    else:
        raise ValueError("unknown point kind %r" % kind)
    return cache_mod.SERIALIZERS[kind][0](result)


class SweepReport:
    """What a sweep did: per-point outcomes and aggregate timings."""

    def __init__(self, outcomes, wall_seconds, jobs):
        self.outcomes = outcomes
        self.wall_seconds = wall_seconds
        self.jobs = jobs

    def count(self, source):
        return sum(1 for o in self.outcomes if o.source == source)

    def summary(self):
        return ("%d points in %.1f s with %d jobs "
                "(%d computed, %d cache hits, %d memoised)"
                % (len(self.outcomes), self.wall_seconds, self.jobs,
                   self.count("computed"), self.count("cache"),
                   self.count("memo")))

    def to_dict(self):
        return {
            "jobs": self.jobs,
            "wall_seconds": self.wall_seconds,
            "computed": self.count("computed"),
            "cache_hits": self.count("cache"),
            "memoised": self.count("memo"),
            "points": [
                {"kind": o.point.kind, "name": o.point.name,
                 "scheme": o.point.scheme,
                 "n_contexts": o.point.n_contexts,
                 "source": o.source, "seconds": o.seconds}
                for o in self.outcomes],
        }


class SweepEngine:
    """Fill an :class:`ExperimentContext` with points, in parallel.

    After :meth:`run`, every requested point sits in the context's
    in-process memo (and in its on-disk cache, if one is attached), so
    rendering any table or figure afterwards is pure formatting.
    """

    def __init__(self, ctx=None, jobs=None, progress=None):
        self.ctx = ctx if ctx is not None else ExperimentContext()
        self.jobs = jobs if jobs else (os.cpu_count() or 1)
        self.progress = progress if progress is not None else lambda msg: None

    # -- lookup helpers ------------------------------------------------------

    def _memoised(self, point):
        ctx = self.ctx
        if point.kind == "uniproc":
            return (point.name, point.scheme,
                    point.n_contexts) in ctx._uniproc
        if point.kind == "dedicated":
            return point.name in ctx._dedicated
        return (point.name, point.scheme, point.n_contexts) in ctx._mp

    def _from_cache(self, point):
        ctx = self.ctx
        if ctx.cache is None:
            return None
        key = ctx.point_cache_key(*point)
        return ctx.cache.get(key, point.kind)

    def _task_args(self, point):
        ctx = self.ctx
        if point.kind == "mp":
            warmup, measure = 0, runner_mod.MP_MAX_CYCLES
        else:
            warmup, measure = ctx.warmup, ctx.measure
        return (point.kind, point.name, point.scheme, point.n_contexts,
                ctx.config, ctx.mp_params, ctx.seed, warmup, measure,
                ctx.engine, ctx.backend)

    def _store(self, point, state):
        """Cache + memoise one worker-computed state dict."""
        ctx = self.ctx
        result = cache_mod.SERIALIZERS[point.kind][1](state)
        if ctx.cache is not None:
            ctx.cache.put_state(
                ctx.point_cache_key(*point), point.kind, state,
                meta={"kind": point.kind, "name": point.name,
                      "scheme": point.scheme,
                      "n_contexts": point.n_contexts, "seed": ctx.seed})
        ctx.store_point(*point, result)
        return result

    def _label(self, point):
        return "%-9s %s/%s/%d" % (point.kind, point.name, point.scheme,
                                  point.n_contexts)

    # -- execution -----------------------------------------------------------

    def run(self, points=None):
        """Ensure every point is available; returns a SweepReport."""
        t0 = time.perf_counter()
        points = dedupe(points if points is not None else default_points())
        outcomes = []
        pending = []
        total = len(points)
        for point in points:
            start = time.perf_counter()
            if self._memoised(point):
                outcomes.append(PointOutcome(point, "memo", 0.0))
                continue
            result = self._from_cache(point)
            if result is not None:
                self.ctx.store_point(*point, result)
                outcomes.append(PointOutcome(
                    point, "cache", time.perf_counter() - start))
                self.progress("[%3d/%d] %s  cache hit"
                              % (len(outcomes), total, self._label(point)))
                continue
            pending.append(point)
        done = len(outcomes)
        pending.sort(key=_cost_rank, reverse=True)
        if pending:
            if self.jobs <= 1 or len(pending) == 1:
                outcomes += self._run_serial(pending, done, total)
            else:
                outcomes += self._run_parallel(pending, done, total)
        return SweepReport(outcomes, time.perf_counter() - t0, self.jobs)

    def _run_serial(self, pending, done, total):
        out = []
        ctx = self.ctx
        for point in pending:
            start = time.perf_counter()
            if point.kind == "uniproc":
                ctx.uniproc_run(point.name, point.scheme, point.n_contexts)
            elif point.kind == "dedicated":
                ctx.dedicated_rate(point.name)
            else:
                ctx.mp_run(point.name, point.scheme, point.n_contexts)
            seconds = time.perf_counter() - start
            done += 1
            self.progress("[%3d/%d] %s  %.2f s"
                          % (done, total, self._label(point), seconds))
            out.append(PointOutcome(point, "computed", seconds))
        return out

    def _run_parallel(self, pending, done, total):
        out = []
        workers = min(self.jobs, len(pending))
        with ProcessPoolExecutor(max_workers=workers) as pool:
            submitted = time.perf_counter()
            futures = {pool.submit(_compute_point_state,
                                   *self._task_args(p)): p
                       for p in pending}
            for future in as_completed(futures):
                point = futures[future]
                state = future.result()
                self._store(point, state)
                seconds = time.perf_counter() - submitted
                done += 1
                self.progress("[%3d/%d] %s  done at +%.2f s"
                              % (done, total, self._label(point), seconds))
                out.append(PointOutcome(point, "computed", seconds))
        return out
