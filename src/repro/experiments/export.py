"""Structured (JSON) export of experiment results.

Downstream analysis (plotting, regression tracking) wants numbers, not
rendered tables; this module turns stats objects and experiment results
into plain dictionaries and writes them as JSON.
"""

import json

from repro.pipeline.stalls import Stall


def stats_to_dict(stats):
    """A CycleStats as a plain dictionary."""
    return {
        "cycles": stats.total_cycles,
        "retired": stats.retired,
        "issued": stats.issued,
        "squashed": stats.squashed,
        "context_switches": stats.context_switches,
        "backoffs": stats.backoffs,
        "utilization": stats.utilization(),
        "ipc": stats.ipc(),
        "mean_runlength": stats.mean_runlength(),
        "slots": {Stall(i).name.lower(): count
                  for i, count in enumerate(stats.counts)},
    }


def uniproc_run_to_dict(run):
    """An ExperimentContext UniprocRun as a plain dictionary."""
    result = run.result
    return {
        "duration": result.duration,
        "per_process": dict(result.per_process),
        "stats": stats_to_dict(result.stats),
    }


def mp_result_to_dict(result):
    """An MPResult as a plain dictionary."""
    return {
        "cycles": result.cycles,
        "nodes": [stats_to_dict(s) for s in result.node_stats],
        "stats": stats_to_dict(result.stats),
        "protocol": {
            "read_misses": result.machine.read_misses,
            "write_misses": result.machine.write_misses,
            "upgrades": result.machine.upgrades,
            "invalidations": result.machine.invalidations_sent,
            "cache_to_cache": result.machine.dirty_remote_services,
            "remote_fills": result.machine.remote_fills,
            "nack_retries": result.machine.nack_retries,
        },
    }


def context_to_dict(ctx):
    """Everything an ExperimentContext has memoised, as a dictionary."""
    return {
        "uniprocessor": {
            "%s/%s/%d" % key: uniproc_run_to_dict(run)
            for key, run in ctx._uniproc.items()
        },
        "dedicated_rates": dict(ctx._dedicated),
        "multiprocessor": {
            "%s/%s/%d" % key: mp_result_to_dict(res)
            for key, res in ctx._mp.items()
        },
    }


def sweep_report_to_dict(report, **extra):
    """A SweepReport plus arbitrary metadata, as one JSON-able dict.

    Used by the CI benchmark smoke job to publish serial-vs-parallel
    sweep timings (``BENCH_sweep.json``).
    """
    payload = report.to_dict()
    payload.update(extra)
    return payload


def write_json(path, payload):
    """Serialise ``payload`` (any of the dicts above) to ``path``."""
    with open(path, "w") as fh:
        json.dump(payload, fh, indent=2, sort_keys=True)
    return path
