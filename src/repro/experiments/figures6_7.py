"""Figures 6 and 7: uniprocessor processor-utilisation breakdowns.

Figure 6 is the blocked scheme, Figure 7 the interleaved scheme; each
shows, per workload and context count (1, 2, 4), where the cycles went:
busy, pipeline-dependency stalls, instruction-cache/TLB stalls,
data-cache/TLB stalls, and context switching.
"""

from repro.workloads.uniprocessor import WORKLOAD_ORDER
from repro.experiments.runner import ExperimentContext
from repro.experiments.report import render_stacked_bars

CONTEXT_COUNTS = (1, 2, 4)


def points(scheme="blocked", workloads=WORKLOAD_ORDER):
    """Every simulation point this figure needs (sweep scheduling)."""
    return [("uniproc", w, scheme if n > 1 else "single", n)
            for w in workloads for n in CONTEXT_COUNTS]


def run(ctx=None, scheme="blocked", workloads=WORKLOAD_ORDER):
    """Returns {workload: {n_contexts: {category: fraction}}}."""
    if ctx is None:
        ctx = ExperimentContext()
    out = {}
    for w in workloads:
        per_n = {}
        for n in CONTEXT_COUNTS:
            actual_scheme = scheme if n > 1 else "single"
            r = ctx.uniproc_run(w, actual_scheme, n)
            per_n[n] = r.result.stats.breakdown_fractions()
        out[w] = per_n
    return out


def render(result=None, scheme="blocked", workloads=WORKLOAD_ORDER):
    figure = "Figure 6" if scheme == "blocked" else "Figure 7"
    if result is None:
        result = run(scheme=scheme, workloads=workloads)
    bars = []
    for w in workloads:
        for n in CONTEXT_COUNTS:
            bars.append(("%s %d ctx" % (w, n), result[w][n]))
    return render_stacked_bars(
        "%s: %s scheme processor utilization" % (figure, scheme), bars)
