"""Experiment harness: one module per table/figure of the paper.

Every module exposes ``run(...)`` returning a structured result and
``render(result)`` returning the table/figure as text; the CLI
(``interleaving-experiments``) and the benchmark suite drive these.
"""

from repro.experiments import (
    figure2,
    figure3,
    table4,
    table7,
    figures6_7,
    table10,
    figures8_9,
    configs,
)
from repro.experiments.runner import ExperimentContext

__all__ = [
    "figure2",
    "figure3",
    "table4",
    "table7",
    "figures6_7",
    "table10",
    "figures8_9",
    "configs",
    "ExperimentContext",
]
