"""Whole-system analysis of one simulation run.

Gathers every counter the substrates keep — cache and TLB miss rates,
BTB accuracy, bus/bank utilisation, MSHR behaviour, runlengths, per-slot
breakdown, coherence-protocol traffic — into one structured report.
This is the "why" behind a throughput number: the paper's discussion
sections reason exactly in these terms (miss rates, runlengths, switch
overheads).
"""

from repro.experiments.report import render_table


def _pct(x):
    return "%.1f%%" % (100.0 * x)


def analyze_workstation(sim, result=None):
    """Analysis dict for a WorkstationSimulator (after a measure())."""
    m = sim.memsys
    proc = sim.processor
    stats = result.stats if result is not None else proc.stats
    elapsed = max(1, sim.now)
    banks_busy = sum(b.total_busy for b in m.banks)
    return {
        "scheme": proc.scheme,
        "n_contexts": len(proc.contexts),
        "cycles": stats.total_cycles,
        "ipc": stats.ipc(),
        "utilization": stats.utilization(),
        "breakdown": stats.breakdown_fractions(),
        "l1i_miss_rate": m.l1i.miss_rate,
        "l1d_miss_rate": m.l1d.miss_rate,
        "l2_miss_rate": m.l2.miss_rate,
        "l1d_writebacks": m.l1d.writebacks,
        "tlb_miss_rate": m.dtlb.miss_rate,
        "btb_accuracy": proc.btb.accuracy,
        "bus_utilization": (m.bus_req.utilization(elapsed)
                            + m.bus_reply.utilization(elapsed)),
        "bank_utilization": banks_busy / (len(m.banks) * elapsed),
        "mshr_merges": m.mshr.merges,
        "mshr_structural_stalls": m.mshr.structural_stalls,
        "mean_runlength": stats.mean_runlength(),
        "context_switches": stats.context_switches,
        "squashed_slots": stats.squashed,
        "backoffs": stats.backoffs,
    }


def analyze_multiprocessor(sim, result):
    """Analysis dict for a MultiprocessorSimulator run."""
    machine = sim.machine
    stats = result.stats
    per_node_busy = [s.utilization() for s in result.node_stats]
    accesses = max(1, machine.read_misses + machine.write_misses
                   + sum(n.cache.hits for n in machine.nodes))
    return {
        "cycles": result.cycles,
        "utilization": stats.utilization(),
        "breakdown": stats.breakdown_fractions(),
        "node_utilization_min": min(per_node_busy),
        "node_utilization_max": max(per_node_busy),
        "read_misses": machine.read_misses,
        "write_misses": machine.write_misses,
        "upgrades": machine.upgrades,
        "invalidations": machine.invalidations_sent,
        "cache_to_cache": machine.dirty_remote_services,
        "remote_fills": machine.remote_fills,
        "nack_retries": machine.nack_retries,
        "miss_rate": ((machine.read_misses + machine.write_misses)
                      / accesses),
        "latency_samples": dict(machine.latency.samples),
        "lock_acquires": sim.sync.lock_acquires,
        "lock_contentions": sim.sync.lock_contentions,
        "barrier_episodes": sim.sync.barrier_episodes,
        "mean_runlength": stats.mean_runlength(),
        "squashed_slots": stats.squashed,
    }


def render_workstation(analysis):
    rows = [
        ("configuration", ["%s, %d contexts" % (analysis["scheme"],
                                                analysis["n_contexts"])]),
        ("IPC", ["%.3f" % analysis["ipc"]]),
        ("utilization", [_pct(analysis["utilization"])]),
        ("L1I / L1D / L2 miss", ["%s / %s / %s" % (
            _pct(analysis["l1i_miss_rate"]),
            _pct(analysis["l1d_miss_rate"]),
            _pct(analysis["l2_miss_rate"]))]),
        ("TLB miss", [_pct(analysis["tlb_miss_rate"])]),
        ("BTB accuracy", [_pct(analysis["btb_accuracy"])]),
        ("bus / bank utilization", ["%s / %s" % (
            _pct(analysis["bus_utilization"]),
            _pct(analysis["bank_utilization"]))]),
        ("MSHR merges / stalls", ["%d / %d" % (
            analysis["mshr_merges"],
            analysis["mshr_structural_stalls"])]),
        ("mean runlength", ["%.1f" % analysis["mean_runlength"]]),
        ("switches / squashed", ["%d / %d" % (
            analysis["context_switches"],
            analysis["squashed_slots"])]),
    ]
    return render_table("Workstation run analysis", ["value"], rows,
                        col_width=24)


def render_multiprocessor(analysis):
    rows = [
        ("cycles", [analysis["cycles"]]),
        ("utilization", [_pct(analysis["utilization"])]),
        ("node util (min/max)", ["%s / %s" % (
            _pct(analysis["node_utilization_min"]),
            _pct(analysis["node_utilization_max"]))]),
        ("miss rate", [_pct(analysis["miss_rate"])]),
        ("read / write misses", ["%d / %d" % (
            analysis["read_misses"], analysis["write_misses"])]),
        ("upgrades / invalidations", ["%d / %d" % (
            analysis["upgrades"], analysis["invalidations"])]),
        ("cache-to-cache transfers", [analysis["cache_to_cache"]]),
        ("remote fills / NACKs", ["%d / %d" % (
            analysis["remote_fills"], analysis["nack_retries"])]),
        ("latency samples l/r/rc", ["%d / %d / %d" % (
            analysis["latency_samples"].get("local", 0),
            analysis["latency_samples"].get("remote", 0),
            analysis["latency_samples"].get("remote_cache", 0))]),
        ("lock acquires / contended", ["%d / %d" % (
            analysis["lock_acquires"], analysis["lock_contentions"])]),
        ("barrier episodes", [analysis["barrier_episodes"]]),
    ]
    return render_table("Multiprocessor run analysis", ["value"], rows,
                        col_width=24)
