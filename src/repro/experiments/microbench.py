"""Microbenchmark scaffolding for the switch-cost experiments.

Figures 2/3 and Table 4 of the paper are about the *mechanism* costs, so
they are measured on a processor with an idealised instruction memory and
a fixed-latency data memory: exactly the paper's illustration setting
(one level of cache, every designated address a cold miss).
"""

from repro.isa import AsmBuilder
from repro.isa.executor import Memory
from repro.config import PipelineParams
from repro.memory.hierarchy import AccessResult
from repro.core.processor import Processor
from repro.core.simulator import Process
from repro.core.sync import SyncManager


class FixedLatencyMemory:
    """Instruction fetches always hit; designated data lines miss once."""

    def __init__(self, latency=30, miss_addrs=()):
        self.latency = latency
        self.miss_addrs = set(miss_addrs)
        self.serviced = set()

    def inst_fetch(self, addr, now):
        return AccessResult("l1", now)

    def inst_run_hits(self, addr, n_insts, already_fetched):
        """Instruction fetches always hit, so a burst's run always
        does (the burst engine's whole-run fetch probe)."""
        return True

    def data_access(self, addr, is_write, now, requester=0):
        if addr in self.miss_addrs and addr not in self.serviced:
            self.serviced.add(addr)
            return AccessResult("mem", now + self.latency)
        return AccessResult("l1", now)


def paper_thread(name, index, n_alu=0, with_dependency=False):
    """One of the Figure 3 threads: ALU work ending in a missing load.

    ``with_dependency`` inserts the paper's thread-B two-cycle pipeline
    dependency (a load immediately feeding an add).
    """
    b = AsmBuilder(name, code_base=index * 0x1000,
                   data_base=0x400000 + index * 0x1000)
    arr = b.space("arr", 16)
    b.li("t0", arr)
    if with_dependency:
        b.lw("t1", 4, "t0")      # hits; 2-cycle dependency to the add
        b.add("t2", "t1", "t1")
    for _ in range(n_alu):
        b.addi("t3", "t3", 1)
    b.lw("t4", 0, "t0")          # the final, missing load
    b.halt()
    return b.build(), arr


def build_four_thread_processor(scheme, latency=30, n_contexts=4,
                                pipeline=None, trace=None):
    """The Figure 3 scenario: threads A (2 instrs), B (3, with a
    dependency), C (4), and D (6), all ending in a cache miss."""
    specs = [("A", 1, False), ("B", 0, True), ("C", 3, False),
             ("D", 5, False)]
    memory = Memory()
    memsys = FixedLatencyMemory(latency)
    pp = pipeline if pipeline is not None else PipelineParams()
    proc = Processor(scheme, n_contexts, pp, memsys, memory,
                     sync=SyncManager())
    proc.trace = trace
    for i, (name, n_alu, dep) in enumerate(specs):
        program, arr = paper_thread(name, i + 1, n_alu, dep)
        program.load(memory)
        memsys.miss_addrs.add(arr)
        proc.load_process(i, Process(name, program))
    return proc


def run_to_halt(proc, limit=10_000):
    """Step until every context halts; returns the cycle count."""
    now = 0
    while not proc.all_halted():
        if now >= limit:
            raise RuntimeError("microbenchmark did not finish")
        proc.step(now)
        now += 1
    return now


def measure_miss_cost(scheme, n_contexts, latency=40, pipeline=None):
    """Issue slots lost to one cache miss (Table 4's cache-miss rows).

    Builds ``n_contexts`` identical long ALU threads, lets exactly one of
    them take one cold miss, and counts the squashed issue slots.
    """
    memory = Memory()
    memsys = FixedLatencyMemory(latency)
    pp = pipeline if pipeline is not None else PipelineParams()
    proc = Processor(scheme, n_contexts, pp, memsys, memory,
                     sync=SyncManager())
    for i in range(n_contexts):
        b = AsmBuilder("t%d" % i, code_base=(i + 1) * 0x1000,
                       data_base=0x400000 + (i + 1) * 0x1000)
        arr = b.space("arr", 16)
        b.li("t0", arr)
        for _ in range(40):
            b.addi("t1", "t1", 1)
        if i == 0:
            b.lw("t2", 0, "t0")       # the only miss in the run
            memsys.miss_addrs.add(arr)
        for _ in range(40):
            b.addi("t3", "t3", 1)
        b.halt()
        program = b.build()
        program.load(memory)
        proc.load_process(i, Process("t%d" % i, program))
    run_to_halt(proc)
    return proc.stats.squashed
