"""The distributed-shared-memory machine and its per-node memory systems.

Each node's :class:`NodeMemory` exposes the same ``data_access`` /
``inst_fetch`` interface as the uniprocessor hierarchy, so the processor
model is reused unchanged.  Differences from the workstation (paper
Section 5.2):

* the instruction cache is ideal (100% hit — shared-data communication
  dominates the multiprocessor miss rate);
* a single level of lockup-free data cache per node;
* misses are serviced by the directory protocol with Table 8 latencies;
* a *write* to a shared line is an ownership upgrade — also a
  late-detected long-latency event, so it enters the doomed window like
  any miss.

Data placement: each page has a home node.  Workloads place each thread's
private region on its own node; shared regions default to round-robin
page interleaving (``page % n_nodes``), DASH's default allocation.
"""

from repro.isa.executor import Memory
from repro.memory.cache import DirectMappedCache
from repro.memory.mshr import MSHRFile
from repro.memory.hierarchy import AccessResult
from repro.coherence.directory import Directory
from repro.coherence.interconnect import LatencyModel

_PAGE_BITS = 12


class NodeMemory:
    """The memory interface one node's processor issues into."""

    __slots__ = ("machine", "node_id", "cache", "mshr")

    def __init__(self, machine, node_id):
        self.machine = machine
        self.node_id = node_id
        self.cache = DirectMappedCache(machine.params.cache)
        self.mshr = MSHRFile(machine.mshr_capacity)

    def inst_fetch(self, addr, now):
        """Ideal instruction cache (paper Section 5.2)."""
        return AccessResult("l1", now)

    def inst_run_hits(self, addr, n_insts, already_fetched):
        """Burst fetch guard: trivially satisfied (ideal I-cache)."""
        return True

    def data_access(self, addr, is_write, now, requester=None):
        return self.machine.access(self.node_id, addr, is_write, now)

    def next_event_cycle(self, now):
        """Earliest future node-local fill/port drain (event protocol)."""
        soonest = self.mshr.next_event_cycle(now)
        port = self.cache.next_event_cycle(now)
        if soonest is None or (port is not None and port < soonest):
            soonest = port
        return soonest


class DSMachine:
    """Caches + directory + interconnect for ``n_nodes`` nodes."""

    def __init__(self, params, seed=None, mshr_capacity=8):
        self.params = params
        self.n_nodes = params.n_nodes
        self.mshr_capacity = mshr_capacity
        self.latency = LatencyModel(params, seed=seed)
        self.directory = Directory()
        self.memory = Memory()            # functional image, shared
        self.nodes = [NodeMemory(self, i) for i in range(self.n_nodes)]
        self.page_home = {}               # page -> node overrides
        # statistics
        self.read_misses = 0
        self.write_misses = 0
        self.upgrades = 0
        self.invalidations_sent = 0
        self.dirty_remote_services = 0
        # Fills serviced off-node (home memory on another node, or a
        # 3-hop transfer out of a remote cache) — the communication
        # misses that dominate the multiprocessor's latency budget.
        self.remote_fills = 0
        # MSHR-full NACKs: the request is refused and the processor
        # retries later (each refusal also counts in the refusing
        # node's ``mshr.structural_stalls``).
        self.nack_retries = 0

    # -- placement ---------------------------------------------------------------

    def place(self, addr, n_words, node):
        """Pin the pages covering [addr, addr + 4*n_words) to ``node``."""
        first = addr >> _PAGE_BITS
        last = (addr + 4 * n_words - 1) >> _PAGE_BITS
        for page in range(first, last + 1):
            self.page_home[page] = node

    def home_of(self, addr):
        page = addr >> _PAGE_BITS
        home = self.page_home.get(page)
        if home is None:
            home = page % self.n_nodes
        return home

    # -- the protocol ------------------------------------------------------------

    def _service_dirty(self, entry, line, requester, now, for_write):
        """Fetch a line that is dirty in another cache (3-hop transfer)."""
        owner = entry.owner
        owner_cache = self.nodes[owner].cache
        self.dirty_remote_services += 1
        latency = self.latency.remote_cache()
        # The transfer occupies the owner's cache port (cache contention
        # is modelled even though the network is not).
        params = owner_cache.params
        owner_cache.port.acquire(now + latency // 2,
                                 params.read_occupancy)
        if for_write:
            owner_cache.invalidate(line)
            self.invalidations_sent += 1
            entry.owner = requester
            entry.sharers = 0
        else:
            # Owner keeps a clean copy; home memory is updated.
            owner_cache.dirty[owner_cache.index_of(line)] = 0
            entry.owner = -1
            entry.sharers = (1 << owner) | (1 << requester)
        return latency

    def _invalidate_sharers(self, entry, line, keep, now):
        """Invalidate every sharer except ``keep``."""
        bits = entry.sharers
        node = 0
        while bits:
            if bits & 1 and node != keep:
                cache = self.nodes[node].cache
                if cache.invalidate(line):
                    cache.port.acquire(
                        now, cache.params.invalidate_occupancy)
                self.invalidations_sent += 1
            bits >>= 1
            node += 1

    def access(self, node_id, addr, is_write, now):
        """One data access from ``node_id``; returns an AccessResult."""
        node = self.nodes[node_id]
        cache = node.cache
        line = cache.line_addr(addr)

        node.mshr.purge(now)
        pending = node.mshr.pending(line)
        if pending is not None:
            node.mshr.merge(line)
            return AccessResult("pending", pending)

        occ = (cache.params.write_occupancy if is_write
               else cache.params.read_occupancy)
        port_start = cache.port.acquire(now, occ)
        entry = self.directory.entry(line)

        if cache.lookup(addr):
            if not is_write:
                return AccessResult("l1", port_start)
            if entry.owner == node_id:
                cache.mark_dirty(addr)
                return AccessResult("l1", port_start)
            # Write hit on a shared line: ownership upgrade through the
            # home — a late-detected long-latency event.
            if len(node.mshr.entries) >= node.mshr.capacity:
                node.mshr.structural_stalls += 1
                self.nack_retries += 1
                return AccessResult(
                    "mshr", node.mshr.earliest_completion() or now + 1)
            self.upgrades += 1
            home = self.home_of(addr)
            latency = self.latency.memory_latency(node_id, home)
            self._invalidate_sharers(entry, line, keep=node_id, now=now)
            entry.owner = node_id
            entry.sharers = 0
            cache.mark_dirty(addr)
            ready = port_start + latency
            node.mshr.allocate(line, ready)
            return AccessResult("upgrade", ready)

        # Miss.  Check MSHR capacity before touching any protocol state so
        # a structural retry replays the full transaction.
        if len(node.mshr.entries) >= node.mshr.capacity:
            node.mshr.structural_stalls += 1
            self.nack_retries += 1
            return AccessResult(
                "mshr", node.mshr.earliest_completion() or now + 1)
        if is_write:
            self.write_misses += 1
        else:
            self.read_misses += 1

        if entry.is_dirty and entry.owner != node_id:
            latency = self._service_dirty(entry, line, node_id, now,
                                          for_write=is_write)
            level = "remote_cache"
        else:
            home = self.home_of(addr)
            if is_write:
                self._invalidate_sharers(entry, line, keep=node_id,
                                         now=now)
                entry.owner = node_id
                entry.sharers = 0
            else:
                entry.owner = -1
                entry.sharers |= 1 << node_id
            latency = self.latency.memory_latency(node_id, home)
            level = "local" if home == node_id else "remote"
        if level != "local":
            self.remote_fills += 1

        evicted = cache.fill(addr)
        if is_write:
            cache.mark_dirty(addr)
        if evicted is not None:
            # Dirty eviction: write back through the home, clearing
            # ownership so the directory stays exact for dirty lines.
            ev_entry = self.directory.entry(cache.line_addr(evicted))
            if ev_entry.owner == node_id:
                ev_entry.owner = -1

        ready = port_start + latency
        node.mshr.allocate(line, ready)
        return AccessResult(level, ready)

    def next_event_cycle(self, now):
        """Earliest future state change across all nodes (event protocol)."""
        soonest = None
        for node in self.nodes:
            t = node.next_event_cycle(now)
            if t is not None and (soonest is None or t < soonest):
                soonest = t
        return soonest

    # -- invariant checking (used by property tests) --------------------------------

    def check_coherence_invariants(self):
        """Raise AssertionError when the protocol state is inconsistent.

        Invariants: (1) at most one dirty copy machine-wide, and when a
        cache line is dirty the directory names that cache as owner;
        (2) a dirty line is present in the owner's cache.
        """
        for line, entry in self.directory.entries.items():
            dirty_holders = []
            for node in self.nodes:
                cache = node.cache
                idx = cache.index_of(line)
                if (cache.tags[idx] == cache.tag_of(line)
                        and cache.dirty[idx]):
                    dirty_holders.append(node.node_id)
            if entry.is_dirty:
                assert dirty_holders == [entry.owner], (
                    "line 0x%x: directory owner %d but dirty in %s"
                    % (line, entry.owner, dirty_holders))
            else:
                assert not dirty_holders, (
                    "line 0x%x: dirty in %s but directory says clean"
                    % (line, dirty_holders))
