"""Directory state for the invalidation protocol.

Each memory line has a home node; the home's directory tracks the line in
one of three states, exactly as in DASH:

* **uncached** — no cache holds it (owner == -1, sharers == 0);
* **shared** — one or more caches hold clean copies (sharers bitmask);
* **dirty** — exactly one cache holds a modified copy (owner >= 0).

Sharer bits may be stale (a cache that silently evicted a clean line
stays in the bitmask until the next invalidation round), which is how
real sparse directories behave; invalidations to absent lines are
harmless.  Dirty ownership is always exact, since dirty evictions write
back through the home.
"""


class DirEntry:
    __slots__ = ("owner", "sharers")

    def __init__(self):
        self.owner = -1
        self.sharers = 0

    @property
    def is_dirty(self):
        return self.owner >= 0

    def sharer_list(self):
        out = []
        bits = self.sharers
        node = 0
        while bits:
            if bits & 1:
                out.append(node)
            bits >>= 1
            node += 1
        return out

    def __repr__(self):
        if self.is_dirty:
            return "<dirty@%d>" % self.owner
        if self.sharers:
            return "<shared:%s>" % self.sharer_list()
        return "<uncached>"


class Directory:
    """All directory entries of the machine (keyed by line address)."""

    __slots__ = ("entries",)

    def __init__(self):
        self.entries = {}

    def entry(self, line_addr):
        e = self.entries.get(line_addr)
        if e is None:
            e = DirEntry()
            self.entries[line_addr] = e
        return e

    def peek(self, line_addr):
        """Entry if it exists (no allocation); used by invariant checks."""
        return self.entries.get(line_addr)
