"""Distributed-shared-memory substrate (paper Section 5.2).

A DASH-like machine: one processor, cache, and memory slice per node,
kept coherent by a distributed invalidation-based directory protocol.
The network and memories are contentionless (as in the paper — "cache
contention is likely to dominate network and memory contention"); cache
port contention *is* modelled.  Unloaded latencies are drawn uniformly
from the Table 8 ranges.
"""

from repro.coherence.directory import Directory, DirEntry
from repro.coherence.interconnect import LatencyModel
from repro.coherence.dsm import DSMachine, NodeMemory

__all__ = ["Directory", "DirEntry", "LatencyModel", "DSMachine",
           "NodeMemory"]
