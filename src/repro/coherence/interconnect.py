"""Interconnect latency model (paper Table 8).

"Unloaded memory latencies are selected from a uniform distribution
spanning the ranges given in Table 8 and are based on Stanford DASH
latencies."  The network itself is contentionless.
"""

import random


class LatencyModel:
    """Samples unloaded latencies for the three remote access classes."""

    def __init__(self, params, seed=None):
        self.params = params
        self.rng = random.Random(params.seed if seed is None else seed)
        self.samples = {"local": 0, "remote": 0, "remote_cache": 0}

    def local_memory(self):
        self.samples["local"] += 1
        return self.rng.randint(*self.params.local_memory)

    def remote_memory(self):
        self.samples["remote"] += 1
        return self.rng.randint(*self.params.remote_memory)

    def remote_cache(self):
        self.samples["remote_cache"] += 1
        return self.rng.randint(*self.params.remote_cache)

    def memory_latency(self, requester, home):
        """Latency for a clean miss serviced by ``home``'s memory."""
        if requester == home:
            return self.local_memory()
        return self.remote_memory()
