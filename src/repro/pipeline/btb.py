"""Branch target buffer.

A 2048-entry direct-mapped BTB (paper Section 4.1): correctly predicted
branches cost nothing, mispredicted branches pay a 3-cycle penalty.  Only
taken branches are installed; a hit on a branch that turns out not to be
taken is a misprediction and evicts the entry (the behaviour of simple
"last-target" BTBs of the era).

All hardware contexts share the BTB — the entries are tagged by PC address
only, as in the paper's Figure 12, so multiprogrammed contexts can evict
each other's entries.
"""


class BranchTargetBuffer:
    """Direct-mapped last-target BTB."""

    __slots__ = ("n_entries", "tags", "targets", "hits", "mispredicts",
                 "lookups")

    def __init__(self, n_entries=2048):
        if n_entries & (n_entries - 1):
            raise ValueError("BTB size must be a power of two")
        self.n_entries = n_entries
        self.tags = [-1] * n_entries
        self.targets = [0] * n_entries
        self.lookups = 0
        self.hits = 0
        self.mispredicts = 0

    def _index(self, pc_addr):
        return (pc_addr >> 2) & (self.n_entries - 1)

    def predict(self, pc_addr):
        """Predicted branch target for the instruction at ``pc_addr``.

        Returns the predicted target instruction index, or None for
        "predict not taken / fall through".
        """
        self.lookups += 1
        idx = self._index(pc_addr)
        if self.tags[idx] == pc_addr:
            self.hits += 1
            return self.targets[idx]
        return None

    def resolve(self, pc_addr, predicted, actual_target, fallthrough):
        """Resolve a branch; returns True when the prediction was correct.

        ``actual_target`` is the actual next instruction index (the branch
        target when taken, ``fallthrough`` when not).  Updates the BTB:
        installs taken branches, evicts entries that predicted a
        not-taken branch as taken.
        """
        taken = actual_target != fallthrough
        predicted_next = predicted if predicted is not None else fallthrough
        correct = predicted_next == actual_target
        idx = self._index(pc_addr)
        if taken:
            self.tags[idx] = pc_addr
            self.targets[idx] = actual_target
        elif predicted is not None:
            # Entry predicted taken but the branch fell through: evict.
            if self.tags[idx] == pc_addr:
                self.tags[idx] = -1
        if not correct:
            self.mispredicts += 1
        return correct

    def flush(self):
        for i in range(self.n_entries):
            self.tags[i] = -1

    @property
    def accuracy(self):
        if not self.lookups:
            return 1.0
        return 1.0 - self.mispredicts / self.lookups
