"""Stall/cycle taxonomy used for the paper's utilisation breakdowns.

Figures 6 and 7 split uniprocessor time into busy / instruction stall /
inst cache-TLB / data cache-TLB / context switch; Figures 8 and 9 split
multiprocessor time into busy / instruction (short) / instruction (long) /
memory / synchronisation / context switch.  One taxonomy covers both.
"""

import enum


class Stall(enum.IntEnum):
    """Where one issue slot went."""

    BUSY = 0            # useful instruction issued
    INST_SHORT = 1      # pipeline dependency, <= 4 cycles (Figures 8/9)
    INST_LONG = 2       # pipeline dependency, > 4 cycles (divides etc.)
    ICACHE = 3          # instruction cache / TLB stall
    DCACHE = 4          # data cache / TLB stall (memory wait)
    SYNC = 5            # interprocess synchronisation wait
    SWITCH = 6          # context-switch overhead (flush / squash / switch)
    IDLE = 7            # no runnable process at all (scheduler idle)


#: Categories reported in the uniprocessor figures (6/7): short and long
#: instruction stalls are merged into one "instruction" bar there.
UNIPROCESSOR_CATEGORIES = (
    ("busy", (Stall.BUSY,)),
    ("instruction", (Stall.INST_SHORT, Stall.INST_LONG)),
    ("inst_cache", (Stall.ICACHE,)),
    ("data_cache", (Stall.DCACHE,)),
    ("context_switch", (Stall.SWITCH,)),
)

#: Categories reported in the multiprocessor figures (8/9).  IDLE slots
#: (a node whose threads finished early, waiting for the rest of the
#: machine) are load imbalance and belong with synchronisation.
MULTIPROCESSOR_CATEGORIES = (
    ("busy", (Stall.BUSY,)),
    ("instruction_short", (Stall.INST_SHORT,)),
    ("instruction_long", (Stall.INST_LONG,)),
    ("memory", (Stall.DCACHE, Stall.ICACHE)),
    ("synchronization", (Stall.SYNC, Stall.IDLE)),
    ("context_switch", (Stall.SWITCH,)),
)
