"""Behavioural models of the program-counter units (Figures 10-12).

Section 6 of the paper argues that the main implementation delta between
the blocked and interleaved schemes is the PC unit.  These models capture
the register-transfer behaviour of all three designs:

* :class:`SingleContextPCUnit` (Figure 10) — PC bus driven by one of
  sequential / BTB-predicted / computed-branch / exception-vector / EPC;
  the EPC tracks the retiring instruction for exception restart.
* :class:`BlockedPCUnit` (Figure 11) — the single-context design with one
  EPC *per context*; a context switch reuses the exception machinery:
  freeze the outgoing context's EPC, drive the incoming context's EPC.
* :class:`InterleavedPCUnit` (Figure 12) — per-context *next-PC holding
  registers* (NPC) with the paper's load priority (computed branch over
  predicted branch over sequential over hold), a per-NPC mispredict bit
  that triggers a BTB update when driven, squash-by-CID, and per-context
  EPCs for restart after a context becomes unavailable.

These models are the microarchitectural reference for what the fast
issue-level model in :mod:`repro.core.processor` abstracts; tests hold
the two consistent on the behaviours they share.
"""

WORD = 4


class SingleContextPCUnit:
    """Figure 10: the baseline PC unit."""

    def __init__(self, reset_pc=0):
        self.pc = reset_pc            # value on the PC bus this cycle
        self.epc = 0                  # exception PC register
        self.in_exception = False
        self.history = [reset_pc]

    def _drive(self, value):
        self.pc = value
        self.history.append(value)
        return value

    def step_sequential(self):
        """Normal flow: PC bus <- old PC + instruction size."""
        return self._drive(self.pc + WORD)

    def predicted_branch(self, target):
        """BTB hit: PC bus <- predicted target."""
        return self._drive(target)

    def computed_branch(self, target):
        """Mis- or unpredicted branch resolved in EX: redirect."""
        return self._drive(target)

    def retire(self, pc):
        """An instruction retires: EPC shadows it for exception restart."""
        if not self.in_exception:
            self.epc = pc

    def take_exception(self, vector, guilty_pc):
        """Squash from the guilty instruction; run the handler."""
        self.epc = guilty_pc
        self.in_exception = True
        return self._drive(vector)

    def eret(self):
        """Exception return: PC bus <- EPC."""
        self.in_exception = False
        return self._drive(self.epc)


class BlockedPCUnit:
    """Figure 11: per-context EPC doubling as the context-restart register."""

    def __init__(self, n_contexts, reset_pcs=None):
        self.n_contexts = n_contexts
        self.pc = 0
        self.epcs = [0] * n_contexts
        self.current = 0
        self.in_exception = False
        if reset_pcs:
            for i, v in enumerate(reset_pcs):
                self.epcs[i] = v
            self.pc = reset_pcs[0]
        self.history = [self.pc]

    def _drive(self, value):
        self.pc = value
        self.history.append(value)
        return value

    def step_sequential(self):
        return self._drive(self.pc + WORD)

    def predicted_branch(self, target):
        return self._drive(target)

    def computed_branch(self, target):
        return self._drive(target)

    def retire(self, pc):
        """The active context's EPC is continually updated (Section 6.2)."""
        if not self.in_exception:
            self.epcs[self.current] = pc

    def context_switch(self, next_context, restart_pc):
        """Switch at the exception point: save, flush, restore.

        ``restart_pc`` is the instruction that caused the switch (it will
        be re-executed — "the new context starts execution with the
        instruction that caused its previous context switch").
        """
        self.epcs[self.current] = restart_pc
        self.current = next_context
        return self._drive(self.epcs[next_context])

    def take_exception(self, vector, guilty_pc):
        self.epcs[self.current] = guilty_pc
        self.in_exception = True
        return self._drive(vector)

    def eret(self):
        self.in_exception = False
        return self._drive(self.epcs[self.current])


class _NPC:
    """One next-PC holding register with its mispredict status bit."""

    __slots__ = ("value", "mispredicted")

    def __init__(self, value=0):
        self.value = value
        self.mispredicted = False


class InterleavedPCUnit:
    """Figure 12: NPC holding registers, squash-by-CID, per-context EPC."""

    def __init__(self, n_contexts, reset_pcs=None):
        self.n_contexts = n_contexts
        self.npcs = [_NPC() for _ in range(n_contexts)]
        self.epcs = [0] * n_contexts
        self.epc_valid = [False] * n_contexts
        if reset_pcs:
            for i, v in enumerate(reset_pcs):
                self.npcs[i].value = v
        #: (cid, pc) pairs driven onto the PC bus, oldest first.
        self.bus_history = []
        #: BTB updates requested when a mispredicted NPC is driven.
        self.btb_updates = []
        #: squash signals (cid) broadcast to the pipeline.
        self.squashes = []

    # -- NPC loading (priority: computed > predicted > sequential > hold) --

    def issue(self, cid):
        """Context ``cid`` is selected: drive its PC and load the NPC.

        Returns the address driven onto the PC bus.  The EPC has
        priority when valid (restart after unavailability).
        """
        if self.epc_valid[cid]:
            pc = self.epcs[cid]
            self.epc_valid[cid] = False
            self.npcs[cid].value = pc + WORD
            self.npcs[cid].mispredicted = False
        else:
            npc = self.npcs[cid]
            pc = npc.value
            if npc.mispredicted:
                # Driving a held computed branch updates the BTB
                # (Section 6.3: "the BTB needs to be updated ... when
                # the holding register is driving the PC Bus").
                self.btb_updates.append((cid, pc))
                npc.mispredicted = False
            npc.value = pc + WORD
        self.bus_history.append((cid, pc))
        return pc

    def load_predicted(self, cid, target):
        """BTB hit for the just-driven PC: NPC <- predicted target.

        A pending computed branch (mispredict) has priority and is not
        overwritten.
        """
        npc = self.npcs[cid]
        if not npc.mispredicted:
            npc.value = target

    def mispredict(self, cid, computed_target):
        """Branch resolved wrong in EX: squash the context's younger
        instructions and hold the computed target with its status bit."""
        npc = self.npcs[cid]
        npc.value = computed_target
        npc.mispredicted = True
        self.squashes.append(cid)

    def make_unavailable(self, cid, miss_pc):
        """Cache miss detected: squash by CID, remember the restart PC."""
        self.epcs[cid] = miss_pc
        self.epc_valid[cid] = True
        self.squashes.append(cid)

    def context_pcs(self):
        """The next fetch address of every context (for inspection)."""
        return [self.epcs[i] if self.epc_valid[i] else self.npcs[i].value
                for i in range(self.n_contexts)]
