"""Issue scoreboard.

The paper's simulator "models all major pipeline dependencies, including
load, execution result, execution issue, and control-transfer hazards ...
through a scoreboard which maintains information on the functional unit
and register usage of all operations in progress".  This is that
scoreboard, at issue granularity:

* per-context register ready-times model result forwarding — a consumer
  may issue once ``now >= ready[reg]``, and the Table 3 latencies are
  exactly these issue-to-issue distances (ALU 1, shift 2, load 3, FP 5,
  divides 35/61);
* non-pipelined functional units (integer multiply/divide, FP divide)
  impose structural hazards through shared busy-until times;
* output (WAW) dependencies delay issue until the write completes in
  order; anti (WAR) dependencies cannot occur at issue granularity since
  operands are captured at issue.

Register state is kept in flat arrays indexed ``(ctx_id << 6) | reg``
(one int list for ready-times, one bytearray for the miss-pending
flags): one index computation replaces the per-access inner-list lookup
on the hot path, and the burst engine's bulk updates write straight
into the flat arrays.
"""

from repro.isa.opcodes import FU

#: Units that are not pipelined and therefore block subsequent issues.
_NON_PIPELINED = (FU.MULDIV, FU.FPDIV)

#: Registers per hardware context in the flat arrays (32 int + 32 fp).
_REGS = 64


class Scoreboard:
    """Register and functional-unit hazard tracking for all contexts."""

    __slots__ = ("n_contexts", "reg_ready", "reg_mem", "fu_busy")

    def __init__(self, n_contexts):
        self.n_contexts = n_contexts
        # reg_ready[ctx << 6 | reg] = first cycle the value is usable.
        self.reg_ready = [0] * (_REGS * n_contexts)
        # reg_mem[ctx << 6 | reg] = the pending value comes from a cache
        # miss (stall-on-use); consumers charge their wait to the
        # data-cache category rather than to a pipeline dependency.
        self.reg_mem = bytearray(_REGS * n_contexts)
        self.fu_busy = [0] * (max(FU) + 1)

    def hazard_until(self, ctx_id, inst, now):
        """Earliest cycle ``inst`` could issue, and the limiting kind.

        Returns ``(ready_cycle, kind)`` where kind is ``"data"`` for a
        register dependency, ``"memory"`` when the limiting register is
        waiting on an outstanding cache miss, ``"structural"`` for a busy
        functional unit, or None when the instruction can issue at ``now``.
        """
        base = ctx_id << 6
        ready = self.reg_ready
        mem = self.reg_mem
        latest = now
        kind = None
        for r in inst.reads:
            t = ready[base + r]
            if t > latest:
                latest = t
                kind = "memory" if mem[base + r] else "data"
        w = inst.writes
        if w >= 0:
            # In-order (output-dependency-safe) write: this write must not
            # complete before an older, longer-latency write to the same
            # register.
            t = ready[base + w] - inst.info.latency
            if t > latest:
                latest = t
                kind = "memory" if mem[base + w] else "data"
        unit = inst.info.unit
        if unit in _NON_PIPELINED:
            t = self.fu_busy[unit]
            if t > latest:
                latest = t
                kind = "structural"
        if latest > now:
            return latest, kind
        return now, None

    def issue(self, ctx_id, inst, now):
        """Commit the issue of ``inst`` at cycle ``now``."""
        w = inst.writes
        if w >= 0:
            idx = (ctx_id << 6) + w
            self.reg_ready[idx] = now + inst.info.latency
            self.reg_mem[idx] = 0
        unit = inst.info.unit
        if unit in _NON_PIPELINED:
            self.fu_busy[unit] = now + inst.info.issue

    def apply_burst(self, ctx_id, now, writes_out):
        """Bulk-commit a precompiled burst dispatched at cycle ``now``.

        ``writes_out`` is the burst's ``(reg, delta)`` schedule: the
        final in-burst write to ``reg`` completes at ``now + delta``.
        The deltas come from the burst's packed schedule, so they are
        already issue-width aware (a width-2 burst's issue cycles — and
        hence its write completion deltas — differ from the width-1
        packing of the same run).  Equivalent to calling :meth:`issue`
        for every instruction of the burst (bursts never touch
        non-pipelined units, so ``fu_busy`` is untouched by
        construction).
        """
        base = ctx_id << 6
        ready = self.reg_ready
        mem = self.reg_mem
        for reg, delta in writes_out:
            idx = base + reg
            ready[idx] = now + delta
            mem[idx] = 0

    def can_dispatch_burst(self, ctx_id, burst, now):
        """True when every live-in register of ``burst`` is ready early
        enough that the precompiled schedule is exact (see
        :class:`repro.isa.segments.Burst`).  Guard slacks are the first
        *attempt cycle* of each live-in in the packed schedule, so the
        check is exact at any issue width: a register ready by its first
        attempt cycle cannot change the schedule regardless of which
        slot of that cycle the instruction issues in."""
        base = ctx_id << 6
        ready = self.reg_ready
        for reg, slack in burst.guard:
            if ready[base + reg] > now + slack:
                return False
        return True

    def set_ready(self, ctx_id, reg, cycle, memory=False):
        """Override a register's ready time (used for load-miss returns)."""
        idx = (ctx_id << 6) + reg
        self.reg_ready[idx] = cycle
        self.reg_mem[idx] = 1 if memory else 0

    def clear_context(self, ctx_id):
        """Forget all pending results of a context.

        Used when the OS loads a *different process* onto the hardware
        context.  It is deliberately **not** used on a cache-miss squash:
        instructions older than the miss (e.g. an in-flight FP divide)
        keep completing during the memory wait, and the squashed younger
        instructions never touched the scoreboard in the first place.
        """
        base = ctx_id << 6
        ready = self.reg_ready
        mem = self.reg_mem
        for i in range(base, base + _REGS):
            ready[i] = 0
            mem[i] = 0
