"""Issue scoreboard — pure-python and vectorised numpy backends.

The paper's simulator "models all major pipeline dependencies, including
load, execution result, execution issue, and control-transfer hazards ...
through a scoreboard which maintains information on the functional unit
and register usage of all operations in progress".  This is that
scoreboard, at issue granularity:

* per-context register ready-times model result forwarding — a consumer
  may issue once ``now >= ready[reg]``, and the Table 3 latencies are
  exactly these issue-to-issue distances (ALU 1, shift 2, load 3, FP 5,
  divides 35/61);
* non-pipelined functional units (integer multiply/divide, FP divide)
  impose structural hazards through shared busy-until times;
* output (WAW) dependencies delay issue until the write completes in
  order; anti (WAR) dependencies cannot occur at issue granularity since
  operands are captured at issue.

Register state is kept in flat arrays indexed ``(ctx_id << 6) | reg``
(ready-times plus miss-pending flags): one index computation replaces
the per-access inner-list lookup on the hot path, and the burst engine's
bulk updates write straight into the flat arrays.

Two interchangeable backends implement the same method set over that
layout (the L601/L602 lint rules prove the surfaces stay identical, the
differential harness proves the results do):

* :class:`Scoreboard` (``backend="python"``) — an int list and a
  bytearray; the reference implementation, zero dependencies.
* :class:`NumpyScoreboard` (``backend="numpy"``) — ``int64`` ready-times
  and ``uint8`` miss flags as ndarrays.  ``clear_context`` is a slice
  assignment, ``apply_burst_compiled`` a fancy-indexed scatter over the
  burst's precompiled index/value arrays, the burst guard a single
  vectorised compare, and :meth:`can_dispatch_bursts` probes a whole
  batch of contexts in one comparison.  Scalar per-issue queries cast
  back to python ints so no ``np.int64`` ever escapes into simulator
  state (cycle counters and stats must stay JSON-serialisable).

Backend selection (:func:`make_scoreboard` / :func:`resolve_backend`):
an explicit ``"python"``/``"numpy"`` wins; ``"auto"`` picks numpy when
importable and silently falls back otherwise; ``None`` defers to the
``REPRO_BACKEND`` environment variable and defaults to ``"python"``.
numpy is deliberately an *optional* dependency (the ``repro[fast]``
extra): asking for ``"numpy"`` without it installed raises, everything
else degrades gracefully.
"""

import os

from repro.isa.opcodes import FU

try:  # pragma: no cover - exercised by the no-numpy CI lane
    import numpy as _np
except ImportError:  # pragma: no cover
    _np = None

#: True when the vectorised backend can be built in this interpreter.
HAVE_NUMPY = _np is not None

#: The selectable backend names (``"auto"``/None resolve to one of these).
BACKENDS = ("python", "numpy")

#: Environment default consulted when no explicit backend is passed.
BACKEND_ENV = "REPRO_BACKEND"

#: Units that are not pipelined and therefore block subsequent issues.
_NON_PIPELINED = (FU.MULDIV, FU.FPDIV)

#: Registers per hardware context in the flat arrays (32 int + 32 fp).
_REGS = 64

#: Reusable zero blocks for the python backend's clear_context slice
#: assignment (one context's worth of ready-times / miss flags).
_ZERO_READY = (0,) * _REGS
_ZERO_MEM = bytes(_REGS)


def resolve_backend(backend=None):
    """Resolve a backend request to ``"python"`` or ``"numpy"``.

    ``None`` defers to ``$REPRO_BACKEND`` (itself defaulting to
    ``"auto"`` semantics when set to ``"auto"``, ``"python"`` when
    unset).  ``"auto"`` picks numpy when importable, python otherwise.
    An explicit ``"numpy"`` without numpy installed raises — a silent
    fallback there would misreport every benchmark it was asked for.
    """
    if backend is None:
        backend = os.environ.get(BACKEND_ENV) or "python"
    if backend == "auto":
        return "numpy" if HAVE_NUMPY else "python"
    if backend not in BACKENDS:
        raise ValueError("backend must be one of %s, 'auto' or None, "
                         "not %r" % ((BACKENDS,) + (backend,)))
    if backend == "numpy" and not HAVE_NUMPY:
        raise RuntimeError(
            "backend='numpy' requested but numpy is not installed; "
            "install the repro[fast] extra or use backend='auto'")
    return backend


def make_scoreboard(n_contexts, backend=None):
    """Build the scoreboard for ``backend`` (see :func:`resolve_backend`)."""
    if resolve_backend(backend) == "numpy":
        return NumpyScoreboard(n_contexts)
    return Scoreboard(n_contexts)


class Scoreboard:
    """Register and functional-unit hazard tracking for all contexts.

    The pure-python reference backend; :class:`NumpyScoreboard` must
    mirror every method and state slot here (lint rules L601/L602).
    """

    __slots__ = ("n_contexts", "reg_ready", "reg_mem", "fu_busy",
                 "_probe_cache")

    #: Backend name this class implements (the resolved knob value).
    backend = "python"

    def __init__(self, n_contexts):
        self.n_contexts = n_contexts
        # reg_ready[ctx << 6 | reg] = first cycle the value is usable.
        self.reg_ready = [0] * (_REGS * n_contexts)
        # reg_mem[ctx << 6 | reg] = the pending value comes from a cache
        # miss (stall-on-use); consumers charge their wait to the
        # data-cache category rather than to a pipeline dependency.
        self.reg_mem = bytearray(_REGS * n_contexts)
        self.fu_busy = [0] * (max(FU) + 1)
        # Unused here; the numpy backend memoises its assembled probe
        # batch under this name and L602 keeps the slot sets identical.
        self._probe_cache = None

    def hazard_until(self, ctx_id, inst, now):
        """Earliest cycle ``inst`` could issue, and the limiting kind.

        Returns ``(ready_cycle, kind)`` where kind is ``"data"`` for a
        register dependency, ``"memory"`` when the limiting register is
        waiting on an outstanding cache miss, ``"structural"`` for a busy
        functional unit, or None when the instruction can issue at ``now``.
        """
        base = ctx_id << 6
        ready = self.reg_ready
        mem = self.reg_mem
        latest = now
        kind = None
        for r in inst.reads:
            t = ready[base + r]
            if t > latest:
                latest = t
                kind = "memory" if mem[base + r] else "data"
        w = inst.writes
        if w >= 0:
            # In-order (output-dependency-safe) write: this write must not
            # complete before an older, longer-latency write to the same
            # register.
            t = ready[base + w] - inst.info.latency
            if t > latest:
                latest = t
                kind = "memory" if mem[base + w] else "data"
        unit = inst.info.unit
        if unit in _NON_PIPELINED:
            t = self.fu_busy[unit]
            if t > latest:
                latest = t
                kind = "structural"
        if latest > now:
            return latest, kind
        return now, None

    def issue(self, ctx_id, inst, now):
        """Commit the issue of ``inst`` at cycle ``now``."""
        w = inst.writes
        if w >= 0:
            idx = (ctx_id << 6) + w
            self.reg_ready[idx] = now + inst.info.latency
            self.reg_mem[idx] = 0
        unit = inst.info.unit
        if unit in _NON_PIPELINED:
            self.fu_busy[unit] = now + inst.info.issue

    def apply_burst(self, ctx_id, now, writes_out):
        """Bulk-commit a burst's ``(reg, delta)`` write schedule at ``now``.

        The deltas come from the burst's packed schedule, so they are
        already issue-width aware (a width-2 burst's issue cycles — and
        hence its write completion deltas — differ from the width-1
        packing of the same run).  Equivalent to calling :meth:`issue`
        for every instruction of the burst (bursts never touch
        non-pipelined units, so ``fu_busy`` is untouched by
        construction).
        """
        base = ctx_id << 6
        ready = self.reg_ready
        mem = self.reg_mem
        for reg, delta in writes_out:
            idx = base + reg
            ready[idx] = now + delta
            mem[idx] = 0

    def apply_burst_compiled(self, ctx_id, now, burst):
        """Commit a precompiled :class:`~repro.isa.segments.Burst`.

        The processor's dispatch path: the python backend walks the
        pair tuple, the numpy backend scatters the burst's precompiled
        index/value arrays.
        """
        self.apply_burst(ctx_id, now, burst.writes_out)

    def can_dispatch_burst(self, ctx_id, burst, now):
        """True when every live-in register of ``burst`` is ready early
        enough that the precompiled schedule is exact (see
        :class:`repro.isa.segments.Burst`).  Guard slacks are the first
        *attempt cycle* of each live-in in the packed schedule, so the
        check is exact at any issue width: a register ready by its first
        attempt cycle cannot change the schedule regardless of which
        slot of that cycle the instruction issues in."""
        base = ctx_id << 6
        ready = self.reg_ready
        for reg, slack in burst.guard:
            if ready[base + reg] > now + slack:
                return False
        return True

    def can_dispatch_bursts(self, ctx_ids, bursts, now):
        """Batched multi-context guard probe.

        ``ctx_ids`` and ``bursts`` are parallel sequences; returns a
        list of booleans, element ``i`` being exactly
        ``can_dispatch_burst(ctx_ids[i], bursts[i], now)``.  The numpy
        backend answers the whole batch with one vectorised compare
        over the concatenated precompiled guard arrays.
        """
        return [self.can_dispatch_burst(c, b, now)
                for c, b in zip(ctx_ids, bursts)]

    def set_ready(self, ctx_id, reg, cycle, memory=False):
        """Override a register's ready time (used for load-miss returns)."""
        idx = (ctx_id << 6) + reg
        self.reg_ready[idx] = cycle
        self.reg_mem[idx] = 1 if memory else 0

    def clear_context(self, ctx_id):
        """Forget all pending results of a context.

        Used when the OS loads a *different process* onto the hardware
        context — every process switch of the workstation model lands
        here, so it is a single slice assignment, not an element loop.
        It is deliberately **not** used on a cache-miss squash:
        instructions older than the miss (e.g. an in-flight FP divide)
        keep completing during the memory wait, and the squashed younger
        instructions never touched the scoreboard in the first place.
        """
        base = ctx_id << 6
        self.reg_ready[base:base + _REGS] = _ZERO_READY
        self.reg_mem[base:base + _REGS] = _ZERO_MEM


class NumpyScoreboard:
    """Vectorised scoreboard: the same machine on ndarray state.

    ``reg_ready`` is ``int64`` (cycle counts fit comfortably — the
    parked-context sentinel is ``1 << 62``), ``reg_mem`` is ``uint8``.
    Scalar queries (:meth:`hazard_until`) cast results back to python
    ints at the boundary; bulk operations are where the backend earns
    its keep (see the module docstring).  Method set and state slots
    must mirror :class:`Scoreboard` exactly — lint rules L601/L602
    fail the build when either backend drifts.
    """

    __slots__ = ("n_contexts", "reg_ready", "reg_mem", "fu_busy",
                 "_probe_cache")

    backend = "numpy"

    def __init__(self, n_contexts):
        self.n_contexts = n_contexts
        self.reg_ready = _np.zeros(_REGS * n_contexts, dtype=_np.int64)
        self.reg_mem = _np.zeros(_REGS * n_contexts, dtype=_np.uint8)
        # The handful of shared non-pipelined units stays a python list:
        # it is indexed one scalar at a time on the issue path.
        self.fu_busy = [0] * (max(FU) + 1)
        # Single-entry memo for can_dispatch_bursts: the assembled batch
        # arrays for the last candidate set (see the method docstring).
        self._probe_cache = None

    def hazard_until(self, ctx_id, inst, now):
        """See :meth:`Scoreboard.hazard_until` (same contract).

        Reads cast through ``int()`` so the returned ready cycle is a
        python int — it flows into ``stall_until``/``burst_until`` and
        from there into serialised results.
        """
        base = ctx_id << 6
        ready = self.reg_ready
        mem = self.reg_mem
        latest = now
        kind = None
        for r in inst.reads:
            t = int(ready[base + r])
            if t > latest:
                latest = t
                kind = "memory" if mem[base + r] else "data"
        w = inst.writes
        if w >= 0:
            t = int(ready[base + w]) - inst.info.latency
            if t > latest:
                latest = t
                kind = "memory" if mem[base + w] else "data"
        unit = inst.info.unit
        if unit in _NON_PIPELINED:
            t = self.fu_busy[unit]
            if t > latest:
                latest = t
                kind = "structural"
        if latest > now:
            return latest, kind
        return now, None

    def issue(self, ctx_id, inst, now):
        """See :meth:`Scoreboard.issue` (same contract)."""
        w = inst.writes
        if w >= 0:
            idx = (ctx_id << 6) + w
            self.reg_ready[idx] = now + inst.info.latency
            self.reg_mem[idx] = 0
        unit = inst.info.unit
        if unit in _NON_PIPELINED:
            self.fu_busy[unit] = now + inst.info.issue

    def apply_burst(self, ctx_id, now, writes_out):
        """See :meth:`Scoreboard.apply_burst` (pair-tuple form)."""
        base = ctx_id << 6
        ready = self.reg_ready
        mem = self.reg_mem
        for reg, delta in writes_out:
            idx = base + reg
            ready[idx] = now + delta
            mem[idx] = 0

    def apply_burst_compiled(self, ctx_id, now, burst):
        """Fancy-indexed scatter of the burst's precompiled write arrays."""
        regs, deltas = burst.write_arrays()
        if regs.size == 0:
            return
        idx = regs + (ctx_id << 6)
        self.reg_ready[idx] = deltas + now
        self.reg_mem[idx] = 0

    def can_dispatch_burst(self, ctx_id, burst, now):
        """One vectorised compare over the burst's precompiled guard."""
        regs, slacks = burst.guard_arrays()
        if regs.size == 0:
            return True
        return bool(
            (self.reg_ready[regs + (ctx_id << 6)] <= slacks + now).all())

    def can_dispatch_bursts(self, ctx_ids, bursts, now):
        """Batched multi-context guard probe, one compare for the batch.

        Concatenates every candidate's precompiled guard arrays, offsets
        the register indices by each context's base in one vectorised
        add (``repeat`` over the per-burst guard lengths), compares once
        against the flat register file, and folds the per-burst verdicts
        with a single ``logical_and.reduceat``.

        The assembled batch (flat indices, slack bounds, reduceat
        starts) depends only on the candidate *set*, not on ``now`` or
        register state, so it is memoised single-entry: the stall-window
        pattern re-probes one candidate set over many cycles, and on a
        repeat the probe is just fancy-index, compare, reduceat.  The
        key holds the candidate tuples themselves (bursts compare by
        identity and are pinned by the key, so the memo can never alias
        a recycled object).  Semantically identical to the python
        backend's per-candidate loop.
        """
        key = (tuple(ctx_ids), tuple(bursts))
        cached = self._probe_cache
        if cached is not None and cached[0] == key:
            idx, slack_cat, starts, slots, n_out = cached[1]
        else:
            reg_parts = []
            slack_parts = []
            bases = []
            counts = []
            slots = []
            for slot, (ctx_id, burst) in enumerate(zip(ctx_ids, bursts)):
                regs, slacks = burst.guard_arrays()
                if regs.size:
                    reg_parts.append(regs)
                    slack_parts.append(slacks)
                    bases.append(ctx_id << 6)
                    counts.append(regs.size)
                    slots.append(slot)
            n_out = len(ctx_ids)
            if reg_parts:
                idx = _np.concatenate(reg_parts)
                idx += _np.repeat(_np.asarray(bases, dtype=_np.int64),
                                  _np.asarray(counts))
                slack_cat = _np.concatenate(slack_parts)
                starts = _np.zeros(len(counts), dtype=_np.intp)
                _np.cumsum(counts[:-1], out=starts[1:])
            else:
                idx = slack_cat = starts = None
            self._probe_cache = (key, (idx, slack_cat, starts, slots,
                                       n_out))
        verdicts = [True] * n_out
        if idx is None:
            return verdicts
        ok = self.reg_ready[idx] <= slack_cat + now
        folded = _np.logical_and.reduceat(ok, starts).tolist()
        for slot, verdict in zip(slots, folded):
            verdicts[slot] = verdict
        return verdicts

    def set_ready(self, ctx_id, reg, cycle, memory=False):
        """See :meth:`Scoreboard.set_ready` (same contract)."""
        idx = (ctx_id << 6) + reg
        self.reg_ready[idx] = cycle
        self.reg_mem[idx] = 1 if memory else 0

    def clear_context(self, ctx_id):
        """See :meth:`Scoreboard.clear_context`: one slice assignment."""
        base = ctx_id << 6
        self.reg_ready[base:base + _REGS] = 0
        self.reg_mem[base:base + _REGS] = 0


__all__ = ["Scoreboard", "NumpyScoreboard", "make_scoreboard",
           "resolve_backend", "BACKENDS", "BACKEND_ENV", "HAVE_NUMPY"]
