"""Issue scoreboard.

The paper's simulator "models all major pipeline dependencies, including
load, execution result, execution issue, and control-transfer hazards ...
through a scoreboard which maintains information on the functional unit
and register usage of all operations in progress".  This is that
scoreboard, at issue granularity:

* per-context register ready-times model result forwarding — a consumer
  may issue once ``now >= ready[reg]``, and the Table 3 latencies are
  exactly these issue-to-issue distances (ALU 1, shift 2, load 3, FP 5,
  divides 35/61);
* non-pipelined functional units (integer multiply/divide, FP divide)
  impose structural hazards through shared busy-until times;
* output (WAW) dependencies delay issue until the write completes in
  order; anti (WAR) dependencies cannot occur at issue granularity since
  operands are captured at issue.
"""

from repro.isa.opcodes import FU

#: Units that are not pipelined and therefore block subsequent issues.
_NON_PIPELINED = (FU.MULDIV, FU.FPDIV)


class Scoreboard:
    """Register and functional-unit hazard tracking for all contexts."""

    __slots__ = ("reg_ready", "reg_mem", "fu_busy")

    def __init__(self, n_contexts):
        # reg_ready[ctx][reg] = first cycle the register value is usable.
        self.reg_ready = [[0] * 64 for _ in range(n_contexts)]
        # reg_mem[ctx][reg] = the pending value comes from a cache miss
        # (stall-on-use); consumers charge their wait to the data-cache
        # category rather than to a pipeline dependency.
        self.reg_mem = [bytearray(64) for _ in range(n_contexts)]
        self.fu_busy = [0] * (max(FU) + 1)

    def hazard_until(self, ctx_id, inst, now):
        """Earliest cycle ``inst`` could issue, and the limiting kind.

        Returns ``(ready_cycle, kind)`` where kind is ``"data"`` for a
        register dependency, ``"memory"`` when the limiting register is
        waiting on an outstanding cache miss, ``"structural"`` for a busy
        functional unit, or None when the instruction can issue at ``now``.
        """
        ready = self.reg_ready[ctx_id]
        mem = self.reg_mem[ctx_id]
        latest = now
        kind = None
        for r in inst.reads:
            t = ready[r]
            if t > latest:
                latest = t
                kind = "memory" if mem[r] else "data"
        w = inst.writes
        if w >= 0:
            # In-order (output-dependency-safe) write: this write must not
            # complete before an older, longer-latency write to the same
            # register.
            t = ready[w] - inst.info.latency
            if t > latest:
                latest = t
                kind = "memory" if mem[w] else "data"
        unit = inst.info.unit
        if unit in _NON_PIPELINED:
            t = self.fu_busy[unit]
            if t > latest:
                latest = t
                kind = "structural"
        if latest > now:
            return latest, kind
        return now, None

    def issue(self, ctx_id, inst, now):
        """Commit the issue of ``inst`` at cycle ``now``."""
        w = inst.writes
        if w >= 0:
            self.reg_ready[ctx_id][w] = now + inst.info.latency
            self.reg_mem[ctx_id][w] = 0
        unit = inst.info.unit
        if unit in _NON_PIPELINED:
            self.fu_busy[unit] = now + inst.info.issue

    def set_ready(self, ctx_id, reg, cycle, memory=False):
        """Override a register's ready time (used for load-miss returns)."""
        self.reg_ready[ctx_id][reg] = cycle
        self.reg_mem[ctx_id][reg] = 1 if memory else 0

    def clear_context(self, ctx_id):
        """Forget all pending results of a context.

        Used when the OS loads a *different process* onto the hardware
        context.  It is deliberately **not** used on a cache-miss squash:
        instructions older than the miss (e.g. an in-flight FP divide)
        keep completing during the memory wait, and the squashed younger
        instructions never touched the scoreboard in the first place.
        """
        ready = self.reg_ready[ctx_id]
        for i in range(64):
            ready[i] = 0
        self.reg_mem[ctx_id] = bytearray(64)
