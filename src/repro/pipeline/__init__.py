"""Pipeline models: BTB, scoreboard, stall taxonomy, and PC units.

``repro.core.processor`` drives these to implement the issue-level timing
model; :mod:`repro.pipeline.pcunit` additionally provides behavioural
models of the paper's Figure 10–12 program-counter units.
"""

from repro.pipeline.btb import BranchTargetBuffer
from repro.pipeline.scoreboard import Scoreboard
from repro.pipeline.stalls import Stall
from repro.pipeline.pcunit import (
    SingleContextPCUnit,
    BlockedPCUnit,
    InterleavedPCUnit,
)

__all__ = [
    "BranchTargetBuffer",
    "Scoreboard",
    "Stall",
    "SingleContextPCUnit",
    "BlockedPCUnit",
    "InterleavedPCUnit",
]
