"""Machine configuration (paper Tables 1, 2, 3, 6, 8).

Two profiles are provided:

* :meth:`SystemConfig.paper` — the exact parameters of the paper's base
  workstation architecture (64 KB split L1, 1 MB L2, 6 M-cycle scheduler
  slices).  Faithful, but pure-Python simulation of full-size working sets
  is slow.
* :meth:`SystemConfig.fast` — caches, workload footprints, and scheduler
  slices scaled down *together* (same line size, same latencies), which
  preserves the miss-rate and tolerance ratios that drive the paper's
  results while letting a full experiment table run in minutes.

Where the archived paper text is garbled, values are reconstructed from
the sources the paper cites and are marked ``# reconstructed``:

* Table 3 integer multiply/divide: MIPS R4000 values (12, 35 cycles).
* Table 6 scheduler interference: Torrellas's IRIX study reports O(100)
  lines of cache interference per scheduler invocation, growing with the
  number of processes switched.
* Table 8 multiprocessor latencies: Stanford DASH remote access is
  ~100–130 cycles, dirty-remote ~130–160, local ~30–40.
"""

import hashlib
import json
from dataclasses import dataclass, field, fields, is_dataclass, replace


def to_canonical(obj):
    """A JSON-serialisable canonical form of a (nested) config object.

    Dataclasses become field-name dictionaries, mapping keys become
    strings (JSON objects cannot key on ints), and tuples become lists;
    the result round-trips through ``json.dumps(..., sort_keys=True)``
    to a stable byte string suitable for hashing.
    """
    if is_dataclass(obj) and not isinstance(obj, type):
        return {f.name: to_canonical(getattr(obj, f.name))
                for f in fields(obj)}
    if isinstance(obj, dict):
        return {str(k): to_canonical(obj[k])
                for k in sorted(obj, key=str)}
    if isinstance(obj, (list, tuple)):
        return [to_canonical(v) for v in obj]
    if isinstance(obj, (str, int, float, bool)) or obj is None:
        return obj
    raise TypeError("cannot canonicalise %r" % type(obj))


def fingerprint(obj):
    """A stable content hash of any config object (see to_canonical)."""
    payload = json.dumps(to_canonical(obj), sort_keys=True,
                         separators=(",", ":"))
    return hashlib.sha256(payload.encode()).hexdigest()


@dataclass(frozen=True)
class CacheParams:
    """One cache of Table 1 (all caches are direct-mapped)."""

    name: str
    size: int              # bytes
    line_size: int = 32    # bytes
    read_occupancy: int = 1
    write_occupancy: int = 1
    invalidate_occupancy: int = 2
    fill_occupancy: int = 1

    @property
    def n_lines(self):
        return self.size // self.line_size


@dataclass(frozen=True)
class TLBParams:
    entries: int = 64
    page_size: int = 4096
    miss_penalty: int = 30   # software-refill cost, charged as data stall


@dataclass(frozen=True)
class MemoryParams:
    """The uniprocessor hierarchy of Figure 4 / Tables 1 and 2."""

    l1i: CacheParams = field(default_factory=lambda: CacheParams(
        "l1i", 64 * 1024, fill_occupancy=8))
    l1d: CacheParams = field(default_factory=lambda: CacheParams(
        "l1d", 64 * 1024))
    l2: CacheParams = field(default_factory=lambda: CacheParams(
        "l2", 1024 * 1024, read_occupancy=2, write_occupancy=2,
        invalidate_occupancy=4, fill_occupancy=2))
    tlb: TLBParams = field(default_factory=TLBParams)
    l1_hit_latency: int = 1      # Table 2
    l2_hit_latency: int = 9      # Table 2
    memory_latency: int = 34     # Table 2
    n_banks: int = 4             # four-way interleaved memory
    bank_occupancy: int = 16     # cycles one bank is busy per line access
    bus_request_occupancy: int = 1   # split-transaction bus, address phase
    bus_reply_occupancy: int = 2     # data phase (one line)
    mshr_capacity: int = 8


@dataclass(frozen=True)
class PipelineParams:
    """Figure 5 pipeline and Table 4 switch costs."""

    int_depth: int = 7          # IF1 IF2 RF EX DF1 DF2 WB
    fp_depth: int = 9           # IF1 IF2 RF EX1..EX5 WB
    #: Issue-to-detection distance for a data-cache miss (tag check folded
    #: into DF2, decision visible at WB): the blocked scheme's 7-cycle
    #: flush is this window inclusive of the issue slot.
    miss_detect_offset: int = 6
    btb_entries: int = 2048
    mispredict_penalty: int = 3
    #: Instructions issued per cycle.  1 reproduces the paper; >1 is the
    #: Section 7 extension ("future trends"): in-order multi-issue,
    #: where the interleaved scheme's independent streams are exactly
    #: what fills the extra slots (the argument that led to SMT).
    issue_width: int = 1
    explicit_switch_cost: int = 3   # blocked: explicit switch instruction
    backoff_cost: int = 1           # interleaved: backoff instruction
    #: Dependency-stall lengths <= this count as "short" in Figures 8/9.
    short_stall_threshold: int = 4


@dataclass(frozen=True)
class OSParams:
    """Operating-system model (Section 4.3 / Table 6)."""

    time_slice: int = 6_000_000   # 30 ms at 200 MHz
    affinity_slices: int = 3
    #: Context-usage feedback (paper Section 5.1): "we will assume that
    #: the hardware provides context-usage feedback to the operating
    #: system, and the operating system schedules the workload to even
    #: out the amount of processor cycles devoted to each application."
    #: When enabled, group swaps pick the least-served processes instead
    #: of rotating round-robin.
    usage_feedback: bool = False
    #: Cache lines displaced by the scheduler, by number of processes
    #: switched (Table 6; reconstructed from Torrellas's IRIX study).
    interference: dict = field(default_factory=lambda: {
        1: (150, 120),
        2: (250, 200),
        4: (400, 320),
        8: (600, 480),
    })

    def interference_for(self, n_switched):
        """(icache_lines, dcache_lines) displaced for ``n_switched``."""
        if n_switched <= 0:
            return (0, 0)
        keys = sorted(self.interference)
        for k in keys:
            if n_switched <= k:
                return self.interference[k]
        return self.interference[keys[-1]]


@dataclass(frozen=True)
class MultiprocessorParams:
    """DASH-like machine of Section 5.2 / Table 8."""

    n_nodes: int = 8
    #: Unloaded latency ranges (uniform distributions, Table 8;
    #: reconstructed from published DASH numbers).
    local_memory: tuple = (30, 40)
    remote_memory: tuple = (100, 130)
    remote_cache: tuple = (130, 160)
    cache: CacheParams = field(default_factory=lambda: CacheParams(
        "l1d", 64 * 1024))
    seed: int = 1994
    lock_transfer_latency: int = 20       # lock handoff when contended
    barrier_release_latency: int = 20

    def to_dict(self):
        """JSON-serialisable form (cache keys, result export)."""
        return to_canonical(self)

    def fingerprint(self):
        return fingerprint(self)


@dataclass(frozen=True)
class SystemConfig:
    """Everything needed to build a simulated workstation."""

    memory: MemoryParams = field(default_factory=MemoryParams)
    pipeline: PipelineParams = field(default_factory=PipelineParams)
    os: OSParams = field(default_factory=OSParams)
    #: Footprint multiplier handed to workload factories.  Kernel default
    #: sizes are tuned for the fast profile's caches (scale 1.0); the
    #: paper profile scales footprints up with its 8x larger caches.
    workload_scale: float = 1.0

    @classmethod
    def paper(cls):
        """The paper's exact base architecture."""
        return cls(workload_scale=8.0)

    @classmethod
    def fast(cls):
        """Scaled-down profile: 1/8 caches, 1/8 footprints, short slices.

        Line size, latencies, associativity (direct-mapped), pipeline and
        switch costs are untouched — only capacities and run lengths
        shrink, preserving the ratios the results depend on.
        """
        mem = MemoryParams(
            l1i=CacheParams("l1i", 8 * 1024, fill_occupancy=8),
            l1d=CacheParams("l1d", 8 * 1024),
            l2=CacheParams("l2", 128 * 1024, read_occupancy=2,
                           write_occupancy=2, invalidate_occupancy=4,
                           fill_occupancy=2),
            tlb=TLBParams(entries=16),
        )
        os_params = OSParams(
            time_slice=5_000,
            interference={1: (40, 32), 2: (64, 52), 4: (100, 80),
                          8: (150, 120)},
        )
        return cls(memory=mem, os=os_params, workload_scale=1.0)

    def with_memory(self, **kwargs):
        """A copy with some memory parameters replaced."""
        return replace(self, memory=replace(self.memory, **kwargs))

    def with_pipeline(self, **kwargs):
        return replace(self, pipeline=replace(self.pipeline, **kwargs))

    def to_dict(self):
        """JSON-serialisable form (cache keys, result export)."""
        return to_canonical(self)

    def fingerprint(self):
        return fingerprint(self)


#: Context-selection schemes (Section 2 and 3 of the paper).
SCHEMES = ("single", "blocked", "interleaved")
