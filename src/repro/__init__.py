"""Reproduction of Laudon, Gupta & Horowitz, "Interleaving: A
Multithreading Technique Targeting Multiprocessors and Workstations"
(ASPLOS-VI, 1994).

Top-level convenience imports cover the most common entry points; see
README.md for a tour and DESIGN.md for the system inventory.

    >>> from repro import SystemConfig, WorkstationSimulator, build_workload
    >>> procs, instances, barriers = build_workload("DC")
    >>> sim = WorkstationSimulator(procs, scheme="interleaved",
    ...                            n_contexts=4, config=SystemConfig.fast(),
    ...                            app_instances=instances, barriers=barriers)
    >>> result = sim.measure(cycles=120_000, warmup=30_000)
"""

__version__ = "1.0.0"

from repro.config import (
    SystemConfig,
    MultiprocessorParams,
    PipelineParams,
    SCHEMES,
)
from repro.core import (
    Processor,
    Process,
    WorkstationSimulator,
    MultiprocessorSimulator,
    TimelineRecorder,
)
from repro.workloads import build_workload, build_app

__all__ = [
    "__version__",
    "SystemConfig",
    "MultiprocessorParams",
    "PipelineParams",
    "SCHEMES",
    "Processor",
    "Process",
    "WorkstationSimulator",
    "MultiprocessorSimulator",
    "TimelineRecorder",
    "build_workload",
    "build_app",
]
