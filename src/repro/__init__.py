"""Reproduction of Laudon, Gupta & Horowitz, "Interleaving: A
Multithreading Technique Targeting Multiprocessors and Workstations"
(ASPLOS-VI, 1994).

Top-level convenience imports cover the most common entry points; see
README.md for a tour and DESIGN.md for the system inventory.

    >>> from repro import Simulation, SystemConfig
    >>> result = (Simulation.from_config(SystemConfig.fast(),
    ...                                  scheme="interleaved", n_contexts=4)
    ...           .load("DC")
    ...           .run(warmup=30_000, measure=120_000))

(:class:`repro.api.Simulation` is the supported construction API; the
simulator classes below remain importable for microarchitectural work.)
"""

__version__ = "1.2.0"

from repro.api import Simulation, RunResult

from repro.config import (
    SystemConfig,
    MultiprocessorParams,
    PipelineParams,
    SCHEMES,
)
from repro.core import (
    Processor,
    Process,
    WorkstationSimulator,
    MultiprocessorSimulator,
    TimelineRecorder,
)
from repro.workloads import build_workload, build_app

__all__ = [
    "__version__",
    "Simulation",
    "RunResult",
    "SystemConfig",
    "MultiprocessorParams",
    "PipelineParams",
    "SCHEMES",
    "Processor",
    "Process",
    "WorkstationSimulator",
    "MultiprocessorSimulator",
    "TimelineRecorder",
    "build_workload",
    "build_app",
]
