"""Miss status holding registers.

The lockup-free primary data cache (Kroft-style, paper Section 4.1) keeps
one MSHR per outstanding line miss.  A second request to a line already in
flight merges with the existing entry; a request that finds all MSHRs full
suffers a structural stall and must retry.
"""


class MSHRFile:
    """Outstanding-miss tracking for a lockup-free cache."""

    __slots__ = ("capacity", "entries", "merges", "allocations",
                 "structural_stalls")

    def __init__(self, capacity):
        self.capacity = capacity
        #: line address -> completion cycle of the in-flight fill
        self.entries = {}
        self.merges = 0
        self.allocations = 0
        self.structural_stalls = 0

    def purge(self, now):
        """Retire entries whose fills have completed."""
        if not self.entries:
            return
        done = [line for line, t in self.entries.items() if t <= now]
        for line in done:
            del self.entries[line]

    def pending(self, line_addr):
        """Completion cycle of an in-flight fill for this line, or None."""
        return self.entries.get(line_addr)

    def merge(self, line_addr):
        """Record a merged secondary miss; returns the completion cycle."""
        self.merges += 1
        return self.entries[line_addr]

    def allocate(self, line_addr, completion):
        """Allocate an entry; returns False on structural hazard (full)."""
        if len(self.entries) >= self.capacity:
            self.structural_stalls += 1
            return False
        self.entries[line_addr] = completion
        self.allocations += 1
        return True

    def earliest_completion(self):
        """Completion cycle of the oldest outstanding fill (or None)."""
        return min(self.entries.values()) if self.entries else None

    def next_event_cycle(self, now):
        """Earliest future fill completion, or None (event protocol)."""
        soonest = None
        for t in self.entries.values():
            if t > now and (soonest is None or t < soonest):
                soonest = t
        return soonest

    def __len__(self):
        return len(self.entries)
