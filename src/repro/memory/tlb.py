"""Data TLB model.

The DT workload of the paper exists specifically to stress the data TLB,
so the TLB must be a real structure with capacity misses.  We model a
fully-associative TLB with LRU replacement and a fixed software-refill
penalty; the refill is charged as part of the "data cache/TLB" stall
category, matching the paper's accounting.

The machine uses identity virtual-to-physical mapping (each process owns a
disjoint region of the 2^28-byte physical space), so the TLB affects
timing only.
"""

from collections import OrderedDict


class TLB:
    """Fully-associative, LRU translation buffer."""

    __slots__ = ("entries", "page_bits", "pages", "hits", "misses")

    def __init__(self, params):
        self.entries = params.entries
        page = params.page_size
        bits = page.bit_length() - 1
        if 1 << bits != page:
            raise ValueError("page size must be a power of two")
        self.page_bits = bits
        self.pages = OrderedDict()
        self.hits = 0
        self.misses = 0

    def lookup(self, addr):
        """Translate; returns True on hit, False on miss (entry refilled)."""
        page = addr >> self.page_bits
        pages = self.pages
        if page in pages:
            pages.move_to_end(page)
            self.hits += 1
            return True
        self.misses += 1
        if len(pages) >= self.entries:
            # LRU eviction: popitem(last=False) pops the least-recently
            # used entry in insertion/move_to_end order — deterministic.
            # lint: allow(L302) -- explicit LRU policy on an OrderedDict
            pages.popitem(last=False)
        pages[page] = True
        return False

    def flush(self):
        self.pages.clear()

    def next_event_cycle(self, now):
        """Always None: the TLB has no self-timed state (event protocol).

        A software refill's cost surfaces as a processor-wide stall
        (``Processor.stall_until``), which the processor itself reports;
        the TLB entry is installed eagerly at lookup time.
        """
        return None

    @property
    def miss_rate(self):
        total = self.hits + self.misses
        return self.misses / total if total else 0.0
