"""The uniprocessor memory hierarchy (paper Figure 4, Tables 1 and 2).

Composition: split 64 KB L1 caches (blocking I-cache, lockup-free D-cache
with MSHRs), a 1 MB unified L2, and four-way interleaved main memory
reached over a split-transaction bus.  Unloaded latencies are Table 2's
1 / 9 / 34 cycles; cache-port, bus, and bank contention add to them.

The timing decomposition of the 34-cycle memory reply::

    now   +2        +4       +5            +27      +29    +31  +32   +34
    |------|---------|--------|-------------|--------|------|----|-----|
    detect  L2 lookup  L2 miss  bus request   DRAM     bus    L2   L1
            (occ 2)             (occ 1)       (22cy,   reply  fill fill+
                                              bank     (occ2) (2)  transit
                                              occ 16)

and of the 9-cycle L2 hit: detect/transit 2, L2 access + reply tail 7.
"""

from repro.memory.cache import DirectMappedCache
from repro.memory.mshr import MSHRFile
from repro.memory.resource import Resource
from repro.memory.tlb import TLB

#: Cycles from the L1 miss determination to the request arriving at L2.
_L2_REQUEST_DELAY = 2
#: DRAM access latency (bank busy for ``bank_occupancy`` of these cycles).
_BANK_LATENCY = 22
#: Return-path cost after the bus reply: L2 fill, L1 fill, transit.
_RETURN_TAIL = 5


class AccessResult:
    """Outcome of a memory access.

    ``level`` is one of ``l1``, ``l2``, ``mem``, ``pending`` (merged into
    an in-flight miss), ``tlb`` (translation miss; retry after ``ready``),
    or ``mshr`` (structural stall; retry after ``ready``).  ``ready`` is
    the cycle at which the data (or the retried access) becomes usable.
    """

    __slots__ = ("level", "ready")

    def __init__(self, level, ready):
        self.level = level
        self.ready = ready

    @property
    def hit(self):
        return self.level == "l1"

    def __repr__(self):
        return "AccessResult(%r, %d)" % (self.level, self.ready)


class MemorySystem:
    """Workstation memory system: L1I, L1D+MSHR, TLB, L2, bus, banks."""

    def __init__(self, params):
        self.params = params
        self.l1i = DirectMappedCache(params.l1i)
        self.l1d = DirectMappedCache(params.l1d)
        self.l2 = DirectMappedCache(params.l2)
        self.dtlb = TLB(params.tlb)
        self.mshr = MSHRFile(params.mshr_capacity)
        # A split-transaction bus decouples the address (request) phase
        # from the data (reply) phase; modelling them as separate
        # channels keeps a reply reserved in the future from blocking a
        # request issued before it.
        self.bus_req = Resource("bus.req")
        self.bus_reply = Resource("bus.reply")
        self.banks = [Resource("bank%d" % i) for i in range(params.n_banks)]
        self.tlb_stall_count = 0

    # -- internals -----------------------------------------------------------

    def _bank_for(self, addr):
        line = addr >> self.l1d.line_bits
        return self.banks[line % len(self.banks)]

    def _memory_transaction(self, addr, now):
        """Bus + bank + reply path; returns data-return cycle at L2."""
        p = self.params
        req = self.bus_req.acquire(now, p.bus_request_occupancy)
        bank = self._bank_for(addr)
        access = bank.acquire(req + p.bus_request_occupancy,
                              p.bank_occupancy)
        data_at_bus = access + _BANK_LATENCY
        reply = self.bus_reply.acquire(data_at_bus, p.bus_reply_occupancy)
        return reply + p.bus_reply_occupancy

    def _writeback_to_memory(self, addr, now):
        """Fire-and-forget dirty-line writeback traffic (occupancy only)."""
        p = self.params
        req = self.bus_req.acquire(now, p.bus_reply_occupancy)
        self._bank_for(addr).acquire(req + p.bus_reply_occupancy,
                                     p.bank_occupancy)

    def _miss_path(self, cache, addr, now, is_inst):
        """L1 miss service through L2 (and memory); returns (level, ready).

        Fills tags along the way; dirty evictions generate write traffic.
        """
        p = self.params
        l2_start = self.l2.port.acquire(now + _L2_REQUEST_DELAY,
                                        p.l2.read_occupancy)
        if self.l2.lookup(addr):
            ready = l2_start + (p.l2_hit_latency - _L2_REQUEST_DELAY)
            level = "l2"
        else:
            miss_known = l2_start + p.l2.read_occupancy
            reply = self._memory_transaction(addr, miss_known)
            ready = max(reply + _RETURN_TAIL,
                        now + p.memory_latency)
            evicted_l2 = self.l2.fill(addr)
            if evicted_l2 is not None:
                self._writeback_to_memory(evicted_l2, ready)
            level = "mem"
        evicted = cache.fill(addr)
        if evicted is not None:
            # L1 victim writeback into L2 (inclusive hierarchy).
            self.l2.fill_port.acquire(ready, p.l2.write_occupancy)
            self.l2.mark_dirty(evicted)
        fill_occ = (p.l1i if is_inst else p.l1d).fill_occupancy
        cache.fill_port.acquire(ready, fill_occ)
        return level, ready

    # -- public API ------------------------------------------------------------

    def data_access(self, addr, is_write, now, requester=0):
        """Access ``addr`` at cycle ``now``; returns an :class:`AccessResult`.

        ``requester`` identifies the accessing processor; the uniprocessor
        hierarchy ignores it (it exists so the coherent multiprocessor
        memory system can expose the same interface).

        L1 hits return ``ready == now`` — the pipeline's 3-cycle load
        latency already covers the primary-cache access (Table 2's 1-cycle
        hit is part of the DF stages).
        """
        p = self.params
        if not self.dtlb.lookup(addr):
            self.tlb_stall_count += 1
            return AccessResult("tlb", now + p.tlb.miss_penalty)

        self.mshr.purge(now)
        line = self.l1d.line_addr(addr)
        pending = self.mshr.pending(line)
        if pending is not None:
            self.mshr.merge(line)
            return AccessResult("pending", pending)

        occ = (p.l1d.write_occupancy if is_write
               else p.l1d.read_occupancy)
        port_start = self.l1d.port.acquire(now, occ)
        if self.l1d.lookup(addr):
            if is_write:
                self.l1d.mark_dirty(addr)
            return AccessResult("l1", port_start)

        if len(self.mshr.entries) >= self.mshr.capacity:
            # All MSHRs busy: structural stall, retry when one frees up.
            self.mshr.structural_stalls += 1
            retry = self.mshr.earliest_completion() or now + 1
            return AccessResult("mshr", retry)
        level, ready = self._miss_path(self.l1d, addr, now, is_inst=False)
        if is_write:
            # Write-allocate: the line arrives and is written immediately.
            self.l1d.mark_dirty(addr)
        self.mshr.allocate(line, ready)
        return AccessResult(level, ready)

    def inst_fetch(self, addr, now):
        """Instruction fetch; the I-cache is blocking (paper Section 4.1).

        On a miss the whole processor stalls until ``ready``; the fetch
        brings in two lines (Table 1 fetch size), the second as a
        prefetch that adds occupancy but no latency.
        """
        if self.l1i.lookup(addr):
            return AccessResult("l1", now)
        level, ready = self._miss_path(self.l1i, addr, now, is_inst=True)
        next_line = self.l1i.line_addr(addr) + self.params.l1i.line_size
        if not self.l1i.present(next_line):
            self._miss_path(self.l1i, next_line, now, is_inst=True)
        return AccessResult(level, ready)

    def inst_run_hits(self, addr, n_insts, already_fetched):
        """Probe a straight-line fetch run of ``n_insts`` instructions.

        Burst-engine fetch guard: returns True — and bulk-counts the
        I-cache hits — only when every line the run touches is already
        present, so the run cannot stall the front end.  A False return
        leaves all statistics untouched (the caller falls back to
        per-instruction fetch, which handles the miss the usual way).
        ``already_fetched`` is 1 when the first instruction's fetch was
        already counted this instance (the once-per-instruction fetch
        caching of the per-issue path), else 0.
        """
        l1i = self.l1i
        line_size = self.params.l1i.line_size
        line = l1i.line_addr(addr)
        last = l1i.line_addr(addr + 4 * (n_insts - 1))
        while line <= last:
            if not l1i.present(line):
                return False
            line += line_size
        l1i.hits += n_insts - already_fetched
        return True

    def next_event_cycle(self, now):
        """Earliest future cycle any hierarchy component changes state.

        Part of the event-engine protocol: the minimum over outstanding
        MSHR fills, cache port/fill-buffer occupancy, and bus/bank
        reservations — or None when the hierarchy is quiescent.  The
        processor folds this into its own ``next_event_cycle`` through
        the per-context wake times the access results established.
        """
        soonest = None
        components = (self.mshr, self.l1i, self.l1d, self.l2,
                      self.bus_req, self.bus_reply) + tuple(self.banks)
        for component in components:
            t = component.next_event_cycle(now)
            if t is not None and (soonest is None or t < soonest):
                soonest = t
        return soonest

    def scheduler_interference(self, n_switched, os_params, rng):
        """Displace cache lines on an OS scheduler invocation (Table 6)."""
        i_lines, d_lines = os_params.interference_for(n_switched)
        self.l1i.displace_random(i_lines, rng)
        self.l1d.displace_random(d_lines, rng)

    def flush(self):
        """Cold caches and TLB (used between independent simulations)."""
        self.l1i.flush()
        self.l1d.flush()
        self.l2.flush()
        self.dtlb.flush()
        self.mshr.entries.clear()
