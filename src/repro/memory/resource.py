"""Contention modelling for shared hardware resources.

Cache ports, the split-transaction bus, and the interleaved memory banks
are all "one customer at a time" resources; queuing delay is the only
contention effect the paper models ("cache and memory contention are
modeled, and can add to these latencies").
"""


class Resource:
    """A resource that serves one request at a time.

    ``acquire`` reserves the resource for ``occupancy`` cycles starting no
    earlier than ``now`` and returns the actual start cycle, so the caller
    can add ``start - now`` of queuing delay to its latency.
    """

    __slots__ = ("name", "busy_until", "total_busy", "total_requests",
                 "total_queue_delay")

    def __init__(self, name):
        self.name = name
        self.busy_until = 0
        self.total_busy = 0
        self.total_requests = 0
        self.total_queue_delay = 0

    def acquire(self, now, occupancy):
        start = now if now >= self.busy_until else self.busy_until
        self.busy_until = start + occupancy
        self.total_busy += occupancy
        self.total_requests += 1
        self.total_queue_delay += start - now
        return start

    def queue_delay(self, now):
        """Delay a request arriving at ``now`` would see, without queuing."""
        return max(0, self.busy_until - now)

    def next_event_cycle(self, now):
        """Cycle at which the current reservation drains, or None.

        Part of the event-engine protocol (docs/architecture.md): every
        timed component reports the earliest future cycle at which its
        state changes by itself, so a fast-forwarding loop knows how far
        it may safely jump.
        """
        return self.busy_until if self.busy_until > now else None

    def utilization(self, elapsed):
        """Fraction of ``elapsed`` cycles this resource was busy."""
        return self.total_busy / elapsed if elapsed else 0.0

    def reset(self):
        self.busy_until = 0
        self.total_busy = 0
        self.total_requests = 0
        self.total_queue_delay = 0
