"""Direct-mapped cache tag model.

Only tags and dirty bits are modelled — data values live in the functional
memory (:class:`repro.isa.executor.Memory`).  All of the paper's caches
are direct-mapped with 32-byte lines (Table 1), so the index/tag split is
a pair of shifts.  Occupancy-based port contention is handled by the
embedded :class:`~repro.memory.resource.Resource`.
"""

from repro.memory.resource import Resource


def _log2(x):
    n = x.bit_length() - 1
    if 1 << n != x:
        raise ValueError("%d is not a power of two" % x)
    return n


class DirectMappedCache:
    """Tag array + dirty bits + port occupancy for one cache level."""

    __slots__ = ("params", "line_bits", "index_bits", "tags", "dirty",
                 "port", "fill_port", "hits", "misses", "writebacks",
                 "invalidations")

    def __init__(self, params):
        self.params = params
        self.line_bits = _log2(params.line_size)
        self.index_bits = _log2(params.n_lines)
        self.tags = [-1] * params.n_lines
        self.dirty = bytearray(params.n_lines)
        self.port = Resource(params.name + ".port")
        # Fills and victim writebacks land in the future (at miss
        # completion); giving them their own port models fill buffers and
        # keeps future reservations from blocking earlier lookups.
        self.fill_port = Resource(params.name + ".fill")
        self.hits = 0
        self.misses = 0
        self.writebacks = 0
        self.invalidations = 0

    # -- address helpers -----------------------------------------------------

    def index_of(self, addr):
        return (addr >> self.line_bits) & ((1 << self.index_bits) - 1)

    def tag_of(self, addr):
        return addr >> (self.line_bits + self.index_bits)

    def line_addr(self, addr):
        return addr >> self.line_bits << self.line_bits

    # -- tag operations --------------------------------------------------------

    def lookup(self, addr, count=True):
        """Tag check; returns True on hit.  Updates hit/miss counters."""
        hit = self.tags[self.index_of(addr)] == self.tag_of(addr)
        if count:
            if hit:
                self.hits += 1
            else:
                self.misses += 1
        return hit

    def present(self, addr):
        """Tag check with no statistics side effects."""
        return self.tags[self.index_of(addr)] == self.tag_of(addr)

    def fill(self, addr):
        """Install the line containing ``addr``.

        Returns the evicted line's address when a *dirty* line was
        displaced (the caller issues the writeback traffic), else None.
        """
        idx = self.index_of(addr)
        evicted = None
        old_tag = self.tags[idx]
        if old_tag != -1 and self.dirty[idx]:
            evicted = (old_tag << self.index_bits | idx) << self.line_bits
            self.writebacks += 1
        self.tags[idx] = self.tag_of(addr)
        self.dirty[idx] = 0
        return evicted

    def mark_dirty(self, addr):
        idx = self.index_of(addr)
        if self.tags[idx] == self.tag_of(addr):
            self.dirty[idx] = 1

    def invalidate(self, addr):
        """Invalidate the line containing ``addr`` if present.

        Returns True when a line was actually invalidated.
        """
        idx = self.index_of(addr)
        if self.tags[idx] == self.tag_of(addr):
            self.tags[idx] = -1
            self.dirty[idx] = 0
            self.invalidations += 1
            return True
        return False

    def next_event_cycle(self, now):
        """Earliest future port/fill-buffer drain, or None (event protocol)."""
        soonest = self.port.next_event_cycle(now)
        fill = self.fill_port.next_event_cycle(now)
        if soonest is None or (fill is not None and fill < soonest):
            soonest = fill
        return soonest

    def displace_random(self, n_lines, rng):
        """Evict ``n_lines`` randomly chosen lines (scheduler interference).

        The paper models OS scheduler pollution "by issuing the number of
        memory requests given in the table to random addresses"; evicting
        random sets has the same first-order effect on the workload.
        """
        n = self.params.n_lines
        for _ in range(min(n_lines, n)):
            idx = rng.randrange(n)
            self.tags[idx] = -1
            self.dirty[idx] = 0

    def flush(self):
        """Invalidate everything (used between simulations)."""
        for i in range(len(self.tags)):
            self.tags[i] = -1
        self.dirty = bytearray(self.params.n_lines)

    @property
    def miss_rate(self):
        total = self.hits + self.misses
        return self.misses / total if total else 0.0
