"""Memory-system substrate: caches, MSHRs, TLB, bus, interleaved memory.

The uniprocessor hierarchy (Figure 4 of the paper) is assembled by
:class:`repro.memory.hierarchy.MemorySystem`; the multiprocessor variant
lives in :mod:`repro.coherence`.
"""

from repro.memory.resource import Resource
from repro.memory.cache import DirectMappedCache
from repro.memory.mshr import MSHRFile
from repro.memory.tlb import TLB
from repro.memory.hierarchy import MemorySystem, AccessResult

__all__ = [
    "Resource",
    "DirectMappedCache",
    "MSHRFile",
    "TLB",
    "MemorySystem",
    "AccessResult",
]
