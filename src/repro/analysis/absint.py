"""Interval / lockset / barrier-phase abstract interpretation.

One forward dataflow over the :class:`~repro.analysis.cfg.ProgramCFG`
computing, at every program point, three coupled abstract facts:

* **Register intervals** — each integer register maps to a ``(lo, hi)``
  byte-value interval (``None`` bounds mean unbounded), grown from the
  ``li``/``la``/``lui``+``ori`` constant idioms through pointer
  arithmetic (``addi``/``add``/``sub``/shifts/masks).  Loads and any
  operation the transfer cannot bound go to ⊤.  Joins widen: a bound
  that keeps growing across fixpoint iterations is pushed to ±∞ after
  :data:`WIDEN_AFTER` growths, then two descending (narrowing) passes
  recover the bounds that conditional-branch refinement can prove —
  the ``blt ptr, end / move ptr, base`` wrap idiom every generated
  footprint walk uses stays a finite interval instead of ⊤.
* **Lock stacks** — the set of possible stacks of held lock words
  (addresses resolved through the same interval machinery; an
  unresolvable lock address is the :data:`UNKNOWN_LOCK` sentinel).
  This generalises the verifier's historical depth-only lattice: the
  depth set is ``{len(s) for s in stacks}``, and the *must-held*
  lockset — what the race analysis compares across contexts — is the
  intersection of the stacks' members.
* **Barrier phase** — how many BARRIERs every path executed to reach
  the point; ``None`` (⊤) once paths disagree or a barrier is
  loop-carried.

The pass is deliberately conservative in the direction race detection
needs: intervals only over-approximate the addresses an access may
touch, and must-held locksets only under-approximate the locks a path
definitely holds, so a data race can never be hidden by imprecision
(the soundness contract ``static ⊇ dynamic`` of
:mod:`repro.analysis.races`).
"""

from repro.isa.opcodes import Op
from repro.analysis.cfg import EXIT

#: Deepest lock nesting distinguished (see verifier.LOCK_DEPTH_CAP).
LOCK_DEPTH_CAP = 7

#: Lock pushed with a statically unresolvable word address.  Excluded
#: from must-held locksets: a lock we cannot name might be a different
#: word on every path, so it must not suppress a race report.
UNKNOWN_LOCK = "?"

#: Cap on the number of distinct lock stacks tracked per point before
#: the set collapses to depth-only stacks of unknown words.
_MAX_STACKS = 64

#: Interval-join growths per (block, register) before the growing bound
#: widens to ±∞.
WIDEN_AFTER = 2

#: 32-bit signed range; transfer results escaping it (wraparound) go ⊤.
_INT_MIN = -(1 << 31)
_INT_MAX = (1 << 31) - 1

TOP = (None, None)

_NARROW_PASSES = 2


def _const(v):
    return (v, v)


def _is_const(iv):
    lo, hi = iv
    return lo is not None and lo == hi


def _clamp(lo, hi):
    """An interval, or TOP when it escapes the 32-bit signed range."""
    if lo is not None and lo < _INT_MIN:
        lo = None
    if hi is not None and hi > _INT_MAX:
        hi = None
    return (lo, hi)


def _add(a, b):
    alo, ahi = a
    blo, bhi = b
    return _clamp(None if alo is None or blo is None else alo + blo,
                  None if ahi is None or bhi is None else ahi + bhi)


def _addc(a, c):
    return _add(a, (c, c))


def _sub(a, b):
    blo, bhi = b
    return _add(a, (None if bhi is None else -bhi,
                    None if blo is None else -blo))


def _join_iv(a, b):
    """Interval hull (no widening here; the caller widens)."""
    alo, ahi = a
    blo, bhi = b
    return (None if alo is None or blo is None else min(alo, blo),
            None if ahi is None or bhi is None else max(ahi, bhi))


def _le_iv(a, b):
    """a ⊑ b: every concretisation of a is in b."""
    alo, ahi = a
    blo, bhi = b
    lo_ok = blo is None or (alo is not None and alo >= blo)
    hi_ok = bhi is None or (ahi is not None and ahi <= bhi)
    return lo_ok and hi_ok


class AbsState:
    """Abstract machine state at one program point."""

    __slots__ = ("regs", "stacks", "phase")

    def __init__(self, regs, stacks, phase):
        self.regs = regs          # tuple of 32 (lo, hi) intervals
        self.stacks = stacks      # frozenset of tuples of lock words
        self.phase = phase        # int, or None for ⊤

    def key(self):
        return (self.regs, self.stacks, self.phase)

    def must_locks(self):
        """Lock words held on *every* path (UNKNOWN_LOCK excluded)."""
        if not self.stacks:
            return frozenset()
        held = None
        for stack in self.stacks:
            members = frozenset(w for w in stack if w is not UNKNOWN_LOCK)
            held = members if held is None else held & members
        return held or frozenset()

    def depths(self):
        return frozenset(len(s) for s in self.stacks)


def entry_state():
    regs = [TOP] * 32
    regs[0] = _const(0)
    return AbsState(tuple(regs), frozenset((((),))), 0)


def _join_phase(a, b):
    return a if a == b else None


def _join_stacks(a, b):
    stacks = a | b
    if len(stacks) > _MAX_STACKS:
        # Collapse to depth-only stacks of unknown words: preserves the
        # depth set (V106-V109) and drops every must-held lock, which
        # is the conservative direction for race reporting.
        stacks = frozenset((UNKNOWN_LOCK,) * d
                           for d in {len(s) for s in stacks})
    return stacks


def join(a, b, widen_counts=None, bid=None):
    """Join two states; with ``widen_counts`` (a dict), bounds of ``a``
    that grow past WIDEN_AFTER times at ``bid`` are widened to ±∞.

    Returns ``a`` itself when the join is a no-op (``b ⊑ a``), so
    callers can detect convergence by identity instead of comparing
    32-tuples.
    """
    if a.regs is b.regs or a.regs == b.regs:
        regs = a.regs
        grew = False
    else:
        out = []
        grew = False
        for r in range(32):
            av = a.regs[r]
            bv = b.regs[r]
            if av == bv:
                out.append(av)
                continue
            iv = _join_iv(av, bv)
            if iv != av:
                grew = True
                if widen_counts is not None:
                    # Each bound widens on its own growth count: a
                    # lower bound that moves once (the wrap-reset join)
                    # must not pay for a hi bound that grew through the
                    # whole ascending phase.
                    lo, hi = iv
                    alo, ahi = av
                    if alo is not None and (lo is None or lo < alo):
                        key = (bid, r, 0)
                        n = widen_counts.get(key, 0) + 1
                        widen_counts[key] = n
                        if n > WIDEN_AFTER:
                            lo = None
                    if ahi is not None and (hi is None or hi > ahi):
                        key = (bid, r, 1)
                        n = widen_counts.get(key, 0) + 1
                        widen_counts[key] = n
                        if n > WIDEN_AFTER:
                            hi = None
                    iv = (lo, hi)
            out.append(iv)
        out[0] = _const(0)
        regs = a.regs if not grew else tuple(out)
    stacks = (a.stacks if b.stacks is a.stacks or b.stacks <= a.stacks
              else _join_stacks(a.stacks, b.stacks))
    phase = _join_phase(a.phase, b.phase)
    if not grew and stacks is a.stacks and phase == a.phase:
        return a
    return AbsState(regs, stacks, phase)


# -- transfer --------------------------------------------------------------

def _pop_lock(stack, addr):
    """UNLOCK transfer on one stack: release ``addr`` (an int or None
    for unresolved).  Releases the innermost matching hold, or the
    innermost hold when the address is unknown / not found."""
    if not stack:
        return stack
    if addr is not None:
        for i in range(len(stack) - 1, -1, -1):
            if stack[i] == addr:
                return stack[:i] + stack[i + 1:]
    return stack[:-1]


def transfer_inst(state, inst):
    """One-instruction transfer; returns the successor state."""
    op = inst.op
    regs = state.regs
    stacks = state.stacks
    phase = state.phase
    w = None                       # (reg, interval) write, if any

    if op is Op.ADDI:
        w = (inst.rd, _addc(regs[inst.rs1], inst.imm))
    elif op is Op.ADD:
        w = (inst.rd, _add(regs[inst.rs1], regs[inst.rs2]))
    elif op is Op.SUB:
        w = (inst.rd, _sub(regs[inst.rs1], regs[inst.rs2]))
    elif op is Op.LUI:
        w = (inst.rd, _const(inst.imm << 14))
    elif op is Op.ORI:
        src = regs[inst.rs1]
        if inst.imm == 0:
            w = (inst.rd, src)
        elif _is_const(src):
            w = (inst.rd, _const(src[0] | inst.imm))
        else:
            w = (inst.rd, TOP)
    elif op is Op.OR:
        a, b = regs[inst.rs1], regs[inst.rs2]
        if b == (0, 0):
            w = (inst.rd, a)       # the builder's `move` idiom
        elif a == (0, 0):
            w = (inst.rd, b)
        elif _is_const(a) and _is_const(b):
            w = (inst.rd, _const(a[0] | b[0]))
        else:
            w = (inst.rd, TOP)
    elif op is Op.ANDI:
        if inst.imm >= 0:
            # Masking bounds the result regardless of the input.
            w = (inst.rd, (0, inst.imm))
        else:
            w = (inst.rd, TOP)
    elif op is Op.AND:
        a, b = regs[inst.rs1], regs[inst.rs2]
        if _is_const(a) and _is_const(b):
            w = (inst.rd, _const(a[0] & b[0]))
        elif _is_const(b) and b[0] >= 0:
            w = (inst.rd, (0, b[0]))
        elif _is_const(a) and a[0] >= 0:
            w = (inst.rd, (0, a[0]))
        else:
            w = (inst.rd, TOP)
    elif op is Op.SLL:
        lo, hi = regs[inst.rs1]
        s = inst.imm & 31
        if lo is not None and lo >= 0:
            w = (inst.rd, _clamp(lo << s,
                                 None if hi is None else hi << s))
        else:
            w = (inst.rd, TOP)
    elif op is Op.SRL or op is Op.SRA:
        lo, hi = regs[inst.rs1]
        s = inst.imm & 31
        if lo is not None and lo >= 0:
            w = (inst.rd, (lo >> s, None if hi is None else hi >> s))
        else:
            w = (inst.rd, (0, 0xFFFFFFFF >> s) if op is Op.SRL else TOP)
    elif op is Op.MUL:
        a, b = regs[inst.rs1], regs[inst.rs2]
        if _is_const(a) and _is_const(b):
            w = (inst.rd, _clamp(a[0] * b[0], a[0] * b[0]))
        else:
            w = (inst.rd, TOP)
    elif op in (Op.SLT, Op.SLTI, Op.SLTU, Op.FLT, Op.FLE, Op.FEQ):
        w = (inst.rd, (0, 1))
    elif op is Op.LOCK:
        addr_iv = _addc(regs[inst.rs1], inst.imm)
        word = addr_iv[0] if _is_const(addr_iv) else UNKNOWN_LOCK
        stacks = frozenset(
            s if len(s) >= LOCK_DEPTH_CAP else s + (word,)
            for s in stacks)
    elif op is Op.UNLOCK:
        addr_iv = _addc(regs[inst.rs1], inst.imm)
        addr = addr_iv[0] if _is_const(addr_iv) else None
        stacks = frozenset(_pop_lock(s, addr) for s in stacks)
    elif op is Op.BARRIER:
        phase = None if phase is None else phase + 1
    elif inst.writes >= 0 and inst.writes < 32:
        # Any other int-register write (loads, div/rem, fcvtfi, jal...).
        w = (inst.writes, TOP)

    if w is None or not (0 < w[0] < 32):
        if stacks is state.stacks and phase == state.phase:
            return state
        return AbsState(regs, stacks, phase)
    new_regs = list(regs)
    new_regs[w[0]] = w[1]
    return AbsState(tuple(new_regs), stacks, phase)


def lock_word_of(state, inst):
    """The lock word a LOCK/UNLOCK at ``state`` names, or None."""
    iv = _addc(state.regs[inst.rs1], inst.imm)
    return iv[0] if _is_const(iv) else None


def access_interval(state, inst):
    """Byte-address interval of a load/store's effective address."""
    return _addc(state.regs[inst.rs1], inst.imm)


# -- branch refinement -----------------------------------------------------

def _refined(state, reg, lo=None, hi=None):
    """``state`` with register ``reg`` meet [lo, hi]; None = infeasible."""
    rlo, rhi = state.regs[reg]
    if lo is not None and (rlo is None or rlo < lo):
        rlo = lo
    if hi is not None and (rhi is None or rhi > hi):
        rhi = hi
    if rlo is not None and rhi is not None and rlo > rhi:
        return None
    if (rlo, rhi) == state.regs[reg]:
        return state
    regs = list(state.regs)
    regs[reg] = (rlo, rhi)
    return AbsState(tuple(regs), state.stacks, state.phase)


def refine_edge(state, inst, taken):
    """Refine ``state`` along the taken/fall-through edge of a branch.

    Returns the refined state, or None when the edge is infeasible.
    Only compare-against-constant shapes refine; everything else passes
    through unchanged (still sound — refinement only tightens).
    """
    op = inst.op
    if op is Op.BLEZ:
        return (_refined(state, inst.rs1, hi=0) if taken
                else _refined(state, inst.rs1, lo=1))
    if op is Op.BGTZ:
        return (_refined(state, inst.rs1, lo=1) if taken
                else _refined(state, inst.rs1, hi=0))
    if op in (Op.BLT, Op.BGE):
        a, b = state.regs[inst.rs1], state.regs[inst.rs2]
        lt = taken if op is Op.BLT else not taken
        if _is_const(b):
            c = b[0]
            return (_refined(state, inst.rs1, hi=c - 1) if lt
                    else _refined(state, inst.rs1, lo=c))
        if _is_const(a):
            c = a[0]
            return (_refined(state, inst.rs2, lo=c + 1) if lt
                    else _refined(state, inst.rs2, hi=c))
        return state
    if op is Op.BEQ:
        a, b = state.regs[inst.rs1], state.regs[inst.rs2]
        if taken:
            if _is_const(b):
                return _refined(state, inst.rs1, lo=b[0], hi=b[0])
            if _is_const(a):
                return _refined(state, inst.rs2, lo=a[0], hi=a[0])
        return state
    if op is Op.BNE and not taken:
        a, b = state.regs[inst.rs1], state.regs[inst.rs2]
        if _is_const(b):
            return _refined(state, inst.rs1, lo=b[0], hi=b[0])
        if _is_const(a):
            return _refined(state, inst.rs2, lo=a[0], hi=a[0])
    return state


# -- the fixpoint ----------------------------------------------------------

class AbsResult:
    """Per-block input states of the converged analysis."""

    __slots__ = ("cfg", "in_states", "reachable")

    def __init__(self, cfg, in_states, reachable):
        self.cfg = cfg
        self.in_states = in_states      # bid -> AbsState (reachable only)
        self.reachable = reachable

    def walk(self, visit):
        """Apply the transfer through every reachable block, calling
        ``visit(pc, inst, state_before)`` per instruction, in pc order."""
        insts = self.cfg.program.instructions
        for block in self.cfg.blocks:
            state = self.in_states.get(block.bid)
            if state is None:
                continue
            for i in range(block.start, block.end):
                inst = insts[i]
                visit(i, inst, state)
                state = transfer_inst(state, inst)


def _block_out(state, cfg, block):
    insts = cfg.program.instructions
    for i in range(block.start, block.end):
        state = transfer_inst(state, insts[i])
    return state


def _succ_states(cfg, block, out_state):
    """(succ_bid, edge-refined state) pairs for one block."""
    last = cfg.program.instructions[block.end - 1]
    succs = block.succs
    if last.info.is_branch and len(succs) == 2:
        # succs[0] is the fall-through, succs[1] the taken target.
        out = []
        fall = refine_edge(out_state, last, taken=False)
        take = refine_edge(out_state, last, taken=True)
        if fall is not None:
            out.append((succs[0], fall))
        if take is not None:
            out.append((succs[1], take))
        return out
    return [(s, out_state) for s in succs]


def analyze(program, cfg=None):
    """Run the combined fixpoint; returns an :class:`AbsResult`.

    Ascending iteration with per-(block, register) widening, then
    :data:`_NARROW_PASSES` descending passes (sound from any
    post-fixpoint; recovers refinement-bounded intervals after
    widening overshoots).

    The converged result is memoised on the program (the
    ``Program._analysis_cache`` dict, beside the burst-table memo and
    under the same contract: instructions are treated as immutable once
    analysed — rebuild or copy the Program to re-analyse).  Lint's
    verify pass (lock balance at ``level="full"``) and race pass
    therefore share one fixpoint per program.
    """
    memo = getattr(program, "_analysis_cache", None)
    if memo is not None:
        hit = memo.get("absint")
        if hit is not None:
            return hit
    if cfg is None:
        from repro.analysis.cfg import ProgramCFG
        cfg = ProgramCFG(program)
    if cfg.entry_bid == EXIT:
        result = AbsResult(cfg, {}, set())
        if memo is not None:
            memo["absint"] = result
        return result
    rpo = cfg.reverse_postorder()
    blocks = cfg.blocks
    entry_bid = cfg.entry_bid
    in_states = {entry_bid: entry_state()}
    widen_counts = {}
    out_cache = {}      # bid -> (in-state object, out-state)

    def block_out(bid, state):
        hit = out_cache.get(bid)
        if hit is not None and hit[0] is state:
            return hit[1]
        out = _block_out(state, cfg, blocks[bid])
        out_cache[bid] = (state, out)
        return out

    for narrowing in range(1 + _NARROW_PASSES):
        counts = None if narrowing else widen_counts
        changed = True
        while changed:
            changed = False
            for bid in rpo:
                state = in_states.get(bid)
                if state is None:
                    continue
                out = block_out(bid, state)
                for succ, edge_state in _succ_states(cfg, blocks[bid],
                                                     out):
                    if succ == EXIT:
                        continue
                    cur = in_states.get(succ)
                    if cur is None:
                        in_states[succ] = edge_state
                        changed = True
                        continue
                    new = join(cur, edge_state, counts, succ)
                    if new is not cur and new.key() != cur.key():
                        in_states[succ] = new
                        changed = True
            if narrowing:
                # Descending passes recompute each in-state once from
                # scratch; a single sweep per pass, no inner fixpoint.
                break
        if narrowing:
            # Rebuild every non-entry in-state as the plain join of its
            # predecessors' edge states (values can only shrink).
            preds = cfg.predecessors()
            rebuilt = {entry_bid: entry_state()}
            for bid in rpo:
                if bid == entry_bid:
                    continue
                acc = None
                for p in preds[bid]:
                    pstate = in_states.get(p)
                    if pstate is None:
                        continue
                    out = block_out(p, pstate)
                    for succ, edge_state in _succ_states(
                            cfg, blocks[p], out):
                        if succ != bid:
                            continue
                        acc = (edge_state if acc is None
                               else join(acc, edge_state))
                if acc is not None:
                    rebuilt[bid] = acc
            in_states = rebuilt

    result = AbsResult(cfg, in_states, set(in_states))
    if memo is not None:
        memo["absint"] = result
    return result
