"""Stats-parity and counter-registration lint passes (L4xx).

The burst engine's claim to bit-identity rests on two cross-file
invariants that no unit test can pin as directly as the source itself:

* **L401 / L402 — stats parity.**  Every counter the naive per-cycle
  retire path (``Processor._retire``) mutates must also be mutated by
  the burst bulk-add path (``_try_burst``); every stall category the
  naive hazard branch of ``_try_issue`` can charge must be charged by
  the bulk window/burst paths (``_skip_stall_window`` / ``_try_burst``).
  A counter added to one path and forgotten on the other diverges the
  engines on the first burst dispatch — exactly the bug class the
  differential harness only catches dynamically.
* **L403 — counter registration.**  Every ``Stall.X`` referenced in
  ``core/`` must be a declared :class:`~repro.pipeline.stalls.Stall`
  member, and every mutated ``stats.*`` attribute (or called ``stats``
  method) must be declared by ``CycleStats`` in ``core/stats.py`` —
  with ``__slots__`` this would raise at runtime, but only on the path
  that actually executes; the lint rejects it on every path.
* **L404 — DSM counter parity.**  Every protocol counter the
  :class:`~repro.coherence.dsm.DSMachine` mutates (``self.X += ...``)
  must be zero-initialised in its ``__init__``, serialised under the
  same name by ``mp_to_state``'s protocol dict in
  ``experiments/cache.py``, and carried by ``CachedProtocol.__slots__``
  — and the serialiser must not carry orphan keys no machine counter
  backs.  A counter added to the machine but forgotten in the
  serialiser silently drops that statistic from every cached/exported
  mp result; an orphan key crashes ``mp_from_state`` at reload time.

These are *project* rules: they parse several modules under a package
root.  ``root`` defaults to the installed ``repro`` package and is
overridable so tests can point the rules at doctored source trees.

The extraction is deliberately shape-based (receivers literally named
``stats``/``ctx``/``process``, ``Stall.X`` attribute references): if a
refactor renames those locals, the rules fail loudly with a
"could not locate" diagnostic rather than silently proving nothing.
"""

import ast
from pathlib import Path

from repro.analysis.diagnostics import Diagnostic

_PARITY_FILE = "core/processor.py"


def _package_root(root):
    if root is not None:
        return Path(root)
    return Path(__file__).resolve().parents[2]


def _parse(path):
    return ast.parse(path.read_text(encoding="utf-8"), filename=str(path))


def _find_func(tree, name):
    for node in ast.walk(tree):
        if isinstance(node, ast.FunctionDef) and node.name == name:
            return node
    return None


def _attr_base(node):
    """Penultimate identifier of an attribute chain: ``a.b.c`` -> 'b',
    ``a.b`` -> 'a'."""
    value = node.value
    if isinstance(value, ast.Name):
        return value.id
    if isinstance(value, ast.Attribute):
        return value.attr
    return None


def _mutations(func):
    """Counter-mutation labels of one function body.

    ``('stats', attr)`` for ``stats.attr += ...``; ``('ctx', ...)`` /
    ``('process', ...)`` for the per-context/per-process counters; and
    ``('stall', X)`` for ``stats.add(Stall.X, ...)`` (``'<dynamic>'``
    when the category is computed).
    """
    muts = set()
    for node in ast.walk(func):
        if (isinstance(node, ast.AugAssign)
                and isinstance(node.target, ast.Attribute)):
            base = _attr_base(node.target)
            if base in ("stats", "ctx", "process"):
                muts.add((base, node.target.attr))
        elif (isinstance(node, ast.Call)
                and isinstance(node.func, ast.Attribute)
                and node.func.attr == "add"
                and _attr_base(node.func) == "stats"):
            arg = node.args[0] if node.args else None
            if (isinstance(arg, ast.Attribute)
                    and isinstance(arg.value, ast.Name)
                    and arg.value.id == "Stall"):
                muts.add(("stall", arg.attr))
            else:
                muts.add(("stall", "<dynamic>"))
    return muts


def _stall_refs(node):
    return {n.attr for n in ast.walk(node)
            if isinstance(n, ast.Attribute)
            and isinstance(n.value, ast.Name) and n.value.id == "Stall"}


def _find_hazard_branch(func):
    """The ``if until > now:`` hazard branch of ``_try_issue``."""
    for node in ast.walk(func):
        if not isinstance(node, ast.If):
            continue
        test = node.test
        if (isinstance(test, ast.Compare)
                and isinstance(test.left, ast.Name)
                and test.left.id == "until"
                and len(test.ops) == 1 and isinstance(test.ops[0], ast.Gt)
                and isinstance(test.comparators[0], ast.Name)
                and test.comparators[0].id == "now"):
            return node
    return None


def check_stats_parity(root=None):
    """L401/L402 over ``core/processor.py`` under ``root``."""
    root = _package_root(root)
    path = root / "core" / "processor.py"
    if not path.exists():
        return [Diagnostic("L401", "no core/processor.py under %s — "
                           "stats-parity proof has nothing to check"
                           % root, path=_PARITY_FILE)]
    tree = _parse(path)
    diags = []

    retire = _find_func(tree, "_retire")
    burst = _find_func(tree, "_try_burst")
    if retire is None or burst is None:
        diags.append(Diagnostic(
            "L401", "could not locate _retire/_try_burst — the "
            "stats-parity extraction no longer matches processor.py",
            path=_PARITY_FILE))
    else:
        for kind, name in sorted(_mutations(retire) - _mutations(burst)):
            diags.append(Diagnostic(
                "L401", "naive retire path mutates %s counter %r but "
                "the burst bulk-add path (_try_burst) does not"
                % (kind, name), path=_PARITY_FILE, line=retire.lineno))

    try_issue = _find_func(tree, "_try_issue")
    skip = _find_func(tree, "_skip_stall_window")
    if try_issue is None or skip is None or burst is None:
        diags.append(Diagnostic(
            "L402", "could not locate _try_issue/_skip_stall_window — "
            "the hazard-path parity extraction no longer matches "
            "processor.py", path=_PARITY_FILE))
        return diags
    hazard = _find_hazard_branch(try_issue)
    if hazard is None:
        diags.append(Diagnostic(
            "L402", "hazard branch (if until > now) not found in "
            "_try_issue — the parity extraction no longer matches",
            path=_PARITY_FILE, line=try_issue.lineno))
        return diags
    charged = set()
    for stmt in hazard.body:
        charged |= _stall_refs(stmt)
    covered = _stall_refs(skip) | _stall_refs(burst)
    for name in sorted(charged - covered):
        diags.append(Diagnostic(
            "L402", "naive hazard branch charges Stall.%s but neither "
            "_skip_stall_window nor _try_burst covers it" % name,
            path=_PARITY_FILE, line=hazard.lineno))
    return diags


def _enum_members(path, class_name):
    if not path.exists():
        return None
    for node in ast.walk(_parse(path)):
        if isinstance(node, ast.ClassDef) and node.name == class_name:
            members = set()
            for stmt in node.body:
                if isinstance(stmt, ast.Assign):
                    for t in stmt.targets:
                        if isinstance(t, ast.Name):
                            members.add(t.id)
                elif (isinstance(stmt, ast.AnnAssign)
                        and isinstance(stmt.target, ast.Name)):
                    members.add(stmt.target.id)
            return members
    return None


def _stats_declarations(path):
    """(slots, method names) declared by CycleStats, or None."""
    if not path.exists():
        return None
    for node in ast.walk(_parse(path)):
        if isinstance(node, ast.ClassDef) and node.name == "CycleStats":
            slots = set()
            methods = set()
            for stmt in node.body:
                if isinstance(stmt, ast.FunctionDef):
                    methods.add(stmt.name)
                elif isinstance(stmt, ast.Assign):
                    for t in stmt.targets:
                        if (isinstance(t, ast.Name)
                                and t.id == "__slots__"):
                            for elt in stmt.value.elts:
                                if isinstance(elt, ast.Constant):
                                    slots.add(elt.value)
            return slots, methods
    return None


def check_counter_registration(root=None):
    """L403 over every ``core/*.py`` under ``root``."""
    root = _package_root(root)
    diags = []
    stall_members = _enum_members(root / "pipeline" / "stalls.py", "Stall")
    decl = _stats_declarations(root / "core" / "stats.py")
    if stall_members is None or decl is None:
        diags.append(Diagnostic(
            "L403", "could not parse Stall members or CycleStats "
            "declarations under %s — registration pass has no ground "
            "truth" % root, path="core/stats.py"))
        return diags
    slots, methods = decl

    for path in sorted((root / "core").glob("*.py")):
        relpath = "core/" + path.name
        for node in ast.walk(_parse(path)):
            if (isinstance(node, ast.Attribute)
                    and isinstance(node.value, ast.Name)
                    and node.value.id == "Stall"):
                if node.attr not in stall_members:
                    diags.append(Diagnostic(
                        "L403", "Stall.%s is not declared in "
                        "pipeline/stalls.py" % node.attr,
                        path=relpath, line=node.lineno))
            elif isinstance(node, (ast.Assign, ast.AugAssign)):
                targets = (node.targets if isinstance(node, ast.Assign)
                           else [node.target])
                for t in targets:
                    if isinstance(t, ast.Subscript):
                        t = t.value
                    if (isinstance(t, ast.Attribute)
                            and _attr_base(t) == "stats"
                            and t.attr not in slots):
                        diags.append(Diagnostic(
                            "L403", "stats.%s is mutated but not "
                            "declared in CycleStats.__slots__"
                            % t.attr, path=relpath, line=node.lineno))
            elif (isinstance(node, ast.Call)
                    and isinstance(node.func, ast.Attribute)
                    and _attr_base(node.func) == "stats"
                    and node.func.attr not in methods
                    and node.func.attr not in slots):
                diags.append(Diagnostic(
                    "L403", "stats.%s() is not a CycleStats method"
                    % node.func.attr, path=relpath,
                    line=node.lineno))
    return diags


_DSM_FILE = "coherence/dsm.py"
_CACHE_FILE = "experiments/cache.py"


def _find_class(tree, name):
    for node in ast.walk(tree):
        if isinstance(node, ast.ClassDef) and node.name == name:
            return node
    return None


def _dsm_counters(machine_class):
    """(declared, mutated) DSMachine counter names.

    Declared: ``self.X = 0`` in ``__init__`` (the shape every protocol
    counter uses; object/parameter attributes are never literal zero).
    Mutated: ``self.X += ...`` anywhere in the class.
    """
    declared = set()
    init = next((n for n in machine_class.body
                 if isinstance(n, ast.FunctionDef)
                 and n.name == "__init__"), None)
    if init is not None:
        for node in ast.walk(init):
            if (isinstance(node, ast.Assign)
                    and isinstance(node.value, ast.Constant)
                    and node.value.value == 0
                    and node.value.value is not False):
                for t in node.targets:
                    if (isinstance(t, ast.Attribute)
                            and isinstance(t.value, ast.Name)
                            and t.value.id == "self"):
                        declared.add(t.attr)
    mutated = {}
    for node in ast.walk(machine_class):
        if (isinstance(node, ast.AugAssign)
                and isinstance(node.target, ast.Attribute)
                and isinstance(node.target.value, ast.Name)
                and node.target.value.id == "self"):
            mutated.setdefault(node.target.attr, node.lineno)
    return declared, mutated


def _protocol_dict(func):
    """The {key: machine-attr} mapping of mp_to_state's protocol dict.

    Returns None when the shape no longer matches (loud failure at the
    caller); a value that is not a plain ``....machine.X`` chain maps to
    ``'<dynamic>'``.
    """
    for node in ast.walk(func):
        if not isinstance(node, ast.Dict):
            continue
        for key, value in zip(node.keys, node.values):
            if (isinstance(key, ast.Constant) and key.value == "protocol"
                    and isinstance(value, ast.Dict)):
                mapping = {}
                for k, v in zip(value.keys, value.values):
                    if not isinstance(k, ast.Constant):
                        return None
                    if (isinstance(v, ast.Attribute)
                            and _attr_base(v) == "machine"):
                        mapping[k.value] = v.attr
                    else:
                        mapping[k.value] = "<dynamic>"
                return mapping
    return None


def _class_slots(cls):
    for stmt in cls.body:
        if isinstance(stmt, ast.Assign):
            for t in stmt.targets:
                if isinstance(t, ast.Name) and t.id == "__slots__":
                    return {elt.value for elt in stmt.value.elts
                            if isinstance(elt, ast.Constant)}
    return None


def check_dsm_counter_parity(root=None):
    """L404: DSMachine counters <-> mp_to_state/CachedProtocol parity."""
    root = _package_root(root)
    dsm_path = root / "coherence" / "dsm.py"
    cache_path = root / "experiments" / "cache.py"
    diags = []
    machine = (_find_class(_parse(dsm_path), "DSMachine")
               if dsm_path.exists() else None)
    if machine is None:
        diags.append(Diagnostic(
            "L404", "could not locate class DSMachine under %s — the "
            "DSM counter-parity proof has nothing to check" % root,
            path=_DSM_FILE))
        return diags
    declared, mutated = _dsm_counters(machine)
    if not declared:
        diags.append(Diagnostic(
            "L404", "no zero-initialised counters found in "
            "DSMachine.__init__ — the counter extraction no longer "
            "matches dsm.py", path=_DSM_FILE, line=machine.lineno))
        return diags

    for name in sorted(set(mutated) - declared):
        diags.append(Diagnostic(
            "L404", "DSMachine mutates self.%s but __init__ does not "
            "zero-initialise it" % name,
            path=_DSM_FILE, line=mutated[name]))

    cache_tree = _parse(cache_path) if cache_path.exists() else None
    to_state = (_find_func(cache_tree, "mp_to_state")
                if cache_tree is not None else None)
    protocol = _protocol_dict(to_state) if to_state is not None else None
    cached = (_find_class(cache_tree, "CachedProtocol")
              if cache_tree is not None else None)
    slots = _class_slots(cached) if cached is not None else None
    if protocol is None or slots is None:
        diags.append(Diagnostic(
            "L404", "could not extract mp_to_state's protocol dict or "
            "CachedProtocol.__slots__ under %s — the serialiser "
            "extraction no longer matches cache.py" % root,
            path=_CACHE_FILE))
        return diags

    serialised = set(protocol)
    for name in sorted(set(mutated) & declared - serialised):
        diags.append(Diagnostic(
            "L404", "DSMachine counter %r is mutated but mp_to_state's "
            "protocol dict does not serialise it — cached/exported mp "
            "results silently drop it" % name,
            path=_CACHE_FILE, line=to_state.lineno))
    for key in sorted(serialised - declared):
        diags.append(Diagnostic(
            "L404", "mp_to_state serialises protocol key %r but "
            "DSMachine declares no such counter" % key,
            path=_CACHE_FILE, line=to_state.lineno))
    for key, attr in sorted(protocol.items()):
        if attr != key:
            diags.append(Diagnostic(
                "L404", "protocol key %r reads machine attribute %r — "
                "serialised names must match the counters they carry"
                % (key, attr), path=_CACHE_FILE, line=to_state.lineno))
    for name in sorted(serialised ^ slots):
        where = ("missing from" if name in serialised
                 else "orphaned in")
        diags.append(Diagnostic(
            "L404", "CachedProtocol.__slots__ %s the protocol dict: %r "
            "— mp_from_state cannot round-trip" % (where, name),
            path=_CACHE_FILE, line=cached.lineno))
    return diags


__all__ = ["check_stats_parity", "check_counter_registration",
           "check_dsm_counter_parity"]
