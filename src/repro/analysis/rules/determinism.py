"""Determinism lint pass (L3xx).

The result cache keys runs by config/seed/code-version and the three
engines are required to be bit-identical, so any hash-seed-, host-time-,
or allocation-dependent behaviour in the simulator core silently poisons
both guarantees.  These rules flag the Python constructs that smuggle
such nondeterminism in:

* L301 — iterating an unordered ``set``/``frozenset`` (element order
  depends on ``PYTHONHASHSEED`` for str keys);
* L302 — ``.popitem()`` on simulator state (eviction order must be an
  explicit policy, not "whatever the dict hands back");
* L303 — module-level ``random`` API or an unseeded ``random.Random()``
  (simulator randomness must be a seeded, owned generator);
* L304 — wall-clock time (results must not depend on host timing);
* L305 — ``id()`` (allocation addresses must not order or key anything).

Scope: the simulator core only — ``core/``, ``coherence/``,
``memory/``, ``pipeline/``, ``isa/``.  Experiments, workload builders,
and the CLI may use wall-clock timing and host randomness freely.
A justified finding is suppressed with an inline allowlist directive
(``# lint: allow(L302) -- why``, see :mod:`repro.analysis.lint`).
"""

import ast

from repro.analysis.diagnostics import Diagnostic

#: Top-level package directories the determinism pass applies to.
SCOPE_DIRS = ("core", "coherence", "memory", "pipeline", "isa")

_TIME_FUNCS = frozenset((
    "time", "time_ns", "monotonic", "monotonic_ns", "perf_counter",
    "perf_counter_ns", "process_time", "process_time_ns", "clock",
))
_DATETIME_FUNCS = frozenset(("now", "utcnow", "today"))


def in_scope(relpath):
    return relpath.split("/", 1)[0] in SCOPE_DIRS


def check_determinism(relpath, tree, lines):
    if not in_scope(relpath):
        return []
    visitor = _Visitor(relpath)
    visitor.visit(tree)
    return visitor.diags


def _is_set_expr(node):
    """Expression that evaluates to an unordered set/frozenset."""
    if isinstance(node, (ast.Set, ast.SetComp)):
        return True
    return (isinstance(node, ast.Call)
            and isinstance(node.func, ast.Name)
            and node.func.id in ("set", "frozenset"))


class _Visitor(ast.NodeVisitor):

    def __init__(self, relpath):
        self.relpath = relpath
        self.diags = []

    def _emit(self, code, message, node):
        self.diags.append(Diagnostic(code, message, path=self.relpath,
                                     line=node.lineno))

    def _check_iter_source(self, source):
        if _is_set_expr(source):
            self._emit("L301", "iteration over an unordered set — "
                       "wrap in sorted() or use an ordered container",
                       source)

    def visit_For(self, node):
        self._check_iter_source(node.iter)
        self.generic_visit(node)

    def _visit_comp(self, node):
        for gen in node.generators:
            self._check_iter_source(gen.iter)
        self.generic_visit(node)

    visit_ListComp = _visit_comp
    visit_SetComp = _visit_comp
    visit_DictComp = _visit_comp
    visit_GeneratorExp = _visit_comp

    def visit_Call(self, node):
        func = node.func
        # L301: materialising a set in iteration order.
        if (isinstance(func, ast.Name)
                and func.id in ("list", "tuple", "enumerate", "iter")
                and node.args and _is_set_expr(node.args[0])):
            self._emit("L301", "%s() over an unordered set — order is "
                       "hash-seed dependent" % func.id, node)
        # L305: id() of anything.
        if isinstance(func, ast.Name) and func.id == "id":
            self._emit("L305", "id() in the simulator core — "
                       "allocation-dependent values must not order or "
                       "key anything", node)
        if isinstance(func, ast.Attribute):
            attr = func.attr
            base = func.value
            # L302: popitem anywhere in simulator state.
            if attr == "popitem":
                self._emit("L302", ".popitem() in simulator state — "
                           "make the eviction order explicit", node)
            if isinstance(base, ast.Name):
                # L303: module-level random API / unseeded Random().
                if base.id == "random":
                    if attr == "Random":
                        if not node.args:
                            self._emit("L303", "unseeded random.Random()"
                                       " — pass an explicit seed", node)
                    else:
                        self._emit("L303", "module-level random.%s() "
                                   "shares global hidden state — use a "
                                   "seeded random.Random instance"
                                   % attr, node)
                # L304: wall-clock time.
                if base.id == "time" and attr in _TIME_FUNCS:
                    self._emit("L304", "time.%s() in the simulator core"
                               " — results must not depend on host "
                               "timing" % attr, node)
                if base.id == "datetime" and attr in _DATETIME_FUNCS:
                    self._emit("L304", "datetime.%s() in the simulator "
                               "core — results must not depend on host "
                               "timing" % attr, node)
        elif isinstance(func, ast.Name) and func.id == "Random":
            if not node.args:
                self._emit("L303", "unseeded Random() — pass an "
                           "explicit seed", node)
        self.generic_visit(node)

    def visit_ImportFrom(self, node):
        if node.module == "random":
            for alias in node.names:
                if alias.name != "Random":
                    self._emit("L303", "from random import %s pulls in "
                               "the global generator — import Random "
                               "and seed it" % alias.name, node)
        if node.module == "time":
            for alias in node.names:
                if alias.name in _TIME_FUNCS:
                    self._emit("L304", "from time import %s in the "
                               "simulator core" % alias.name, node)
        self.generic_visit(node)


__all__ = ["check_determinism", "in_scope", "SCOPE_DIRS"]
