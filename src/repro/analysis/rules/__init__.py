"""Rule registry for the codebase linter.

Two rule families:

* **File rules** — ``fn(relpath, tree, lines) -> list[Diagnostic]`` run
  once per source file with its parsed AST; each rule decides its own
  scope from ``relpath`` (path relative to the ``repro`` package, posix
  separators).
* **Project rules** — ``fn(root) -> list[Diagnostic]`` run once per
  lint invocation against the package root; these are the cross-file
  proofs (stats parity, counter registration) that need to relate
  several modules.

Adding a rule: implement it in a module here, register its diagnostic
code in :data:`repro.analysis.diagnostics.CATALOG`, append the function
to the right list below, and add one triggering and one passing test
under ``tests/analysis/`` (see ``docs/static-analysis.md``).
"""

from repro.analysis.rules import backend_parity, determinism, stats_parity

#: fn(relpath, tree, lines) -> list[Diagnostic]
FILE_RULES = (determinism.check_determinism,)

#: fn(root) -> list[Diagnostic]
PROJECT_RULES = (stats_parity.check_stats_parity,
                 stats_parity.check_counter_registration,
                 stats_parity.check_dsm_counter_parity,
                 backend_parity.check_backend_parity)

__all__ = ["FILE_RULES", "PROJECT_RULES"]
