"""Scoreboard backend-parity lint pass (L6xx).

The vectorised scoreboard backend is only safe because it is a drop-in
replacement: :class:`~repro.pipeline.scoreboard.NumpyScoreboard` must
expose exactly the method surface and per-instance state of the pure-
python :class:`~repro.pipeline.scoreboard.Scoreboard`, or a backend
switch changes behaviour in whatever code path touches the missing
piece.  The differential harness catches *observable* drift at runtime;
this pass catches the drift statically, on every path:

* **L601 — method parity.**  The two classes must define the same
  method names with the same positional signatures (name, arg names,
  defaults count).  A method added to one backend and forgotten on the
  other is the exact bug class that surfaces as an ``AttributeError``
  only when someone flips ``backend=``.
* **L602 — state parity.**  Both classes must declare ``__slots__``
  (so stray attributes fail loudly at runtime) and the slot sets must
  be identical — the backends advertise the same per-instance state,
  which the property tests compare element-wise.

Like the other project rules, extraction is shape-based and loud: if a
refactor renames the classes or drops ``__slots__``, the rule reports a
"could not locate" diagnostic instead of silently proving nothing.
"""

import ast
from pathlib import Path

from repro.analysis.diagnostics import Diagnostic

_SCOREBOARD_FILE = "pipeline/scoreboard.py"
_PYTHON_CLASS = "Scoreboard"
_NUMPY_CLASS = "NumpyScoreboard"


def _package_root(root):
    if root is not None:
        return Path(root)
    return Path(__file__).resolve().parents[2]


def _find_class(tree, name):
    for node in ast.walk(tree):
        if isinstance(node, ast.ClassDef) and node.name == name:
            return node
    return None


def _methods(cls):
    """{name: (arg names tuple, n_defaults)} of a class's def statements."""
    out = {}
    for stmt in cls.body:
        if isinstance(stmt, ast.FunctionDef):
            args = stmt.args
            names = tuple(a.arg for a in args.args)
            out[stmt.name] = (names, len(args.defaults))
    return out


def _class_slots(cls):
    for stmt in cls.body:
        if isinstance(stmt, ast.Assign):
            for t in stmt.targets:
                if isinstance(t, ast.Name) and t.id == "__slots__":
                    if isinstance(stmt.value, (ast.Tuple, ast.List)):
                        return {elt.value for elt in stmt.value.elts
                                if isinstance(elt, ast.Constant)}
    return None


def check_backend_parity(root=None):
    """L601/L602 over ``pipeline/scoreboard.py`` under ``root``."""
    root = _package_root(root)
    path = root / "pipeline" / "scoreboard.py"
    if not path.exists():
        return [Diagnostic(
            "L601", "no pipeline/scoreboard.py under %s — the backend "
            "parity proof has nothing to check" % root,
            path=_SCOREBOARD_FILE)]
    tree = ast.parse(path.read_text(encoding="utf-8"), filename=str(path))
    py_cls = _find_class(tree, _PYTHON_CLASS)
    np_cls = _find_class(tree, _NUMPY_CLASS)
    if py_cls is None or np_cls is None:
        return [Diagnostic(
            "L601", "could not locate both %r and %r in scoreboard.py — "
            "the backend parity extraction no longer matches the source"
            % (_PYTHON_CLASS, _NUMPY_CLASS), path=_SCOREBOARD_FILE)]
    diags = []

    py_methods = _methods(py_cls)
    np_methods = _methods(np_cls)
    for name in sorted(set(py_methods) - set(np_methods)):
        diags.append(Diagnostic(
            "L601", "%s defines %s() but %s does not — a backend switch "
            "breaks every caller of it"
            % (_PYTHON_CLASS, name, _NUMPY_CLASS),
            path=_SCOREBOARD_FILE, line=py_cls.lineno))
    for name in sorted(set(np_methods) - set(py_methods)):
        diags.append(Diagnostic(
            "L601", "%s defines %s() but %s does not — a backend switch "
            "breaks every caller of it"
            % (_NUMPY_CLASS, name, _PYTHON_CLASS),
            path=_SCOREBOARD_FILE, line=np_cls.lineno))
    for name in sorted(set(py_methods) & set(np_methods)):
        if py_methods[name] != np_methods[name]:
            diags.append(Diagnostic(
                "L601", "%s() signatures differ between backends: "
                "%s vs %s" % (name, py_methods[name], np_methods[name]),
                path=_SCOREBOARD_FILE, line=np_cls.lineno))

    py_slots = _class_slots(py_cls)
    np_slots = _class_slots(np_cls)
    if py_slots is None or np_slots is None:
        missing = _PYTHON_CLASS if py_slots is None else _NUMPY_CLASS
        diags.append(Diagnostic(
            "L602", "%s declares no literal __slots__ — backend state "
            "parity cannot be proven" % missing,
            path=_SCOREBOARD_FILE,
            line=(py_cls if py_slots is None else np_cls).lineno))
        return diags
    for name in sorted(py_slots ^ np_slots):
        owner = _PYTHON_CLASS if name in py_slots else _NUMPY_CLASS
        other = _NUMPY_CLASS if name in py_slots else _PYTHON_CLASS
        diags.append(Diagnostic(
            "L602", "slot %r is declared by %s but not by %s — the "
            "backends no longer advertise the same per-instance state"
            % (name, owner, other),
            path=_SCOREBOARD_FILE, line=np_cls.lineno))
    return diags


__all__ = ["check_backend_parity"]
