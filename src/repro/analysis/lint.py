"""Codebase linter driver: file walk, allowlist, reporting.

Runs the registered rule families (:mod:`repro.analysis.rules`) over
every ``*.py`` under the ``repro`` package — deterministically: files
are visited in sorted order and findings are reported in a stable sort,
so two runs over the same tree produce byte-identical output.

Allowlist format (checked by its own rules):

    some_call()   # lint: allow(L302) -- why this one is fine
    # lint: allow(L301, L305) -- justification covering the next line
    offending_line()

A directive suppresses the named codes on its own line, or — when the
directive is a comment-only line — on the following line.  A directive
*must* carry a ``-- justification`` (L501, and an unjustified directive
suppresses nothing); naming a code that does not exist is L502.

``python -m repro.analysis.lint`` runs the codebase lint and exits
nonzero on error-severity findings (the pre-commit hook entry point);
``repro-experiments lint`` is the full CLI with program verification.
"""

import ast
import json
import re
import sys
from pathlib import Path

from repro.analysis.diagnostics import (Diagnostic, CATALOG, has_errors,
                                        render_report)
from repro.analysis.rules import FILE_RULES, PROJECT_RULES

#: Default lint root: the installed ``repro`` package directory.
SRC_ROOT = Path(__file__).resolve().parents[1]

_ALLOW_RE = re.compile(
    r"#\s*lint:\s*allow\(\s*([A-Z]\d{3}(?:\s*,\s*[A-Z]\d{3})*)\s*\)"
    r"(?:\s*--\s*(.*))?")


def parse_allowlist(relpath, lines):
    """Scan for allowlist directives.

    Returns ``(allows, diags)`` where ``allows`` maps a 1-based line
    number to the set of codes suppressed on that line.
    """
    allows = {}
    diags = []
    for lineno, line in enumerate(lines, start=1):
        m = _ALLOW_RE.search(line)
        if m is None:
            continue
        justification = m.group(2)
        if justification is None or not justification.strip():
            diags.append(Diagnostic(
                "L501", "allowlist directive has no justification — "
                "use '# lint: allow(CODE) -- why'; nothing suppressed",
                path=relpath, line=lineno))
            continue
        codes = set()
        for code in m.group(1).split(","):
            code = code.strip()
            if code in CATALOG:
                codes.add(code)
            else:
                diags.append(Diagnostic(
                    "L502", "allowlist names unknown diagnostic code %r"
                    % code, path=relpath, line=lineno))
        target = lineno
        if line.lstrip().startswith("#"):
            # Comment-only directive covers the next line.
            target = lineno + 1
        allows.setdefault(target, set()).update(codes)
    return allows, diags


def lint_file(path, relpath):
    """Lint one file; returns ``(diagnostics, suppressed)``."""
    text = Path(path).read_text(encoding="utf-8")
    lines = text.splitlines()
    try:
        tree = ast.parse(text, filename=str(path))
    except SyntaxError:
        # Not this linter's finding: ruff/pytest own syntax errors.
        return [], []
    allows, diags = parse_allowlist(relpath, lines)
    kept = []
    suppressed = []
    for rule in FILE_RULES:
        for finding in rule(relpath, tree, lines):
            if finding.code in allows.get(finding.line, ()):
                suppressed.append(finding)
            else:
                kept.append(finding)
    return kept + diags, suppressed


def lint_codebase(root=None):
    """Lint every ``*.py`` under ``root`` plus the project rules.

    Returns ``(diagnostics, summary)``; ``summary`` is a JSON-ready
    dict with counts (files scanned, errors, warnings, suppressed).
    """
    root = Path(root) if root is not None else SRC_ROOT
    diags = []
    suppressed = []
    files = 0
    for path in sorted(root.rglob("*.py")):
        files += 1
        relpath = path.relative_to(root).as_posix()
        kept, supp = lint_file(path, relpath)
        diags.extend(kept)
        suppressed.extend(supp)
    for rule in PROJECT_RULES:
        diags.extend(rule(root))
    summary = {
        "files": files,
        "errors": sum(1 for d in diags if d.is_error),
        "warnings": sum(1 for d in diags if not d.is_error),
        "suppressed": len(suppressed),
    }
    return diags, summary


def report_json(diags, summary):
    payload = dict(summary)
    payload["diagnostics"] = [d.to_dict() for d in diags]
    return json.dumps(payload, indent=2, sort_keys=True)


def main(argv=None):
    """``python -m repro.analysis.lint`` — the pre-commit entry point."""
    argv = list(sys.argv[1:] if argv is None else argv)
    as_json = "--json" in argv
    diags, summary = lint_codebase()
    if as_json:
        print(report_json(diags, summary))
    else:
        if diags:
            print(render_report(diags))
        print("lint: %(files)d files, %(errors)d errors, "
              "%(warnings)d warnings, %(suppressed)d suppressed"
              % summary)
    return 1 if has_errors(diags) else 0


if __name__ == "__main__":
    sys.exit(main())
