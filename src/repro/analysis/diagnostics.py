"""Diagnostic objects and the code catalog for the static-analysis layer.

Every finding — from the program verifier, the burst-schedule audit, or
the codebase linter — is one :class:`Diagnostic` with a stable code.
Codes are the contract: tests, CI gates, and allowlist entries refer to
them, so a code is never reused for a different defect class and its
meaning is documented in :data:`CATALOG` (and ``docs/static-analysis.md``).

Numbering convention::

    V1xx  program verifier, structural and dataflow checks
    B2xx  burst-schedule audit (static slot-packing invariants)
    L3xx  codebase lint, determinism pass
    L4xx  codebase lint, stats-parity and counter-registration passes
    L5xx  codebase lint, allowlist hygiene
    R7xx  cross-context data-race analysis (lockset + barrier phase)
"""

import hashlib
from dataclasses import dataclass

#: Severity levels.  ``ERROR`` findings reject a program (strict mode
#: raises, the CLI exits nonzero); ``WARNING`` findings are reported but
#: do not gate.
ERROR = "error"
WARNING = "warning"

#: code -> (default severity, one-line description).  The description is
#: the catalog entry; the message on an individual Diagnostic carries
#: the specifics (register, pc, line).
CATALOG = {
    # -- program verifier -------------------------------------------------
    "V100": (ERROR, "program entry point outside the instruction list"),
    "V101": (ERROR, "static control-transfer target out of range or "
                    "unresolved"),
    "V102": (ERROR, "execution can fall off the end of the program"),
    "V103": (WARNING, "unreachable code (never executed from the entry "
                      "point; trailing HALT epilogues are exempt)"),
    "V104": (WARNING, "register read with no prior write on any path "
                      "from the entry point"),
    "V106": (ERROR, "UNLOCK executed while definitely holding no lock"),
    "V107": (ERROR, "a held lock is never released on any path to HALT"),
    "V108": (WARNING, "lock depth inconsistent across paths (possible "
                      "leak or unlock-without-lock)"),
    "V109": (WARNING, "BARRIER arrival while definitely holding a lock "
                      "(deadlock-prone)"),
    # -- burst-schedule audit ---------------------------------------------
    "B201": (ERROR, "burst slot conservation violated "
                    "(n + short + long != duration * width)"),
    "B202": (ERROR, "burst duration below the issue-bandwidth bound "
                    "(duration < ceil(n / width))"),
    "B203": (ERROR, "guard slack not monotone in issue width"),
    "B204": (ERROR, "suffix-burst coverage hole: an entry PC of a "
                    "maximal straight-line run has no (or a wrong) "
                    "burst"),
    "B205": (ERROR, "burst metadata out of bounds (guard/write-out "
                    "register, slack, or delta invalid)"),
    # -- determinism lint -------------------------------------------------
    "L301": (ERROR, "iteration over an unordered set (order is "
                    "hash-seed dependent)"),
    "L302": (ERROR, "dict/OrderedDict .popitem() in simulator state "
                    "(eviction order must be explicit)"),
    "L303": (ERROR, "module-level random API or unseeded random.Random "
                    "(simulator randomness must be seeded and owned)"),
    "L304": (ERROR, "wall-clock time in the simulator core (results "
                    "must not depend on host timing)"),
    "L305": (ERROR, "id() in the simulator core (allocation-dependent "
                    "values must not order or key anything)"),
    # -- stats-parity / registration lint ---------------------------------
    "L401": (ERROR, "stats-parity: a counter mutated on the naive "
                    "per-cycle retire path is not covered by the burst "
                    "bulk-add path"),
    "L402": (ERROR, "stats-parity: a stall category charged by the "
                    "naive hazard branch is not covered by the bulk "
                    "stall/burst path"),
    "L403": (ERROR, "unregistered counter: a mutated Stats attribute or "
                    "Stall member is not declared in core/stats.py / "
                    "pipeline/stalls.py"),
    "L404": (ERROR, "DSM counter parity: a DSMachine protocol counter "
                    "is not zero-initialised, not serialised by "
                    "mp_to_state, or out of sync with "
                    "CachedProtocol.__slots__"),
    # -- allowlist hygiene ------------------------------------------------
    "L501": (ERROR, "allowlist directive without a justification "
                    "(use '# lint: allow(CODE) -- why')"),
    "L502": (WARNING, "allowlist directive names an unknown diagnostic "
                      "code"),
    # -- scoreboard backend parity ----------------------------------------
    "L601": (ERROR, "backend parity: the python and numpy scoreboard "
                    "backends expose different method sets"),
    "L602": (ERROR, "backend parity: the python and numpy scoreboard "
                    "backends declare different __slots__ state"),
    # -- cross-context data races ------------------------------------------
    "R701": (ERROR, "write/write data race: overlapping shared writes "
                    "from different contexts with disjoint locksets and "
                    "compatible barrier phases"),
    "R702": (ERROR, "read/write data race: a shared read overlaps "
                    "another context's write with disjoint locksets and "
                    "compatible barrier phases"),
    "R703": (WARNING, "unlock-protected read of lock-protected data: the "
                      "writer consistently holds a lock the reader never "
                      "acquires"),
    "R704": (WARNING, "shared access with a widening-unbounded address "
                      "interval (excluded from the pairwise race join; "
                      "audit manually)"),
}

#: code prefix -> stable machine-readable category for JSON consumers.
RULE_CATEGORIES = {
    "V1": "verifier",
    "B2": "burst-audit",
    "L3": "determinism",
    "L4": "stats-parity",
    "L5": "allowlist",
    "L6": "backend-parity",
    "R7": "races",
}


def rule_category(code):
    """Stable category slug for a diagnostic code (JSON schema field)."""
    return RULE_CATEGORIES.get(code[:2], "other")


@dataclass(frozen=True)
class Diagnostic:
    """One static-analysis finding.

    Exactly one of the two location families is populated: program
    findings carry ``program``/``pc``, codebase findings carry
    ``path``/``line``.
    """

    code: str
    message: str
    severity: str = ""
    #: Program-side location.
    program: str = ""
    pc: int = -1
    #: Codebase-side location.
    path: str = ""
    line: int = -1
    #: Lock words definitely held at the finding site (sorted addresses;
    #: populated by the lock-balance and race analyses).
    held_locks: tuple = ()

    def __post_init__(self):
        if self.code not in CATALOG:
            raise ValueError("unknown diagnostic code %r" % (self.code,))
        if not self.severity:
            object.__setattr__(self, "severity", CATALOG[self.code][0])

    @property
    def is_error(self):
        return self.severity == ERROR

    @property
    def location(self):
        if self.path:
            return ("%s:%d" % (self.path, self.line) if self.line >= 0
                    else self.path)
        if self.program:
            return ("%s@pc=%d" % (self.program, self.pc) if self.pc >= 0
                    else self.program)
        return "<unlocated>"

    def render(self):
        return "%s %-7s %s: %s" % (self.code, self.severity,
                                   self.location, self.message)

    @property
    def fingerprint(self):
        """Stable identity of this finding across runs (12 hex chars).

        Hashes code + location + message, so re-running the analyzer on
        an unchanged input reproduces the same fingerprint and CI/service
        consumers can diff finding sets without scraping text.
        """
        key = "%s|%s|%s|%d|%s|%d" % (self.code, self.message, self.path,
                                     self.line, self.program, self.pc)
        return hashlib.sha256(key.encode()).hexdigest()[:12]

    def to_dict(self):
        d = {"code": self.code, "severity": self.severity,
             "message": self.message,
             "fingerprint": self.fingerprint,
             "rule_category": rule_category(self.code)}
        if self.path:
            d["path"] = self.path
            if self.line >= 0:
                d["line"] = self.line
        if self.program:
            d["program"] = self.program
            if self.pc >= 0:
                d["pc"] = self.pc
        if self.held_locks:
            d["held_locks"] = list(self.held_locks)
        return d


def has_errors(diagnostics):
    """True when any finding is error-severity."""
    return any(d.is_error for d in diagnostics)


def sort_key(diag):
    """Stable presentation order: errors first, then by location/code."""
    return (0 if d_is_error(diag) else 1, diag.path, diag.line,
            diag.program, diag.pc, diag.code)


def d_is_error(diag):
    return diag.severity == ERROR


def render_report(diagnostics):
    """Human-readable multi-line report (sorted, stable)."""
    return "\n".join(d.render() for d in sorted(diagnostics, key=sort_key))
