"""Control-flow graph over decoded :class:`~repro.isa.program.Program`s.

Program counters are instruction indices (see ``isa/program.py``), and
branch/jump targets are absolute indices carried in ``inst.imm``, so CFG
construction needs no address arithmetic: leaders are the entry point,
every static target, and every instruction following a control transfer
or HALT.

Register-indirect jumps (JR/JALR) have no static target.  The committed
workloads never emit them, but the graph still has to be sound when they
appear: an indirect jump is given every *plausible* target — each label
of the program plus the return site of every JAL/JALR — which
over-approximates reachability and keeps the dataflow passes
conservative.  The fall-off-the-end case is modelled as a shared virtual
exit block (:data:`EXIT`) so the verifier can ask "is falling off the
end reachable?" as a plain reachability query.
"""

from repro.isa.opcodes import Op

#: Virtual block id meaning "execution fell past the last instruction".
EXIT = -1


class BasicBlock:
    """Half-open instruction range ``[start, end)`` with successors."""

    __slots__ = ("bid", "start", "end", "succs")

    def __init__(self, bid, start, end):
        self.bid = bid
        self.start = start
        self.end = end
        self.succs = ()

    def __repr__(self):
        return "<BB%d [%d,%d) -> %s>" % (self.bid, self.start, self.end,
                                         list(self.succs))


def _static_target(inst):
    """The statically known target index, or None for indirect jumps.

    Unresolved label objects (a Program assembled by hand, bypassing
    the builder) surface as non-int targets; the verifier reports them,
    the CFG treats them as having no successor edge.
    """
    if inst.op in (Op.JR, Op.JALR):
        return None
    return inst.imm if isinstance(inst.imm, int) else None


class ProgramCFG:
    """Basic blocks, successor edges, and entry reachability."""

    __slots__ = ("program", "blocks", "block_of", "entry_bid",
                 "indirect_targets")

    def __init__(self, program):
        self.program = program
        insts = program.instructions
        n = len(insts)
        entry = program.entry

        # Indirect-jump target over-approximation: labels + JAL(R)
        # return sites.  Computed only when a JR/JALR exists.
        has_indirect = any(inst.op in (Op.JR, Op.JALR) for inst in insts)
        indirect = ()
        if has_indirect:
            targets = {idx for idx in program.labels.values()
                       if 0 <= idx < n}
            for i, inst in enumerate(insts):
                if inst.op in (Op.JAL, Op.JALR) and i + 1 < n:
                    targets.add(i + 1)
            indirect = tuple(sorted(targets))
        self.indirect_targets = indirect

        # Leaders.
        leaders = set()
        if 0 <= entry < n:
            leaders.add(entry)
        for i, inst in enumerate(insts):
            info = inst.info
            if info.is_branch or info.is_jump or inst.op is Op.HALT:
                if i + 1 < n:
                    leaders.add(i + 1)
                target = _static_target(inst)
                if target is not None and 0 <= target < n:
                    leaders.add(target)
        if has_indirect:
            leaders.update(indirect)
        if n:
            leaders.add(0)

        starts = sorted(leaders)
        blocks = []
        block_of = [0] * n
        for bid, start in enumerate(starts):
            end = starts[bid + 1] if bid + 1 < len(starts) else n
            block = BasicBlock(bid, start, end)
            blocks.append(block)
            for i in range(start, end):
                block_of[i] = bid

        def _bid_of(index):
            if 0 <= index < n:
                return block_of[index]
            return EXIT

        for block in blocks:
            last = insts[block.end - 1]
            info = last.info
            if last.op is Op.HALT:
                block.succs = ()
            elif info.is_branch:
                target = _static_target(last)
                succs = [_bid_of(block.end)]
                if target is not None:
                    tb = _bid_of(target)
                    if tb not in succs:
                        succs.append(tb)
                block.succs = tuple(succs)
            elif info.is_jump:
                target = _static_target(last)
                if target is not None:
                    block.succs = (_bid_of(target),)
                else:
                    # Indirect: every plausible target.
                    block.succs = tuple(sorted({_bid_of(t)
                                                for t in indirect}))
            else:
                block.succs = (_bid_of(block.end),)

        self.blocks = blocks
        self.block_of = block_of
        self.entry_bid = _bid_of(entry) if n else EXIT

    # -- queries -----------------------------------------------------------

    def reachable_blocks(self):
        """Set of block ids reachable from the entry (EXIT included when
        execution can fall off the end)."""
        if self.entry_bid == EXIT:
            return {EXIT}
        seen = set()
        stack = [self.entry_bid]
        while stack:
            bid = stack.pop()
            if bid in seen:
                continue
            seen.add(bid)
            if bid == EXIT:
                continue
            stack.extend(s for s in self.blocks[bid].succs
                         if s not in seen)
        return seen

    def predecessors(self):
        """bid -> sorted tuple of predecessor block ids."""
        preds = {block.bid: [] for block in self.blocks}
        for block in self.blocks:
            for s in block.succs:
                if s != EXIT:
                    preds[s].append(block.bid)
        return {bid: tuple(sorted(ps)) for bid, ps in preds.items()}

    def reverse_postorder(self):
        """Blocks in reverse postorder from the entry (reachable only)."""
        if self.entry_bid == EXIT:
            return []
        order = []
        seen = set()
        # Iterative DFS with an explicit phase marker so deep programs
        # (one block per instruction in the worst case) cannot blow the
        # recursion limit.
        stack = [(self.entry_bid, False)]
        while stack:
            bid, expanded = stack.pop()
            if expanded:
                order.append(bid)
                continue
            if bid in seen or bid == EXIT:
                continue
            seen.add(bid)
            stack.append((bid, True))
            for s in self.blocks[bid].succs:
                if s not in seen and s != EXIT:
                    stack.append((s, False))
        order.reverse()
        return order
