"""Cross-context data-race detection (R7xx).

Eraser-style whole-*group* analysis: one decoded
:class:`~repro.isa.program.Program` per context, analysed individually
with the interval + lockset + barrier-phase abstract interpretation of
:mod:`repro.analysis.absint`, then joined pairwise across contexts.

Per context the analysis records every reachable static load/store as a
:class:`SharedAccess` — the byte-interval its effective address may
cover, whether it writes, the lock words *definitely* held (must-held
lockset), and the barrier phase (number of BARRIERs executed on the
path; ⊤ when loop-carried).  Because per-context data regions are
base-staggered by construction (generator and SPLASH layouts alike),
"shared" needs no region declaration: two accesses are a race candidate
exactly when their intervals from *different* contexts overlap.

Rules::

    R701  error    write/write: overlapping intervals, disjoint
                   locksets, compatible barrier phases
    R702  error    read/write: same conditions, exactly one write
    R703  warning  read/write where the writer consistently holds a
                   lock the reader never acquires (Eraser's
                   "initialisation read" refinement — likely a bug,
                   possibly an intentional unlocked peek)
    R704  warning  an access whose interval the widening left
                   unbounded may conflict with another context;
                   excluded from the precise pairwise join, surfaced
                   for manual audit

Soundness contract (tested by the dynamic oracle in
``tests/analysis/test_race_oracle.py``): **static ⊇ dynamic** — every
race observed by the access-log replay checker is reported by one of
R701–R704.  The abstraction errs only in the safe directions: address
intervals over-approximate the words an access may touch, must-held
locksets under-approximate the locks a path definitely holds (an
unresolvable lock word is *dropped*, never trusted), and an unknown
barrier phase is compatible with everything.

Determinism: the finding set is a pure function of the program
*contents* and is invariant under permutation of the context list
(messages and locations name programs, never context indices), which
``tests/analysis/test_races.py`` checks with a hypothesis property.
"""

import re
from dataclasses import dataclass

from repro.analysis.absint import analyze, access_interval
from repro.analysis.diagnostics import Diagnostic
from repro.isa.instruction import KIND_MEM

#: Byte width of every data access in the ISA (lw/sw/lwf/swf).
_ACCESS_BYTES = 4


@dataclass(frozen=True)
class SharedAccess:
    """One reachable static load/store with its abstract context."""

    ctx: int              # index into the analysed program list
    program: str          # program name (stable under permutation)
    pc: int
    is_write: bool
    lo: object            # int, or None for -inf
    hi: object            # int (inclusive byte), or None for +inf
    locks: frozenset      # must-held lock-word addresses
    phase: object         # int, or None for loop-carried/joined ⊤

    @property
    def bounded(self):
        return self.lo is not None and self.hi is not None

    def contains(self, addr):
        """May this access touch byte address ``addr``?"""
        return ((self.lo is None or self.lo <= addr)
                and (self.hi is None or addr <= self.hi))


@dataclass(frozen=True)
class RaceFinding:
    """One classified race candidate (``b`` is None for R704)."""

    code: str
    a: SharedAccess
    b: object

    def involves(self, ctx_pair, addr):
        """Does this finding report a dynamic race at ``addr`` between
        the (unordered) context pair?"""
        if self.b is None:
            return self.a.ctx in ctx_pair and self.a.contains(addr)
        return ({self.a.ctx, self.b.ctx} == set(ctx_pair)
                and self.a.contains(addr) and self.b.contains(addr))


def collect_accesses(program, ctx=0, result=None):
    """Every reachable static load/store of ``program`` as
    :class:`SharedAccess` records (one per pc, at the joined state).

    The ctx-independent record list is memoised beside the absint
    fixpoint (``Program._analysis_cache``) so repeated group analyses —
    lint running verify then races, or the same program appearing in
    several groups — walk the converged states once.
    """
    memo = getattr(program, "_analysis_cache", None)
    base = memo.get("accesses") if memo is not None else None
    if base is None:
        if result is None:
            result = analyze(program)
        base = []

        def visit(pc, inst, state):
            if inst.kind != KIND_MEM:
                return
            lo, hi = access_interval(state, inst)
            base.append(SharedAccess(
                ctx=0, program=program.name, pc=pc,
                is_write=inst.info.is_store,
                lo=lo, hi=None if hi is None else hi + _ACCESS_BYTES - 1,
                locks=state.must_locks(), phase=state.phase))

        result.walk(visit)
        if memo is not None:
            memo["accesses"] = base
    if ctx == 0:
        return list(base)
    return [SharedAccess(ctx, a.program, a.pc, a.is_write, a.lo, a.hi,
                         a.locks, a.phase)
            for a in base]


def _phases_compatible(a, b):
    return a.phase is None or b.phase is None or a.phase == b.phase


def _locks_disjoint(a, b):
    return not (a.locks & b.locks)


def _may_overlap(a, b):
    if a.lo is not None and b.hi is not None and a.lo > b.hi:
        return False
    if b.lo is not None and a.hi is not None and b.lo > a.hi:
        return False
    return True


def _classify(a, b):
    """R-code for a conflicting bounded pair (≥1 write, disjoint
    locksets, compatible phases already established)."""
    if a.is_write and b.is_write:
        return "R701"
    reader, writer = (a, b) if b.is_write else (b, a)
    if not reader.locks and writer.locks:
        return "R703"
    return "R702"


def _sort_key(acc):
    return (acc.program, acc.pc, acc.is_write, acc.ctx)


def race_findings(programs):
    """The structured finding set for one context group.

    ``programs`` is one decoded Program per context (list index =
    context id).  Returns a deterministically ordered list of
    :class:`RaceFinding`, deduplicated by static site pair — the same
    (program, pc) conflict observed between several context pairs is
    reported once.
    """
    if len(programs) < 2:
        return []
    accesses = []
    for ctx, program in enumerate(programs):
        accesses.extend(collect_accesses(program, ctx))

    bounded = sorted((a for a in accesses if a.bounded),
                     key=lambda a: (a.lo, a.hi, _sort_key(a)))
    unbounded = [a for a in accesses if not a.bounded]

    findings = {}

    def record(code, a, b):
        # One finding per static site pair per context pair: the
        # context ids stay on the finding (the dynamic-oracle coverage
        # check matches on them); the Diagnostic conversion dedupes
        # down to site pairs for reporting.
        if b is not None and _sort_key(b) < _sort_key(a):
            a, b = b, a
        key = (code, a.program, a.pc, a.ctx,
               None if b is None else b.program,
               -1 if b is None else b.pc,
               -1 if b is None else b.ctx)
        if key not in findings:
            findings[key] = RaceFinding(code, a, b)

    # Precise pairwise join over bounded accesses: a sweep over the
    # lo-sorted list keeps the quadratic factor on the (small) set of
    # genuinely overlapping intervals instead of all accesses.
    active = []
    for acc in bounded:
        active = [o for o in active if o.hi >= acc.lo]
        for other in active:
            if other.ctx == acc.ctx:
                continue
            if not (acc.is_write or other.is_write):
                continue
            if not _locks_disjoint(acc, other):
                continue
            if not _phases_compatible(acc, other):
                continue
            record(_classify(acc, other), acc, other)
        active.append(acc)

    # Widening-unbounded accesses: excluded from the precise join
    # (their interval would overlap everything); reported as an
    # audit-grade warning when a conflicting access from another
    # context cannot be ruled out.
    for acc in unbounded:
        for other in accesses:
            if other.ctx == acc.ctx:
                continue
            if not (acc.is_write or other.is_write):
                continue
            if not _may_overlap(acc, other):
                continue
            if not _locks_disjoint(acc, other):
                continue
            if not _phases_compatible(acc, other):
                continue
            record("R704", acc, None)
            break

    return [findings[k] for k in sorted(findings, key=_race_key)]


def _race_key(key):
    code, prog_a, pc_a, ctx_a, prog_b, pc_b, ctx_b = key
    return (code, prog_a, pc_a, prog_b or "", pc_b, ctx_a, ctx_b)


def _fmt_interval(acc):
    lo = "-inf" if acc.lo is None else "0x%x" % acc.lo
    hi = "+inf" if acc.hi is None else "0x%x" % acc.hi
    return "[%s, %s]" % (lo, hi)


def _fmt_locks(locks):
    if not locks:
        return "no locks"
    return "locks " + ",".join("0x%x" % w for w in sorted(locks))


def _fmt_phase(phase):
    return "phase *" if phase is None else "phase %d" % phase


def _fmt_access(acc):
    return "%s@pc=%d %s %s (%s, %s)" % (
        acc.program, acc.pc, "writes" if acc.is_write else "reads",
        _fmt_interval(acc), _fmt_locks(acc.locks), _fmt_phase(acc.phase))


#: Message/Diagnostic construction cache, keyed by the ctx-independent
#: content of a finding (so the same site pair reported across repeated
#: group analyses — lint verify + races, sweeps — formats once).
#: Diagnostics are frozen, so sharing instances is safe.
_DIAG_CACHE = {}
_DIAG_CACHE_MAX = 4096


def _site_key(acc):
    return (acc.program, acc.pc, acc.is_write, acc.lo, acc.hi,
            acc.locks, acc.phase)


def _to_diagnostic(finding):
    a, b = finding.a, finding.b
    key = (finding.code, _site_key(a),
           None if b is None else _site_key(b))
    hit = _DIAG_CACHE.get(key)
    if hit is not None:
        return hit
    if b is None:
        message = ("unbounded shared access: %s may conflict with "
                   "another context" % _fmt_access(a))
    else:
        message = "%s vs %s" % (_fmt_access(a), _fmt_access(b))
    diag = Diagnostic(code=finding.code, message=message,
                      program=a.program, pc=a.pc,
                      held_locks=tuple(sorted(a.locks)))
    if len(_DIAG_CACHE) >= _DIAG_CACHE_MAX:
        _DIAG_CACHE.clear()
    _DIAG_CACHE[key] = diag
    return diag


def findings_to_diagnostics(findings):
    """Convert findings to Diagnostics, deduplicated per static site
    pair — the same (program, pc) conflict observed between several
    context pairs reports once."""
    out = []
    seen = set()
    for finding in findings:
        a, b = finding.a, finding.b
        site = (finding.code, a.program, a.pc,
                None if b is None else b.program,
                -1 if b is None else b.pc)
        if site in seen:
            continue
        seen.add(site)
        out.append(_to_diagnostic(finding))
    return out


def analyze_races(programs):
    """Race-check one context group; returns a list of Diagnostics.

    ``programs`` holds one decoded Program per context.  A group of
    fewer than two contexts can never race.  R701/R702 are
    error-severity (they gate like verifier errors); R703/R704 are
    audit-grade warnings.  Findings are deduplicated per static site
    pair (the same conflict between several context pairs reports
    once) and deterministically ordered.
    """
    return findings_to_diagnostics(race_findings(programs))


# -- sanctioning ------------------------------------------------------------

#: Builder-note sanction, mirroring the codebase lint's allow comments:
#: ``b.note("lint: allow(R701, R702) -- why this race is intended")``
#: on the accessing instruction.  The note rides in
#: ``Program.annotations`` and renders into emitted assembly as a
#: ``# lint: allow(...)`` comment at the sanctioned site.
_ALLOW_RE = re.compile(r"lint:\s*allow\(([^)]+)\)(?:\s*--\s*(.*))?")


def sanction_at(program, pc):
    """(codes, rationale) sanctioned at this site, or (frozenset(), "").
    """
    note = getattr(program, "annotations", {}).get(pc) or ""
    match = _ALLOW_RE.search(note)
    if not match:
        return frozenset(), ""
    codes = frozenset(t.strip() for t in match.group(1).split(",")
                      if t.strip())
    return codes, (match.group(2) or "").strip()


def split_sanctioned(findings, programs):
    """Partition findings into ``(active, sanctioned)``.

    A finding is sanctioned when either endpoint's program carries an
    allow note for its code at the accessing pc (for R704, the single
    endpoint).  Returns the two lists plus a ``{finding: rationale}``
    map for reporting suppressed findings with their justification.
    """
    by_name = {p.name: p for p in programs}
    active, sanctioned, rationales = [], [], {}
    for finding in findings:
        why = None
        for end in (finding.a, finding.b):
            if end is None or end.program not in by_name:
                continue
            codes, rationale = sanction_at(by_name[end.program], end.pc)
            if finding.code in codes:
                why = rationale
                break
        if why is None:
            active.append(finding)
        else:
            sanctioned.append(finding)
            rationales[finding] = why
    return active, sanctioned, rationales


# -- dynamic oracle (replay checker) ---------------------------------------

@dataclass(frozen=True)
class AccessRecord:
    """One dynamically observed data access (see
    :class:`repro.core.tracing.SharedAccessRecorder`)."""

    cycle: int
    ctx: int              # context id (Process.pid)
    pc: int
    addr: int             # byte address of the accessed word
    is_write: bool
    locks: frozenset      # lock words held by this context at access
    phase: int            # global barrier episode at access


@dataclass(frozen=True)
class DynamicRace:
    """A pair of replayed accesses the lockset discipline cannot order."""

    addr: int
    ctx_pair: tuple       # sorted (ctx_a, ctx_b)
    pcs: tuple            # (pc_a, pc_b) matching ctx_pair order


def dynamic_races(records):
    """Eraser-style replay over an access log.

    Two accesses to the same word from different contexts race when at
    least one writes, their held-lock sets are disjoint (no common lock
    orders them), and they fall in the same barrier episode (a barrier
    between them would order them).  Returns the deduplicated, sorted
    list of :class:`DynamicRace`.
    """
    by_word = {}
    for rec in records:
        by_word.setdefault(rec.addr, []).append(rec)
    races = set()
    for addr in sorted(by_word):
        recs = by_word[addr]
        for i, a in enumerate(recs):
            for b in recs[i + 1:]:
                if a.ctx == b.ctx:
                    continue
                if not (a.is_write or b.is_write):
                    continue
                if a.phase != b.phase:
                    continue
                if a.locks & b.locks:
                    continue
                (ca, pa), (cb, pb) = sorted(((a.ctx, a.pc), (b.ctx, b.pc)))
                races.add(DynamicRace(addr, (ca, cb), (pa, pb)))
    return sorted(races, key=lambda r: (r.addr, r.ctx_pair, r.pcs))


def uncovered_races(findings, races):
    """Dynamic races not reported by any static finding — must be empty
    for the soundness contract to hold."""
    return [race for race in races
            if not any(f.involves(race.ctx_pair, race.addr)
                       for f in findings)]
