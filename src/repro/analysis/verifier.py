"""Static program verifier over decoded :class:`Program` objects.

Checks run *before any cycle is simulated*, so whole classes of program
bugs — branch targets outside the program, code that falls off the end,
reads of registers no path ever wrote, unbalanced lock/unlock pairing —
are rejected at load (or commit) time instead of surfacing as a
mysterious deadlock or a silently wrong statistic deep inside a run.

Two levels:

* ``level="load"`` — the cheap structural subset used by the opt-in
  ``Program(strict=True)`` hook: one fused pass over the instruction
  list (entry/targets/terminator), plus the depth-only CFG lock-balance
  analysis *only* when the program actually contains sync opcodes.
  Measured well under 5 % of program build time
  (``benchmarks/bench_lint_overhead.py``).
* ``level="full"`` — everything: exact reachability (fall-off-end and
  unreachable-code on the real CFG), the read-before-write dataflow,
  lock/barrier balance, and (when ``widths`` is given) the static
  burst-schedule audit of :mod:`repro.analysis.burst_audit`.

Severities follow :mod:`repro.analysis.diagnostics`: only error-level
findings reject a program.  Read-before-write is a warning by design —
architectural state is zero-initialised (``isa/executor.ArchState``), so
reading a never-written register is *defined*, merely suspicious; the
mutation suite relies on the V104 code appearing, not on rejection.
"""

import hashlib

from repro.isa.opcodes import Op
from repro.analysis.cfg import ProgramCFG, EXIT
from repro.analysis.diagnostics import Diagnostic, has_errors

#: Deepest lock nesting the balance analysis distinguishes; deeper
#: nesting saturates (the committed applications never nest past 2).
LOCK_DEPTH_CAP = 7

_SYNC_OPS = (Op.LOCK, Op.UNLOCK, Op.BARRIER)


class ProgramVerificationError(ValueError):
    """Raised by ``Program(strict=True)`` for error-level findings."""

    def __init__(self, program_name, diagnostics):
        self.diagnostics = list(diagnostics)
        lines = "\n".join("  " + d.render() for d in self.diagnostics)
        super().__init__("program %r failed static verification:\n%s"
                         % (program_name, lines))


def verify_program(program, *, level="full", entry_defined=(),
                   threshold=None, widths=()):
    """Run the static verifier; returns a list of Diagnostics.

    ``entry_defined`` names flat register ids assumed written at entry
    (for code meant to be entered with live arguments).  ``widths`` (a
    tuple of issue widths) additionally audits the program's burst
    tables at ``threshold``; both burst parameters are ignored at
    ``level="load"``.
    """
    if level not in ("load", "full"):
        raise ValueError("level must be 'load' or 'full', not %r"
                         % (level,))
    diags = []
    name = program.name
    insts = program.instructions
    n = len(insts)

    if not 0 <= program.entry < n:
        diags.append(Diagnostic(
            "V100", "entry %r outside program of %d instructions"
            % (program.entry, n), program=name))
        return diags

    has_sync = _check_structure(program, diags)

    if level == "load":
        if has_sync:
            cfg = ProgramCFG(program)
            _check_termination(cfg, diags)
            _check_lock_balance_depths(cfg, diags)
        else:
            _quick_termination_check(program, diags)
        return diags

    cfg = ProgramCFG(program)
    _check_termination(cfg, diags)
    _check_unreachable(cfg, diags)
    _check_read_before_write(cfg, diags, entry_defined)
    if has_sync:
        _check_lock_balance(cfg, diags)
    if widths:
        from repro.analysis.burst_audit import audit_bursts
        if threshold is None:
            threshold = 4    # PipelineParams.short_stall_threshold default
        diags.extend(audit_bursts(program, threshold, widths))
    return diags


def program_fingerprint(program):
    """Stable content hash of a program's code.

    Covers the decoded fields that determine both functional behaviour
    and every burst schedule — opcode, operands, immediates, entry, and
    the code base (PC addresses feed the I-cache and BTB) — so it can
    key derived artefacts such as shared burst tables across sweep
    workers (see ROADMAP: sweep-level burst cache sharing).
    """
    h = hashlib.sha256()
    h.update(("%d:%d:%d\n" % (program.code_base, program.entry,
                              len(program.instructions))).encode())
    for inst in program.instructions:
        h.update(("%d,%d,%d,%d,%r\n" % (int(inst.op), inst.rd, inst.rs1,
                                        inst.rs2, inst.imm)).encode())
    return h.hexdigest()


# -- structural pass (shared by both levels) ------------------------------

def _check_structure(program, diags):
    """Fused single pass: static target ranges; returns sync presence."""
    name = program.name
    insts = program.instructions
    n = len(insts)
    has_sync = False
    for i, inst in enumerate(insts):
        info = inst.info
        if info.is_sync:
            has_sync = True
            continue
        if not (info.is_branch or info.is_jump):
            continue
        if inst.op in (Op.JR, Op.JALR):
            continue
        target = inst.imm
        if not isinstance(target, int):
            diags.append(Diagnostic(
                "V101", "%s has unresolved target %r"
                % (info.mnemonic, target), program=name, pc=i))
        elif not 0 <= target < n:
            diags.append(Diagnostic(
                "V101", "%s targets index %d outside [0, %d)"
                % (info.mnemonic, target, n), program=name, pc=i))
    return has_sync


def _quick_termination_check(program, diags):
    """Load-level fall-off check: the last instruction must not fall
    through (the full level proves the exact reachability version)."""
    insts = program.instructions
    last = insts[-1]
    if last.op is Op.HALT or last.info.is_jump:
        return
    diags.append(Diagnostic(
        "V102", "last instruction %r falls through the end of the "
        "program" % (last.info.mnemonic,),
        program=program.name, pc=len(insts) - 1))


# -- CFG-based checks ------------------------------------------------------

def _check_termination(cfg, diags):
    """Exact fall-off-end: is the virtual EXIT block reachable?"""
    name = cfg.program.name
    reachable = cfg.reachable_blocks()
    if EXIT not in reachable:
        return
    for block in cfg.blocks:
        if block.bid in reachable and EXIT in block.succs:
            diags.append(Diagnostic(
                "V102", "execution can fall off the end of the program "
                "after instruction %d" % (block.end - 1),
                program=name, pc=block.end - 1))


def _check_unreachable(cfg, diags):
    """V103 per unreachable block; pure-HALT blocks are exempt.

    A HALT after an unconditional backward jump is the conventional
    epilogue of throughput-mode kernels (``OuterLoop`` with
    ``iterations=None`` loops forever and still emits the HALT), so
    blocks consisting only of HALTs are not reported.
    """
    reachable = cfg.reachable_blocks()
    insts = cfg.program.instructions
    for block in cfg.blocks:
        if block.bid in reachable:
            continue
        if all(insts[i].op is Op.HALT
               for i in range(block.start, block.end)):
            continue
        diags.append(Diagnostic(
            "V103", "instructions [%d, %d) are unreachable from the "
            "entry point" % (block.start, block.end),
            program=cfg.program.name, pc=block.start))


def _check_read_before_write(cfg, diags, entry_defined):
    """V104: reads with no prior write on *any* path (may-written
    dataflow over the CFG, 64-register bitmask lattice)."""
    program = cfg.program
    insts = program.instructions
    blocks = cfg.blocks
    preds = cfg.predecessors()
    reachable = cfg.reachable_blocks()
    rpo = cfg.reverse_postorder()

    entry_mask = 1  # r0 is hardwired (reads of r0 are pre-filtered too)
    for reg in entry_defined:
        entry_mask |= 1 << reg

    gen = {}
    for block in blocks:
        mask = 0
        for i in range(block.start, block.end):
            w = insts[i].writes
            if w >= 0:
                mask |= 1 << w
        gen[block.bid] = mask

    in_mask = {block.bid: 0 for block in blocks}
    out_mask = {block.bid: 0 for block in blocks}
    entry_bid = cfg.entry_bid
    changed = True
    while changed:
        changed = False
        for bid in rpo:
            m = entry_mask if bid == entry_bid else 0
            for p in preds[bid]:
                m |= out_mask[p]
            out = m | gen[bid]
            if m != in_mask[bid] or out != out_mask[bid]:
                in_mask[bid] = m
                out_mask[bid] = out
                changed = True

    for block in blocks:
        if block.bid not in reachable:
            continue
        mask = in_mask[block.bid]
        for i in range(block.start, block.end):
            inst = insts[i]
            for r in inst.reads:
                if not (mask >> r) & 1:
                    diags.append(Diagnostic(
                        "V104", "%s reads %s with no prior write on any "
                        "path" % (inst.disassemble(), _reg(r)),
                        program=program.name, pc=i))
            w = inst.writes
            if w >= 0:
                mask |= 1 << w


def _check_lock_balance_depths(cfg, diags):
    """V106-V109 at ``level="load"``: depth-only lock dataflow.

    The lattice value at a point is the set of lock-nesting depths
    execution can reach it with (saturating at LOCK_DEPTH_CAP, so the
    fixpoint exists even for a lock inside a loop with no unlock).
    This is the cheap single-lattice pass the strict-load budget is
    measured against; ``level="full"`` runs the per-lock-*word* version
    on top of the combined abstract interpretation instead, which also
    surfaces ``held_locks`` on each finding.  The machine's locks are
    re-entrant per context (``SyncManager`` hands a held lock straight
    back to its holder), so nested LOCKs are not themselves findings;
    only definite unlock-without-lock, definite leaks at HALT, and
    barrier-while-locked are.
    """
    program = cfg.program
    insts = program.instructions
    blocks = cfg.blocks
    preds = cfg.predecessors()
    reachable = cfg.reachable_blocks()
    rpo = cfg.reverse_postorder()
    entry_bid = cfg.entry_bid

    def transfer(depths, block, emit):
        for i in range(block.start, block.end):
            op = insts[i].op
            if op is Op.LOCK:
                depths = frozenset(min(d + 1, LOCK_DEPTH_CAP)
                                   for d in depths)
            elif op is Op.UNLOCK:
                if emit is not None and depths == frozenset((0,)):
                    emit(Diagnostic(
                        "V106", "unlock while definitely holding no "
                        "lock", program=program.name, pc=i))
                elif emit is not None and 0 in depths:
                    emit(Diagnostic(
                        "V108", "unlock reachable with lock depth 0 "
                        "(depths %s)" % (sorted(depths),),
                        program=program.name, pc=i))
                depths = frozenset(max(d - 1, 0) for d in depths)
            elif op is Op.BARRIER:
                if emit is not None and 0 not in depths:
                    emit(Diagnostic(
                        "V109", "barrier arrival while definitely "
                        "holding a lock (depths %s)"
                        % (sorted(depths),),
                        program=program.name, pc=i))
            elif op is Op.HALT:
                if emit is not None and depths:
                    if 0 not in depths:
                        emit(Diagnostic(
                            "V107", "HALT with a lock definitely still "
                            "held (depths %s)" % (sorted(depths),),
                            program=program.name, pc=i))
                    elif depths != frozenset((0,)):
                        emit(Diagnostic(
                            "V108", "HALT reachable with inconsistent "
                            "lock depths %s" % (sorted(depths),),
                            program=program.name, pc=i))
        return depths

    in_set = {block.bid: frozenset() for block in blocks}
    out_set = {block.bid: frozenset() for block in blocks}
    changed = True
    while changed:
        changed = False
        for bid in rpo:
            m = frozenset((0,)) if bid == entry_bid else frozenset()
            for p in preds[bid]:
                m |= out_set[p]
            if not m:
                continue
            out = transfer(m, blocks[bid], None)
            if m != in_set[bid] or out != out_set[bid]:
                in_set[bid] = m
                out_set[bid] = out
                changed = True

    seen = set()

    def emit(diag):
        key = (diag.code, diag.pc)
        if key not in seen:
            seen.add(key)
            diags.append(diag)

    for block in blocks:
        if block.bid in reachable and in_set[block.bid]:
            transfer(in_set[block.bid], block, emit)


def _check_lock_balance(cfg, diags):
    """V106-V109 at ``level="full"``: lock-*set* dataflow.

    Runs the combined abstract interpretation of
    :mod:`repro.analysis.absint`, whose per-point value is the set of
    possible lock *stacks* — the depth set falls out as the stack
    lengths, and the must-held lock words are surfaced on each finding
    as ``Diagnostic.held_locks`` (the race analysis consumes the same
    memoised fixpoint, so lint's verify and race passes share the
    work).
    """
    from repro.analysis.absint import analyze
    program = cfg.program
    result = analyze(program, cfg)
    seen = set()

    def emit(code, message, pc, held):
        key = (code, pc)
        if key not in seen:
            seen.add(key)
            diags.append(Diagnostic(code, message, program=program.name,
                                    pc=pc,
                                    held_locks=tuple(sorted(held))))

    def _held_note(held):
        if not held:
            return ""
        return "; holding %s" % ",".join("0x%x" % w for w in sorted(held))

    def visit(pc, inst, state):
        op = inst.op
        if op is Op.UNLOCK:
            depths = state.depths()
            if depths == frozenset((0,)):
                emit("V106", "unlock while definitely holding no lock",
                     pc, frozenset())
            elif 0 in depths:
                emit("V108", "unlock reachable with lock depth 0 "
                     "(depths %s)" % (sorted(depths),),
                     pc, state.must_locks())
        elif op is Op.BARRIER:
            depths = state.depths()
            if 0 not in depths:
                held = state.must_locks()
                emit("V109", "barrier arrival while definitely holding "
                     "a lock (depths %s)%s"
                     % (sorted(depths), _held_note(held)), pc, held)
        elif op is Op.HALT:
            depths = state.depths()
            if not depths:
                return
            if 0 not in depths:
                held = state.must_locks()
                emit("V107", "HALT with a lock definitely still held "
                     "(depths %s)%s"
                     % (sorted(depths), _held_note(held)), pc, held)
            elif depths != frozenset((0,)):
                emit("V108", "HALT reachable with inconsistent lock "
                     "depths %s" % (sorted(depths),),
                     pc, state.must_locks())

    result.walk(visit)


def _reg(num):
    from repro.isa.registers import reg_name
    try:
        return reg_name(num)
    except ValueError:
        return "reg%d" % num


__all__ = ["verify_program", "program_fingerprint",
           "ProgramVerificationError", "has_errors"]
