"""Static analysis layer: program verifier, burst audit, codebase lint.

Two halves (see ``docs/static-analysis.md`` for the rule catalog):

* Program-side — :func:`verify_program` checks a decoded
  :class:`~repro.isa.program.Program` (CFG structure, dataflow,
  lock/barrier balance) and :func:`audit_bursts` re-derives the burst
  engine's slot-packing invariants statically.  ``Program(strict=True)``
  runs the cheap subset at load time.
* Codebase-side — :func:`lint_codebase` runs the determinism and
  stats-parity rules over ``src/repro`` itself.

CLI: ``repro-experiments lint`` (or ``python -m repro.analysis.lint``
for the codebase half alone).
"""

from repro.analysis.diagnostics import (Diagnostic, CATALOG, ERROR,
                                        WARNING, has_errors,
                                        render_report)
from repro.analysis.cfg import ProgramCFG, EXIT
from repro.analysis.verifier import (verify_program, program_fingerprint,
                                     ProgramVerificationError)
from repro.analysis.burst_audit import (audit_bursts, maximal_runs,
                                        DEFAULT_WIDTHS)

_LINT_EXPORTS = ("lint_codebase", "lint_file", "parse_allowlist")

_RACE_EXPORTS = ("analyze_races", "race_findings", "collect_accesses",
                 "dynamic_races", "uncovered_races", "AccessRecord",
                 "DynamicRace", "SharedAccess", "RaceFinding",
                 "findings_to_diagnostics", "split_sanctioned",
                 "sanction_at")


def __getattr__(name):
    # Lazy: keeps `python -m repro.analysis.lint` (the pre-commit hook)
    # from importing the module twice, and the strict-load hook from
    # paying for the linter (and the race analyzer) it never uses.
    if name in _LINT_EXPORTS:
        from repro.analysis import lint
        return getattr(lint, name)
    if name in _RACE_EXPORTS:
        from repro.analysis import races
        return getattr(races, name)
    raise AttributeError("module %r has no attribute %r"
                         % (__name__, name))

__all__ = [
    "Diagnostic", "CATALOG", "ERROR", "WARNING", "has_errors",
    "render_report", "ProgramCFG", "EXIT", "verify_program",
    "program_fingerprint", "ProgramVerificationError", "audit_bursts",
    "maximal_runs", "DEFAULT_WIDTHS", "lint_codebase", "lint_file",
    "parse_allowlist", "analyze_races", "race_findings",
    "collect_accesses", "dynamic_races", "uncovered_races",
    "AccessRecord", "DynamicRace", "SharedAccess", "RaceFinding",
    "findings_to_diagnostics", "split_sanctioned", "sanction_at",
]
