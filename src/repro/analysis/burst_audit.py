"""Static audit of the burst engine's precompiled schedules (B2xx).

The burst engine's correctness rests on a handful of slot-packing
invariants that :mod:`repro.isa.segments` promises (and the differential
harness checks dynamically against the naive engine).  This module
re-derives the *checkable* part symbolically from the burst tables a
program would actually hand the engine — no simulator runs:

* **Slot conservation** (B201): every slot of a burst's window is
  accounted — ``n + short_stalls + long_stalls == duration * width``.
  This is also exactly the "ends on a cycle boundary" alignment rule
  for multi-issue bursts: a non-aligned schedule cannot conserve slots
  with an integer duration.
* **Issue-bandwidth bound** (B202): ``duration >= ceil(n / width)`` —
  a width-w pipeline cannot retire more than w instructions per cycle.
* **Guard-slack monotonicity** (B203): a register's guard slack is the
  relative cycle of its first use; with more issue slots per cycle an
  instruction can only issue *earlier*, so for any entry PC the slack
  of a shared live-in register must be non-increasing in width.
  (Truncation keeps this comparable: a wider burst is a prefix of the
  same run, so a register in both guards first appears at the same
  instruction.)
* **Suffix coverage** (B204): control can enter a run at any
  instruction, so the width-1 table must carry a full-suffix burst for
  *every* entry PC of every maximal burstable run that is at least
  ``MIN_BURST`` from the run's end — and no burst anywhere else.
  Wider tables may drop an entry (cycle-aligned prefix shorter than
  ``MIN_BURST``) but must never add one outside an eligible position.
* **Metadata bounds** (B205): starts/instruction slices match the
  program, guard registers are architectural (1..63, never hardwired
  r0), slacks sit inside the burst window, write-out deltas are
  positive completion times, and both tuples are reg-sorted (the
  engine's bulk ops rely on the order).

Maximal runs are recomputed here independently from
:func:`repro.isa.segments.burstable`, so a table built from a stale or
hand-edited schedule cannot vouch for itself.
"""

from repro.isa.segments import MIN_BURST, burstable
from repro.analysis.diagnostics import Diagnostic

#: Issue widths audited by default — the widths the experiments use
#: (Section 7 extension sweeps 1/2/4).
DEFAULT_WIDTHS = (1, 2, 4)


def maximal_runs(program):
    """Maximal straight-line burstable runs as ``(start, end)`` pairs."""
    insts = program.instructions
    n = len(insts)
    runs = []
    i = 0
    while i < n:
        if not burstable(insts[i]):
            i += 1
            continue
        j = i
        while j < n and burstable(insts[j]):
            j += 1
        runs.append((i, j))
        i = j
    return runs


def audit_bursts(program, threshold, widths=DEFAULT_WIDTHS):
    """Audit ``program``'s burst tables; returns a list of Diagnostics."""
    diags = []
    name = program.name
    insts = program.instructions
    runs = maximal_runs(program)
    #: entry pc -> end of its maximal run, for every eligible entry.
    run_end = {}
    for i, j in runs:
        for s in range(i, j - MIN_BURST + 1):
            run_end[s] = j

    tables = {w: program.bursts_for(threshold, w) for w in widths}

    for width in widths:
        table = tables[width]
        if len(table) != len(insts):
            diags.append(Diagnostic(
                "B205", "width-%d burst table has %d entries for a "
                "%d-instruction program" % (width, len(table),
                                            len(insts)), program=name))
            continue
        for s, burst in enumerate(table):
            if burst is None:
                if width == 1 and s in run_end:
                    diags.append(Diagnostic(
                        "B204", "width-1 table missing the suffix burst "
                        "for entry pc %d (run ends at %d)"
                        % (s, run_end[s]), program=name, pc=s))
                continue
            if s not in run_end:
                diags.append(Diagnostic(
                    "B204", "width-%d burst at pc %d, which is not an "
                    "eligible entry of any burstable run"
                    % (width, s), program=name, pc=s))
                continue
            _audit_one(burst, width, s, run_end[s], insts, name, diags)

    _audit_guard_monotonicity(tables, widths, name, diags)
    return diags


def _audit_one(burst, width, pc, end, insts, name, diags):
    if burst.start != pc or burst.width != width:
        diags.append(Diagnostic(
            "B205", "burst filed at pc %d / width %d records "
            "start=%d width=%d" % (pc, width, burst.start, burst.width),
            program=name, pc=pc))
        return
    n = burst.n
    if (n != len(burst.instructions) or n < MIN_BURST
            or pc + n > end
            or (width == 1 and pc + n != end)
            or any(burst.instructions[k] is not insts[pc + k]
                   for k in range(n))):
        diags.append(Diagnostic(
            "B204", "width-%d burst at pc %d covers %d instructions; "
            "expected a %s of the run ending at %d"
            % (width, pc, n,
               "full suffix" if width == 1 else "prefix of the suffix",
               end), program=name, pc=pc))
        return
    if burst.duration * width < n:
        diags.append(Diagnostic(
            "B202", "width-%d burst at pc %d retires %d instructions "
            "in %d cycles (max %d per cycle)"
            % (width, pc, n, burst.duration, width),
            program=name, pc=pc))
    if n + burst.short_stalls + burst.long_stalls != burst.duration * width:
        diags.append(Diagnostic(
            "B201", "width-%d burst at pc %d: %d issues + %d short + "
            "%d long stalls != %d cycles * %d slots"
            % (width, pc, n, burst.short_stalls, burst.long_stalls,
               burst.duration, width), program=name, pc=pc))
    if burst.short_stalls < 0 or burst.long_stalls < 0:
        diags.append(Diagnostic(
            "B201", "width-%d burst at pc %d has negative stall counts "
            "%d/%d" % (width, pc, burst.short_stalls,
                       burst.long_stalls), program=name, pc=pc))
    for label, pairs in (("guard", burst.guard),
                        ("writes_out", burst.writes_out)):
        if list(pairs) != sorted(pairs):
            diags.append(Diagnostic(
                "B205", "width-%d burst at pc %d: %s not sorted by "
                "register" % (width, pc, label), program=name, pc=pc))
        for reg, value in pairs:
            if not 1 <= reg <= 63:
                diags.append(Diagnostic(
                    "B205", "width-%d burst at pc %d: %s names "
                    "non-architectural register %d"
                    % (width, pc, label, reg), program=name, pc=pc))
            elif label == "guard" and not 0 <= value < burst.duration:
                diags.append(Diagnostic(
                    "B205", "width-%d burst at pc %d: guard slack %d "
                    "for reg %d outside the %d-cycle window"
                    % (width, pc, value, reg, burst.duration),
                    program=name, pc=pc))
            elif label == "writes_out" and value < 1:
                diags.append(Diagnostic(
                    "B205", "width-%d burst at pc %d: write-out delta "
                    "%d for reg %d is not a completion time"
                    % (width, pc, value, reg), program=name, pc=pc))


def _audit_guard_monotonicity(tables, widths, name, diags):
    ordered = sorted(set(widths))
    for a in range(len(ordered)):
        for b in range(a + 1, len(ordered)):
            w1, w2 = ordered[a], ordered[b]
            t1, t2 = tables[w1], tables[w2]
            for pc in range(min(len(t1), len(t2))):
                b1, b2 = t1[pc], t2[pc]
                if b1 is None or b2 is None:
                    continue
                g1 = dict(b1.guard)
                for reg, slack2 in b2.guard:
                    slack1 = g1.get(reg)
                    if slack1 is not None and slack2 > slack1:
                        diags.append(Diagnostic(
                            "B203", "guard slack for reg %d at pc %d "
                            "grows from %d (width %d) to %d (width %d)"
                            % (reg, pc, slack1, w1, slack2, w2),
                            program=name, pc=pc))


__all__ = ["audit_bursts", "maximal_runs", "DEFAULT_WIDTHS"]
