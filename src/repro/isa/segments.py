"""Straight-line burst segmentation (the burst engine's compile step).

The paper's central statistic — run length between long-latency events
(Figures 6/8, Table 7) — says most issued instructions sit in long,
perfectly predictable straight-line runs.  The burst engine exploits
this: at program load each program is segmented into *bursts*, maximal
straight-line runs whose complete issue schedule can be computed ahead
of time, so the processor can retire a whole burst with one scoreboard
bulk-update and one stats bulk-add instead of N per-cycle issue trips.

An instruction is *burstable* when its timing depends only on register
ready-times established before or inside the run:

* no control transfer (a branch might leave the run, and touches the
  BTB and the mispredict-redirect machinery);
* no memory operation, prefetch, or synchronisation op (their timing
  depends on dynamic cache/MSHR/lock state);
* no non-pipelined functional unit (integer multiply/divide, FP divide
  impose cross-context structural hazards through shared ``fu_busy``
  state that a per-context precomputed schedule cannot see);
* not HALT (it retires the context).

Within a burst the only hazards are register dependencies with the
Table 3 latencies, all of which are known statically.  The schedule is
computed *assuming every live-in register is ready*; the runtime guard
(:attr:`Burst.guard`) lists, per live-in register, the latest scoreboard
ready-time under which that assumption reproduces the per-cycle loop
exactly — if any live-in is later than its slack, the processor falls
back to ordinary per-issue stepping, which handles the hazard (and its
stall attribution) the slow way.

Because control flow can enter a run at any instruction (branch targets,
post-squash re-issue, JR), a burst is built for *every suffix* of every
maximal run, keyed by entry PC.
"""

from repro.isa.opcodes import Op, FU
from repro.isa.instruction import KIND_PLAIN

#: Units whose structural (cross-context, shared ``fu_busy``) hazards a
#: per-context precomputed schedule cannot resolve.
_NON_PIPELINED = (FU.MULDIV, FU.FPDIV)

#: Shortest run worth a burst dispatch: below this the guard overhead
#: exceeds the per-issue work saved.
MIN_BURST = 2


class Burst:
    """One precompiled straight-line segment starting at ``start``.

    ``duration`` is the number of cycles the burst occupies on a
    single-issue pipeline (issue slots plus interleaved hazard-stall
    slots); dispatching at cycle T retires all ``n`` instructions and
    leaves the processor due again at ``T + duration``.

    ``guard`` is a tuple of ``(reg, slack)`` pairs: the burst may only
    be dispatched at cycle T when every live-in register satisfies
    ``reg_ready[reg] <= T + slack`` (slack is the relative cycle of the
    register's first use, so an earlier ready-time can never change the
    schedule or the stall attribution).

    ``writes_out`` is a tuple of ``(reg, delta)`` pairs describing the
    scoreboard bulk-update: after a dispatch at T, ``reg_ready[reg] =
    T + delta`` (the final in-burst write's completion time).
    """

    __slots__ = ("start", "n", "instructions", "duration",
                 "short_stalls", "long_stalls", "guard", "writes_out")

    def __init__(self, start, instructions, duration, short_stalls,
                 long_stalls, guard, writes_out):
        self.start = start
        self.instructions = instructions
        self.n = len(instructions)
        self.duration = duration
        self.short_stalls = short_stalls
        self.long_stalls = long_stalls
        self.guard = guard
        self.writes_out = writes_out

    def __repr__(self):
        return ("<Burst pc=%d n=%d duration=%d stalls=%d/%d>"
                % (self.start, self.n, self.duration,
                   self.short_stalls, self.long_stalls))


def burstable(inst):
    """True when ``inst`` may be part of a precompiled burst."""
    return (inst.kind == KIND_PLAIN
            and inst.op is not Op.HALT
            and inst.info.unit not in _NON_PIPELINED)


def schedule_burst(instructions, start, threshold):
    """Precompute the issue schedule of one straight-line run.

    Replays exactly what the per-cycle loop would do for this run on a
    single-issue pipeline with all live-in registers ready: each cycle
    either issues the next instruction or charges one hazard-stall slot,
    with the naive loop's category split (remaining gap of at most
    ``threshold`` cycles -> short instruction stall, else long).
    """
    rel_ready = {}      # reg -> relative ready cycle of its last write
    guard = {}          # live-in reg -> first-attempt relative cycle
    now = 0
    short = long_ = 0
    for inst in instructions:
        attempt = now
        until = now
        for r in inst.reads:
            t = rel_ready.get(r)
            if t is None:
                guard.setdefault(r, attempt)
            elif t > until:
                until = t
        w = inst.writes
        if w >= 0:
            t = rel_ready.get(w)
            if t is None:
                guard.setdefault(w, attempt)
            else:
                t -= inst.info.latency
                if t > until:
                    until = t
        while now < until:
            if until - now <= threshold:
                short += 1
            else:
                long_ += 1
            now += 1
        if w >= 0:
            rel_ready[w] = now + inst.info.latency
        now += 1
    return Burst(start, tuple(instructions), now, short, long_,
                 tuple(sorted(guard.items())),
                 tuple(sorted(rel_ready.items())))


def build_burst_table(program, threshold):
    """Burst-per-entry-PC table for ``program``.

    Returns a list the length of the program; entry ``pc`` is the
    :class:`Burst` covering the straight-line run from ``pc`` to the
    next non-burstable instruction, or None when that run is shorter
    than :data:`MIN_BURST`.
    """
    insts = program.instructions
    n = len(insts)
    table = [None] * n
    i = 0
    while i < n:
        if not burstable(insts[i]):
            i += 1
            continue
        j = i
        while j < n and burstable(insts[j]):
            j += 1
        for s in range(i, j - MIN_BURST + 1):
            table[s] = schedule_burst(insts[s:j], s, threshold)
        i = j
    return table
