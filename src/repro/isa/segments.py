"""Straight-line burst segmentation (the burst engine's compile step).

The paper's central statistic — run length between long-latency events
(Figures 6/8, Table 7) — says most issued instructions sit in long,
perfectly predictable straight-line runs.  The burst engine exploits
this: at program load each program is segmented into *bursts*, maximal
straight-line runs whose complete issue schedule can be computed ahead
of time, so the processor can retire a whole burst with one scoreboard
bulk-update and one stats bulk-add instead of N per-cycle issue trips.

An instruction is *burstable* when its timing depends only on register
ready-times established before or inside the run:

* no control transfer (a branch might leave the run, and touches the
  BTB and the mispredict-redirect machinery);
* no memory operation, prefetch, or synchronisation op (their timing
  depends on dynamic cache/MSHR/lock state);
* no non-pipelined functional unit (integer multiply/divide, FP divide
  impose cross-context structural hazards through shared ``fu_busy``
  state that a per-context precomputed schedule cannot see);
* not HALT (it retires the context).

Within a burst the only hazards are register dependencies with the
Table 3 latencies, all of which are known statically.  The schedule is
computed *assuming every live-in register is ready*; the runtime guard
(:attr:`Burst.guard`) lists, per live-in register, the latest scoreboard
ready-time under which that assumption reproduces the per-cycle loop
exactly — if any live-in is later than its slack, the processor falls
back to ordinary per-issue stepping, which handles the hazard (and its
stall attribution) the slow way.

Schedules are packed for the processor's ``issue_width`` (the Section 7
in-order multi-issue extension): each cycle offers ``width`` issue
slots, consecutive ready instructions share a cycle, and a hazard
wastes every remaining slot of its cycle — exactly the per-cycle loop's
slot accounting.  A multi-issue schedule is only usable when it ends on
a cycle boundary (otherwise the trailing slots of its final cycle would
belong to whatever instruction follows the run, which the compile step
cannot see), so the burst covers the longest prefix of the run whose
last instruction issues in the final slot of its cycle; the tail is
left to per-issue stepping — which typically redispatches it as the
matching suffix burst one cycle later.

Because control flow can enter a run at any instruction (branch targets,
post-squash re-issue, JR), a burst is built for *every suffix* of every
maximal run, keyed by entry PC.
"""

from repro.isa.opcodes import Op, FU
from repro.isa.instruction import KIND_PLAIN

try:  # pragma: no cover - exercised by the no-numpy CI lane
    import numpy as _np
except ImportError:  # pragma: no cover
    _np = None

#: Units whose structural (cross-context, shared ``fu_busy``) hazards a
#: per-context precomputed schedule cannot resolve.
_NON_PIPELINED = (FU.MULDIV, FU.FPDIV)

#: Shortest run worth a burst dispatch: below this the guard overhead
#: exceeds the per-issue work saved.
MIN_BURST = 2


class Burst:
    """One precompiled straight-line segment starting at ``start``.

    ``duration`` is the number of cycles the burst occupies on a
    ``width``-issue pipeline (issue slots plus hazard-stall slots packed
    per the per-cycle loop's slot rules); dispatching at cycle T retires
    all ``n`` instructions and leaves the processor due again at
    ``T + duration``.  Every slot of the window is accounted:
    ``n + short_stalls + long_stalls == duration * width``.

    ``guard`` is a tuple of ``(reg, slack)`` pairs: the burst may only
    be dispatched at cycle T when every live-in register satisfies
    ``reg_ready[reg] <= T + slack`` (slack is the relative cycle of the
    register's first use, so an earlier ready-time can never change the
    schedule or the stall attribution).

    ``writes_out`` is a tuple of ``(reg, delta)`` pairs describing the
    scoreboard bulk-update: after a dispatch at T, ``reg_ready[reg] =
    T + delta`` (the final in-burst write's completion time, computed
    against the packed multi-issue schedule).

    When numpy is available the guard and write schedules are also
    compiled to index/value array pairs (:meth:`guard_arrays` /
    :meth:`write_arrays`) so the numpy scoreboard backend can evaluate
    the guard as one vectorised compare and the bulk-update as one
    fancy-indexed scatter.  Compilation is lazy — first dispatch pays
    it once — and survives the :class:`BurstTableCache` round-trip for
    free because cached bursts are rebuilt through this constructor.
    """

    __slots__ = ("start", "n", "instructions", "duration", "width",
                 "short_stalls", "long_stalls", "guard", "writes_out",
                 "_arrays")

    def __init__(self, start, instructions, duration, short_stalls,
                 long_stalls, guard, writes_out, width=1):
        self.start = start
        self.instructions = instructions
        self.n = len(instructions)
        self.duration = duration
        self.width = width
        self.short_stalls = short_stalls
        self.long_stalls = long_stalls
        self.guard = guard
        self.writes_out = writes_out
        self._arrays = None

    def _compile_arrays(self):
        if _np is None:
            raise RuntimeError(
                "burst array compilation requires numpy (repro[fast])")
        # int64 matches the scoreboard's reg_ready dtype so guard
        # compares and write scatters never promote.
        guard_regs = _np.fromiter((r for r, _ in self.guard),
                                  dtype=_np.int64, count=len(self.guard))
        guard_slacks = _np.fromiter((s for _, s in self.guard),
                                    dtype=_np.int64, count=len(self.guard))
        write_regs = _np.fromiter((r for r, _ in self.writes_out),
                                  dtype=_np.int64,
                                  count=len(self.writes_out))
        write_deltas = _np.fromiter((d for _, d in self.writes_out),
                                    dtype=_np.int64,
                                    count=len(self.writes_out))
        self._arrays = (guard_regs, guard_slacks, write_regs, write_deltas)
        return self._arrays

    def guard_arrays(self):
        """``(regs, slacks)`` int64 arrays mirroring :attr:`guard`."""
        arrays = self._arrays or self._compile_arrays()
        return arrays[0], arrays[1]

    def write_arrays(self):
        """``(regs, deltas)`` int64 arrays mirroring :attr:`writes_out`."""
        arrays = self._arrays or self._compile_arrays()
        return arrays[2], arrays[3]

    def __repr__(self):
        return ("<Burst pc=%d n=%d duration=%d width=%d stalls=%d/%d>"
                % (self.start, self.n, self.duration, self.width,
                   self.short_stalls, self.long_stalls))


def burstable(inst):
    """True when ``inst`` may be part of a precompiled burst."""
    return (inst.kind == KIND_PLAIN
            and inst.op is not Op.HALT
            and inst.info.unit not in _NON_PIPELINED)


def _pack(instructions, threshold, width):
    """Pack a run into ``width`` issue slots per cycle.

    Replays exactly what the per-cycle loop does for a sole-running
    context with all live-in registers ready: each cycle offers
    ``width`` slots; a slot either issues the next instruction or — when
    the next instruction is hazarded — charges one stall slot, with the
    naive loop's category split (remaining gap of at most ``threshold``
    cycles -> short instruction stall, else long).  A hazard discovered
    at slot ``s`` therefore stalls the remaining ``width - s`` slots of
    its cycle, then ``width`` slots of every full stall cycle after it.

    Returns ``(cycle, slot, short, long, guard, rel_ready, aligned)``
    where ``(cycle, slot)`` is the position after the last issue and
    ``aligned`` is the index just past the last instruction that issued
    in the final slot of its cycle (the longest cycle-aligned prefix).
    """
    rel_ready = {}      # reg -> relative ready cycle of its last write
    guard = {}          # live-in reg -> first-attempt relative cycle
    cycle = 0
    slot = 0
    short = long_ = 0
    aligned = 0
    for index, inst in enumerate(instructions):
        attempt = cycle
        until = cycle
        for r in inst.reads:
            t = rel_ready.get(r)
            if t is None:
                guard.setdefault(r, attempt)
            elif t > until:
                until = t
        w = inst.writes
        if w >= 0:
            t = rel_ready.get(w)
            if t is None:
                guard.setdefault(w, attempt)
            else:
                t -= inst.info.latency
                if t > until:
                    until = t
        while cycle < until:
            # Every remaining slot of a hazarded cycle stalls; the
            # category is the cycle's remaining gap, as the naive loop
            # charges it.
            slots = width - slot
            if until - cycle <= threshold:
                short += slots
            else:
                long_ += slots
            cycle += 1
            slot = 0
        if w >= 0:
            rel_ready[w] = cycle + inst.info.latency
        slot += 1
        if slot == width:
            cycle += 1
            slot = 0
            aligned = index + 1
    return cycle, slot, short, long_, guard, rel_ready, aligned


def schedule_burst(instructions, start, threshold, width=1):
    """Precompute the issue schedule of one straight-line run.

    With ``width == 1`` the whole run is always schedulable.  With
    ``width > 1`` the burst covers the longest prefix ending on a cycle
    boundary (see module docstring); returns None when that prefix is
    shorter than :data:`MIN_BURST` (the caller falls back to per-issue
    stepping for this entry PC).
    """
    cycle, slot, short, long_, guard, rel_ready, aligned = _pack(
        instructions, threshold, width)
    if slot != 0:
        # The run's last instruction does not fill its cycle: truncate
        # to the aligned prefix and recompute its (prefix-stable)
        # schedule, so stalls, guards, and write-outs describe exactly
        # the retired instructions.
        if aligned < MIN_BURST:
            return None
        instructions = instructions[:aligned]
        cycle, slot, short, long_, guard, rel_ready, aligned = _pack(
            instructions, threshold, width)
        assert slot == 0, "aligned prefix must end on a cycle boundary"
    return Burst(start, tuple(instructions), cycle, short, long_,
                 tuple(sorted(guard.items())),
                 tuple(sorted(rel_ready.items())), width)


def build_burst_table(program, threshold, width=1):
    """Burst-per-entry-PC table for ``program``.

    Returns a list the length of the program; entry ``pc`` is the
    :class:`Burst` covering the straight-line run from ``pc`` to the
    next non-burstable instruction (truncated to a cycle-aligned prefix
    when ``width > 1``), or None when that run is shorter than
    :data:`MIN_BURST`.

    When numpy is available each burst's guard/write array pairs are
    compiled here, so the memoised table (keyed ``(threshold, width)``
    on the program) carries them and the dispatch path never compiles.
    """
    insts = program.instructions
    n = len(insts)
    table = [None] * n
    i = 0
    while i < n:
        if not burstable(insts[i]):
            i += 1
            continue
        j = i
        while j < n and burstable(insts[j]):
            j += 1
        for s in range(i, j - MIN_BURST + 1):
            burst = schedule_burst(insts[s:j], s, threshold, width)
            if burst is not None and _np is not None:
                burst._compile_arrays()
            table[s] = burst
        i = j
    return table
