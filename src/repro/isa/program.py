"""Program container: instructions, labels, and a data segment.

A :class:`Program` is position-dependent: its code and data base addresses
are fixed when it is built (the workload composer assigns each process a
region of the physical address space before assembling its kernel, which is
how we sidestep a relocating linker).  Program counters are instruction
*indices*; the byte address of instruction ``i`` is ``code_base + 4 * i``
and is what the instruction cache and BTB see.
"""


class DataSegment:
    """Initialised data for one program.

    ``symbols`` maps label names to byte offsets from ``base``; ``words``
    holds the initial word values for the whole segment (uninitialised
    space is zero-filled).
    """

    def __init__(self, base):
        self.base = base
        self.symbols = {}
        self.words = []

    @property
    def size_bytes(self):
        return 4 * len(self.words)

    def define(self, name, n_words, init=None):
        """Reserve ``n_words`` words under ``name``; returns the address."""
        if name in self.symbols:
            raise ValueError("duplicate data symbol %r" % (name,))
        offset = 4 * len(self.words)
        self.symbols[name] = offset
        if init is None:
            self.words.extend([0] * n_words)
        else:
            if len(init) != n_words:
                raise ValueError("init length %d != size %d for %r"
                                 % (len(init), n_words, name))
            self.words.extend(init)
        return self.base + offset

    def address_of(self, name):
        """Absolute byte address of a data symbol."""
        return self.base + self.symbols[name]

    def load(self, memory):
        """Write the initial data image into functional memory."""
        memory.store_words(self.base, self.words)


class Program:
    """An assembled program: code, labels, and data."""

    #: Optional cross-run burst-table provider (class-wide).  When set —
    #: the service's worker processes install their shared on-disk
    #: :class:`~repro.service.burst_cache.BurstTableCache` here —
    #: :meth:`bursts_for` consults it before compiling a table
    #: (``provider.load`` installs a validated table into
    #: ``_burst_tables`` and returns True) and notifies it after
    #: compiling one (``provider.on_compiled``), so structurally
    #: identical programs share schedules across processes.  None (the
    #: default) keeps compilation purely local.
    burst_provider = None

    def __init__(self, name, instructions, labels, data, code_base=0,
                 entry=0, strict=False):
        self.name = name
        self.instructions = instructions
        self.labels = labels
        self.data = data
        self.code_base = code_base
        self.entry = entry
        # Burst tables (repro.isa.segments), memoised per
        # (stall threshold, issue width); built on demand so
        # naive/event-engine runs never pay the segmentation cost.
        self._burst_tables = {}
        for i, inst in enumerate(instructions):
            inst.index = i
        if strict:
            # Opt-in verify-at-load: reject structurally broken programs
            # (out-of-range targets, falling off the end, unbalanced
            # locks) before any cycle is simulated.  The load-level
            # checks are a single cheap pass (see repro.analysis).
            from repro.analysis.verifier import (verify_program,
                                                 ProgramVerificationError)
            errors = [d for d in verify_program(self, level="load")
                      if d.is_error]
            if errors:
                raise ProgramVerificationError(name, errors)

    def __len__(self):
        return len(self.instructions)

    def bursts_for(self, short_stall_threshold, issue_width=1):
        """Burst-per-entry-PC table for the burst engine (memoised).

        The schedule depends only on the static Table 3 latencies, the
        pipeline's short/long stall split, and the slot packing of its
        issue width, so one table per ``(threshold, width)`` serves
        every processor and context running this program.  The width
        *must* key the memo: a width-2 schedule packs two slots per
        cycle and its durations, stall splits, and write-out deltas are
        all different from the width-1 schedule of the same run.
        """
        key = (short_stall_threshold, issue_width)
        table = self._burst_tables.get(key)
        if table is None:
            provider = Program.burst_provider
            if provider is not None and provider.load(
                    self, short_stall_threshold, issue_width):
                return self._burst_tables[key]
            from repro.isa.segments import build_burst_table
            table = build_burst_table(self, short_stall_threshold,
                                      issue_width)
            self._burst_tables[key] = table
            if provider is not None:
                provider.on_compiled(self, short_stall_threshold,
                                     issue_width)
        return table

    def pc_address(self, index):
        """Byte address of the instruction at ``index``."""
        return self.code_base + 4 * index

    def load(self, memory):
        """Install the program's data segment into functional memory."""
        if self.data is not None:
            self.data.load(memory)

    def listing(self):
        """Human-readable disassembly listing with labels."""
        by_index = {}
        for label, idx in self.labels.items():
            by_index.setdefault(idx, []).append(label)
        lines = []
        for i, inst in enumerate(self.instructions):
            for label in sorted(by_index.get(i, ())):
                lines.append("%s:" % label)
            lines.append("    %s" % inst.disassemble())
        return "\n".join(lines)
