"""Program container: instructions, labels, and a data segment.

A :class:`Program` is position-dependent: its code and data base addresses
are fixed when it is built (the workload composer assigns each process a
region of the physical address space before assembling its kernel, which is
how we sidestep a relocating linker).  Program counters are instruction
*indices*; the byte address of instruction ``i`` is ``code_base + 4 * i``
and is what the instruction cache and BTB see.
"""


class DataSegment:
    """Initialised data for one program.

    ``symbols`` maps label names to byte offsets from ``base``; ``words``
    holds the initial word values for the whole segment (uninitialised
    space is zero-filled).
    """

    def __init__(self, base):
        self.base = base
        self.symbols = {}
        self.words = []
        #: Directive kind each symbol was defined with ("word", "space",
        #: "string") — presentation metadata only, used by
        #: :meth:`Program.to_source` to round-trip readable directives.
        self.kinds = {}

    @property
    def size_bytes(self):
        return 4 * len(self.words)

    def define(self, name, n_words, init=None, kind=None):
        """Reserve ``n_words`` words under ``name``; returns the address."""
        if name in self.symbols:
            raise ValueError("duplicate data symbol %r" % (name,))
        offset = 4 * len(self.words)
        self.symbols[name] = offset
        self.kinds[name] = kind or ("space" if init is None else "word")
        if init is None:
            self.words.extend([0] * n_words)
        else:
            if len(init) != n_words:
                raise ValueError("init length %d != size %d for %r"
                                 % (len(init), n_words, name))
            self.words.extend(init)
        return self.base + offset

    def extend(self, n_words, init=None):
        """Append words to the segment without defining a new symbol
        (label-less ``.word``/``.space`` continuation lines)."""
        if init is None:
            self.words.extend([0] * n_words)
        else:
            self.words.extend(init)

    def address_of(self, name):
        """Absolute byte address of a data symbol."""
        return self.base + self.symbols[name]

    def load(self, memory):
        """Write the initial data image into functional memory."""
        memory.store_words(self.base, self.words)


class Program:
    """An assembled program: code, labels, and data."""

    #: Optional cross-run burst-table provider (class-wide).  When set —
    #: the service's worker processes install their shared on-disk
    #: :class:`~repro.service.burst_cache.BurstTableCache` here —
    #: :meth:`bursts_for` consults it before compiling a table
    #: (``provider.load`` installs a validated table into
    #: ``_burst_tables`` and returns True) and notifies it after
    #: compiling one (``provider.on_compiled``), so structurally
    #: identical programs share schedules across processes.  None (the
    #: default) keeps compilation purely local.
    burst_provider = None

    def __init__(self, name, instructions, labels, data, code_base=0,
                 entry=0, strict=False, annotations=None, equs=None):
        self.name = name
        self.instructions = instructions
        self.labels = labels
        self.data = data
        self.code_base = code_base
        self.entry = entry
        #: Named ``.equ`` constants the program was assembled with —
        #: immediates are already resolved in the instruction stream, so
        #: these exist to name well-known slots (e.g. a shared lock
        #: word) in :meth:`to_source` output and diagnostics.
        self.equs = dict(equs) if equs else {}
        #: Optional instruction-index -> comment map (builder ``note=``
        #: annotations); purely presentational — rendered by
        #: :meth:`to_source`, never part of the fingerprint.
        self.annotations = dict(annotations) if annotations else {}
        # Burst tables (repro.isa.segments), memoised per
        # (stall threshold, issue width); built on demand so
        # naive/event-engine runs never pay the segmentation cost.
        self._burst_tables = {}
        # Static-analysis memos (repro.analysis.absint fixpoint, race
        # access lists), same contract as the burst tables: the
        # instruction stream is treated as immutable once analysed.
        self._analysis_cache = {}
        for i, inst in enumerate(instructions):
            inst.index = i
        if strict:
            # Opt-in verify-at-load: reject structurally broken programs
            # (out-of-range targets, falling off the end, unbalanced
            # locks) before any cycle is simulated.  The load-level
            # checks are a single cheap pass (see repro.analysis).
            from repro.analysis.verifier import (verify_program,
                                                 ProgramVerificationError)
            errors = [d for d in verify_program(self, level="load")
                      if d.is_error]
            if errors:
                raise ProgramVerificationError(name, errors)

    def __len__(self):
        return len(self.instructions)

    def bursts_for(self, short_stall_threshold, issue_width=1):
        """Burst-per-entry-PC table for the burst engine (memoised).

        The schedule depends only on the static Table 3 latencies, the
        pipeline's short/long stall split, and the slot packing of its
        issue width, so one table per ``(threshold, width)`` serves
        every processor and context running this program.  The width
        *must* key the memo: a width-2 schedule packs two slots per
        cycle and its durations, stall splits, and write-out deltas are
        all different from the width-1 schedule of the same run.
        """
        key = (short_stall_threshold, issue_width)
        table = self._burst_tables.get(key)
        if table is None:
            provider = Program.burst_provider
            if provider is not None and provider.load(
                    self, short_stall_threshold, issue_width):
                return self._burst_tables[key]
            from repro.isa.segments import build_burst_table
            table = build_burst_table(self, short_stall_threshold,
                                      issue_width)
            self._burst_tables[key] = table
            if provider is not None:
                provider.on_compiled(self, short_stall_threshold,
                                     issue_width)
        return table

    def pc_address(self, index):
        """Byte address of the instruction at ``index``."""
        return self.code_base + 4 * index

    def load(self, memory):
        """Install the program's data segment into functional memory."""
        if self.data is not None:
            self.data.load(memory)

    def listing(self):
        """Human-readable disassembly listing with labels."""
        by_index = {}
        for label, idx in self.labels.items():
            by_index.setdefault(idx, []).append(label)
        lines = []
        for i, inst in enumerate(self.instructions):
            for label in sorted(by_index.get(i, ())):
                lines.append("%s:" % label)
            lines.append("    %s" % inst.disassemble())
        return "\n".join(lines)

    def to_source(self):
        """Full re-assemblable source: data directives plus code.

        ``assemble(program.to_source(), code_base=..., data_base=...)``
        with this program's bases reproduces it bit-identically — same
        :func:`~repro.analysis.program_fingerprint`, same data image
        (property- and golden-tested).  Branch targets are emitted as
        the literal instruction indices the assembler accepts, so the
        rendered labels are purely for the human reader, as are the
        header comments and any builder ``note=`` annotations.
        """
        lines = ["# program: %s" % self.name,
                 "# code_base: 0x%X  data_base: 0x%X  entry: %d"
                 % (self.code_base,
                    self.data.base if self.data is not None else 0,
                    self.entry)]
        for cname, value in self.equs.items():
            lines.append("    .equ %s, %s"
                         % (cname, "0x%X" % value if value >= 0
                            else str(value)))
        if self.data is not None and self.data.words:
            lines.append("    .data")
            lines.extend(_render_data(self.data))
        lines.append("    .text")
        by_index = {}
        for label, idx in self.labels.items():
            by_index.setdefault(idx, []).append(label)
        for i, inst in enumerate(self.instructions):
            for label in sorted(by_index.get(i, ())):
                lines.append("%s:" % label)
            note = self.annotations.get(i)
            text = "    %s" % inst.disassemble()
            lines.append("%s%s" % (text, "    # %s" % note if note
                                   else ""))
        return "\n".join(lines) + "\n"


def _render_data(data):
    """Data-segment directives for :meth:`Program.to_source`."""
    lines = []
    symbols = sorted(data.symbols.items(), key=lambda kv: kv[1])
    for n, (name, offset) in enumerate(symbols):
        start = offset // 4
        end = (symbols[n + 1][1] // 4 if n + 1 < len(symbols)
               else len(data.words))
        words = data.words[start:end]
        kind = data.kinds.get(name, "word")
        if kind == "string" and _is_string_image(words):
            text = "".join(chr(w) for w in words[:-1])
            lines.append('%s: .string "%s"' % (name, _escape(text)))
        elif not any(words):
            lines.append("%s: .space %d" % (name, len(words)))
        else:
            lines.append("%s:" % name)
            for i in range(0, len(words), 8):
                lines.append("    .word %s" % ", ".join(
                    str(w) for w in words[i:i + 8]))
    return lines


def _is_string_image(words):
    return (len(words) >= 1 and words[-1] == 0
            and all(1 <= w < 127 for w in words[:-1]))


def _escape(text):
    return (text.replace("\\", "\\\\").replace('"', '\\"')
            .replace("\n", "\\n").replace("\t", "\\t"))
