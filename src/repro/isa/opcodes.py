"""Opcode definitions and operation latencies (paper Table 3).

Latencies follow Table 3 of the paper:

========================================  =====  =======
Operation                                 Issue  Latency
========================================  =====  =======
Integer ALU (bypassed)                    1      1
Shift                                     1      2
Load                                      1      3
Integer multiply                          12     12
Integer divide                            35     35
Floating-point add/sub/convert/multiply   1      5
Floating-point divide (double)            61     61
Floating-point divide (single)            31     31
========================================  =====  =======

The integer multiply/divide entries of Table 3 are garbled in the archived
text; we use the MIPS R4000 values (12 and 35 cycles), which is the pipeline
the paper's processor is modelled on.  ``issue`` is the number of cycles the
functional unit stays occupied (divides are not pipelined), ``latency`` is
the number of cycles until the result can be forwarded.
"""

import enum
from dataclasses import dataclass


class FU(enum.IntEnum):
    """Functional units of the modelled pipeline (Figure 5)."""

    ALU = 0       # single-cycle integer unit, fully bypassed
    SHIFT = 1     # two-cycle shifter
    MULDIV = 2    # non-pipelined integer multiply/divide
    MEM = 3       # load/store port into the data cache
    BRANCH = 4    # branch resolution in EX
    FPADD = 5     # pipelined FP add/sub/mul/convert (5-cycle)
    FPDIV = 6     # non-pipelined FP divider
    NONE = 7      # control pseudo-ops that use no unit


#: Operand formats understood by the assembler and instruction builder.
#: rrr: rd, rs1, rs2      rri: rd, rs1, imm       ri: rd, imm
#: ld: rd, imm(rs1)       st: rd, imm(rs1)        cbr: rs1, rs2, target
#: cbr1: rs1, target      j: target               jr: rs1
#: jalr: rd, rs1          fr2: rd, rs1            i: imm
#: mref: imm(rs1)         none: (no operands)
FORMATS = (
    "rrr", "rri", "ri", "ld", "st", "cbr", "cbr1",
    "j", "jr", "jalr", "fr2", "i", "mref", "none",
)


@dataclass(frozen=True)
class OpInfo:
    """Static properties of one opcode."""

    mnemonic: str
    fmt: str
    unit: FU
    issue: int            # functional-unit occupancy in cycles
    latency: int          # result latency for forwarding
    writes_fp: bool = False   # destination is an FP register
    reads_fp: bool = False    # register sources are FP registers
    is_load: bool = False
    is_store: bool = False
    is_branch: bool = False   # conditional branch (resolves in EX)
    is_jump: bool = False     # unconditional control transfer
    is_sync: bool = False     # lock/unlock/barrier magic operation
    is_prefetch: bool = False  # non-binding prefetch hint


class Op(enum.IntEnum):
    """All opcodes of the simulated ISA."""

    # Integer ALU
    ADD = enum.auto()
    ADDI = enum.auto()
    SUB = enum.auto()
    AND = enum.auto()
    ANDI = enum.auto()
    OR = enum.auto()
    ORI = enum.auto()
    XOR = enum.auto()
    XORI = enum.auto()
    NOR = enum.auto()
    SLT = enum.auto()
    SLTI = enum.auto()
    SLTU = enum.auto()
    LUI = enum.auto()
    # Shifts
    SLL = enum.auto()
    SRL = enum.auto()
    SRA = enum.auto()
    SLLV = enum.auto()
    SRLV = enum.auto()
    SRAV = enum.auto()
    # Integer multiply / divide
    MUL = enum.auto()
    DIV = enum.auto()
    REM = enum.auto()
    # Memory
    LW = enum.auto()
    SW = enum.auto()
    LWF = enum.auto()
    SWF = enum.auto()
    # Control transfer
    BEQ = enum.auto()
    BNE = enum.auto()
    BLT = enum.auto()
    BGE = enum.auto()
    BLEZ = enum.auto()
    BGTZ = enum.auto()
    J = enum.auto()
    JAL = enum.auto()
    JR = enum.auto()
    JALR = enum.auto()
    # Floating point
    FADD = enum.auto()
    FSUB = enum.auto()
    FMUL = enum.auto()
    FDIV = enum.auto()
    FDIVS = enum.auto()
    FNEG = enum.auto()
    FABS = enum.auto()
    FMOV = enum.auto()
    FCVTIF = enum.auto()   # int reg -> fp reg, convert to double
    FCVTFI = enum.auto()   # fp reg -> int reg, truncate
    FLT = enum.auto()      # int rd = (fs < ft)
    FLE = enum.auto()      # int rd = (fs <= ft)
    FEQ = enum.auto()      # int rd = (fs == ft)
    # System / multithreading
    NOP = enum.auto()
    HALT = enum.auto()
    SWITCH = enum.auto()    # blocked scheme: explicit context switch
    BACKOFF = enum.auto()   # interleaved scheme: go unavailable imm cycles
    LOCK = enum.auto()      # acquire lock at imm(rs1)
    UNLOCK = enum.auto()    # release lock at imm(rs1)
    BARRIER = enum.auto()   # join barrier number imm
    PREF = enum.auto()      # non-binding prefetch of imm(rs1)


def _alu(m, fmt="rrr"):
    return OpInfo(m, fmt, FU.ALU, 1, 1)


def _shift(m, fmt):
    return OpInfo(m, fmt, FU.SHIFT, 1, 2)


def _fp(m, fmt="rrr", latency=5):
    return OpInfo(m, fmt, FU.FPADD, 1, latency, writes_fp=True, reads_fp=True)


OP_INFO = {
    Op.ADD: _alu("add"),
    Op.ADDI: _alu("addi", "rri"),
    Op.SUB: _alu("sub"),
    Op.AND: _alu("and"),
    Op.ANDI: _alu("andi", "rri"),
    Op.OR: _alu("or"),
    Op.ORI: _alu("ori", "rri"),
    Op.XOR: _alu("xor"),
    Op.XORI: _alu("xori", "rri"),
    Op.NOR: _alu("nor"),
    Op.SLT: _alu("slt"),
    Op.SLTI: _alu("slti", "rri"),
    Op.SLTU: _alu("sltu"),
    Op.LUI: _alu("lui", "ri"),
    Op.SLL: _shift("sll", "rri"),
    Op.SRL: _shift("srl", "rri"),
    Op.SRA: _shift("sra", "rri"),
    Op.SLLV: _shift("sllv", "rrr"),
    Op.SRLV: _shift("srlv", "rrr"),
    Op.SRAV: _shift("srav", "rrr"),
    Op.MUL: OpInfo("mul", "rrr", FU.MULDIV, 12, 12),
    Op.DIV: OpInfo("div", "rrr", FU.MULDIV, 35, 35),
    Op.REM: OpInfo("rem", "rrr", FU.MULDIV, 35, 35),
    Op.LW: OpInfo("lw", "ld", FU.MEM, 1, 3, is_load=True),
    Op.SW: OpInfo("sw", "st", FU.MEM, 1, 1, is_store=True),
    Op.LWF: OpInfo("lwf", "ld", FU.MEM, 1, 3, is_load=True, writes_fp=True),
    Op.SWF: OpInfo("swf", "st", FU.MEM, 1, 1, is_store=True, reads_fp=True),
    Op.BEQ: OpInfo("beq", "cbr", FU.BRANCH, 1, 1, is_branch=True),
    Op.BNE: OpInfo("bne", "cbr", FU.BRANCH, 1, 1, is_branch=True),
    Op.BLT: OpInfo("blt", "cbr", FU.BRANCH, 1, 1, is_branch=True),
    Op.BGE: OpInfo("bge", "cbr", FU.BRANCH, 1, 1, is_branch=True),
    Op.BLEZ: OpInfo("blez", "cbr1", FU.BRANCH, 1, 1, is_branch=True),
    Op.BGTZ: OpInfo("bgtz", "cbr1", FU.BRANCH, 1, 1, is_branch=True),
    Op.J: OpInfo("j", "j", FU.BRANCH, 1, 1, is_jump=True),
    Op.JAL: OpInfo("jal", "j", FU.BRANCH, 1, 1, is_jump=True),
    Op.JR: OpInfo("jr", "jr", FU.BRANCH, 1, 1, is_jump=True),
    Op.JALR: OpInfo("jalr", "jalr", FU.BRANCH, 1, 1, is_jump=True),
    Op.FADD: _fp("fadd"),
    Op.FSUB: _fp("fsub"),
    Op.FMUL: _fp("fmul"),
    Op.FDIV: OpInfo("fdiv", "rrr", FU.FPDIV, 61, 61,
                    writes_fp=True, reads_fp=True),
    Op.FDIVS: OpInfo("fdivs", "rrr", FU.FPDIV, 31, 31,
                     writes_fp=True, reads_fp=True),
    Op.FNEG: _fp("fneg", "fr2"),
    Op.FABS: _fp("fabs", "fr2"),
    Op.FMOV: _fp("fmov", "fr2"),
    Op.FCVTIF: OpInfo("fcvtif", "fr2", FU.FPADD, 1, 5, writes_fp=True),
    Op.FCVTFI: OpInfo("fcvtfi", "fr2", FU.FPADD, 1, 5, reads_fp=True),
    Op.FLT: OpInfo("flt", "rrr", FU.FPADD, 1, 5, reads_fp=True),
    Op.FLE: OpInfo("fle", "rrr", FU.FPADD, 1, 5, reads_fp=True),
    Op.FEQ: OpInfo("feq", "rrr", FU.FPADD, 1, 5, reads_fp=True),
    Op.NOP: OpInfo("nop", "none", FU.NONE, 1, 1),
    Op.HALT: OpInfo("halt", "none", FU.NONE, 1, 1),
    Op.SWITCH: OpInfo("switch", "none", FU.NONE, 1, 1),
    Op.BACKOFF: OpInfo("backoff", "i", FU.NONE, 1, 1),
    Op.LOCK: OpInfo("lock", "mref", FU.MEM, 1, 3, is_sync=True),
    Op.UNLOCK: OpInfo("unlock", "mref", FU.MEM, 1, 1, is_sync=True),
    Op.BARRIER: OpInfo("barrier", "i", FU.NONE, 1, 1, is_sync=True),
    # Software prefetch (the alternative latency-tolerance scheme the
    # paper's introduction cites): starts the fill, binds nothing,
    # never faults, never stalls.
    Op.PREF: OpInfo("pref", "mref", FU.MEM, 1, 1, is_prefetch=True),
}

#: Mnemonic -> Op lookup used by the assembler.
MNEMONIC_TO_OP = {info.mnemonic: op for op, info in OP_INFO.items()}

# Every opcode must carry metadata; catch omissions at import time.
assert set(OP_INFO) == set(Op), "OP_INFO out of sync with Op"
