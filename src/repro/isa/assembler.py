"""Two-pass text assembler.

Syntax example::

        .data
    arr:    .space 64           # 64 words, zero filled
    tbl:    .word 1, 2, -3
        .text
    main:   la   t0, arr
            li   t1, 10
    loop:   lw   t2, 0(t0)
            add  t3, t3, t2
            addi t0, t0, 4
            addi t1, t1, -1
            bgtz t1, loop
            halt

Comments start with ``#`` or ``;``.  Supported pseudo-instructions:

``li rd, imm``
    expands to ``addi`` (small constants) or ``lui``+``ori``.
``la rd, symbol``
    loads the absolute address of a data symbol or text label.
``move rd, rs`` / ``not rd, rs`` / ``neg rd, rs`` / ``b target``
    the usual one-instruction idioms.
``bgt``/``ble``
    operand-swapped ``blt``/``bge``.

Data-section ergonomics (all round-trip through
:meth:`~repro.isa.program.Program.to_source`):

``.equ NAME, value``
    a named constant, usable wherever an integer is expected —
    immediates, memory-operand offsets, ``li``/``la``, repeat counts.
``.string "text"`` (alias ``.asciiz``)
    one character code per word (the memory model is word-granular)
    plus a NUL terminator; ``\\n \\t \\0 \\\\ \\"`` escapes apply.
``.word`` values
    may be plain integers, ``.equ`` constants, the names of previously
    defined data symbols (named pointer variables — the word holds the
    symbol's absolute address), or ``value : count`` repeats.
label-less ``.word``/``.space``/``.string``
    continuation lines extend the most recently defined symbol, so
    large initialisers can be written (and are emitted) in readable
    chunks.

Because programs are position-dependent (see :mod:`repro.isa.program`),
``assemble`` takes the code and data base addresses up front and resolves
``la`` immediately.
"""

import re

from repro.isa.opcodes import Op, OP_INFO, MNEMONIC_TO_OP
from repro.isa.registers import reg_num
from repro.isa.instruction import Instruction
from repro.isa.program import Program, DataSegment


class AssemblerError(Exception):
    """Syntax or semantic error in assembler input."""

    def __init__(self, message, line_no=None, line=None):
        if line_no is not None:
            message = "line %d: %s [%s]" % (line_no, message, line)
        super().__init__(message)


_LABEL_RE = re.compile(r"^([A-Za-z_.$][\w.$]*):")
_MEM_RE = re.compile(r"^(-?\w+)\((\$?\w+)\)$")

#: Constants too wide for one addi; widest value reachable by lui+ori.
_LI_MAX = (1 << 28) - 1
_IMM_MIN, _IMM_MAX = -8192, 8191


def _parse_int(token, line_no, line, consts=None):
    if consts and token in consts:
        return consts[token]
    try:
        return int(token, 0)
    except ValueError:
        raise AssemblerError("bad integer %r" % token, line_no, line)


def _strip_comment(raw):
    """Drop ``#``/``;`` comments, ignoring comment chars inside strings."""
    in_string = False
    escaped = False
    for pos, ch in enumerate(raw):
        if in_string:
            if escaped:
                escaped = False
            elif ch == "\\":
                escaped = True
            elif ch == '"':
                in_string = False
        elif ch == '"':
            in_string = True
        elif ch in "#;":
            return raw[:pos]
    return raw


_STRING_ESCAPES = {"n": "\n", "t": "\t", "0": "\0", "\\": "\\", '"': '"'}


def _parse_string(rest, line_no, raw):
    """The word image of a ``.string`` literal: one char per word + NUL."""
    rest = rest.strip()
    if len(rest) < 2 or rest[0] != '"' or rest[-1] != '"':
        raise AssemblerError("bad string literal %r" % rest, line_no, raw)
    out = []
    chars = iter(rest[1:-1])
    for ch in chars:
        if ch == "\\":
            try:
                esc = next(chars)
            except StopIteration:
                raise AssemblerError("dangling escape in string",
                                     line_no, raw)
            if esc not in _STRING_ESCAPES:
                raise AssemblerError("unknown escape %r" % ("\\" + esc),
                                     line_no, raw)
            ch = _STRING_ESCAPES[esc]
        out.append(ord(ch))
    out.append(0)
    return out


def _reg(token, line_no, line):
    try:
        return reg_num(token)
    except KeyError:
        raise AssemblerError("bad register %r" % token, line_no, line)


def _split_operands(rest):
    return [t.strip() for t in rest.split(",")] if rest else []


class _PendingBranch:
    """Placeholder immediate naming a not-yet-resolved label."""

    def __init__(self, label):
        self.label = label


def _expand_li(rd, value, line_no, line):
    """Expansion of ``li``; returns a list of Instructions."""
    if _IMM_MIN <= value <= _IMM_MAX:
        return [Instruction(Op.ADDI, rd=rd, rs1=0, imm=value)]
    if 0 <= value <= _LI_MAX:
        hi, lo = value >> 14, value & 0x3FFF
        out = [Instruction(Op.LUI, rd=rd, imm=hi)]
        if lo:
            out.append(Instruction(Op.ORI, rd=rd, rs1=rd, imm=lo))
        return out
    raise AssemblerError("constant %d out of li range" % value,
                         line_no, line)


def assemble(source, name="program", code_base=0, data_base=0x100000,
             strict=False):
    """Assemble ``source`` text into a :class:`Program`.

    ``strict=True`` runs the load-level static verifier on the result
    (see :mod:`repro.analysis`)."""
    data = DataSegment(data_base)
    text_records = []   # (label_or_None, mnemonic, operand list, line info)
    section = ".text"
    pending_data_label = None
    consts = {}         # .equ constants
    last_data_symbol = None   # continuation target for label-less data

    def data_value(token, line_no, raw):
        """One ``.word`` entry: int, const, or data-symbol address."""
        if token in data.symbols:
            return data.address_of(token)
        return _parse_int(token, line_no, raw, consts)

    def word_values(rest, line_no, raw):
        """Parse a ``.word`` operand list, expanding ``v : n`` repeats."""
        values = []
        for tok in rest.split(","):
            tok = tok.strip()
            if ":" in tok:
                value, count = (t.strip() for t in tok.split(":", 1))
                n = _parse_int(count, line_no, raw, consts)
                if n < 1:
                    raise AssemblerError("bad repeat count %r" % tok,
                                         line_no, raw)
                values.extend([data_value(value, line_no, raw)] * n)
            else:
                values.append(data_value(tok, line_no, raw))
        return values

    def define_or_extend(label, line_no, raw, n_words, init=None,
                         kind=None):
        nonlocal last_data_symbol
        if label is None and last_data_symbol is not None:
            data.extend(n_words, init=init)    # continuation line
        else:
            name = label or "__anon%d" % line_no
            data.define(name, n_words, init=init, kind=kind)
            last_data_symbol = name

    for line_no, raw in enumerate(source.splitlines(), start=1):
        line = _strip_comment(raw).strip()
        if not line:
            continue
        m = _LABEL_RE.match(line)
        label = None
        if m:
            label = m.group(1)
            line = line[m.end():].strip()
        if line.startswith("."):
            parts = line.split(None, 1)
            directive, rest = parts[0], parts[1] if len(parts) > 1 else ""
            if directive in (".text", ".data"):
                section = directive
                if label is not None:
                    raise AssemblerError("label on section directive",
                                         line_no, raw)
            elif directive == ".equ":
                ops = _split_operands(rest)
                if len(ops) != 2:
                    raise AssemblerError(".equ expects NAME, value",
                                         line_no, raw)
                if ops[0] in consts:
                    raise AssemblerError("duplicate constant %r" % ops[0],
                                         line_no, raw)
                consts[ops[0]] = _parse_int(ops[1], line_no, raw, consts)
            elif directive == ".space":
                if section != ".data":
                    raise AssemblerError(".space outside .data", line_no, raw)
                if label is None and pending_data_label is not None:
                    label, pending_data_label = pending_data_label, None
                n = _parse_int(rest, line_no, raw, consts)
                define_or_extend(label, line_no, raw, n, kind="space")
            elif directive == ".word":
                if section != ".data":
                    raise AssemblerError(".word outside .data", line_no, raw)
                if label is None and pending_data_label is not None:
                    label, pending_data_label = pending_data_label, None
                values = word_values(rest, line_no, raw)
                define_or_extend(label, line_no, raw, len(values),
                                 init=values, kind="word")
            elif directive in (".string", ".asciiz"):
                if section != ".data":
                    raise AssemblerError("%s outside .data" % directive,
                                         line_no, raw)
                if label is None and pending_data_label is not None:
                    label, pending_data_label = pending_data_label, None
                values = _parse_string(rest, line_no, raw)
                define_or_extend(label, line_no, raw, len(values),
                                 init=values, kind="string")
            else:
                raise AssemblerError("unknown directive %r" % directive,
                                     line_no, raw)
            continue
        if section == ".data":
            if line:
                raise AssemblerError("instruction in .data section",
                                     line_no, raw)
            if label is not None:
                pending_data_label = label  # bare label before .space/.word
            continue
        if not line:
            if label is not None:
                text_records.append((label, None, None, (line_no, raw)))
            continue
        parts = line.split(None, 1)
        mnemonic = parts[0].lower()
        operands = _split_operands(parts[1] if len(parts) > 1 else "")
        text_records.append((label, mnemonic, operands, (line_no, raw)))

    if pending_data_label is not None:
        raise AssemblerError("dangling data label %r" % pending_data_label)

    # Pass 2: expand text records into instructions, collecting labels.
    instructions = []
    labels = {}

    def symbol_value(token, line_no, raw):
        """Address of a data symbol, or None when ``token`` isn't one."""
        if token in data.symbols:
            return data.address_of(token)
        return None

    for label, mnemonic, operands, (line_no, raw) in text_records:
        if label is not None:
            if label in labels:
                raise AssemblerError("duplicate label %r" % label,
                                     line_no, raw)
            labels[label] = len(instructions)
        if mnemonic is None:
            continue
        instructions.extend(
            _expand(mnemonic, operands, symbol_value, line_no, raw,
                    consts=consts))

    # Pass 3: resolve branch/jump targets.
    for inst in instructions:
        if isinstance(inst.imm, _PendingBranch):
            target = inst.imm.label
            if target in labels:
                inst.imm = labels[target]
            else:
                raise AssemblerError("undefined label %r" % target)

    return Program(name, instructions, labels, data,
                   code_base=code_base, strict=strict, equs=consts)


def _expand(mnemonic, ops, symbol_value, line_no, raw, consts=None):
    """Expand one source mnemonic (real or pseudo) into instructions."""
    r = lambda t: _reg(t, line_no, raw)
    i = lambda t: _parse_int(t, line_no, raw, consts)

    def target(token):
        """Branch target: a literal index or a label placeholder."""
        if re.fullmatch(r"-?\d+|0[xX][0-9a-fA-F]+", token):
            return i(token)
        return _PendingBranch(token)

    # Pseudo-instructions first.
    if mnemonic == "li":
        return _expand_li(r(ops[0]), i(ops[1]), line_no, raw)
    if mnemonic == "la":
        addr = symbol_value(ops[1], line_no, raw)
        if addr is None:
            if consts and ops[1] in consts:
                addr = consts[ops[1]]
            else:
                raise AssemblerError("unknown symbol %r" % ops[1],
                                     line_no, raw)
        return _expand_li(r(ops[0]), addr, line_no, raw)
    if mnemonic == "move":
        return [Instruction(Op.OR, rd=r(ops[0]), rs1=r(ops[1]), rs2=0)]
    if mnemonic == "not":
        return [Instruction(Op.NOR, rd=r(ops[0]), rs1=r(ops[1]), rs2=0)]
    if mnemonic == "neg":
        return [Instruction(Op.SUB, rd=r(ops[0]), rs1=0, rs2=r(ops[1]))]
    if mnemonic == "b":
        return [Instruction(Op.J, imm=target(ops[0]))]
    if mnemonic == "bgt":
        return [Instruction(Op.BLT, rs1=r(ops[1]), rs2=r(ops[0]),
                            imm=target(ops[2]))]
    if mnemonic == "ble":
        return [Instruction(Op.BGE, rs1=r(ops[1]), rs2=r(ops[0]),
                            imm=target(ops[2]))]

    op = MNEMONIC_TO_OP.get(mnemonic)
    if op is None:
        raise AssemblerError("unknown mnemonic %r" % mnemonic, line_no, raw)
    fmt = OP_INFO[op].fmt

    def mem_operand(token):
        m = _MEM_RE.match(token.replace(" ", ""))
        if not m:
            raise AssemblerError("bad memory operand %r" % token,
                                 line_no, raw)
        off = m.group(1)
        base = m.group(2)
        if off in ("", "-"):
            raise AssemblerError("bad offset in %r" % token, line_no, raw)
        sym = symbol_value(off, line_no, raw)
        offset = sym if sym is not None else i(off)
        return offset, r(base)

    def expect(n):
        if len(ops) != n:
            raise AssemblerError(
                "%s expects %d operands, got %d" % (mnemonic, n, len(ops)),
                line_no, raw)

    if fmt == "rrr":
        expect(3)
        return [Instruction(op, rd=r(ops[0]), rs1=r(ops[1]), rs2=r(ops[2]))]
    if fmt == "rri":
        expect(3)
        return [Instruction(op, rd=r(ops[0]), rs1=r(ops[1]), imm=i(ops[2]))]
    if fmt == "ri":
        expect(2)
        return [Instruction(op, rd=r(ops[0]), imm=i(ops[1]))]
    if fmt in ("ld", "st"):
        expect(2)
        offset, base = mem_operand(ops[1])
        return [Instruction(op, rd=r(ops[0]), rs1=base, imm=offset)]
    if fmt == "cbr":
        expect(3)
        return [Instruction(op, rs1=r(ops[0]), rs2=r(ops[1]),
                            imm=target(ops[2]))]
    if fmt == "cbr1":
        expect(2)
        return [Instruction(op, rs1=r(ops[0]), imm=target(ops[1]))]
    if fmt == "j":
        expect(1)
        return [Instruction(op, imm=target(ops[0]))]
    if fmt == "jr":
        expect(1)
        return [Instruction(op, rs1=r(ops[0]))]
    if fmt == "jalr":
        expect(2)
        return [Instruction(op, rd=r(ops[0]), rs1=r(ops[1]))]
    if fmt == "fr2":
        expect(2)
        return [Instruction(op, rd=r(ops[0]), rs1=r(ops[1]))]
    if fmt == "i":
        expect(1)
        return [Instruction(op, imm=i(ops[0]))]
    if fmt == "mref":
        expect(1)
        offset, base = mem_operand(ops[0])
        return [Instruction(op, rs1=base, imm=offset)]
    if fmt == "none":
        expect(0)
        return [Instruction(op)]
    raise AssemblerError("unhandled format %r" % fmt, line_no, raw)
