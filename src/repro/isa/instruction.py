"""The :class:`Instruction` container.

Instructions are created by the assembler or the :class:`AsmBuilder` with
register operands already mapped into the flat register-id space
(integer 0..31, floating point 32..63).  Read/write sets are precomputed
here so the pipeline scoreboard never has to interpret operand formats on
the hot path.
"""

from repro.isa.opcodes import Op, OP_INFO
from repro.isa.registers import reg_name, FP_BASE

#: Issue-path dispatch codes, precomputed per instruction so the
#: processor's hot loop switches on one int instead of re-inspecting
#: OpInfo flags on every issue attempt (the order of the checks below
#: mirrors the processor's historical flag tests exactly).
KIND_PLAIN = 0      # ALU and other simple retire-immediately ops
KIND_CONTROL = 1    # branches/jumps: retire + BTB resolution
KIND_MEM = 2        # loads and stores (the D-cache path)
KIND_PREFETCH = 3
KIND_LOCK = 4
KIND_UNLOCK = 5
KIND_BARRIER = 6
KIND_BACKOFF = 7
KIND_SWITCH = 8


def _issue_kind(op, info):
    if info.is_load or info.is_store:
        return KIND_MEM
    if info.is_prefetch:
        return KIND_PREFETCH
    if op is Op.LOCK:
        return KIND_LOCK
    if op is Op.UNLOCK:
        return KIND_UNLOCK
    if op is Op.BARRIER:
        return KIND_BARRIER
    if op is Op.BACKOFF:
        return KIND_BACKOFF
    if op is Op.SWITCH:
        return KIND_SWITCH
    if info.is_branch or info.is_jump:
        return KIND_CONTROL
    return KIND_PLAIN


def _read_set(fmt, rd, rs1, rs2):
    if fmt in ("rrr",):
        return (rs1, rs2)
    if fmt in ("rri", "ld", "jr", "fr2", "cbr1", "mref"):
        return (rs1,)
    if fmt == "st":
        return (rs1, rd)
    if fmt == "cbr":
        return (rs1, rs2)
    if fmt == "jalr":
        return (rs1,)
    return ()


def _write_reg(fmt, rd):
    if fmt in ("rrr", "rri", "ri", "ld", "fr2", "jalr"):
        return rd
    if fmt == "j":
        return -1  # JAL handled separately below
    return -1


class Instruction:
    """One decoded instruction, plus precomputed scheduling metadata."""

    __slots__ = ("op", "info", "rd", "rs1", "rs2", "imm",
                 "reads", "writes", "index", "target_label", "kind")

    def __init__(self, op, rd=0, rs1=0, rs2=0, imm=0, target_label=None):
        info = OP_INFO[op]
        self.op = op
        self.info = info
        self.kind = _issue_kind(op, info)
        self.rd = rd
        self.rs1 = rs1
        self.rs2 = rs2
        self.imm = imm
        #: Instruction index within its program (set by Program).
        self.index = -1
        #: Unresolved branch-target label (assembler internal use).
        self.target_label = target_label

        reads = tuple(r for r in _read_set(info.fmt, rd, rs1, rs2) if r != 0)
        writes = _write_reg(info.fmt, rd)
        if op is Op.JAL:
            writes = 31  # link register ra
        if writes == 0:
            writes = -1  # writes to r0 are discarded
        self.reads = reads
        self.writes = writes

    # -- introspection helpers (used by tests, disassembly, reports) -------

    @property
    def is_mem(self):
        return self.info.is_load or self.info.is_store

    @property
    def is_control(self):
        return self.info.is_branch or self.info.is_jump

    def disassemble(self):
        """Render the instruction back into assembler syntax."""
        info = self.info
        fmt = info.fmt
        m = info.mnemonic
        if fmt == "rrr":
            return "%s %s, %s, %s" % (m, reg_name(self.rd),
                                      reg_name(self.rs1), reg_name(self.rs2))
        if fmt == "rri":
            return "%s %s, %s, %d" % (m, reg_name(self.rd),
                                      reg_name(self.rs1), self.imm)
        if fmt == "ri":
            return "%s %s, %d" % (m, reg_name(self.rd), self.imm)
        if fmt in ("ld", "st"):
            return "%s %s, %d(%s)" % (m, reg_name(self.rd), self.imm,
                                      reg_name(self.rs1))
        if fmt == "cbr":
            return "%s %s, %s, %d" % (m, reg_name(self.rs1),
                                      reg_name(self.rs2), self.imm)
        if fmt == "cbr1":
            return "%s %s, %d" % (m, reg_name(self.rs1), self.imm)
        if fmt == "j":
            return "%s %d" % (m, self.imm)
        if fmt == "jr":
            return "%s %s" % (m, reg_name(self.rs1))
        if fmt == "jalr":
            return "%s %s, %s" % (m, reg_name(self.rd), reg_name(self.rs1))
        if fmt == "fr2":
            return "%s %s, %s" % (m, reg_name(self.rd), reg_name(self.rs1))
        if fmt == "i":
            return "%s %d" % (m, self.imm)
        if fmt == "mref":
            return "%s %d(%s)" % (m, self.imm, reg_name(self.rs1))
        return m

    def __repr__(self):
        return "<Instruction %s>" % self.disassemble()


def is_fp_id(reg):
    """True if a flat register id names a floating-point register."""
    return reg >= FP_BASE
