"""Binary instruction encoding.

Instructions encode into 32-bit words with a 6-bit opcode, 6-bit register
fields (the flat 0..63 id space), and a 14-bit immediate.  Conditional
branches store a PC-relative offset; jumps store a 24-bit absolute
instruction index.  The machine therefore has a 2^28-byte physical address
space, which the ``li``/``la`` LUI(shift-14)+ORI expansion covers exactly.

Encoding is not on the simulator's hot path; it exists so that programs are
*real* — every kernel in the workload suite must round-trip through
``encode``/``decode`` (enforced by tests), which keeps immediates and
branch offsets honest.
"""

from repro.isa.opcodes import Op, OP_INFO
from repro.isa.instruction import Instruction


class EncodingError(Exception):
    """Value does not fit its encoding field."""


_UNSIGNED_IMM_OPS = frozenset((
    Op.LUI, Op.ORI, Op.ANDI, Op.XORI, Op.BACKOFF, Op.BARRIER,
))

_IMM_BITS = 14
_IMM_MASK = (1 << _IMM_BITS) - 1
_JUMP_BITS = 24


def _check_reg(value, field):
    if not 0 <= value < 64:
        raise EncodingError("register field %s=%d out of range"
                            % (field, value))
    return value


def _encode_imm(op, imm, signed):
    if signed:
        if not -(1 << (_IMM_BITS - 1)) <= imm < (1 << (_IMM_BITS - 1)):
            raise EncodingError("signed immediate %d out of range for %s"
                                % (imm, op.name))
        return imm & _IMM_MASK
    if not 0 <= imm <= _IMM_MASK:
        raise EncodingError("unsigned immediate %d out of range for %s"
                            % (imm, op.name))
    return imm


def _decode_imm(op, field, signed):
    if signed and field & (1 << (_IMM_BITS - 1)):
        return field - (1 << _IMM_BITS)
    return field


def encode(inst, index=None):
    """Encode an instruction to its 32-bit word.

    ``index`` (the instruction's position in its program) is required for
    conditional branches, whose targets are stored PC-relative.
    """
    op = inst.op
    fmt = inst.info.fmt
    word = int(op) << 26
    signed = op not in _UNSIGNED_IMM_OPS

    if fmt in ("rrr",):
        word |= _check_reg(inst.rd, "rd") << 20
        word |= _check_reg(inst.rs1, "rs1") << 14
        word |= _check_reg(inst.rs2, "rs2") << 8
    elif fmt in ("rri", "ld", "st"):
        word |= _check_reg(inst.rd, "rd") << 20
        word |= _check_reg(inst.rs1, "rs1") << 14
        word |= _encode_imm(op, inst.imm, signed)
    elif fmt == "ri":
        word |= _check_reg(inst.rd, "rd") << 20
        word |= _encode_imm(op, inst.imm, signed)
    elif fmt in ("cbr", "cbr1"):
        if index is None:
            raise EncodingError("branch encoding requires the index")
        word |= _check_reg(inst.rs1, "rs1") << 20
        if fmt == "cbr":
            word |= _check_reg(inst.rs2, "rs2") << 14
        word |= _encode_imm(op, inst.imm - index, True)
    elif fmt == "j":
        if not 0 <= inst.imm < (1 << _JUMP_BITS):
            raise EncodingError("jump target %d out of range" % inst.imm)
        word |= inst.imm
    elif fmt == "jr":
        word |= _check_reg(inst.rs1, "rs1") << 20
    elif fmt in ("jalr", "fr2"):
        word |= _check_reg(inst.rd, "rd") << 20
        word |= _check_reg(inst.rs1, "rs1") << 14
    elif fmt == "i":
        word |= _encode_imm(op, inst.imm, signed)
    elif fmt == "mref":
        word |= _check_reg(inst.rs1, "rs1") << 14
        word |= _encode_imm(op, inst.imm, signed)
    # fmt == "none": opcode only
    return word


def decode(word, index=None):
    """Decode a 32-bit word back into an :class:`Instruction`."""
    try:
        op = Op(word >> 26)
    except ValueError:
        raise EncodingError("bad opcode field %d" % (word >> 26))
    fmt = OP_INFO[op].fmt
    signed = op not in _UNSIGNED_IMM_OPS
    rd = (word >> 20) & 0x3F
    rs1 = (word >> 14) & 0x3F
    rs2 = (word >> 8) & 0x3F
    imm_field = word & _IMM_MASK

    if fmt == "rrr":
        return Instruction(op, rd=rd, rs1=rs1, rs2=rs2)
    if fmt in ("rri", "ld", "st"):
        return Instruction(op, rd=rd, rs1=rs1,
                           imm=_decode_imm(op, imm_field, signed))
    if fmt == "ri":
        return Instruction(op, rd=rd,
                           imm=_decode_imm(op, imm_field, signed))
    if fmt in ("cbr", "cbr1"):
        if index is None:
            raise EncodingError("branch decoding requires the index")
        offset = _decode_imm(op, imm_field, True)
        if fmt == "cbr":
            return Instruction(op, rs1=rd, rs2=rs1, imm=index + offset)
        return Instruction(op, rs1=rd, imm=index + offset)
    if fmt == "j":
        return Instruction(op, imm=word & ((1 << _JUMP_BITS) - 1))
    if fmt == "jr":
        return Instruction(op, rs1=rd)
    if fmt in ("jalr", "fr2"):
        return Instruction(op, rd=rd, rs1=rs1)
    if fmt == "i":
        return Instruction(op, imm=_decode_imm(op, imm_field, signed))
    if fmt == "mref":
        return Instruction(op, rs1=rs1,
                           imm=_decode_imm(op, imm_field, signed))
    return Instruction(op)
