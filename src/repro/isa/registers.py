"""Register names and numbering.

Integer registers are numbered 0..31 and floating-point registers 32..63,
so that a single flat id space can be used by the pipeline scoreboard.
Register 0 is hardwired to zero, exactly as on MIPS.
"""

NUM_INT_REGS = 32
NUM_FP_REGS = 32
#: Flat-id offset of floating-point register f0.
FP_BASE = 32
#: Total number of architectural registers in the flat id space.
NUM_REGS = NUM_INT_REGS + NUM_FP_REGS

#: MIPS o32 ABI names for the integer registers, in number order.
ABI_NAMES = (
    "zero", "at", "v0", "v1", "a0", "a1", "a2", "a3",
    "t0", "t1", "t2", "t3", "t4", "t5", "t6", "t7",
    "s0", "s1", "s2", "s3", "s4", "s5", "s6", "s7",
    "t8", "t9", "k0", "k1", "gp", "sp", "fp", "ra",
)

#: Canonical display names (ABI style) indexed by register number.
REG_NAMES = ABI_NAMES
FREG_NAMES = tuple("f%d" % i for i in range(NUM_FP_REGS))

_NAME_TO_NUM = {}
for _i, _name in enumerate(ABI_NAMES):
    _NAME_TO_NUM[_name] = _i
for _i in range(NUM_INT_REGS):
    _NAME_TO_NUM["r%d" % _i] = _i
for _i in range(NUM_FP_REGS):
    _NAME_TO_NUM["f%d" % _i] = FP_BASE + _i
# "$"-prefixed spellings are accepted as well.
for _key in list(_NAME_TO_NUM):
    _NAME_TO_NUM["$" + _key] = _NAME_TO_NUM[_key]


def reg_num(name):
    """Map a register name (``t0``, ``$t0``, ``r8``, ``f2``) to its flat id.

    Raises :class:`KeyError` with a helpful message for unknown names.
    """
    try:
        return _NAME_TO_NUM[name.lower()]
    except KeyError:
        raise KeyError("unknown register name %r" % (name,)) from None


def reg_name(num):
    """Map a flat register id back to its canonical display name."""
    if 0 <= num < NUM_INT_REGS:
        return REG_NAMES[num]
    if FP_BASE <= num < FP_BASE + NUM_FP_REGS:
        return FREG_NAMES[num - FP_BASE]
    raise ValueError("register id %d out of range" % (num,))


def is_fp_reg(num):
    """True when the flat register id names a floating-point register."""
    return num >= FP_BASE
