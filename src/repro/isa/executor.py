"""Functional execution of the ISA.

The executor implements architectural semantics only; all timing lives in
``repro.pipeline`` and ``repro.core``.  Multithreading magic operations
(SWITCH, BACKOFF, LOCK, UNLOCK, BARRIER) are functional no-ops here — the
timing layer interprets them — except that their program-counter behaviour
(fall through) is defined here so a program can also be run purely
functionally for testing.
"""

from repro.isa.opcodes import Op


class ExecutionError(Exception):
    """Raised for architecturally undefined behaviour (e.g. divide by 0)."""


_MASK = 0xFFFFFFFF


def _w(x):
    """Wrap a Python int to signed 32-bit."""
    x &= _MASK
    return x - 0x100000000 if x & 0x80000000 else x


class Memory:
    """Word-granularity functional memory.

    Backed by a dict keyed on word index so that sparse, multi-process
    address spaces cost nothing.  Uninitialised words read as integer 0.
    """

    __slots__ = ("words",)

    def __init__(self):
        self.words = {}

    def read(self, addr):
        if addr & 3:
            raise ExecutionError("unaligned read at 0x%x" % addr)
        return self.words.get(addr >> 2, 0)

    def write(self, addr, value):
        if addr & 3:
            raise ExecutionError("unaligned write at 0x%x" % addr)
        self.words[addr >> 2] = value

    def store_words(self, base, values):
        """Bulk-install ``values`` starting at byte address ``base``."""
        if base & 3:
            raise ExecutionError("unaligned segment base 0x%x" % base)
        start = base >> 2
        words = self.words
        for i, v in enumerate(values):
            words[start + i] = v

    def read_words(self, base, count):
        """Bulk-read ``count`` words starting at byte address ``base``."""
        start = base >> 2
        words = self.words
        return [words.get(start + i, 0) for i in range(count)]


class ArchState:
    """Architectural state of one hardware context."""

    __slots__ = ("regs", "pc", "halted")

    def __init__(self, entry=0):
        # Flat register file: [0..31] integer, [32..63] floating point.
        self.regs = [0] * 32 + [0.0] * 32
        self.pc = entry
        self.halted = False


def _div(a, b):
    if b == 0:
        raise ExecutionError("integer divide by zero")
    # MIPS divides truncate toward zero.
    q = abs(a) // abs(b)
    return -q if (a < 0) != (b < 0) else q


def _rem(a, b):
    if b == 0:
        raise ExecutionError("integer remainder by zero")
    return a - b * _div(a, b)


def _fdiv(a, b):
    try:
        return a / b
    except ZeroDivisionError:
        return float("inf") if a > 0 else float("-inf") if a < 0 else float("nan")


def execute(state, inst, mem):
    """Execute one instruction; updates ``state`` (and ``mem`` for stores).

    Returns nothing; ``state.pc`` is advanced (branches included) and
    ``state.halted`` is set by HALT.
    """
    op = inst.op
    regs = state.regs
    taken = None  # branch/jump target (instruction index)

    if op is Op.ADD:
        regs[inst.rd] = _w(regs[inst.rs1] + regs[inst.rs2])
    elif op is Op.ADDI:
        regs[inst.rd] = _w(regs[inst.rs1] + inst.imm)
    elif op is Op.SUB:
        regs[inst.rd] = _w(regs[inst.rs1] - regs[inst.rs2])
    elif op is Op.AND:
        regs[inst.rd] = _w(regs[inst.rs1] & regs[inst.rs2])
    elif op is Op.ANDI:
        regs[inst.rd] = _w(regs[inst.rs1] & inst.imm)
    elif op is Op.OR:
        regs[inst.rd] = _w(regs[inst.rs1] | regs[inst.rs2])
    elif op is Op.ORI:
        regs[inst.rd] = _w(regs[inst.rs1] | inst.imm)
    elif op is Op.XOR:
        regs[inst.rd] = _w(regs[inst.rs1] ^ regs[inst.rs2])
    elif op is Op.XORI:
        regs[inst.rd] = _w(regs[inst.rs1] ^ inst.imm)
    elif op is Op.NOR:
        regs[inst.rd] = _w(~(regs[inst.rs1] | regs[inst.rs2]))
    elif op is Op.SLT:
        regs[inst.rd] = 1 if regs[inst.rs1] < regs[inst.rs2] else 0
    elif op is Op.SLTI:
        regs[inst.rd] = 1 if regs[inst.rs1] < inst.imm else 0
    elif op is Op.SLTU:
        regs[inst.rd] = 1 if (regs[inst.rs1] & _MASK) < (regs[inst.rs2] & _MASK) else 0
    elif op is Op.LUI:
        # This ISA's LUI shifts by 14 so that a LUI/ORI pair covers the
        # machine's 28-bit physical address space within 14-bit immediates.
        regs[inst.rd] = _w(inst.imm << 14)
    elif op is Op.SLL:
        regs[inst.rd] = _w(regs[inst.rs1] << (inst.imm & 31))
    elif op is Op.SRL:
        regs[inst.rd] = _w((regs[inst.rs1] & _MASK) >> (inst.imm & 31))
    elif op is Op.SRA:
        regs[inst.rd] = _w(regs[inst.rs1] >> (inst.imm & 31))
    elif op is Op.SLLV:
        regs[inst.rd] = _w(regs[inst.rs1] << (regs[inst.rs2] & 31))
    elif op is Op.SRLV:
        regs[inst.rd] = _w((regs[inst.rs1] & _MASK) >> (regs[inst.rs2] & 31))
    elif op is Op.SRAV:
        regs[inst.rd] = _w(regs[inst.rs1] >> (regs[inst.rs2] & 31))
    elif op is Op.MUL:
        regs[inst.rd] = _w(regs[inst.rs1] * regs[inst.rs2])
    elif op is Op.DIV:
        regs[inst.rd] = _w(_div(regs[inst.rs1], regs[inst.rs2]))
    elif op is Op.REM:
        regs[inst.rd] = _w(_rem(regs[inst.rs1], regs[inst.rs2]))
    elif op is Op.LW:
        regs[inst.rd] = mem.read(regs[inst.rs1] + inst.imm)
    elif op is Op.SW:
        mem.write(regs[inst.rs1] + inst.imm, regs[inst.rd])
    elif op is Op.LWF:
        regs[inst.rd] = float(mem.read(regs[inst.rs1] + inst.imm))
    elif op is Op.SWF:
        mem.write(regs[inst.rs1] + inst.imm, regs[inst.rd])
    elif op is Op.BEQ:
        if regs[inst.rs1] == regs[inst.rs2]:
            taken = inst.imm
    elif op is Op.BNE:
        if regs[inst.rs1] != regs[inst.rs2]:
            taken = inst.imm
    elif op is Op.BLT:
        if regs[inst.rs1] < regs[inst.rs2]:
            taken = inst.imm
    elif op is Op.BGE:
        if regs[inst.rs1] >= regs[inst.rs2]:
            taken = inst.imm
    elif op is Op.BLEZ:
        if regs[inst.rs1] <= 0:
            taken = inst.imm
    elif op is Op.BGTZ:
        if regs[inst.rs1] > 0:
            taken = inst.imm
    elif op is Op.J:
        taken = inst.imm
    elif op is Op.JAL:
        regs[31] = state.pc + 1
        taken = inst.imm
    elif op is Op.JR:
        taken = regs[inst.rs1]
    elif op is Op.JALR:
        regs[inst.rd] = state.pc + 1
        taken = regs[inst.rs1]
    elif op is Op.FADD:
        regs[inst.rd] = regs[inst.rs1] + regs[inst.rs2]
    elif op is Op.FSUB:
        regs[inst.rd] = regs[inst.rs1] - regs[inst.rs2]
    elif op is Op.FMUL:
        regs[inst.rd] = regs[inst.rs1] * regs[inst.rs2]
    elif op is Op.FDIV or op is Op.FDIVS:
        regs[inst.rd] = _fdiv(regs[inst.rs1], regs[inst.rs2])
    elif op is Op.FNEG:
        regs[inst.rd] = -regs[inst.rs1]
    elif op is Op.FABS:
        regs[inst.rd] = abs(regs[inst.rs1])
    elif op is Op.FMOV:
        regs[inst.rd] = regs[inst.rs1]
    elif op is Op.FCVTIF:
        regs[inst.rd] = float(regs[inst.rs1])
    elif op is Op.FCVTFI:
        regs[inst.rd] = _w(int(regs[inst.rs1]))
    elif op is Op.FLT:
        regs[inst.rd] = 1 if regs[inst.rs1] < regs[inst.rs2] else 0
    elif op is Op.FLE:
        regs[inst.rd] = 1 if regs[inst.rs1] <= regs[inst.rs2] else 0
    elif op is Op.FEQ:
        regs[inst.rd] = 1 if regs[inst.rs1] == regs[inst.rs2] else 0
    elif op is Op.HALT:
        state.halted = True
        return
    elif op in (Op.NOP, Op.SWITCH, Op.BACKOFF, Op.LOCK, Op.UNLOCK,
                Op.BARRIER, Op.PREF):
        pass  # timing semantics only; functionally fall through
    else:  # pragma: no cover - OP_INFO/Op sync is asserted at import
        raise ExecutionError("unimplemented opcode %s" % op)

    regs[0] = 0  # r0 is hardwired to zero
    state.pc = taken if taken is not None else state.pc + 1


def run_functional(program, memory=None, max_steps=1_000_000, state=None,
                   trace_access=None):
    """Run a program to HALT with no timing model; returns (state, memory).

    This is the reference interpreter the timing simulator is validated
    against: both must compute identical architectural results.

    ``trace_access`` (opt-in, None is free) is called as
    ``fn(step, pc, addr, is_write)`` before every load/store executes —
    the functional-interpreter end of the shared-access log the race
    analysis validates against (the cycle-accurate end is
    ``Processor.access_log``).
    """
    if memory is None:
        memory = Memory()
        program.load(memory)
    if state is None:
        state = ArchState(entry=program.entry)
    instructions = program.instructions
    steps = 0
    while not state.halted:
        if steps >= max_steps:
            raise ExecutionError(
                "program %r did not halt within %d steps"
                % (program.name, max_steps))
        if not 0 <= state.pc < len(instructions):
            raise ExecutionError(
                "pc %d outside program %r" % (state.pc, program.name))
        inst = instructions[state.pc]
        if trace_access is not None and inst.is_mem:
            trace_access(steps, state.pc,
                         state.regs[inst.rs1] + inst.imm,
                         inst.info.is_store)
        execute(state, inst, memory)
        steps += 1
    return state, memory
