"""MIPS-II-like instruction set used by the interleaving simulator.

The paper compiles Spec89/SPLASH with the MIPS compilers and schedules the
result with Twine for a delayed-branch-free MIPS II pipeline.  We stand in
for that toolchain with a small ISA of the same shape: 32 integer and 32
floating-point registers, word-granularity loads/stores, no branch or load
delay slots, and the operation latencies of the paper's Table 3.
"""

from repro.isa.opcodes import Op, OpInfo, OP_INFO, FU
from repro.isa.registers import (
    REG_NAMES,
    FREG_NAMES,
    reg_num,
    reg_name,
    NUM_INT_REGS,
    NUM_FP_REGS,
    FP_BASE,
)
from repro.isa.instruction import Instruction
from repro.isa.program import Program, DataSegment
from repro.isa.assembler import assemble, AssemblerError
from repro.isa.builder import AsmBuilder
from repro.isa.executor import ArchState, Memory, execute, ExecutionError
from repro.isa.encoding import encode, decode, EncodingError

__all__ = [
    "Op",
    "OpInfo",
    "OP_INFO",
    "FU",
    "REG_NAMES",
    "FREG_NAMES",
    "reg_num",
    "reg_name",
    "NUM_INT_REGS",
    "NUM_FP_REGS",
    "FP_BASE",
    "Instruction",
    "Program",
    "DataSegment",
    "assemble",
    "AssemblerError",
    "AsmBuilder",
    "ArchState",
    "Memory",
    "execute",
    "ExecutionError",
    "encode",
    "decode",
    "EncodingError",
]
