"""Rebuilding streamable payloads from cached point states.

Workers send back only the serialised point state (the
:class:`~repro.experiments.cache.ResultCache` format); the manager
derives every streamed ``RunResult.to_json`` payload from that state
with this module — the *same* pure function whether the state came from
a live worker or from a cache hit, so a warm resubmission streams
byte-identical payloads to the cold run.  (The engines' bit-identity
contract makes the recorded ``engine`` the submitting spec's engine,
exactly as a live run under that spec would report.)
"""

from repro.api import (RunResult, _stats_fields)
from repro.experiments import cache as cache_mod
from repro.pipeline.stalls import (UNIPROCESSOR_CATEGORIES,
                                   MULTIPROCESSOR_CATEGORIES)


def result_from_state(point, spec, state):
    """The :class:`repro.api.RunResult` a live run would have returned."""
    if point.kind == "mp":
        mp = cache_mod.mp_from_state(state)
        return RunResult(
            kind="multiprocessor",
            workload=point.name,
            scheme=point.scheme,
            n_contexts=point.n_contexts,
            seed=spec.seed,
            engine=spec.engine,
            cycles=mp.cycles,
            # compute_mp refuses to cache an unfinished run, so every
            # cached mp state is a completed one.
            completed=True,
            per_process=_mp_per_process(point, spec, mp),
            raw=mp,
            **_stats_fields(mp.stats, mp.cycles,
                            MULTIPROCESSOR_CATEGORIES),
        )
    scheme = "single" if point.kind == "dedicated" else point.scheme
    n_contexts = 1 if point.kind == "dedicated" else point.n_contexts
    window = cache_mod.uniproc_from_state(state)
    return RunResult(
        kind="workstation",
        workload=point.name,
        scheme=scheme,
        n_contexts=n_contexts,
        seed=spec.seed,
        engine=spec.engine,
        cycles=window.duration,
        completed=True,
        per_process=dict(window.per_process),
        raw=window,
        **_stats_fields(window.stats, window.duration,
                        UNIPROCESSOR_CATEGORIES),
    )


def _mp_per_process(point, spec, mp_result):
    """Thread name -> retired count, reconstructed from node stats.

    The cached mp state keeps per-node stats, not per-thread retire
    counts; the live payload's ``per_process`` comes from the simulator
    processes.  Per-thread counts are not recoverable from the cache,
    so the payload carries per-node totals under stable names — the
    same convention either way would require persisting them; see
    ``mp_to_state``.
    """
    return {"%s.node%d" % (point.name, i): s.retired
            for i, s in enumerate(mp_result.node_stats)}


def payload_from_state(point, spec, state):
    """The ``RunResult.to_json`` string for a cached point state."""
    return result_from_state(point, spec, state).to_json()


__all__ = ["result_from_state", "payload_from_state"]
