"""The job manager: async job-queue front end over sharded workers.

``submit(spec) -> job_id`` enumerates the spec's points, satisfies what
it can from the content-addressed :class:`~repro.experiments.cache.
ResultCache` (read-through, exactly like the batch sweep), and shards
the rest across a bounded pool of worker *processes* — one process per
point attempt (see :mod:`repro.service.worker`).  A single scheduler
thread owns all mutable scheduling state: it fills free worker slots,
multiplexes result pipes with :func:`multiprocessing.connection.wait`,
writes completed states through to the result cache, and enforces the
robustness rules:

* **worker death** (crash, OOM-kill, injected fault) retries the point
  with exponential backoff, up to the spec's ``max_retries``;
* a **simulation error** fails the point immediately (the computation
  is deterministic — rerunning cannot help) and fails its job;
* a job exceeding its **wall-clock timeout** is terminated (status
  ``timeout``), its workers killed, its queue drained;
* ``cancel(job_id)`` does the same with status ``cancelled``;
* ``shutdown()`` is graceful: in-flight attempts finish and their
  completed points are flushed to the result cache before the
  scheduler exits; never-started jobs are cancelled.

Clients observe jobs through ``status`` snapshots, blocking
``results``, a synchronous ``iter_results`` generator, or the ``async``
``stream`` iterator — all fed from the same per-job record.
"""

import asyncio
import itertools
import multiprocessing
import threading
import time
from collections import deque
from multiprocessing.connection import wait as conn_wait

from repro.service import jobs as jobs_mod
from repro.service.jobs import (JobRecord, JobSpec, PENDING, RUNNING,
                                COMPLETED, FAILED, CANCELLED, TIMEOUT)
from repro.service.results import payload_from_state
from repro.service.worker import make_task, worker_main


class ServiceError(RuntimeError):
    """A job cannot deliver results (failed, timed out, or cancelled)."""


class _Task:
    """One scheduled attempt at one point."""

    __slots__ = ("record", "point", "attempt", "not_before")

    def __init__(self, record, point, attempt=0, not_before=0.0):
        self.record = record
        self.point = point
        self.attempt = attempt
        self.not_before = not_before


class _Slot:
    """One live worker process and its result pipe."""

    __slots__ = ("process", "conn", "task")

    def __init__(self, process, conn, task):
        self.process = process
        self.conn = conn
        self.task = task


class JobManager:
    """Accepts simulation/sweep jobs and runs them on worker processes.

    ``workers`` bounds concurrent worker processes; ``cache`` is an
    optional :class:`~repro.experiments.cache.ResultCache` shared with
    the batch path; ``burst_dir`` enables the cross-worker
    :class:`~repro.service.burst_cache.BurstTableCache` for
    burst-engine jobs; ``backoff`` seeds the exponential retry delay
    (``backoff * 2**attempt`` seconds); ``default_timeout`` applies to
    specs that do not carry their own.
    """

    def __init__(self, workers=2, cache=None, burst_dir=None,
                 default_timeout=None, backoff=0.25, poll_interval=0.05,
                 mp_context=None):
        self.workers = max(1, int(workers))
        self.cache = cache
        self.burst_dir = str(burst_dir) if burst_dir is not None else None
        self.default_timeout = default_timeout
        self.backoff = backoff
        self.poll_interval = poll_interval
        self._mp = (mp_context if mp_context is not None
                    else multiprocessing.get_context())
        self._ids = itertools.count(1)
        self._lock = threading.Lock()
        self._jobs = {}
        self._queue = deque()          # runnable _Tasks
        self._delayed = []             # _Tasks waiting out a backoff
        self._slots = []               # live _Slots
        self._stopping = False
        self._wake_r, self._wake_w = self._mp.Pipe(duplex=False)
        self._thread = threading.Thread(target=self._scheduler_loop,
                                        name="repro-service-scheduler",
                                        daemon=True)
        self._thread.start()

    # -- client API --------------------------------------------------------

    def submit(self, spec, fail_times=0):
        """Accept a job; returns its id immediately.

        ``spec`` is a :class:`JobSpec` (or a spool dict).
        ``fail_times`` is fault injection for the soak tests: each
        point's worker dies that many times before computing.
        """
        if isinstance(spec, dict):
            spec = JobSpec.from_dict(spec)
        if spec.timeout is None and self.default_timeout is not None:
            spec = jobs_mod.JobSpec(
                points=spec.points, config=spec.config,
                mp_params=spec.mp_params, seed=spec.seed,
                warmup=spec.warmup, measure=spec.measure,
                engine=spec.engine, timeout=self.default_timeout,
                max_retries=spec.max_retries)
        now = time.monotonic()
        with self._lock:
            if self._stopping:
                raise ServiceError("manager is shutting down")
            job_id = "job-%04d" % next(self._ids)
            record = JobRecord(job_id, spec, now)
            record._fail_times = fail_times
            self._jobs[job_id] = record
        self._admit(record)
        return job_id

    def _admit(self, record):
        """Resolve cache hits, queue the rest (client thread)."""
        spec = record.spec
        pending = []
        with record.cond:
            for point in spec.points:
                state = None
                if self.cache is not None:
                    key = spec.cache_key(point)
                    cached = self.cache.get_state(key, point.kind)
                    if cached is not None:
                        state = cached
                if state is not None:
                    self._complete_point(record, point, state,
                                         source="cache", seconds=0.0)
                else:
                    pending.append(point)
            if not pending:
                record.note_terminal(COMPLETED, time.monotonic())
            else:
                record.status = RUNNING
        with self._lock:
            for point in pending:
                self._queue.append(_Task(record, point))
        self._wake()

    def status(self, job_id):
        """A JSON-ready snapshot of the job's progress."""
        return self._record(job_id).snapshot()

    def results(self, job_id, timeout=None):
        """Block until the job completes; returns its payload list.

        Payloads are ``RunResult.to_json`` strings in completion order.
        Raises :class:`ServiceError` when the job failed, timed out,
        was cancelled, or ``timeout`` elapsed first.
        """
        record = self._record(job_id)
        with record.cond:
            if not record.cond.wait_for(record.is_terminal,
                                        timeout=timeout):
                raise ServiceError("job %s still %s after %.1f s"
                                   % (job_id, record.status, timeout))
            if record.status != COMPLETED:
                raise ServiceError(
                    "job %s %s%s" % (job_id, record.status,
                                     ": %s" % record.error
                                     if record.error else ""))
            return list(record.payloads)

    def iter_results(self, job_id, timeout=None):
        """Yield payloads as points complete (synchronous generator)."""
        record = self._record(job_id)
        index = 0
        while True:
            payload = record.wait_payload(index, timeout=timeout)
            if payload is None:
                break
            yield payload
            index += 1

    async def stream(self, job_id):
        """Async iterator of payloads, in completion order.

        Blocking waits run in a thread so the event loop stays free;
        ends when the job reaches a terminal state (raising
        :class:`ServiceError` if that state is not ``completed``).
        """
        record = self._record(job_id)
        index = 0
        while True:
            payload = await asyncio.to_thread(record.wait_payload, index)
            if payload is None:
                break
            yield payload
            index += 1
        if record.status != COMPLETED:
            raise ServiceError("job %s %s" % (job_id, record.status))

    def payloads(self, job_id, start=0):
        """Non-blocking: payloads produced so far, from index ``start``.

        The spool server drains each job incrementally with this while
        polling; streaming clients should prefer ``iter_results`` /
        ``stream``.
        """
        record = self._record(job_id)
        with record.cond:
            return list(record.payloads[start:])

    def wait_payload(self, job_id, index, timeout=None):
        """Block until payload ``index`` exists or the job is terminal.

        The seam the network transport streams through: each call
        delivers exactly one payload (or None at end-of-job), so a
        resumed stream can restart from any index without replaying —
        or losing — earlier points.
        """
        return self._record(job_id).wait_payload(index, timeout=timeout)

    def cancel(self, job_id):
        """Stop a job (idempotent); True when this call stopped it."""
        record = self._record(job_id)
        with record.cond:
            if record.is_terminal():
                return False
            record._kill_requested = CANCELLED
        self._wake()
        with record.cond:
            record.cond.wait_for(record.is_terminal, timeout=30.0)
        return record.status == CANCELLED

    def jobs(self):
        """Snapshot list of every known job, newest last."""
        with self._lock:
            records = [self._jobs[k] for k in sorted(self._jobs)]
        return [r.snapshot() for r in records]

    def flush_completed(self):
        """Write any completed-but-unflushed point states to the cache."""
        if self.cache is None:
            return 0
        with self._lock:
            records = list(self._jobs.values())
        flushed = 0
        for record in records:
            with record.cond:
                for ps in record.points.values():
                    if (ps.status == COMPLETED and not ps.flushed
                            and ps.state is not None):
                        self._cache_put(record.spec, ps)
                        flushed += 1
        return flushed

    def shutdown(self, wait=True, timeout=30.0):
        """Graceful stop: finish in-flight attempts, flush, cancel rest."""
        with self._lock:
            self._stopping = True
        self._wake()
        if wait:
            self._thread.join(timeout=timeout)
        self.flush_completed()

    def __enter__(self):
        return self

    def __exit__(self, *exc):
        self.shutdown(wait=True)

    # -- scheduler thread --------------------------------------------------

    def _record(self, job_id):
        with self._lock:
            record = self._jobs.get(job_id)
        if record is None:
            raise KeyError("unknown job id %r" % (job_id,))
        return record

    def _wake(self):
        try:
            self._wake_w.send(b"x")
        except (OSError, ValueError):
            pass

    def _scheduler_loop(self):
        while True:
            self._promote_delayed()
            stopping = self._fill_slots()
            if stopping and not self._slots:
                self._cancel_leftovers()
                return
            self._poll(self._next_wait())
            self._reap()
            self._enforce_deadlines()

    def _promote_delayed(self):
        now = time.monotonic()
        due = [t for t in self._delayed if t.not_before <= now]
        if due:
            self._delayed = [t for t in self._delayed
                             if t.not_before > now]
            with self._lock:
                self._queue.extend(due)

    def _fill_slots(self):
        """Start queued tasks while slots are free; returns stopping."""
        while True:
            with self._lock:
                stopping = self._stopping
                if (stopping or not self._queue
                        or len(self._slots) >= self.workers):
                    if stopping:
                        self._queue.clear()
                    return stopping
                task = self._queue.popleft()
            record = task.record
            if record.is_terminal():
                continue
            self._spawn(task)

    def _spawn(self, task):
        record = task.record
        spec = record.spec
        burst_dir = self.burst_dir if spec.engine == "burst" else None
        payload = make_task(spec, task.point, attempt=task.attempt,
                            burst_dir=burst_dir,
                            fail_times=getattr(record, "_fail_times", 0))
        recv, send = self._mp.Pipe(duplex=False)
        process = self._mp.Process(target=worker_main,
                                   args=(send, payload), daemon=True)
        with record.cond:
            ps = record.points[task.point]
            ps.status = RUNNING
            ps.attempts = task.attempt + 1
        process.start()
        send.close()
        with self._lock:
            self._slots.append(_Slot(process, recv, task))

    def _next_wait(self):
        """How long the scheduler may sleep before something is due."""
        horizon = time.monotonic() + self.poll_interval
        for t in self._delayed:
            horizon = min(horizon, t.not_before)
        with self._lock:
            records = list(self._jobs.values())
        for record in records:
            if record.deadline is not None and not record.is_terminal():
                horizon = min(horizon, record.deadline)
        return max(0.0, horizon - time.monotonic())

    def _poll(self, timeout):
        conns = [self._wake_r] + [s.conn for s in self._slots]
        for conn in conn_wait(conns, timeout=timeout):
            if conn is self._wake_r:
                try:
                    self._wake_r.recv()
                except (EOFError, OSError):
                    pass
                continue
            slot = next(s for s in self._slots if s.conn is conn)
            try:
                message = conn.recv()
            except (EOFError, OSError):
                message = None        # worker died before reporting
            self._retire_slot(slot, message)

    def _retire_slot(self, slot, message):
        with self._lock:
            self._slots.remove(slot)
        slot.conn.close()
        slot.process.join(timeout=5.0)
        if slot.process.is_alive():
            slot.process.kill()
        record, point = slot.task.record, slot.task.point
        if record.is_terminal():
            return
        if message is None:
            self._handle_death(slot.task)
        elif message.get("ok"):
            with record.cond:
                self._complete_point(
                    record, point, message["state"], source="computed",
                    seconds=message.get("seconds"),
                    burst=message.get("burst"))
                done, _failed = record.counts()
                if done == len(record.points):
                    record.note_terminal(COMPLETED, time.monotonic())
        else:
            self._fail_job(record, FAILED,
                           "point %s/%s/%d failed: %s"
                           % (point.name, point.scheme, point.n_contexts,
                              message.get("error", "unknown error")),
                           failed_point=point)

    def _handle_death(self, task):
        record, point = task.record, task.point
        if task.attempt < record.spec.max_retries:
            delay = self.backoff * (2 ** task.attempt)
            self._delayed.append(_Task(record, point, task.attempt + 1,
                                       time.monotonic() + delay))
            with record.cond:
                record.points[point].status = PENDING
            return
        self._fail_job(record, FAILED,
                       "worker for %s/%s/%d died %d times"
                       % (point.name, point.scheme, point.n_contexts,
                          task.attempt + 1), failed_point=point)

    def _complete_point(self, record, point, state, source, seconds,
                        burst=None):
        """Record one finished point (record.cond held)."""
        spec = record.spec
        ps = record.points[point]
        ps.status = COMPLETED
        ps.source = source
        ps.seconds = seconds
        ps.state = state
        ps.payload = payload_from_state(point, spec, state)
        if burst:
            for k, v in burst.items():
                record.burst_stats[k] = record.burst_stats.get(k, 0) + v
        if self.cache is not None:
            self._cache_put(spec, ps)
        record.payloads.append(ps.payload)
        record.cond.notify_all()

    def _cache_put(self, spec, ps):
        point = ps.point
        try:
            self.cache.put_state(
                spec.cache_key(point), point.kind, ps.state,
                meta={"kind": point.kind, "name": point.name,
                      "scheme": point.scheme,
                      "n_contexts": point.n_contexts, "seed": spec.seed,
                      "via": "service"})
        except OSError:
            return                     # cache is best-effort persistence
        ps.flushed = True

    def _fail_job(self, record, status, error, failed_point=None):
        """Terminalise a job: mark, drop its queue, kill its workers."""
        with self._lock:
            self._queue = deque(t for t in self._queue
                                if t.record is not record)
        self._delayed = [t for t in self._delayed
                         if t.record is not record]
        victims = [s for s in self._slots if s.task.record is record]
        for slot in victims:
            slot.process.terminate()
        with record.cond:
            if record.is_terminal():
                return
            if failed_point is not None:
                ps = record.points[failed_point]
                ps.status = FAILED
                ps.error = error
            record.note_terminal(status, time.monotonic(), error=error)

    def _enforce_deadlines(self):
        now = time.monotonic()
        with self._lock:
            records = list(self._jobs.values())
        for record in records:
            kill = getattr(record, "_kill_requested", None)
            if kill is not None and not record.is_terminal():
                self._fail_job(record, kill, "cancelled by client"
                               if kill == CANCELLED else kill)
                continue
            if (record.deadline is not None and not record.is_terminal()
                    and now > record.deadline):
                self._fail_job(record, TIMEOUT,
                               "job exceeded its %.1f s timeout"
                               % record.spec.timeout)

    def _reap(self):
        """Collect slots whose worker died without its pipe going
        readable first (belt and braces; conn_wait flags EOF, but a
        kill between polls can race the pipe teardown)."""
        dead = [s for s in self._slots
                if not s.process.is_alive() and not s.conn.poll()]
        for slot in dead:
            self._retire_slot(slot, None)

    def _cancel_leftovers(self):
        """On shutdown, terminalise whatever never finished."""
        with self._lock:
            records = list(self._jobs.values())
        for record in records:
            with record.cond:
                if not record.is_terminal():
                    record.note_terminal(CANCELLED, time.monotonic(),
                                         error="manager shut down")


__all__ = ["JobManager", "ServiceError"]
