"""Simulation-as-a-service: an async job front end over the sweep engine.

The batch pieces — :class:`~repro.experiments.sweep.SweepEngine` point
enumeration, the content-addressed
:class:`~repro.experiments.cache.ResultCache`, and the
:class:`~repro.api.Simulation` facade — compose here into a servable
system:

* :class:`JobSpec` describes one simulation/sweep job (points plus the
  exact context parameters the serial path would use, so results are
  bit-identical and cache entries are interchangeable with
  ``repro-experiments sweep``).
* :class:`JobManager` accepts jobs (``submit(spec) -> job_id``), shards
  their points across a pool of worker processes with read-through
  ``ResultCache`` lookups, and exposes ``status(job_id)`` /
  ``results(job_id)`` / ``cancel(job_id)`` plus a synchronous
  ``iter_results`` and an ``async`` ``stream`` of per-point
  ``RunResult.to_json`` payloads.  Worker death is retried with
  exponential backoff; jobs carry a wall-clock timeout; shutdown is
  graceful (completed points are flushed to the result cache).
* :class:`BurstTableCache` shares compiled burst tables across workers,
  keyed by :func:`repro.analysis.program_fingerprint` plus the
  ``(short_stall_threshold, issue_width)`` schedule key, and every
  loaded table must pass :func:`repro.analysis.audit_bursts` before it
  is trusted.
* **Transports** — clients talk to a serving process through one
  :class:`Transport` surface with two interchangeable implementations:
  :func:`open_spool` returns a
  :class:`~repro.service.spool.SpoolTransport` over a shared directory
  (the ``repro-experiments serve / submit / jobs`` default), and
  :func:`connect` returns a
  :class:`~repro.service.client.ServiceClient` speaking the
  newline-delimited JSON TCP protocol of :mod:`repro.service.net`
  (``serve --listen`` / ``submit --connect``) — no shared filesystem
  required, resumable streaming, idempotent submits.

The stable public surface is ``__all__`` below; everything else in the
submodules is implementation detail.
"""

from typing import Iterator, List, Protocol, runtime_checkable

from repro.service.jobs import (JobSpec, JobStatus, PENDING, RUNNING,
                                COMPLETED, FAILED, CANCELLED, TIMEOUT)
from repro.service.burst_cache import BurstTableCache
from repro.service.manager import JobManager, ServiceError


@runtime_checkable
class Transport(Protocol):
    """What a job-service client can do, independent of the wire.

    Implemented by :class:`~repro.service.spool.SpoolTransport`
    (shared-directory spool) and
    :class:`~repro.service.client.ServiceClient` (TCP) — CLI verbs and
    user code take any Transport and never name a transport class.

    Payload strings are ``RunResult.to_json`` renderings; the
    interleaving-independence contract says they are byte-identical to
    a serial run of the same points regardless of transport, ordering,
    retries, or resumption.
    """

    def submit(self, spec, idempotency_key=None) -> str:
        """Queue a job; returns its id.  Re-submitting with the same
        ``idempotency_key`` returns the existing id instead of
        duplicating the work."""
        ...

    def status(self, job_id) -> dict:
        """JSON-ready snapshot of one job's progress."""
        ...

    def results(self, job_id, timeout=None) -> List[str]:
        """Block until the job is terminal; returns its payloads.
        Raises :class:`ServiceError` unless it completed."""
        ...

    def payloads(self, job_id, from_index=0) -> List[str]:
        """Non-blocking: payloads produced so far, from ``from_index``."""
        ...

    def stream(self, job_id, from_index=0) -> Iterator[str]:
        """Yield payloads in completion order, starting at
        ``from_index`` (so a resumed stream replays exactly the
        missing suffix)."""
        ...

    def cancel(self, job_id) -> bool:
        """Stop a job; True when this call made it end cancelled."""
        ...

    def jobs(self) -> List[dict]:
        """Status snapshots of every known job."""
        ...

    def close(self) -> None:
        """Release the transport's resources (idempotent)."""
        ...


def connect(address, port=None, **kwargs):
    """A :class:`Transport` over TCP: ``connect("host:1994")`` or
    ``connect("host", 1994)``.  Keyword arguments go to
    :class:`~repro.service.client.ServiceClient` (timeouts, retries,
    backoff)."""
    from repro.service.client import ServiceClient
    if port is None:
        from repro.service.net import parse_address
        host, port = parse_address(address)
    else:
        host = address
    return ServiceClient(host, port, **kwargs)


def open_spool(root=None, **kwargs):
    """A :class:`Transport` over a shared spool directory (defaults to
    ``$REPRO_SPOOL_DIR`` or ``.repro_spool``)."""
    from repro.service.spool import SpoolTransport
    return SpoolTransport(root, **kwargs)


__all__ = [
    # the stable public surface
    "JobSpec", "JobStatus", "Transport", "connect", "open_spool",
    # managers and transports
    "JobManager", "BurstTableCache", "ServiceError",
    # lifecycle states
    "PENDING", "RUNNING", "COMPLETED", "FAILED", "CANCELLED", "TIMEOUT",
]
