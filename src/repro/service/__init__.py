"""Simulation-as-a-service: an async job front end over the sweep engine.

The batch pieces — :class:`~repro.experiments.sweep.SweepEngine` point
enumeration, the content-addressed
:class:`~repro.experiments.cache.ResultCache`, and the
:class:`~repro.api.Simulation` facade — compose here into a servable
system:

* :class:`JobSpec` describes one simulation/sweep job (points plus the
  exact context parameters the serial path would use, so results are
  bit-identical and cache entries are interchangeable with
  ``repro-experiments sweep``).
* :class:`JobManager` accepts jobs (``submit(spec) -> job_id``), shards
  their points across a pool of worker processes with read-through
  ``ResultCache`` lookups, and exposes ``status(job_id)`` /
  ``results(job_id)`` / ``cancel(job_id)`` plus a synchronous
  ``iter_results`` and an ``async`` ``stream`` of per-point
  ``RunResult.to_json`` payloads.  Worker death is retried with
  exponential backoff; jobs carry a wall-clock timeout; shutdown is
  graceful (completed points are flushed to the result cache).
* :class:`BurstTableCache` shares compiled burst tables across workers,
  keyed by :func:`repro.analysis.program_fingerprint` plus the
  ``(short_stall_threshold, issue_width)`` schedule key, and every
  loaded table must pass :func:`repro.analysis.audit_bursts` before it
  is trusted.
* :mod:`repro.service.spool` is the file-based transport behind the
  ``repro-experiments serve / submit / jobs`` CLI verbs.
"""

from repro.service.jobs import (JobSpec, JobStatus, PENDING, RUNNING,
                                COMPLETED, FAILED, CANCELLED, TIMEOUT)
from repro.service.burst_cache import BurstTableCache
from repro.service.manager import JobManager

__all__ = [
    "JobSpec", "JobStatus", "JobManager", "BurstTableCache",
    "PENDING", "RUNNING", "COMPLETED", "FAILED", "CANCELLED", "TIMEOUT",
]
