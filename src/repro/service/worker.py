"""Worker-process side of the job manager.

One worker process computes one point per attempt: the manager spawns
``multiprocessing.Process(target=worker_main, ...)`` with a one-way
pipe, the worker runs the simulation exactly as the batch path would,
and sends back a single result message.  Process-per-attempt keeps the
failure domain small — a dying worker loses exactly one attempt of one
point, which the manager retries with backoff — and makes the kill
injection used by the CI soak test trivially safe.

Determinism contract: the simulation inputs in a task are precisely the
arguments :mod:`repro.experiments.runner`'s ``compute_*`` functions
receive on the batch path (same configs, same per-point seed, same
windows), so a service-computed point is bit-identical to a serial
:class:`~repro.experiments.sweep.SweepEngine` one and their cache
entries are interchangeable.

When the task carries a ``burst_dir`` and the burst engine is selected,
the worker installs the shared :class:`~repro.service.burst_cache.
BurstTableCache` as the :class:`~repro.isa.program.Program` burst-table
provider for the duration of the run: programs whose fingerprints are
already cached skip recompilation (after an ``audit_bursts``
validation), and freshly compiled tables are published for the other
workers.
"""

import os
import time
import traceback

from repro.experiments import cache as cache_mod
from repro.experiments.runner import MP_MAX_CYCLES


def make_task(spec, point, attempt=0, burst_dir=None, fail_times=0):
    """The picklable work order for one attempt at one point."""
    warmup, measure = spec.point_window(point)
    return {
        "kind": point.kind,
        "name": point.name,
        "scheme": point.scheme,
        "n_contexts": point.n_contexts,
        "config": spec.config,
        "mp_params": spec.mp_params,
        "seed": spec.seed,
        "warmup": warmup,
        "measure": measure,
        "engine": spec.engine,
        "backend": spec.backend,
        "attempt": attempt,
        "burst_dir": burst_dir,
        #: Fault injection (soak tests): die this many times before
        #: computing, exercising the manager's retry-with-backoff path.
        "fail_times": fail_times,
    }


def compute_point(task):
    """Run one point; returns the result message dict.

    Pure function of the task (no shared state): the manager may run it
    in any worker, in any order, any number of times.
    """
    kind = task["kind"]
    engine = task["engine"]
    # Absent in tasks from pre-backend clients: default to None (the
    # env/python resolution) — either backend computes identical bits.
    backend = task.get("backend")
    burst_cache = None
    from repro.api import Simulation
    from repro.isa.program import Program
    if task.get("burst_dir") is not None and engine == "burst":
        from repro.service.burst_cache import BurstTableCache
        burst_cache = BurstTableCache(task["burst_dir"])
        Program.burst_provider = burst_cache
    t0 = time.perf_counter()
    try:
        if kind == "uniproc":
            simulation = Simulation.from_config(
                task["config"], scheme=task["scheme"],
                n_contexts=task["n_contexts"], seed=task["seed"],
                engine=engine, backend=backend).load(task["name"])
            result = simulation.run(warmup=task["warmup"],
                                    measure=task["measure"])
        elif kind == "dedicated":
            simulation = Simulation.from_config(
                task["config"], scheme="single", n_contexts=1,
                seed=task["seed"], engine=engine,
                backend=backend).load(task["name"])
            result = simulation.run(warmup=task["warmup"],
                                    measure=task["measure"])
        elif kind == "gen":
            # A generated family: the point's name is the GenSpec's
            # canonical text ("" = default spec); programs are built on
            # the worker (deterministic from the spec) and verified at
            # birth, so a bad spec fails the point loudly.
            simulation = Simulation.from_config(
                task["config"], scheme=task["scheme"],
                n_contexts=task["n_contexts"], seed=task["seed"],
                engine=engine, backend=backend).load(
                    "gen:" + task["name"])
            result = simulation.run(warmup=task["warmup"],
                                    measure=task["measure"])
        elif kind == "mp":
            simulation = Simulation.from_config(
                task["mp_params"], scheme=task["scheme"],
                n_contexts=task["n_contexts"], seed=task["seed"],
                engine=engine, backend=backend).load(task["name"])
            result = simulation.run(until=MP_MAX_CYCLES)
            if not result.completed:
                raise RuntimeError(
                    "application %r did not finish within %d cycles"
                    % (task["name"], MP_MAX_CYCLES))
        else:
            raise ValueError("unknown point kind %r" % (kind,))
    finally:
        if burst_cache is not None:
            Program.burst_provider = None
    # Only the serialised state travels back: the manager derives the
    # streamed payload from it (repro.service.results), the same pure
    # function it applies to cache hits — so cold and warm runs stream
    # byte-identical payloads.
    return {
        "ok": True,
        "state": cache_mod.SERIALIZERS[kind][0](result.raw),
        "seconds": time.perf_counter() - t0,
        "burst": (burst_cache.session_stats() if burst_cache is not None
                  else None),
    }


def worker_main(conn, task):
    """Process entry point: compute, send exactly one message, exit.

    A simulation error is reported as an ``ok: False`` message (the
    manager fails the point without retrying — the computation is
    deterministic, so rerunning cannot help).  Only process *death* —
    the injected kind below, a crash, or an external kill — triggers
    the retry path.
    """
    if task["attempt"] < task.get("fail_times", 0):
        # Injected worker death: exit without sending anything, exactly
        # what a crash/OOM-kill looks like from the manager's side.
        conn.close()
        os._exit(17)
    try:
        message = compute_point(task)
    except BaseException:
        message = {"ok": False, "error": traceback.format_exc(limit=20)}
    try:
        conn.send(message)
    finally:
        conn.close()


__all__ = ["make_task", "compute_point", "worker_main"]
