"""Job model: what a submitted job runs and how its lifecycle is tracked.

A :class:`JobSpec` pins every input the serial experiment path uses for
a point — machine configs, seed, measurement window, engine — so a
service-computed point is bit-identical to (and cache-interchangeable
with) the same point computed by :class:`~repro.experiments.sweep.
SweepEngine` or :class:`~repro.experiments.runner.ExperimentContext`.

A :class:`JobRecord` is the manager's mutable, thread-safe view of one
submitted job: per-point outcomes, streamed payloads, and the condition
variable both the synchronous and async streaming iterators block on.
"""

import threading
from dataclasses import dataclass, field

from repro.config import SystemConfig, MultiprocessorParams
from repro.experiments.runner import (UNIPROC_WARMUP, UNIPROC_MEASURE,
                                      MP_MAX_CYCLES)
from repro.experiments.sweep import SweepPoint, dedupe

#: Job lifecycle states.
PENDING = "pending"
RUNNING = "running"
COMPLETED = "completed"
FAILED = "failed"
CANCELLED = "cancelled"
TIMEOUT = "timeout"

#: States a job can never leave.
TERMINAL = (COMPLETED, FAILED, CANCELLED, TIMEOUT)

#: JSON schema number of the spool/spec payloads.
SPEC_SCHEMA = 1

#: JSON schema number of the status snapshots (spool status.json and
#: the wire protocol's ``status`` responses).
STATUS_SCHEMA = 1


class JobStatus:
    """Constants namespace (importable as ``JobStatus.COMPLETED`` etc.)."""

    PENDING = PENDING
    RUNNING = RUNNING
    COMPLETED = COMPLETED
    FAILED = FAILED
    CANCELLED = CANCELLED
    TIMEOUT = TIMEOUT
    TERMINAL = TERMINAL


@dataclass
class JobSpec:
    """One submitted job: a set of sweep points plus their exact inputs.

    ``config``/``mp_params``/``seed``/``warmup``/``measure`` mirror
    :class:`~repro.experiments.runner.ExperimentContext` so cache keys
    (and therefore results) are interchangeable with the batch path.
    ``timeout`` is the job's wall-clock budget in seconds (None = no
    bound); ``max_retries`` is the per-point retry budget on worker
    death.
    """

    points: tuple
    config: SystemConfig = field(default_factory=SystemConfig.fast)
    mp_params: MultiprocessorParams = field(
        default_factory=MultiprocessorParams)
    seed: int = 1994
    warmup: int = UNIPROC_WARMUP
    measure: int = UNIPROC_MEASURE
    engine: str = "events"
    #: Scoreboard backend for the workers ("python" | "numpy" | "auto" |
    #: None).  Bit-identical by contract, so — like ``engine`` — it does
    #: not enter cache keys, and a server that predates the knob can
    #: ignore it without changing any result.
    backend: str = None
    timeout: float = None
    max_retries: int = 2

    def __post_init__(self):
        self.points = tuple(dedupe(SweepPoint(*p) for p in self.points))
        if not self.points:
            raise ValueError("a job needs at least one point")
        if self.engine not in ("events", "naive", "burst"):
            raise ValueError("engine must be 'events', 'naive' or "
                             "'burst', not %r" % (self.engine,))
        if self.backend not in (None, "auto", "python", "numpy"):
            raise ValueError("backend must be 'python', 'numpy', 'auto' "
                             "or None, not %r" % (self.backend,))

    @classmethod
    def sweep(cls, workloads=None, apps=None, **kwargs):
        """A spec covering every figure/table point (optionally subset)."""
        from repro.experiments.sweep import default_points
        return cls(points=default_points(workloads=workloads, apps=apps),
                   **kwargs)

    def point_window(self, point):
        """(warmup, measure) for ``point``, as the batch path uses them."""
        if point.kind == "mp":
            return 0, MP_MAX_CYCLES
        return self.warmup, self.measure

    def cache_key(self, point):
        """The point's on-disk :class:`ResultCache` key (shared with the
        batch sweep path, so service and batch runs feed one cache)."""
        from repro.experiments import cache as cache_mod
        warmup, measure = self.point_window(point)
        return cache_mod.point_key(
            point.kind, point.name, point.scheme, point.n_contexts,
            self.config, self.mp_params, self.seed, warmup, measure)

    # -- spool (JSON) form ------------------------------------------------

    def to_dict(self):
        """JSON-ready form for the spool transport.

        The machine configs are carried as profile names + overrides
        (the spool protocol is for the CLI verbs; the Python API can
        pass arbitrary config objects to :meth:`JobManager.submit`
        directly).
        """
        profile = ("paper" if self.config == SystemConfig.paper()
                   else "fast")
        if profile == "fast" and self.config != SystemConfig.fast():
            raise ValueError(
                "only the 'fast'/'paper' profiles round-trip through the "
                "spool; submit custom configs through JobManager.submit")
        return {
            # "schema" is the historical name of this field; both are
            # written so pre-network spools and new clients interoperate.
            "schema": SPEC_SCHEMA,
            "schema_version": SPEC_SCHEMA,
            "profile": profile,
            "nodes": self.mp_params.n_nodes,
            "seed": self.seed,
            "warmup": self.warmup,
            "measure": self.measure,
            "engine": self.engine,
            "backend": self.backend,
            "timeout": self.timeout,
            "max_retries": self.max_retries,
            "points": [[p.kind, p.name, p.scheme, p.n_contexts]
                       for p in self.points],
        }

    @classmethod
    def from_dict(cls, payload):
        # Either field name is accepted (old spools wrote "schema",
        # the wire protocol writes "schema_version") but every version
        # present must match — a disagreement means a corrupt payload.
        versions = {payload[k] for k in ("schema", "schema_version")
                    if k in payload} or {None}
        if versions != {SPEC_SCHEMA}:
            raise ValueError("unsupported job spec schema %r"
                             % (sorted(versions, key=repr),))
        config = (SystemConfig.paper() if payload.get("profile") == "paper"
                  else SystemConfig.fast())
        mp_params = MultiprocessorParams(
            n_nodes=int(payload.get("nodes", 8)))
        return cls(
            points=tuple(SweepPoint(k, n, s, int(c))
                         for k, n, s, c in payload["points"]),
            config=config,
            mp_params=mp_params,
            seed=int(payload.get("seed", 1994)),
            warmup=int(payload.get("warmup", UNIPROC_WARMUP)),
            measure=int(payload.get("measure", UNIPROC_MEASURE)),
            engine=payload.get("engine", "events"),
            backend=payload.get("backend"),
            timeout=payload.get("timeout"),
            max_retries=int(payload.get("max_retries", 2)),
        )


class PointState:
    """Progress of one point inside a job."""

    __slots__ = ("point", "status", "source", "attempts", "seconds",
                 "error", "state", "payload", "flushed")

    def __init__(self, point):
        self.point = point
        self.status = PENDING        # pending | running | completed | failed
        self.source = None           # "cache" | "computed"
        self.attempts = 0
        self.seconds = None
        self.error = None
        self.state = None            # serialised result (cache format)
        self.payload = None          # RunResult.to_json() string
        self.flushed = False         # written to the ResultCache?

    def to_dict(self):
        p = self.point
        return {"kind": p.kind, "name": p.name, "scheme": p.scheme,
                "n_contexts": p.n_contexts, "status": self.status,
                "source": self.source, "attempts": self.attempts,
                "seconds": self.seconds, "error": self.error}


class JobRecord:
    """Thread-safe lifecycle record of one submitted job.

    The manager's scheduler thread mutates it under ``cond``; client
    threads (and the async stream, via a worker thread) read snapshots
    and block on ``cond`` for new payloads.
    """

    def __init__(self, job_id, spec, submitted_at):
        self.job_id = job_id
        self.spec = spec
        self.submitted_at = submitted_at
        self.deadline = (submitted_at + spec.timeout
                         if spec.timeout is not None else None)
        self.cond = threading.Condition()
        self.status = PENDING
        self.error = None
        self.points = {p: PointState(p) for p in spec.points}
        #: ``RunResult.to_json()`` strings, in completion order.
        self.payloads = []
        self.burst_stats = {"hits": 0, "misses": 0, "stores": 0,
                            "rejected": 0}
        self.finished_at = None

    # All mutators are called with ``cond`` held by the scheduler.

    def note_terminal(self, status, now, error=None):
        self.status = status
        self.error = error
        self.finished_at = now
        self.cond.notify_all()

    def counts(self):
        done = sum(1 for s in self.points.values()
                   if s.status == COMPLETED)
        failed = sum(1 for s in self.points.values()
                     if s.status == FAILED)
        return done, failed

    def is_terminal(self):
        return self.status in TERMINAL

    def snapshot(self):
        """A JSON-ready status view (taken under ``cond``)."""
        with self.cond:
            done, failed = self.counts()
            return {
                "schema_version": STATUS_SCHEMA,
                "job_id": self.job_id,
                "status": self.status,
                "error": self.error,
                "engine": self.spec.engine,
                "seed": self.spec.seed,
                "n_points": len(self.points),
                "completed": done,
                "failed": failed,
                "cache_hits": sum(1 for s in self.points.values()
                                  if s.source == "cache"),
                "burst_cache": dict(self.burst_stats),
                "points": [self.points[p].to_dict()
                           for p in self.spec.points],
            }

    def wait_payload(self, index, timeout=None):
        """Block until payload ``index`` exists or the job is terminal.

        Returns the payload string, or None when the job reached a
        terminal state without producing it (or ``timeout`` expired).
        """
        with self.cond:
            def ready():
                return len(self.payloads) > index or self.is_terminal()
            if not self.cond.wait_for(ready, timeout=timeout):
                return None
            if len(self.payloads) > index:
                return self.payloads[index]
            return None


__all__ = ["JobSpec", "JobRecord", "JobStatus", "PointState",
           "PENDING", "RUNNING", "COMPLETED", "FAILED", "CANCELLED",
           "TIMEOUT", "TERMINAL", "SPEC_SCHEMA", "STATUS_SCHEMA"]
