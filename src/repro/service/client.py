"""ServiceClient: the network implementation of the Transport API.

A synchronous, reconnecting client for :mod:`repro.service.net`.  It
speaks the newline-delimited JSON protocol over one TCP connection and
presents exactly the :class:`repro.service.Transport` surface, so CLI
verbs and user code are written once and run over either transport:

* **Timeouts** — ``connect_timeout`` bounds each TCP connect plus the
  hello handshake; ``request_timeout`` bounds each request/response
  round trip; ``stream_timeout`` bounds the gap between consecutive
  stream frames (a point may take arbitrarily long to *compute*, so
  this is deliberately the loosest bound).
* **Reconnect** — a failed connect or a dropped connection is retried
  with exponential backoff (``backoff * 2**attempt``), up to
  ``retries`` times per operation.
* **Resumable streaming** — :meth:`stream` tracks the index of the
  next payload it owes the caller; when the connection drops mid-
  stream it reconnects and re-issues the stream with ``from_index`` set
  to that index, so the server replays exactly the missing suffix —
  no lost points, no duplicates, byte-identical bytes.
* **Idempotent submit** — :meth:`submit` attaches a generated
  idempotency key (callers may pass their own), so a retried submit
  whose first response was swallowed by the network returns the
  existing job id instead of queueing the work twice.
"""

import json
import socket
import time
import uuid

from repro.service.jobs import COMPLETED
from repro.service.manager import ServiceError
from repro.service.net import (PROTO_VERSION, MAX_FRAME, ProtocolError,
                               encode_frame, decode_frame)

#: Errors that mean "the connection is gone, reconnect and retry".
_NET_ERRORS = (ConnectionError, BrokenPipeError, socket.timeout,
               TimeoutError, OSError)


class ServiceClient:
    """One server address, one (lazily opened, auto-healing) connection.

    Usable as a context manager; :meth:`close` is idempotent.
    """

    def __init__(self, host, port, connect_timeout=5.0,
                 request_timeout=120.0, stream_timeout=600.0,
                 retries=3, backoff=0.2, max_frame=MAX_FRAME):
        self.host = host
        self.port = int(port)
        self.connect_timeout = connect_timeout
        self.request_timeout = request_timeout
        self.stream_timeout = stream_timeout
        self.retries = max(0, int(retries))
        self.backoff = backoff
        self.max_frame = max_frame
        self._sock = None
        self._file = None
        self._ids = 0
        self.server_hello = None

    # -- connection --------------------------------------------------------

    def _connect_once(self):
        sock = socket.create_connection((self.host, self.port),
                                        timeout=self.connect_timeout)
        try:
            file = sock.makefile("rb")
            hello = self._read_frame_raw(file)
            if (hello.get("type") != "hello"
                    or hello.get("proto") != PROTO_VERSION):
                raise ProtocolError(
                    "server is not a proto-%d repro service: %r"
                    % (PROTO_VERSION, hello))
            sock.sendall(encode_frame({"type": "hello",
                                       "proto": PROTO_VERSION,
                                       "client": "repro-client"}))
        except BaseException:
            sock.close()
            raise
        self._sock, self._file = sock, file
        self.server_hello = hello

    def _ensure_connection(self):
        if self._sock is not None:
            return
        last = None
        for attempt in range(self.retries + 1):
            if attempt:
                time.sleep(self.backoff * (2 ** (attempt - 1)))
            try:
                self._connect_once()
                return
            except _NET_ERRORS as exc:
                last = exc
        raise ServiceError(
            "cannot connect to %s:%d after %d attempt(s): %s"
            % (self.host, self.port, self.retries + 1, last))

    def _drop_connection(self):
        for closer in (self._file, self._sock):
            if closer is not None:
                try:
                    closer.close()
                except OSError:
                    pass
        self._sock = self._file = None

    def close(self):
        self._drop_connection()

    def __enter__(self):
        return self

    def __exit__(self, *exc):
        self.close()

    # -- framing -----------------------------------------------------------

    def _read_frame_raw(self, file):
        line = file.readline(self.max_frame + 1)
        if not line:
            raise ConnectionError("server closed the connection")
        if len(line) > self.max_frame:
            raise ProtocolError("server frame exceeds %d bytes"
                               % self.max_frame)
        return decode_frame(line)

    def _send_frame(self, obj):
        self._sock.sendall(encode_frame(obj))

    def _read_frame(self, timeout):
        self._sock.settimeout(timeout)
        return self._read_frame_raw(self._file)

    # -- request/response --------------------------------------------------

    def _request(self, verb, _timeout=None, **params):
        """One round trip, with reconnect-and-retry on network failure.

        Only network failures are retried; an ``ok: false`` *response*
        is a server-side verdict (bad spec, unknown job, ...) and
        raises :class:`ServiceError` immediately.  ``_timeout``
        overrides the per-round-trip socket bound (``params`` are the
        wire fields, so the name avoids colliding with a verb's own
        ``timeout`` parameter).
        """
        timeout = self.request_timeout if _timeout is None else _timeout
        last = None
        for attempt in range(self.retries + 1):
            if attempt:
                time.sleep(self.backoff * (2 ** (attempt - 1)))
            try:
                self._ensure_connection()
                self._ids += 1
                rid = self._ids
                request = dict(params)
                request["id"] = rid
                request["verb"] = verb
                self._sock.settimeout(timeout)
                self._send_frame(request)
                response = self._read_frame(timeout)
                if response.get("id") != rid:
                    raise ProtocolError("response id %r != request id %r"
                                        % (response.get("id"), rid))
                if not response.get("ok"):
                    raise ServiceError(response.get("error",
                                                    "request failed"))
                return response
            except _NET_ERRORS as exc:
                last = exc
                self._drop_connection()
            except ServiceError:
                raise
        raise ServiceError("%s request to %s:%d failed after %d "
                           "attempt(s): %s" % (verb, self.host, self.port,
                                               self.retries + 1, last))

    # -- Transport surface -------------------------------------------------

    def submit(self, spec, idempotency_key=None):
        """Submit a :class:`JobSpec` (or its dict form); returns job id.

        Every submit carries an idempotency key (generated when the
        caller does not supply one), so the request-level retry above
        can never duplicate a job: a retried submit whose original
        reached the server returns the original job id.
        """
        payload = spec.to_dict() if hasattr(spec, "to_dict") else spec
        key = idempotency_key or uuid.uuid4().hex
        response = self._request("submit", spec=payload,
                                 idempotency_key=key)
        return response["job_id"]

    def status(self, job_id):
        return self._request("status", job_id=job_id)["status"]

    def results(self, job_id, timeout=None):
        """Block until the job is terminal; returns its payload list."""
        wire_timeout = (timeout + 10.0 if timeout is not None
                        else max(self.stream_timeout,
                                 self.request_timeout))
        response = self._request("results", _timeout=wire_timeout,
                                 job_id=job_id, wait=True,
                                 **({"timeout": timeout}
                                    if timeout is not None else {}))
        return list(response["payloads"])

    def payloads(self, job_id, from_index=0):
        """Non-blocking: payloads produced so far, from ``from_index``."""
        response = self._request("results", job_id=job_id, wait=False,
                                 from_index=from_index)
        return list(response["payloads"])

    def stream(self, job_id, from_index=0):
        """Yield payloads in completion order, resuming across drops.

        A dropped connection mid-stream reconnects with backoff and
        re-issues the stream from the next index still owed, so the
        caller sees every payload exactly once.  Raises
        :class:`ServiceError` when the job ends in a non-completed
        state (after yielding whatever completed first).
        """
        index = from_index
        attempt = 0
        while True:
            try:
                for frame in self._stream_once(job_id, index):
                    if frame.get("type") == "point":
                        if frame["index"] < index:
                            continue       # replayed overlap: drop dup
                        if frame["index"] > index:
                            raise ProtocolError(
                                "stream gap: expected index %d, got %d"
                                % (index, frame["index"]))
                        index += 1
                        attempt = 0        # progress resets the budget
                        yield frame["payload"]
                    else:                  # "end"
                        status = frame["status"]
                        if status["status"] != COMPLETED:
                            raise ServiceError(
                                "job %s %s%s"
                                % (job_id, status["status"],
                                   ": %s" % status["error"]
                                   if status.get("error") else ""))
                        return
            except _NET_ERRORS as exc:
                self._drop_connection()
                attempt += 1
                if attempt > self.retries:
                    raise ServiceError(
                        "stream of %s dropped %d time(s) without "
                        "progress: %s" % (job_id, attempt, exc))
                time.sleep(self.backoff * (2 ** (attempt - 1)))

    def _stream_once(self, job_id, from_index):
        """One stream attempt on one connection; yields raw frames."""
        self._ensure_connection()
        self._ids += 1
        rid = self._ids
        self._sock.settimeout(self.request_timeout)
        self._send_frame({"id": rid, "verb": "stream", "job_id": job_id,
                          "from_index": from_index})
        while True:
            frame = self._read_frame(self.stream_timeout)
            if frame.get("id") != rid:
                raise ProtocolError("stream frame for id %r, expected %r"
                                    % (frame.get("id"), rid))
            if not frame.get("type") and not frame.get("ok", True):
                raise ServiceError(frame.get("error", "stream refused"))
            yield frame
            if frame.get("type") == "end":
                return

    def cancel(self, job_id):
        return bool(self._request("cancel",
                                  job_id=job_id)["cancelled"])

    def jobs(self):
        return list(self._request("jobs")["jobs"])

    def stats(self):
        """Server-side metrics (connections, requests, bytes, resumes)."""
        return self._request("stats")["stats"]


def _payload_points(payloads):
    """(workload, scheme, n_contexts) keys of a payload list (debug aid)."""
    out = []
    for payload in payloads:
        d = json.loads(payload)
        out.append((d["workload"], d["scheme"], d["n_contexts"]))
    return out


__all__ = ["ServiceClient"]
