"""Network transport: an asyncio TCP front end over the job manager.

The paper hides long memory latencies behind ready contexts; the
service layer does the same at the job level, and this module removes
its last locality assumption — that clients share a filesystem with the
workers.  A :class:`ServiceServer` listens on a TCP socket and fronts
one :class:`~repro.service.manager.JobManager` with a newline-delimited
JSON protocol (the spool's JSON spec format *is* the wire format):

* **Framing** — one JSON object per ``\\n``-terminated line, UTF-8,
  at most :data:`MAX_FRAME` bytes.  An overlong line cannot be resynced
  (the frame boundary is lost), so the server answers with an error
  frame and closes that connection; a syntactically bad line inside an
  intact frame is *parked* — the server answers ``ok: false`` and keeps
  the connection, so one garbage request cannot wedge a client's
  pipeline.
* **Handshake** — the server greets with a versioned ``hello`` frame;
  the client must answer with its own ``hello`` carrying a matching
  ``proto`` before any request is accepted.
* **Verbs** — ``submit`` / ``status`` / ``results`` / ``stream`` /
  ``cancel`` / ``jobs`` / ``stats``.  Responses echo the request's
  ``id``.  ``stream`` is the only multi-frame response: one ``point``
  frame per payload (in completion order, each tagged with its index)
  followed by a terminal ``end`` frame carrying the job's final status.
  ``from_index`` starts the stream mid-job, so a reconnecting client
  replays exactly the missing suffix — the interleaving-independence
  contract (payloads derive from point *states* via one pure function)
  makes the replayed bytes identical no matter how deliveries
  interleave.
* **Idempotency** — a ``submit`` may carry a client-chosen
  ``idempotency_key``; retrying the same submit (e.g. after a dropped
  connection swallowed the response) returns the existing job id
  instead of duplicating the work.
* **Robustness** — per-connection read timeouts bound half-open peers;
  every failure path increments a counter in :class:`ServerStats`,
  which the ``stats`` verb (and ``benchmarks/bench_service.py``)
  exposes.
"""

import asyncio
import json
import threading

from repro.service import jobs as jobs_mod
from repro.service.jobs import JobSpec, COMPLETED
from repro.service.manager import ServiceError

#: Wire protocol version, carried in both hello frames.
PROTO_VERSION = 1

#: Hard per-frame byte bound (a full sweep spec is ~2 KiB; the largest
#: payload frame is a few KiB — 1 MiB is paranoia, not headroom).
MAX_FRAME = 1 << 20

#: Default per-connection read timeout (seconds): how long the server
#: waits for the next complete request line before hanging up.
DEFAULT_READ_TIMEOUT = 600.0

#: The verbs a connection may use after its hello.
VERBS = ("submit", "status", "results", "stream", "cancel", "jobs",
         "stats")


class ProtocolError(ValueError):
    """A frame violated the wire protocol (bad JSON, bad verb, ...)."""


def encode_frame(obj):
    """One wire frame: compact JSON + newline, as bytes."""
    return (json.dumps(obj, sort_keys=True,
                       separators=(",", ":")) + "\n").encode("utf-8")


def decode_frame(line):
    """Parse one received line; raises ProtocolError on garbage."""
    try:
        obj = json.loads(line.decode("utf-8"))
    except (ValueError, UnicodeDecodeError) as exc:
        raise ProtocolError("bad frame: %s" % exc)
    if not isinstance(obj, dict):
        raise ProtocolError("bad frame: expected a JSON object, got %s"
                            % type(obj).__name__)
    return obj


class ServerStats:
    """Monotonic server counters, exposed through the ``stats`` verb."""

    FIELDS = ("connections", "connections_open", "requests", "errors",
              "bytes_in", "bytes_out", "streams", "resumes",
              "submits", "idempotent_hits", "frames_out")

    def __init__(self):
        self._lock = threading.Lock()
        for name in self.FIELDS:
            setattr(self, name, 0)

    def add(self, name, n=1):
        with self._lock:
            setattr(self, name, getattr(self, name) + n)

    def snapshot(self):
        with self._lock:
            return {name: getattr(self, name) for name in self.FIELDS}


class ServiceServer:
    """TCP front end for one :class:`JobManager`.

    ``read_timeout`` bounds how long a connection may sit idle between
    requests; ``max_frame`` bounds one line.  ``port=0`` binds an
    ephemeral port (read it back from :attr:`port` after ``start``).

    ``_stream_drop_after`` is fault injection for the resume tests: the
    first ``_stream_drop_times`` stream requests abort their connection
    after that many point frames, exactly what a mid-stream network
    drop looks like from the client's side.
    """

    def __init__(self, manager, host="127.0.0.1", port=0,
                 read_timeout=DEFAULT_READ_TIMEOUT, max_frame=MAX_FRAME,
                 _stream_drop_after=None, _stream_drop_times=0):
        self.manager = manager
        self.host = host
        self.port = port
        self.read_timeout = read_timeout
        self.max_frame = max_frame
        self.stats = ServerStats()
        self._idempotency = {}         # key -> job_id
        self._idem_lock = threading.Lock()
        self._server = None
        self._loop = None
        self._thread = None
        self._stopped = None           # asyncio.Event, loop-owned
        self._conn_tasks = set()       # live _handle_connection tasks
        self._writers = set()          # their StreamWriters
        self._stream_drop_after = _stream_drop_after
        self._stream_drop_times = _stream_drop_times

    # -- lifecycle ---------------------------------------------------------

    async def start_async(self):
        """Bind the listening socket on the running event loop."""
        self._server = await asyncio.start_server(
            self._handle_connection, self.host, self.port,
            limit=self.max_frame)
        self.port = self._server.sockets[0].getsockname()[1]
        return self

    async def serve_async(self, max_seconds=None):
        """Run until :meth:`stop` (or ``max_seconds``); owns the loop."""
        await self.start_async()
        self._loop = asyncio.get_running_loop()
        self._stopped = asyncio.Event()
        try:
            if max_seconds is None:
                await self._stopped.wait()
            else:
                try:
                    await asyncio.wait_for(self._stopped.wait(),
                                           timeout=max_seconds)
                except asyncio.TimeoutError:
                    pass
        finally:
            await self.aclose()

    async def aclose(self):
        """Stop listening, then drain the open connections cleanly.

        Aborting each open transport makes every blocked ``readline``
        return EOF, so the handler tasks finish on their own instead of
        being cancelled mid-await when the event loop tears down.
        """
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None
        for writer in list(self._writers):
            transport = writer.transport
            if transport is not None:
                transport.abort()
        if self._conn_tasks:
            # A handler parked inside a blocking verb (stream of a
            # never-ending job) won't see the EOF; cancel those after
            # a short grace period — they catch the cancellation and
            # exit cleanly.
            done, pending = await asyncio.wait(list(self._conn_tasks),
                                               timeout=5.0)
            for task in pending:
                task.cancel()
            if pending:
                await asyncio.gather(*pending, return_exceptions=True)

    def serve(self, max_seconds=None, ready=None):
        """Blocking entry point (the ``serve --listen`` CLI verb).

        ``ready``, if given, is called with the server once the socket
        is bound (so callers can report the resolved port).
        """
        async def _main():
            await self.start_async()
            if ready is not None:
                ready(self)
            self._loop = asyncio.get_running_loop()
            self._stopped = asyncio.Event()
            try:
                if max_seconds is None:
                    await self._stopped.wait()
                else:
                    try:
                        await asyncio.wait_for(self._stopped.wait(),
                                               timeout=max_seconds)
                    except asyncio.TimeoutError:
                        pass
            finally:
                await self.aclose()
        asyncio.run(_main())

    def start(self):
        """Run the server on a background thread; returns (host, port).

        The thread owns a private event loop; :meth:`stop` shuts it
        down.  This is the embedding used by the tests and by
        ``serve --listen`` when it also polls a spool.
        """
        bound = threading.Event()
        def _ready(_server):
            bound.set()
        self._thread = threading.Thread(
            target=self.serve, kwargs={"ready": _ready},
            name="repro-service-net", daemon=True)
        self._thread.start()
        if not bound.wait(timeout=10.0):
            raise RuntimeError("server failed to bind %s:%s"
                               % (self.host, self.port))
        return self.host, self.port

    def stop(self, timeout=10.0):
        """Stop a :meth:`start`/:meth:`serve` loop from any thread."""
        loop, stopped = self._loop, self._stopped
        if loop is not None and stopped is not None:
            try:
                loop.call_soon_threadsafe(stopped.set)
            except RuntimeError:
                pass                   # loop already closed
        if self._thread is not None:
            self._thread.join(timeout=timeout)
            self._thread = None

    def __enter__(self):
        self.start()
        return self

    def __exit__(self, *exc):
        self.stop()

    # -- connection handling -----------------------------------------------

    async def _handle_connection(self, reader, writer):
        self.stats.add("connections")
        self.stats.add("connections_open")
        task = asyncio.current_task()
        self._conn_tasks.add(task)
        self._writers.add(writer)
        try:
            await self._send(writer, {
                "type": "hello", "server": "repro-service",
                "proto": PROTO_VERSION,
                "spec_schema": jobs_mod.SPEC_SCHEMA,
                "status_schema": jobs_mod.STATUS_SCHEMA,
            })
            if not await self._expect_hello(reader, writer):
                return
            while True:
                line = await self._read_line(reader, writer)
                if line is None:
                    return
                try:
                    request = decode_frame(line)
                except ProtocolError as exc:
                    # Frame boundary intact: park the request, keep
                    # the connection.
                    self.stats.add("errors")
                    await self._send(writer, {"ok": False,
                                              "error": str(exc)})
                    continue
                if not await self._dispatch(request, writer):
                    return
        except (ConnectionError, asyncio.IncompleteReadError, OSError):
            pass                       # peer went away mid-write
        except asyncio.CancelledError:
            return                     # event loop is tearing down
        finally:
            self._conn_tasks.discard(task)
            self._writers.discard(writer)
            self.stats.add("connections_open", -1)
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionError, OSError, asyncio.CancelledError):
                pass

    async def _read_line(self, reader, writer):
        """One complete line, or None when the connection should end."""
        try:
            line = await asyncio.wait_for(reader.readline(),
                                          timeout=self.read_timeout)
        except asyncio.TimeoutError:
            self.stats.add("errors")
            await self._send(writer, {
                "ok": False, "error": "read timeout: no request within "
                "%.1f s" % self.read_timeout})
            return None
        except ValueError:
            # Line exceeded max_frame: the boundary is lost, so the
            # stream cannot be resynced — refuse and hang up.
            self.stats.add("errors")
            await self._send(writer, {
                "ok": False,
                "error": "frame exceeds %d bytes" % self.max_frame})
            return None
        if not line:
            return None                # clean EOF
        self.stats.add("bytes_in", len(line))
        return line

    async def _expect_hello(self, reader, writer):
        line = await self._read_line(reader, writer)
        if line is None:
            return False
        try:
            hello = decode_frame(line)
        except ProtocolError as exc:
            self.stats.add("errors")
            await self._send(writer, {"ok": False, "error": str(exc)})
            return False
        if (hello.get("type") != "hello"
                or hello.get("proto") != PROTO_VERSION):
            self.stats.add("errors")
            await self._send(writer, {
                "ok": False,
                "error": "handshake must be a hello frame with proto "
                         "%d, got %r" % (PROTO_VERSION, hello)})
            return False
        return True

    async def _send(self, writer, obj):
        data = encode_frame(obj)
        writer.write(data)
        await writer.drain()
        self.stats.add("bytes_out", len(data))
        self.stats.add("frames_out")

    # -- verbs -------------------------------------------------------------

    async def _dispatch(self, request, writer):
        """Handle one request; returns False to close the connection."""
        self.stats.add("requests")
        rid = request.get("id")
        verb = request.get("verb")
        try:
            if verb not in VERBS:
                raise ProtocolError("unknown verb %r (expected one of "
                                    "%s)" % (verb, ", ".join(VERBS)))
            handler = getattr(self, "_verb_" + verb)
            return await handler(request, writer, rid)
        except _InjectedDrop:
            raise ConnectionResetError("injected stream drop")
        except (ProtocolError, ServiceError, KeyError, ValueError,
                TypeError) as exc:
            self.stats.add("errors")
            await self._send(writer, {
                "id": rid, "ok": False,
                "error": "%s: %s" % (type(exc).__name__, exc)})
            return True

    async def _verb_submit(self, request, writer, rid):
        spec = JobSpec.from_dict(request["spec"])
        key = request.get("idempotency_key")
        self.stats.add("submits")
        existing = None
        if key is not None:
            with self._idem_lock:
                existing = self._idempotency.get(key)
        if existing is not None:
            self.stats.add("idempotent_hits")
            await self._send(writer, {"id": rid, "ok": True,
                                      "job_id": existing,
                                      "existing": True})
            return True
        job_id = await asyncio.to_thread(self.manager.submit, spec)
        if key is not None:
            with self._idem_lock:
                self._idempotency[key] = job_id
        await self._send(writer, {"id": rid, "ok": True,
                                  "job_id": job_id, "existing": False})
        return True

    async def _verb_status(self, request, writer, rid):
        status = await asyncio.to_thread(self.manager.status,
                                         request["job_id"])
        await self._send(writer, {"id": rid, "ok": True,
                                  "status": status})
        return True

    async def _verb_results(self, request, writer, rid):
        job_id = request["job_id"]
        if request.get("wait", True):
            payloads = await asyncio.to_thread(
                self.manager.results, job_id, request.get("timeout"))
        else:
            payloads = await asyncio.to_thread(
                self.manager.payloads, job_id,
                int(request.get("from_index", 0)))
        await self._send(writer, {"id": rid, "ok": True,
                                  "payloads": payloads})
        return True

    async def _verb_stream(self, request, writer, rid):
        job_id = request["job_id"]
        index = int(request.get("from_index", 0))
        self.manager.status(job_id)    # KeyError now, not mid-stream
        self.stats.add("streams")
        if index > 0:
            self.stats.add("resumes")
        sent = 0
        while True:
            self._maybe_inject_drop(sent, writer)
            payload = await asyncio.to_thread(self.manager.wait_payload,
                                              job_id, index)
            if payload is None:
                break
            await self._send(writer, {"id": rid, "type": "point",
                                      "index": index,
                                      "payload": payload})
            index += 1
            sent += 1
        status = self.manager.status(job_id)
        await self._send(writer, {"id": rid, "type": "end",
                                  "ok": status["status"] == COMPLETED,
                                  "status": status})
        return True

    def _maybe_inject_drop(self, sent, writer):
        """Fault injection: abort the connection once ``sent`` point
        frames have gone out (``_stream_drop_after=0`` drops before any
        progress, exercising the client's retry-budget exhaustion)."""
        if (self._stream_drop_times > 0
                and self._stream_drop_after is not None
                and sent >= self._stream_drop_after):
            self._stream_drop_times -= 1
            transport = writer.transport
            if transport is not None:
                transport.abort()
            raise _InjectedDrop()

    async def _verb_cancel(self, request, writer, rid):
        cancelled = await asyncio.to_thread(self.manager.cancel,
                                            request["job_id"])
        await self._send(writer, {"id": rid, "ok": True,
                                  "cancelled": cancelled})
        return True

    async def _verb_jobs(self, request, writer, rid):
        await self._send(writer, {"id": rid, "ok": True,
                                  "jobs": self.manager.jobs()})
        return True

    async def _verb_stats(self, request, writer, rid):
        snapshot = self.stats.snapshot()
        snapshot["proto"] = PROTO_VERSION
        snapshot["jobs"] = len(self.manager.jobs())
        await self._send(writer, {"id": rid, "ok": True,
                                  "stats": snapshot})
        return True


class _InjectedDrop(Exception):
    """Internal: the fault-injection hook aborted a stream."""


def parse_address(text, default_host="127.0.0.1"):
    """``HOST:PORT`` / ``:PORT`` / ``PORT`` -> (host, port)."""
    text = str(text).strip()
    if ":" in text:
        host, _, port = text.rpartition(":")
        host = host or default_host
    else:
        host, port = default_host, text
    try:
        return host, int(port)
    except ValueError:
        raise ValueError("bad address %r (expected HOST:PORT)" % (text,))


__all__ = ["ServiceServer", "ServerStats", "ProtocolError",
           "parse_address", "encode_frame", "decode_frame",
           "PROTO_VERSION", "MAX_FRAME", "VERBS"]
