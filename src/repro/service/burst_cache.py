"""Cross-worker cache of compiled burst tables, keyed by program content.

Compiling a program's burst tables (:func:`repro.isa.segments.
build_burst_table`) is pure: the table depends only on the program's
instructions and the ``(short_stall_threshold, issue_width)`` schedule
key.  Sweep points that share a program — every scheme/context count of
one workload, every thread of one SPLASH app — therefore share their
tables, and a pool of worker processes can amortise the compile cost
through this on-disk cache instead of each recompiling from scratch
(the same warm-up amortisation argument as Durbhakula's simulation-
speedup line of work).

Keying and trust:

* the key is :func:`repro.analysis.program_fingerprint` — a content
  hash of the decoded instructions, entry point, and code base — plus
  the schedule key, so two structurally identical programs built by
  different workers share entries while any code difference misses;
* a loaded table is installed only after it passes the full static
  :func:`repro.analysis.audit_bursts` (which recomputes the maximal
  runs independently), so a stale, corrupt, or hand-edited entry is
  rejected and recompiled rather than trusted.

Writes are atomic (temp file + rename), matching
:class:`~repro.experiments.cache.ResultCache` semantics: two workers
racing to store the same table leave a valid entry.
"""

import json
import os
import pathlib
import tempfile

from repro.isa.segments import Burst

#: Bump when the serialised table layout changes.
BURST_CACHE_SCHEMA = 1

#: Default location (sibling of the result cache by convention).
BURST_CACHE_DIR_ENV = "REPRO_BURST_CACHE_DIR"
DEFAULT_BURST_CACHE_DIR = ".repro_burst_cache"


def default_burst_cache_dir():
    return os.environ.get(BURST_CACHE_DIR_ENV, DEFAULT_BURST_CACHE_DIR)


def burst_to_state(burst):
    """One Burst as a plain dict (instructions are carried by index)."""
    return {
        "start": burst.start,
        "n": burst.n,
        "duration": burst.duration,
        "width": burst.width,
        "short_stalls": burst.short_stalls,
        "long_stalls": burst.long_stalls,
        "guard": [list(p) for p in burst.guard],
        "writes_out": [list(p) for p in burst.writes_out],
    }


def burst_from_state(state, program):
    """Rebuild a Burst against ``program``'s own instruction objects."""
    start, n = state["start"], state["n"]
    instructions = tuple(program.instructions[start:start + n])
    if len(instructions) != n:
        raise ValueError("burst slice [%d:%d) outside the program"
                         % (start, start + n))
    return Burst(start, instructions, state["duration"],
                 state["short_stalls"], state["long_stalls"],
                 tuple((r, v) for r, v in state["guard"]),
                 tuple((r, v) for r, v in state["writes_out"]),
                 width=state["width"])


class BurstTableCache:
    """On-disk store of compiled burst tables under one directory.

    Layout: ``<root>/<fp[:2]>/<fp>-t<threshold>-w<width>.json``.
    ``load`` installs a validated table into the program's
    ``bursts_for`` memo; ``store`` persists any tables the program has
    already compiled.  Session counters (``hits``/``misses``/
    ``stores``/``rejected``) feed the service's job status and the
    service benchmark.
    """

    def __init__(self, root=None):
        self.root = pathlib.Path(root if root is not None
                                 else default_burst_cache_dir())
        self.hits = 0
        self.misses = 0
        self.stores = 0
        self.rejected = 0

    def _path(self, fingerprint, threshold, width):
        name = "%s-t%d-w%d.json" % (fingerprint, threshold, width)
        return self.root / fingerprint[:2] / name

    # -- read side ---------------------------------------------------------

    def load(self, program, threshold, width, fingerprint=None):
        """Install a cached table for ``(program, threshold, width)``.

        Returns True on a validated hit (the table is installed in the
        program's memo, so ``program.bursts_for`` returns it without
        compiling).  Any failure — missing entry, undecodable payload,
        shape mismatch, or an ``audit_bursts`` error finding — is a
        miss; a failing entry is deleted so the next ``store`` replaces
        it.
        """
        from repro.analysis import program_fingerprint, audit_bursts
        if fingerprint is None:
            fingerprint = program_fingerprint(program)
        path = self._path(fingerprint, threshold, width)
        try:
            payload = json.loads(path.read_text())
        except FileNotFoundError:
            self.misses += 1
            return False
        except (ValueError, UnicodeDecodeError, OSError):
            self._reject(path)
            return False
        key = (threshold, width)
        try:
            if (payload.get("schema") != BURST_CACHE_SCHEMA
                    or payload.get("fingerprint") != fingerprint
                    or payload.get("threshold") != threshold
                    or payload.get("width") != width
                    or payload.get("n_instructions")
                    != len(program.instructions)):
                raise ValueError("metadata mismatch")
            table = [None if entry is None
                     else burst_from_state(entry, program)
                     for entry in payload["table"]]
            if len(table) != len(program.instructions):
                raise ValueError("table length mismatch")
        except (ValueError, KeyError, TypeError, IndexError):
            self._reject(path)
            return False
        # Trust only after the full static audit (audit_bursts reads the
        # table back through bursts_for, so install first, purge on
        # failure).
        program._burst_tables[key] = table
        diags = audit_bursts(program, threshold, widths=(width,))
        if any(d.is_error for d in diags):
            del program._burst_tables[key]
            self._reject(path)
            return False
        self.hits += 1
        return True

    def _reject(self, path):
        self.rejected += 1
        self.misses += 1
        try:
            path.unlink()
        except OSError:
            pass

    # -- write side --------------------------------------------------------

    def store(self, program, threshold, width, fingerprint=None):
        """Persist the program's compiled ``(threshold, width)`` table.

        Compiles it first if the program has not already (idempotent;
        returns the entry path).
        """
        from repro.analysis import program_fingerprint
        if fingerprint is None:
            fingerprint = program_fingerprint(program)
        table = program.bursts_for(threshold, width)
        payload = {
            "schema": BURST_CACHE_SCHEMA,
            "fingerprint": fingerprint,
            "threshold": threshold,
            "width": width,
            "n_instructions": len(program.instructions),
            "program": program.name,
            "table": [None if b is None else burst_to_state(b)
                      for b in table],
        }
        path = self._path(fingerprint, threshold, width)
        path.parent.mkdir(parents=True, exist_ok=True)
        fd, tmp = tempfile.mkstemp(dir=str(path.parent), suffix=".tmp")
        try:
            with os.fdopen(fd, "w") as fh:
                json.dump(payload, fh, sort_keys=True)
            os.replace(tmp, path)
        except BaseException:
            try:
                os.unlink(tmp)
            except OSError:
                pass
            raise
        self.stores += 1
        return path

    def on_compiled(self, program, threshold, width):
        """Program.burst_provider hook: persist a freshly compiled table."""
        self.store(program, threshold, width)

    def store_compiled(self, program):
        """Persist every table ``program`` compiled this run."""
        from repro.analysis import program_fingerprint
        fingerprint = program_fingerprint(program)
        for threshold, width in sorted(program._burst_tables):
            self.store(program, threshold, width, fingerprint=fingerprint)

    # -- bookkeeping -------------------------------------------------------

    def session_stats(self):
        return {"hits": self.hits, "misses": self.misses,
                "stores": self.stores, "rejected": self.rejected}

    def entry_count(self):
        if not self.root.is_dir():
            return 0
        return sum(1 for _ in self.root.glob("*/*.json"))


__all__ = ["BurstTableCache", "burst_to_state", "burst_from_state",
           "BURST_CACHE_SCHEMA", "default_burst_cache_dir"]
