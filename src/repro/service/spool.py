"""File-based job transport behind the serve/submit/jobs CLI verbs.

The spool is a directory two processes share:

* ``<root>/queue/<id>.json`` — submitted specs waiting for a server
  (written atomically by ``repro-experiments submit``);
* ``<root>/jobs/<id>/spec.json`` — the claimed spec (the server moves
  it out of the queue when it accepts the job);
* ``<root>/jobs/<id>/status.json`` — the job's latest status snapshot,
  rewritten as points complete;
* ``<root>/jobs/<id>/results.jsonl`` — one ``RunResult.to_json``
  payload per line, appended in completion order.

``repro-experiments serve`` runs :func:`serve_forever`: a
:class:`~repro.service.manager.JobManager` plus a polling loop that
claims queued specs, mirrors job status back into the spool, and
appends payloads as they stream.  ``--once`` drains the current queue
and exits when every claimed job is terminal (the CI smoke lane).
``repro-experiments jobs`` reads only the spool — it works whether or
not a server is currently up.
"""

import hashlib
import json
import os
import pathlib
import tempfile
import time

from repro.service.jobs import JobSpec, COMPLETED, TERMINAL

#: Default spool location (override with --spool).
SPOOL_DIR_ENV = "REPRO_SPOOL_DIR"
DEFAULT_SPOOL_DIR = ".repro_spool"

#: Claim markers older than this (seconds) are presumed orphaned by a
#: submitter that died between claiming an id and writing its spec;
#: :func:`serve_forever` sweeps them so the id pool self-heals.
CLAIM_MAX_AGE = 60.0


def default_spool_dir():
    return os.environ.get(SPOOL_DIR_ENV, DEFAULT_SPOOL_DIR)


def _write_json(path, payload):
    """Atomic JSON write (temp + rename), like every cache in the repo."""
    path.parent.mkdir(parents=True, exist_ok=True)
    fd, tmp = tempfile.mkstemp(dir=str(path.parent), suffix=".tmp")
    try:
        with os.fdopen(fd, "w") as fh:
            json.dump(payload, fh, sort_keys=True, indent=1)
        os.replace(tmp, path)
    except BaseException:
        try:
            os.unlink(tmp)
        except OSError:
            pass
        raise


class Spool:
    """One spool directory: submit side and serve side."""

    def __init__(self, root=None):
        self.root = pathlib.Path(root if root is not None
                                 else default_spool_dir())
        self.queue_dir = self.root / "queue"
        self.jobs_dir = self.root / "jobs"

    # -- submit side -------------------------------------------------------

    def _new_id(self):
        """Allocate the next free job id (O_EXCL claims it atomically)."""
        self.queue_dir.mkdir(parents=True, exist_ok=True)
        taken = set()
        for d in (self.queue_dir, self.jobs_dir):
            if d.is_dir():
                taken.update(p.stem if p.is_file() else p.name
                             for p in d.iterdir())
        n = len(taken) + 1
        while True:
            job_id = "sj-%05d" % n
            if job_id not in taken:
                # Claim via a separate marker so the server never sees
                # a half-written spec in its *.json scan.
                try:
                    fd = os.open(str(self.queue_dir / (job_id + ".claim")),
                                 os.O_CREAT | os.O_EXCL | os.O_WRONLY)
                except FileExistsError:
                    n += 1
                    continue
                os.close(fd)
                return job_id
            n += 1

    def submit(self, spec):
        """Queue a spec for the server; returns the spool job id."""
        job_id = self._new_id()
        _write_json(self.queue_dir / (job_id + ".json"), spec.to_dict())
        try:
            os.unlink(str(self.queue_dir / (job_id + ".claim")))
        except OSError:
            pass
        return job_id

    def sweep_stale_claims(self, max_age=CLAIM_MAX_AGE):
        """Remove orphaned ``*.claim`` markers; returns how many.

        A submitter that dies between ``_new_id``'s O_EXCL claim and
        the spec write (or between the write and the unlink) strands a
        marker, permanently retiring that id from the allocator.  Any
        marker older than ``max_age`` whose spec never appeared is such
        an orphan — a live submit holds its marker for milliseconds.
        """
        if not self.queue_dir.is_dir():
            return 0
        now = time.time()
        swept = 0
        for marker in self.queue_dir.glob("*.claim"):
            try:
                age = now - marker.stat().st_mtime
            except OSError:
                continue               # unlinked under us: not stale
            if age < max_age:
                continue
            # Either the spec was written (the *.json stem keeps the id
            # taken) or the submitter died (the id should return to the
            # pool): the marker is safe to drop in both cases.
            try:
                marker.unlink()
                swept += 1
            except OSError:
                pass
        return swept

    # -- serve side --------------------------------------------------------

    def pending(self):
        """Queued (job_id, path) pairs, oldest id first."""
        if not self.queue_dir.is_dir():
            return []
        return sorted((p.stem, p) for p in self.queue_dir.glob("*.json"))

    def claim(self, job_id, path):
        """Move a queued spec into the job's directory; returns the spec.

        Returns None when the payload is unusable (the file is parked
        as ``spec.rejected.json`` with a status explaining why, so a
        bad submission cannot wedge the queue).
        """
        job_dir = self.jobs_dir / job_id
        job_dir.mkdir(parents=True, exist_ok=True)
        try:
            payload = json.loads(path.read_text())
            spec = JobSpec.from_dict(payload)
        except (ValueError, KeyError, TypeError) as exc:
            os.replace(path, job_dir / "spec.rejected.json")
            self.write_status(job_id, {
                "job_id": job_id, "status": "failed",
                "error": "unreadable job spec: %s" % exc})
            return None
        os.replace(path, job_dir / "spec.json")
        return spec

    def write_status(self, job_id, snapshot):
        payload = dict(snapshot)
        payload["job_id"] = job_id
        _write_json(self.jobs_dir / job_id / "status.json", payload)

    def append_results(self, job_id, payloads):
        if not payloads:
            return
        path = self.jobs_dir / job_id / "results.jsonl"
        path.parent.mkdir(parents=True, exist_ok=True)
        with path.open("a") as fh:
            for payload in payloads:
                fh.write(payload)
                fh.write("\n")

    # -- read side (jobs verb) ---------------------------------------------

    def read_status(self, job_id):
        path = self.jobs_dir / job_id / "status.json"
        try:
            return json.loads(path.read_text())
        except FileNotFoundError:
            return None
        except (ValueError, OSError):
            return {"job_id": job_id, "status": "unreadable"}

    def read_results(self, job_id):
        path = self.jobs_dir / job_id / "results.jsonl"
        try:
            lines = path.read_text().splitlines()
        except (FileNotFoundError, OSError):
            return []
        return [line for line in lines if line]

    def list_jobs(self):
        """Status snapshots of every job: queued first, then claimed."""
        out = []
        for job_id, _path in self.pending():
            out.append({"job_id": job_id, "status": "queued"})
        if self.jobs_dir.is_dir():
            for job_dir in sorted(self.jobs_dir.iterdir()):
                status = self.read_status(job_dir.name)
                if status is not None:
                    out.append(status)
        return out

    # -- cancellation markers ----------------------------------------------

    def request_cancel(self, job_id):
        """Ask the serving process to cancel a claimed job."""
        path = self.jobs_dir / job_id / "cancel.request"
        path.parent.mkdir(parents=True, exist_ok=True)
        path.touch()

    def cancel_requested(self, job_id):
        return (self.jobs_dir / job_id / "cancel.request").exists()

    def clear_cancel(self, job_id):
        try:
            os.unlink(str(self.jobs_dir / job_id / "cancel.request"))
        except OSError:
            pass

    # -- idempotency keys --------------------------------------------------

    def _idem_path(self, key):
        digest = hashlib.sha256(key.encode("utf-8")).hexdigest()[:32]
        return self.root / "idem" / (digest + ".json")

    def recall_submission(self, key):
        """The job id previously recorded for ``key``, if any."""
        try:
            return json.loads(
                self._idem_path(key).read_text())["job_id"]
        except (OSError, ValueError, KeyError):
            return None

    def record_submission(self, key, job_id):
        _write_json(self._idem_path(key), {"key": key, "job_id": job_id})


def serve_forever(spool, manager, once=False, poll=0.2, max_seconds=None,
                  claim_max_age=CLAIM_MAX_AGE):
    """Claim queued specs, run them, mirror progress into the spool.

    ``once`` exits when the queue is empty and every claimed job is
    terminal (CI smoke lane); ``max_seconds`` is a hard wall-clock stop
    for the loop itself.  Each pass also sweeps orphaned ``*.claim``
    markers older than ``claim_max_age`` (a submitter that died mid-
    submit) and honours client ``cancel.request`` markers.  Returns the
    number of jobs served.
    """
    live = {}        # spool id -> (manager id, payloads written)
    served = 0
    t0 = time.monotonic()
    last_sweep = 0.0
    try:
        while True:
            now = time.monotonic()
            if now - last_sweep >= min(claim_max_age, 5.0):
                spool.sweep_stale_claims(max_age=claim_max_age)
                last_sweep = now
            for job_id, path in spool.pending():
                spec = spool.claim(job_id, path)
                if spec is None:
                    continue
                live[job_id] = [manager.submit(spec), 0]
                served += 1
            for job_id, (mid, n_sent) in list(live.items()):
                if spool.cancel_requested(job_id):
                    manager.cancel(mid)
                    spool.clear_cancel(job_id)
                fresh = manager.payloads(mid, start=n_sent)
                spool.append_results(job_id, fresh)
                live[job_id][1] = n_sent + len(fresh)
                status = manager.status(mid)
                spool.write_status(job_id, status)
                if status["status"] in TERMINAL:
                    del live[job_id]
            if once and not live and not spool.pending():
                return served
            if (max_seconds is not None
                    and time.monotonic() - t0 > max_seconds):
                return served
            time.sleep(poll)
    finally:
        manager.shutdown(wait=True)


class SpoolTransport:
    """The filesystem implementation of the Transport API.

    Wraps a :class:`Spool` so CLI verbs and user code written against
    :class:`repro.service.Transport` run unchanged over a shared
    directory (this class) or a TCP connection
    (:class:`repro.service.client.ServiceClient`).  Blocking calls
    (``results``, ``stream``) poll the spool files a serving process
    rewrites; ``cancel`` drops a marker that :func:`serve_forever`
    honours.
    """

    def __init__(self, root=None, poll=0.1):
        self.spool = root if isinstance(root, Spool) else Spool(root)
        self.poll = poll

    @property
    def root(self):
        return self.spool.root

    def submit(self, spec, idempotency_key=None):
        """Queue a spec; returns its job id.

        With an ``idempotency_key``, a repeated submit returns the job
        id recorded for that key instead of queueing the work again.
        """
        if isinstance(spec, dict):
            spec = JobSpec.from_dict(spec)
        if idempotency_key is not None:
            existing = self.spool.recall_submission(idempotency_key)
            if existing is not None:
                return existing
        job_id = self.spool.submit(spec)
        if idempotency_key is not None:
            self.spool.record_submission(idempotency_key, job_id)
        return job_id

    def status(self, job_id):
        status = self.spool.read_status(job_id)
        if status is not None:
            return status
        if any(jid == job_id for jid, _ in self.spool.pending()):
            return {"job_id": job_id, "status": "queued"}
        if (self.spool.jobs_dir / job_id / "spec.json").exists():
            # Claimed but the server has not written status.json yet.
            return {"job_id": job_id, "status": "claimed"}
        raise KeyError("unknown job id %r under %s"
                       % (job_id, self.spool.root))

    def _wait_terminal(self, job_id, timeout):
        from repro.service.manager import ServiceError
        deadline = (time.monotonic() + timeout
                    if timeout is not None else None)
        while True:
            status = self.status(job_id)
            if status.get("status") in TERMINAL:
                return status
            if deadline is not None and time.monotonic() > deadline:
                raise ServiceError(
                    "job %s still %s after %.1f s"
                    % (job_id, status.get("status"), timeout))
            time.sleep(self.poll)

    def results(self, job_id, timeout=None):
        """Block until the job completes; returns its payload list."""
        from repro.service.manager import ServiceError
        status = self._wait_terminal(job_id, timeout)
        if status.get("status") != COMPLETED:
            raise ServiceError(
                "job %s %s%s" % (job_id, status.get("status"),
                                 ": %s" % status["error"]
                                 if status.get("error") else ""))
        return self.spool.read_results(job_id)

    def payloads(self, job_id, from_index=0):
        """Non-blocking: payloads appended so far, from ``from_index``."""
        return self.spool.read_results(job_id)[from_index:]

    def stream(self, job_id, from_index=0):
        """Yield payloads as the serving process appends them."""
        from repro.service.manager import ServiceError
        index = from_index
        while True:
            lines = self.spool.read_results(job_id)
            while index < len(lines):
                yield lines[index]
                index += 1
            status = self.status(job_id)
            if status.get("status") in TERMINAL:
                # Drain the window between the last status write and
                # the last results append.
                for line in self.spool.read_results(job_id)[index:]:
                    yield line
                if status.get("status") != COMPLETED:
                    raise ServiceError("job %s %s"
                                       % (job_id, status.get("status")))
                return
            time.sleep(self.poll)

    def cancel(self, job_id, timeout=30.0):
        """Cancel a queued or claimed job; True when it ends cancelled.

        A still-queued spec is withdrawn directly; a claimed job gets a
        ``cancel.request`` marker and this call waits (bounded by
        ``timeout``) for the serving process to acknowledge it.
        """
        from repro.service.manager import ServiceError
        for jid, path in self.spool.pending():
            if jid == job_id:
                try:
                    os.unlink(str(path))
                except OSError:
                    return False
                self.spool.write_status(job_id, {
                    "job_id": job_id, "status": "cancelled",
                    "error": "cancelled before a server claimed it"})
                return True
        status = self.status(job_id)
        if status.get("status") in TERMINAL:
            return False
        self.spool.request_cancel(job_id)
        try:
            status = self._wait_terminal(job_id, timeout)
        except ServiceError:
            return False
        return status.get("status") == "cancelled"

    def jobs(self):
        return self.spool.list_jobs()

    def close(self):
        """Nothing to release; exists for Transport symmetry."""

    def __enter__(self):
        return self

    def __exit__(self, *exc):
        self.close()


__all__ = ["Spool", "SpoolTransport", "serve_forever",
           "default_spool_dir", "SPOOL_DIR_ENV", "DEFAULT_SPOOL_DIR",
           "CLAIM_MAX_AGE"]
