"""File-based job transport behind the serve/submit/jobs CLI verbs.

The spool is a directory two processes share:

* ``<root>/queue/<id>.json`` — submitted specs waiting for a server
  (written atomically by ``repro-experiments submit``);
* ``<root>/jobs/<id>/spec.json`` — the claimed spec (the server moves
  it out of the queue when it accepts the job);
* ``<root>/jobs/<id>/status.json`` — the job's latest status snapshot,
  rewritten as points complete;
* ``<root>/jobs/<id>/results.jsonl`` — one ``RunResult.to_json``
  payload per line, appended in completion order.

``repro-experiments serve`` runs :func:`serve_forever`: a
:class:`~repro.service.manager.JobManager` plus a polling loop that
claims queued specs, mirrors job status back into the spool, and
appends payloads as they stream.  ``--once`` drains the current queue
and exits when every claimed job is terminal (the CI smoke lane).
``repro-experiments jobs`` reads only the spool — it works whether or
not a server is currently up.
"""

import json
import os
import pathlib
import tempfile
import time

from repro.service.jobs import JobSpec, TERMINAL

#: Default spool location (override with --spool).
SPOOL_DIR_ENV = "REPRO_SPOOL_DIR"
DEFAULT_SPOOL_DIR = ".repro_spool"


def default_spool_dir():
    return os.environ.get(SPOOL_DIR_ENV, DEFAULT_SPOOL_DIR)


def _write_json(path, payload):
    """Atomic JSON write (temp + rename), like every cache in the repo."""
    path.parent.mkdir(parents=True, exist_ok=True)
    fd, tmp = tempfile.mkstemp(dir=str(path.parent), suffix=".tmp")
    try:
        with os.fdopen(fd, "w") as fh:
            json.dump(payload, fh, sort_keys=True, indent=1)
        os.replace(tmp, path)
    except BaseException:
        try:
            os.unlink(tmp)
        except OSError:
            pass
        raise


class Spool:
    """One spool directory: submit side and serve side."""

    def __init__(self, root=None):
        self.root = pathlib.Path(root if root is not None
                                 else default_spool_dir())
        self.queue_dir = self.root / "queue"
        self.jobs_dir = self.root / "jobs"

    # -- submit side -------------------------------------------------------

    def _new_id(self):
        """Allocate the next free job id (O_EXCL claims it atomically)."""
        self.queue_dir.mkdir(parents=True, exist_ok=True)
        taken = set()
        for d in (self.queue_dir, self.jobs_dir):
            if d.is_dir():
                taken.update(p.stem if p.is_file() else p.name
                             for p in d.iterdir())
        n = len(taken) + 1
        while True:
            job_id = "sj-%05d" % n
            if job_id not in taken:
                # Claim via a separate marker so the server never sees
                # a half-written spec in its *.json scan.
                try:
                    fd = os.open(str(self.queue_dir / (job_id + ".claim")),
                                 os.O_CREAT | os.O_EXCL | os.O_WRONLY)
                except FileExistsError:
                    n += 1
                    continue
                os.close(fd)
                return job_id
            n += 1

    def submit(self, spec):
        """Queue a spec for the server; returns the spool job id."""
        job_id = self._new_id()
        _write_json(self.queue_dir / (job_id + ".json"), spec.to_dict())
        try:
            os.unlink(str(self.queue_dir / (job_id + ".claim")))
        except OSError:
            pass
        return job_id

    # -- serve side --------------------------------------------------------

    def pending(self):
        """Queued (job_id, path) pairs, oldest id first."""
        if not self.queue_dir.is_dir():
            return []
        return sorted((p.stem, p) for p in self.queue_dir.glob("*.json"))

    def claim(self, job_id, path):
        """Move a queued spec into the job's directory; returns the spec.

        Returns None when the payload is unusable (the file is parked
        as ``spec.rejected.json`` with a status explaining why, so a
        bad submission cannot wedge the queue).
        """
        job_dir = self.jobs_dir / job_id
        job_dir.mkdir(parents=True, exist_ok=True)
        try:
            payload = json.loads(path.read_text())
            spec = JobSpec.from_dict(payload)
        except (ValueError, KeyError, TypeError) as exc:
            os.replace(path, job_dir / "spec.rejected.json")
            self.write_status(job_id, {
                "job_id": job_id, "status": "failed",
                "error": "unreadable job spec: %s" % exc})
            return None
        os.replace(path, job_dir / "spec.json")
        return spec

    def write_status(self, job_id, snapshot):
        payload = dict(snapshot)
        payload["job_id"] = job_id
        _write_json(self.jobs_dir / job_id / "status.json", payload)

    def append_results(self, job_id, payloads):
        if not payloads:
            return
        path = self.jobs_dir / job_id / "results.jsonl"
        path.parent.mkdir(parents=True, exist_ok=True)
        with path.open("a") as fh:
            for payload in payloads:
                fh.write(payload)
                fh.write("\n")

    # -- read side (jobs verb) ---------------------------------------------

    def read_status(self, job_id):
        path = self.jobs_dir / job_id / "status.json"
        try:
            return json.loads(path.read_text())
        except FileNotFoundError:
            return None
        except (ValueError, OSError):
            return {"job_id": job_id, "status": "unreadable"}

    def read_results(self, job_id):
        path = self.jobs_dir / job_id / "results.jsonl"
        try:
            lines = path.read_text().splitlines()
        except (FileNotFoundError, OSError):
            return []
        return [line for line in lines if line]

    def list_jobs(self):
        """Status snapshots of every job: queued first, then claimed."""
        out = []
        for job_id, _path in self.pending():
            out.append({"job_id": job_id, "status": "queued"})
        if self.jobs_dir.is_dir():
            for job_dir in sorted(self.jobs_dir.iterdir()):
                status = self.read_status(job_dir.name)
                if status is not None:
                    out.append(status)
        return out


def serve_forever(spool, manager, once=False, poll=0.2, max_seconds=None):
    """Claim queued specs, run them, mirror progress into the spool.

    ``once`` exits when the queue is empty and every claimed job is
    terminal (CI smoke lane); ``max_seconds`` is a hard wall-clock stop
    for the loop itself.  Returns the number of jobs served.
    """
    live = {}        # spool id -> (manager id, payloads written)
    served = 0
    t0 = time.monotonic()
    try:
        while True:
            for job_id, path in spool.pending():
                spec = spool.claim(job_id, path)
                if spec is None:
                    continue
                live[job_id] = [manager.submit(spec), 0]
                served += 1
            for job_id, (mid, n_sent) in list(live.items()):
                fresh = manager.payloads(mid, start=n_sent)
                spool.append_results(job_id, fresh)
                live[job_id][1] = n_sent + len(fresh)
                status = manager.status(mid)
                spool.write_status(job_id, status)
                if status["status"] in TERMINAL:
                    del live[job_id]
            if once and not live and not spool.pending():
                return served
            if (max_seconds is not None
                    and time.monotonic() - t0 > max_seconds):
                return served
            time.sleep(poll)
    finally:
        manager.shutdown(wait=True)


__all__ = ["Spool", "serve_forever", "default_spool_dir",
           "SPOOL_DIR_ENV", "DEFAULT_SPOOL_DIR"]
