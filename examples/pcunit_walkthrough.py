#!/usr/bin/env python
"""Walk the Figure 12 interleaved PC unit through the paper's scenarios.

Drives the behavioural model of the interleaved program-counter unit
(Section 6.3) through a round-robin issue sequence, a branch mispredict
with its BTB-update-on-drive behaviour, and a cache-miss squash/restart,
printing the PC bus traffic at each step.

Run:  python examples/pcunit_walkthrough.py
"""

from repro.pipeline.pcunit import InterleavedPCUnit


def show(step, pcu, note):
    cid, pc = pcu.bus_history[-1]
    print("  %2d. ctx%d drives 0x%04x   %s" % (step, cid, pc, note))


def main():
    print(__doc__)
    pcu = InterleavedPCUnit(2, reset_pcs=[0x100, 0x500])

    print("Round-robin issue (each context's NPC advances separately):")
    pcu.issue(0)
    show(1, pcu, "context 0's first fetch")
    pcu.issue(1)
    show(2, pcu, "context 1 interleaved")
    pcu.issue(0)
    show(3, pcu, "sequential flow per context")

    print("\nBranch mispredict (computed target beats predicted):")
    pcu.issue(1)
    show(4, pcu, "context 1 fetches a branch")
    pcu.load_predicted(1, 0x600)
    pcu.mispredict(1, 0x700)
    print("      -> squash signal broadcast for CID %d"
          % pcu.squashes[-1])
    pcu.issue(0)
    show(5, pcu, "context 0 unaffected by the squash")
    pcu.issue(1)
    show(6, pcu, "computed target drives the bus")
    print("      -> BTB update requested: %s"
          % (pcu.btb_updates[-1],))

    print("\nCache miss: squash by CID and restart from the EPC:")
    pcu.issue(0)
    show(7, pcu, "this load will miss")
    miss_pc = pcu.bus_history[-1][1]
    pcu.make_unavailable(0, miss_pc)
    print("      -> context 0 unavailable, EPC=0x%04x" % miss_pc)
    pcu.issue(1)
    show(8, pcu, "context 1 keeps the pipeline busy")
    pcu.issue(1)
    show(9, pcu, "...")
    pcu.issue(0)
    show(10, pcu, "fill done: context 0 re-executes the load")
    assert pcu.bus_history[-1][1] == miss_pc


if __name__ == "__main__":
    main()
