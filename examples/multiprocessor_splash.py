#!/usr/bin/env python
"""The paper's multiprocessor experiment on two contrasting applications.

Runs the Ocean stand-in (nearest-neighbour stencil: lots of short
pipeline dependencies, the blocked scheme's weakness) and the Cholesky
stand-in (a serial column chain: no exploitable parallelism, so *nothing*
helps) on a 4-node DASH-like directory-coherent machine.

Run:  python examples/multiprocessor_splash.py
"""

from repro.api import Simulation
from repro.config import MultiprocessorParams

N_NODES = 4
APPS = ("ocean", "cholesky")
CONFIGS = (("single", 1), ("blocked", 4), ("interleaved", 4))


def main():
    print(__doc__)
    params = MultiprocessorParams(n_nodes=N_NODES)
    for app_name in APPS:
        print("== %s on %d nodes ==" % (app_name, N_NODES))
        base_cycles = None
        for scheme, n_contexts in CONFIGS:
            simulation = Simulation.from_config(
                params, scheme=scheme,
                n_contexts=n_contexts).load(app_name)
            result = simulation.run()
            assert result.completed
            if base_cycles is None:
                base_cycles = result.cycles
            bd = result.breakdown
            print("  %-12s %d ctx: %7d cycles  speedup %.2fx  "
                  "busy %2.0f%%  mem %2.0f%%  sync %2.0f%%  switch %2.0f%%"
                  % (scheme, n_contexts, result.cycles,
                     base_cycles / result.cycles,
                     100 * bd["busy"], 100 * bd["memory"],
                     100 * bd["synchronization"],
                     100 * bd["context_switch"]))
        machine = simulation.simulator.machine
        print("  protocol: %d read misses, %d write misses, "
              "%d upgrades, %d invalidations, %d cache-to-cache"
              % (machine.read_misses, machine.write_misses,
                 machine.upgrades, machine.invalidations_sent,
                 machine.dirty_remote_services))
        print()


if __name__ == "__main__":
    main()
