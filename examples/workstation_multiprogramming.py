#!/usr/bin/env python
"""The paper's workstation experiment on one workload, end to end.

Runs the DC (data-cache stressing) multiprogrammed workload — cfft2d,
gmtry, tomcatv, vpenta — under the single-context baseline, the blocked
scheme, and the interleaved scheme, with the full OS model (time slices,
affinity, scheduler cache pollution), and prints the fair-share
throughput and utilisation breakdown of each configuration.

Run:  python examples/workstation_multiprogramming.py
"""

from repro.config import SystemConfig
from repro.experiments.runner import ExperimentContext
from repro.experiments.report import render_stacked_bars

WORKLOAD = "DC"
CONFIGS = (("single", 1), ("blocked", 2), ("interleaved", 2),
           ("blocked", 4), ("interleaved", 4))


def main():
    print(__doc__)
    ctx = ExperimentContext(config=SystemConfig.fast(),
                            warmup=20_000, measure=80_000)
    base = ctx.normalized_throughput(WORKLOAD, "single", 1)
    bars = []
    print("%-22s %12s %12s" % ("configuration", "throughput",
                               "vs 1 ctx"))
    for scheme, n in CONFIGS:
        tp = ctx.normalized_throughput(WORKLOAD, scheme, n)
        run = ctx.uniproc_run(WORKLOAD, scheme, n)
        bars.append(("%s %d ctx" % (scheme, n),
                     run.result.stats.breakdown_fractions()))
        print("%-22s %12.2f %+11.0f%%"
              % ("%s, %d contexts" % (scheme, n), tp,
                 100 * (tp / base - 1)))
    print()
    print(render_stacked_bars(
        "Where the cycles went (workload %s)" % WORKLOAD, bars))
    print()
    print("Per-application instruction counts (interleaved, 4 ctx):")
    run = ctx.uniproc_run(WORKLOAD, "interleaved", 4)
    for name, retired in sorted(run.result.per_process.items()):
        print("  %-14s %8d instructions" % (name, retired))


if __name__ == "__main__":
    main()
