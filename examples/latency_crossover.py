#!/usr/bin/env python
"""The workstation-vs-multiprocessor crossover, in one picture.

Sweeps the memory latency from workstation-short to multiprocessor-long
and plots (ASCII) the throughput gain of the blocked and interleaved
schemes.  This is the paper's core argument: the blocked scheme needs
latencies much longer than its 7-cycle switch cost, so it only pays off
on multiprocessors; the interleaved scheme's 1-3 cycle cost pays off
everywhere.

Run:  python examples/latency_crossover.py   (about a minute)
"""

from repro.config import SystemConfig
from repro.experiments.runner import ExperimentContext

SCALES = (0.5, 1.0, 2.0, 4.0, 8.0)
WORKLOAD = "DC"


def gain(config, scheme):
    ctx = ExperimentContext(config=config, warmup=15_000,
                            measure=60_000)
    base = ctx.normalized_throughput(WORKLOAD, "single", 1)
    return ctx.normalized_throughput(WORKLOAD, scheme, 4) / base


def bar(value, lo=0.9, hi=2.6, width=40):
    n = int(round(width * (value - lo) / (hi - lo)))
    return "#" * max(0, min(width, n))


def main():
    print(__doc__)
    print("%-18s %-9s %s" % ("memory latency", "gain", ""))
    for scale in SCALES:
        cfg = SystemConfig.fast().with_memory(
            l2_hit_latency=max(3, int(9 * scale)),
            memory_latency=max(8, int(34 * scale)))
        for scheme in ("blocked", "interleaved"):
            g = gain(cfg, scheme)
            label = "L2=%2d mem=%3d" % (cfg.memory.l2_hit_latency,
                                        cfg.memory.memory_latency)
            print("%-18s %-12s %5.2fx |%s" % (
                label if scheme == "blocked" else "",
                scheme, g, bar(g)))
        print()
    print("Short latencies (top): only interleaving gains — the")
    print("workstation regime.  Long latencies (bottom): both schemes")
    print("gain — the multiprocessor regime the blocked scheme was")
    print("designed for.")


if __name__ == "__main__":
    main()
