#!/usr/bin/env python
"""Write your own kernel and measure backoff hints, like a compiler would.

Builds a divide-heavy kernel twice — with and without BACKOFF hints after
the FP divides — and shows how the hint changes throughput for the
interleaved and blocked schemes (paper Table 4: backoff costs 1 cycle on
the interleaved processor, the explicit switch 3 on the blocked one).

Run:  python examples/custom_kernel.py
"""

from repro.isa import AsmBuilder
from repro.isa.executor import Memory
from repro.config import SystemConfig
from repro.memory.hierarchy import MemorySystem
from repro.core import Processor, Process, SyncManager
from repro.workloads.kernels.util import Loop, fpattern


def divide_kernel(slot, with_backoff):
    """1/x over a small vector: one 61-cycle divide per element."""
    b = AsmBuilder("divk%d" % slot, code_base=0x10000 * (slot + 1) + 0x1120 * slot,
                   data_base=0x1000000 + 0x8120 * slot)
    vec = b.word("vec", fpattern(64, 7, 31))
    one = b.word("one", [1])
    b.li("t3", one)
    b.lwf("f1", 0, "t3")
    b.li("s0", vec)
    with Loop(b, "s4", 64):
        b.lwf("f0", 0, "s0")
        b.fadd("f0", "f0", "f1")
        b.fdiv("f2", "f1", "f0")
        if with_backoff:
            b.backoff(52)          # the compiler's latency hint
        b.fmul("f3", "f2", "f2")   # consumer of the divide
        b.swf("f3", 0, "s0")
        b.addi("s0", "s0", 4)
    b.halt()
    return b.build()


def run(scheme, n_contexts, with_backoff):
    config = SystemConfig.fast()
    memory = Memory()
    processor = Processor(scheme, n_contexts, config.pipeline,
                          MemorySystem(config.memory), memory,
                          sync=SyncManager())
    for slot in range(n_contexts):
        program = divide_kernel(slot, with_backoff)
        program.load(memory)
        processor.load_process(slot, Process("k%d" % slot, program))
    now = 0
    while not processor.all_halted() and now < 200_000:
        processor.step(now)
        now += 1
    return now, processor.stats


def main():
    print(__doc__)
    print("%-24s %10s %10s %10s" % ("configuration", "cycles",
                                    "busy %", "retired"))
    for scheme, n in (("single", 1), ("blocked", 4), ("interleaved", 4)):
        for hint in (False, True):
            cycles, stats = run(scheme, n, hint)
            print("%-24s %10d %9.0f%% %10d"
                  % ("%s/%dctx %s" % (scheme, n,
                                      "hinted" if hint else "plain"),
                     cycles, 100 * stats.utilization(), stats.retired))
    print()
    print("With hints, a context leaves the processor during its divide")
    print("instead of wasting its round-robin issue slots.")


if __name__ == "__main__":
    main()
