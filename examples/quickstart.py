#!/usr/bin/env python
"""Quickstart: assemble a program and watch interleaving hide its stalls.

Builds two little threads with a classic load-use stall, runs them on the
single-context baseline and on a 2-context interleaved processor, and
prints the cycle-by-cycle issue trace of each.

Run:  python examples/quickstart.py
"""

from repro.isa import assemble
from repro.isa.executor import Memory
from repro.config import PipelineParams, SystemConfig
from repro.memory.hierarchy import MemorySystem
from repro.core import Processor, Process, SyncManager

SOURCE = """
    .data
data:   .word 3, 4, 5, 6
    .text
        la   t0, data
        li   t3, 8          # iterations
top:    lw   t1, 0(t0)      # load ...
        add  t2, t2, t1     # ... immediately used: 2-cycle stall
        addi t0, t0, 4
        addi t3, t3, -1
        andi t4, t3, 3
        bgtz t4, skip
        la   t0, data       # wrap the pointer every 4th iteration
skip:   bgtz t3, top
        halt
"""


def run(scheme, n_contexts):
    config = SystemConfig.fast()
    memory = Memory()
    memsys = MemorySystem(config.memory)
    processor = Processor(scheme, n_contexts, config.pipeline, memsys,
                          memory, sync=SyncManager())

    trace = []
    processor.trace = lambda now, ctx, kind: trace.append(
        ctx.process.name if (ctx and kind == "busy")
        else ctx.process.name.lower() if ctx else ".")

    for slot in range(n_contexts):
        program = assemble(SOURCE, name="thread%d" % slot,
                           code_base=0x10000 * (slot + 1) + 0x1120 * slot,
                           data_base=0x1000000 + 0x4120 * slot)
        program.load(memory)
        processor.load_process(slot, Process(chr(65 + slot), program))

    now = 0
    while not processor.all_halted() and now < 2000:
        processor.step(now)
        now += 1
    return now, processor.stats, "".join(trace)


def main():
    print(__doc__)
    for scheme, n in (("single", 1), ("interleaved", 2)):
        cycles, stats, trace = run(scheme, n)
        print("%s (%d context%s): %d cycles, %d instructions, "
              "utilization %.0f%%"
              % (scheme, n, "s" if n > 1 else "", cycles, stats.retired,
                 100 * stats.utilization()))
        print("  issue trace: %s%s" % (trace[:72],
                                       "..." if len(trace) > 72 else ""))
        print()
    print("The interleaved processor fills the load-use stall slots of")
    print("one thread with the other thread's instructions (paper Fig 3).")


if __name__ == "__main__":
    main()
