"""Branch target buffer behaviour."""

import pytest

from repro.pipeline.btb import BranchTargetBuffer


class TestPrediction:
    def test_cold_predicts_not_taken(self):
        btb = BranchTargetBuffer(16)
        assert btb.predict(0x100) is None

    def test_taken_branch_installed(self):
        btb = BranchTargetBuffer(16)
        assert not btb.resolve(0x100, None, actual_target=50,
                               fallthrough=10)   # mispredict, installs
        assert btb.predict(0x100) == 50

    def test_correct_prediction_counts(self):
        btb = BranchTargetBuffer(16)
        btb.resolve(0x100, None, 50, 10)
        predicted = btb.predict(0x100)
        assert btb.resolve(0x100, predicted, 50, 10)
        assert btb.mispredicts == 1   # only the cold one

    def test_not_taken_with_entry_is_mispredict_and_evicts(self):
        btb = BranchTargetBuffer(16)
        btb.resolve(0x100, None, 50, 10)
        predicted = btb.predict(0x100)
        assert predicted == 50
        assert not btb.resolve(0x100, predicted, actual_target=10,
                               fallthrough=10)
        assert btb.predict(0x100) is None

    def test_not_taken_cold_is_correct(self):
        btb = BranchTargetBuffer(16)
        assert btb.resolve(0x100, None, actual_target=10, fallthrough=10)

    def test_target_change_detected(self):
        btb = BranchTargetBuffer(16)
        btb.resolve(0x100, None, 50, 10)
        predicted = btb.predict(0x100)
        assert not btb.resolve(0x100, predicted, actual_target=60,
                               fallthrough=10)
        assert btb.predict(0x100) == 60


class TestIndexing:
    def test_aliasing_entries_conflict(self):
        btb = BranchTargetBuffer(16)
        btb.resolve(0x100, None, 50, 10)
        alias = 0x100 + 16 * 4          # same index, different tag
        assert btb.predict(alias) is None
        btb.resolve(alias, None, 70, 10)
        assert btb.predict(0x100) is None   # evicted by the alias

    def test_power_of_two_required(self):
        with pytest.raises(ValueError):
            BranchTargetBuffer(1000)

    def test_flush(self):
        btb = BranchTargetBuffer(16)
        btb.resolve(0x100, None, 50, 10)
        btb.flush()
        assert btb.predict(0x100) is None

    def test_accuracy_statistic(self):
        btb = BranchTargetBuffer(16)
        assert btb.accuracy == 1.0
        btb.predict(0x100)
        btb.resolve(0x100, None, 50, 10)
        assert btb.accuracy == 0.0
