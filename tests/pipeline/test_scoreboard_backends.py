"""Backend equivalence: the numpy scoreboard is the python one, in bits.

Three layers of proof:

* deterministic unit tests for the backend-selection knob
  (:func:`resolve_backend` / :func:`make_scoreboard`, the
  ``REPRO_BACKEND`` environment default, the loud no-numpy error);
* deterministic unit tests for the numpy backend's bulk operations
  (fancy-indexed ``apply_burst_compiled``, the single-compare guard,
  the batched :meth:`can_dispatch_bursts` probe) against hand-computed
  python-backend results — including the no-leak guarantee that scalar
  queries return python ints, not ``np.int64`` (simulator cycle state
  must stay JSON-serialisable);
* a hypothesis property test driving *random operation sequences*
  (issue / apply_burst / apply_burst_compiled / set_ready /
  clear_context / hazard_until / guard probes) through both backends in
  lockstep, asserting identical ``reg_ready``/``reg_mem``/``fu_busy``
  state and identical return values after every step.

Everything numpy-specific skips cleanly when the ``repro[fast]`` extra
is absent; the selection-knob tests still run there.
"""

import pytest
from hypothesis import given, settings, strategies as st

from repro.isa.opcodes import Op
from repro.isa.instruction import Instruction
from repro.isa.segments import schedule_burst
from repro.pipeline.scoreboard import (
    BACKEND_ENV, HAVE_NUMPY, NumpyScoreboard, Scoreboard,
    make_scoreboard, resolve_backend)

needs_numpy = pytest.mark.skipif(not HAVE_NUMPY,
                                 reason="numpy not installed "
                                        "(repro[fast] extra)")


def I(op, **kw):
    return Instruction(op, **kw)


def assert_same_state(py_sb, np_sb):
    """Both backends advertise identical register and unit state."""
    ready = np_sb.reg_ready
    mem = np_sb.reg_mem
    if HAVE_NUMPY and isinstance(np_sb, NumpyScoreboard):
        ready = ready.tolist()
        mem = bytes(mem.tolist())
    assert list(py_sb.reg_ready) == list(ready)
    assert bytes(py_sb.reg_mem) == bytes(mem)
    assert list(py_sb.fu_busy) == list(np_sb.fu_busy)


# -- backend selection -----------------------------------------------------

class TestBackendSelection:
    def test_default_is_python(self, monkeypatch):
        monkeypatch.delenv(BACKEND_ENV, raising=False)
        assert resolve_backend(None) == "python"
        assert isinstance(make_scoreboard(2), Scoreboard)

    def test_explicit_python(self):
        assert resolve_backend("python") == "python"

    def test_env_variable_is_the_default(self, monkeypatch):
        monkeypatch.setenv(BACKEND_ENV, "python")
        assert resolve_backend(None) == "python"
        if HAVE_NUMPY:
            monkeypatch.setenv(BACKEND_ENV, "numpy")
            assert resolve_backend(None) == "numpy"

    def test_explicit_argument_beats_env(self, monkeypatch):
        monkeypatch.setenv(BACKEND_ENV, "numpy")
        assert resolve_backend("python") == "python"

    def test_auto_resolves_by_availability(self):
        expected = "numpy" if HAVE_NUMPY else "python"
        assert resolve_backend("auto") == expected

    def test_unknown_backend_rejected(self):
        with pytest.raises(ValueError, match="backend"):
            resolve_backend("cuda")

    @needs_numpy
    def test_numpy_factory_builds_numpy_backend(self):
        sb = make_scoreboard(3, "numpy")
        assert isinstance(sb, NumpyScoreboard)
        assert sb.backend == "numpy"
        assert sb.n_contexts == 3

    def test_backend_names_advertised(self):
        assert Scoreboard.backend == "python"
        assert NumpyScoreboard.backend == "numpy"


@pytest.mark.skipif(HAVE_NUMPY, reason="exercises the no-numpy fallback")
class TestWithoutNumpy:
    def test_explicit_numpy_is_loud(self):
        with pytest.raises(RuntimeError, match="repro\\[fast\\]"):
            resolve_backend("numpy")

    def test_auto_falls_back_to_python(self):
        assert isinstance(make_scoreboard(2, "auto"), Scoreboard)


# -- numpy backend bulk ops ------------------------------------------------

@needs_numpy
class TestNumpyBulkOps:
    def test_scalar_queries_return_python_ints(self):
        # np.int64 escaping hazard_until would poison cycle counters all
        # the way into json.dumps; the boundary must cast.
        sb = NumpyScoreboard(1)
        sb.issue(0, I(Op.LW, rd=8, rs1=9), 0)
        until, kind = sb.hazard_until(0, I(Op.ADD, rd=11, rs1=8,
                                           rs2=9), 1)
        assert type(until) is int and until == 3 and kind == "data"
        assert type(sb.hazard_until(0, I(Op.ADD, rd=12, rs1=13,
                                         rs2=14), 1)[0]) is int

    def test_guard_is_a_python_bool(self):
        insts = [I(Op.ADD, rd=8, rs1=9, rs2=10),
                 I(Op.ADD, rd=11, rs1=8, rs2=9)]
        burst = schedule_burst(insts, 0, 4)
        sb = NumpyScoreboard(1)
        for reg, slack in burst.guard:
            sb.set_ready(0, reg, 200 + slack)
        assert sb.can_dispatch_burst(0, burst, 200) is True
        assert sb.can_dispatch_burst(0, burst, 199) is False

    def test_apply_burst_compiled_matches_pairs(self):
        insts = [I(Op.ADD, rd=8, rs1=9, rs2=10),
                 I(Op.FADD, rd=33, rs1=34, rs2=35),
                 I(Op.SLL, rd=9, rs1=8)]
        burst = schedule_burst(insts, 0, 4)
        py_sb = Scoreboard(2)
        np_sb = NumpyScoreboard(2)
        np_sb.reg_mem[(1 << 6) + 8] = 1   # stale miss flag must clear
        py_sb.reg_mem[(1 << 6) + 8] = 1
        py_sb.apply_burst_compiled(1, 100, burst)
        np_sb.apply_burst_compiled(1, 100, burst)
        assert_same_state(py_sb, np_sb)

    def test_batched_probe_matches_singles(self):
        a = schedule_burst([I(Op.ADD, rd=8, rs1=9, rs2=10),
                            I(Op.ADD, rd=11, rs1=8, rs2=9)], 0, 4)
        b = schedule_burst([I(Op.FADD, rd=33, rs1=34, rs2=35),
                            I(Op.FMUL, rd=36, rs1=33, rs2=35)], 0, 4)
        for cls in (Scoreboard, NumpyScoreboard):
            sb = cls(3)
            sb.set_ready(1, 34, 500)      # stalls burst b on ctx 1 only
            verdicts = sb.can_dispatch_bursts([0, 1, 2], [a, b, a], 10)
            singles = [sb.can_dispatch_burst(0, a, 10),
                       sb.can_dispatch_burst(1, b, 10),
                       sb.can_dispatch_burst(2, a, 10)]
            assert verdicts == singles == [True, False, True]
            assert all(type(v) is bool for v in verdicts)

    def test_batched_probe_empty_and_guardless(self):
        for cls in (Scoreboard, NumpyScoreboard):
            sb = cls(1)
            assert sb.can_dispatch_bursts([], [], 0) == []

    def test_clear_context_is_isolated(self):
        sb = NumpyScoreboard(2)
        sb.issue(0, I(Op.FDIV, rd=33, rs1=34, rs2=35), 0)
        sb.issue(1, I(Op.FDIV, rd=36, rs1=37, rs2=38), 70)
        sb.set_ready(0, 8, 40, memory=True)
        sb.clear_context(0)
        assert int(sb.reg_ready[33]) == 0 and int(sb.reg_mem[8]) == 0
        assert int(sb.reg_ready[(1 << 6) + 36]) == 70 + 61


# -- property test: random op sequences through both backends --------------

_OPS = (Op.ADD, Op.SLL, Op.LW, Op.FADD, Op.FMUL, Op.FDIV, Op.MUL)

_regs = st.integers(min_value=0, max_value=63)
_ctxs = st.integers(min_value=0, max_value=3)
_cycles = st.integers(min_value=0, max_value=500)


@st.composite
def _instructions(draw):
    op = draw(st.sampled_from(_OPS))
    return I(op, rd=draw(_regs), rs1=draw(_regs), rs2=draw(_regs))


@st.composite
def _burst_specs(draw):
    """A compiled burst from 2-4 burstable instructions.

    Falls back to the width-1 packing (always schedulable) when the
    drawn width's cycle-aligned prefix is too short to form a burst.
    """
    n = draw(st.integers(min_value=2, max_value=4))
    insts = [I(draw(st.sampled_from((Op.ADD, Op.SLL, Op.FADD, Op.FMUL))),
               rd=draw(_regs), rs1=draw(_regs), rs2=draw(_regs))
             for _ in range(n)]
    threshold = draw(st.sampled_from((2, 4)))
    burst = schedule_burst(insts, 0, threshold,
                           width=draw(st.sampled_from((1, 2))))
    return (burst if burst is not None
            else schedule_burst(insts, 0, threshold, width=1))


_operations = st.one_of(
    st.tuples(st.just("issue"), _ctxs, _instructions(), _cycles),
    st.tuples(st.just("hazard"), _ctxs, _instructions(), _cycles),
    st.tuples(st.just("set_ready"), _ctxs, _regs, _cycles, st.booleans()),
    st.tuples(st.just("clear"), _ctxs),
    st.tuples(st.just("apply"), _ctxs, _burst_specs(), _cycles),
    st.tuples(st.just("apply_compiled"), _ctxs, _burst_specs(), _cycles),
    st.tuples(st.just("guard"), _ctxs, _burst_specs(), _cycles),
    st.tuples(st.just("guard_batch"), st.lists(_ctxs, min_size=1,
                                               max_size=4),
              st.lists(_burst_specs(), min_size=4, max_size=4), _cycles),
)


@needs_numpy
@settings(max_examples=60, deadline=None)
@given(ops=st.lists(_operations, min_size=1, max_size=40))
def test_random_sequences_keep_backends_identical(ops):
    py_sb = Scoreboard(4)
    np_sb = NumpyScoreboard(4)
    for op in ops:
        name = op[0]
        if name == "issue":
            _, ctx, inst, now = op
            py_sb.issue(ctx, inst, now)
            np_sb.issue(ctx, inst, now)
        elif name == "hazard":
            _, ctx, inst, now = op
            py_out = py_sb.hazard_until(ctx, inst, now)
            np_out = np_sb.hazard_until(ctx, inst, now)
            assert py_out == np_out
            assert type(np_out[0]) is int
        elif name == "set_ready":
            _, ctx, reg, cycle, memory = op
            py_sb.set_ready(ctx, reg, cycle, memory=memory)
            np_sb.set_ready(ctx, reg, cycle, memory=memory)
        elif name == "clear":
            _, ctx = op
            py_sb.clear_context(ctx)
            np_sb.clear_context(ctx)
        elif name == "apply":
            _, ctx, burst, now = op
            py_sb.apply_burst(ctx, now, burst.writes_out)
            np_sb.apply_burst(ctx, now, burst.writes_out)
        elif name == "apply_compiled":
            _, ctx, burst, now = op
            py_sb.apply_burst_compiled(ctx, now, burst)
            np_sb.apply_burst_compiled(ctx, now, burst)
        elif name == "guard":
            _, ctx, burst, now = op
            assert (py_sb.can_dispatch_burst(ctx, burst, now)
                    == np_sb.can_dispatch_burst(ctx, burst, now))
        elif name == "guard_batch":
            _, ctxs, bursts, now = op
            bursts = bursts[:len(ctxs)]
            ctxs = ctxs[:len(bursts)]
            py_out = py_sb.can_dispatch_bursts(ctxs, bursts, now)
            np_out = np_sb.can_dispatch_bursts(ctxs, bursts, now)
            assert py_out == np_out
        assert_same_state(py_sb, np_sb)
