"""Behavioural PC-unit models (paper Figures 10-12)."""

from repro.pipeline.pcunit import (
    SingleContextPCUnit,
    BlockedPCUnit,
    InterleavedPCUnit,
    WORD,
)


class TestSingleContextPCUnit:
    def test_sequential_flow(self):
        pcu = SingleContextPCUnit(reset_pc=0x100)
        assert pcu.step_sequential() == 0x104
        assert pcu.step_sequential() == 0x108

    def test_predicted_branch_redirects(self):
        pcu = SingleContextPCUnit(0x100)
        assert pcu.predicted_branch(0x200) == 0x200
        assert pcu.step_sequential() == 0x204

    def test_exception_and_eret(self):
        pcu = SingleContextPCUnit(0x100)
        pcu.retire(0x100)
        assert pcu.take_exception(0x80, guilty_pc=0x104) == 0x80
        # Handler runs; retires must not clobber the saved EPC.
        pcu.retire(0x80)
        assert pcu.eret() == 0x104

    def test_computed_branch(self):
        pcu = SingleContextPCUnit(0x100)
        assert pcu.computed_branch(0x300) == 0x300


class TestBlockedPCUnit:
    def test_context_switch_saves_and_restores(self):
        pcu = BlockedPCUnit(2, reset_pcs=[0x100, 0x500])
        pcu.step_sequential()                 # ctx0 at 0x104
        # ctx0 misses at 0x108: switch, restart ctx1 at its reset PC.
        assert pcu.context_switch(1, restart_pc=0x108) == 0x500
        pcu.step_sequential()                 # ctx1 at 0x504
        # Switch back: ctx0 resumes at the instruction that missed.
        assert pcu.context_switch(0, restart_pc=0x504) == 0x108

    def test_epc_shared_with_exceptions(self):
        pcu = BlockedPCUnit(2, reset_pcs=[0x100, 0x500])
        pcu.retire(0x100)
        assert pcu.take_exception(0x80, guilty_pc=0x104) == 0x80
        assert pcu.eret() == 0x104

    def test_active_epc_tracks_retirement(self):
        pcu = BlockedPCUnit(2, reset_pcs=[0x100, 0x500])
        pcu.retire(0x100)
        pcu.retire(0x104)
        assert pcu.epcs[0] == 0x104
        assert pcu.epcs[1] == 0x500          # idle context untouched


class TestInterleavedPCUnit:
    def test_round_robin_issue(self):
        pcu = InterleavedPCUnit(2, reset_pcs=[0x100, 0x500])
        assert pcu.issue(0) == 0x100
        assert pcu.issue(1) == 0x500
        assert pcu.issue(0) == 0x104
        assert pcu.issue(1) == 0x504

    def test_predicted_branch_loads_npc(self):
        pcu = InterleavedPCUnit(2, reset_pcs=[0x100, 0x500])
        pcu.issue(0)
        pcu.load_predicted(0, 0x200)
        pcu.issue(1)
        assert pcu.issue(0) == 0x200

    def test_mispredict_priority_over_predicted(self):
        # "The computed branch has priority over all other sources."
        pcu = InterleavedPCUnit(2, reset_pcs=[0x100, 0x500])
        pcu.issue(0)
        pcu.mispredict(0, 0x300)
        pcu.load_predicted(0, 0x200)    # must not overwrite the computed
        assert pcu.issue(0) == 0x300

    def test_mispredict_sets_btb_update_on_drive(self):
        pcu = InterleavedPCUnit(2, reset_pcs=[0x100, 0x500])
        pcu.issue(0)
        pcu.mispredict(0, 0x300)
        assert pcu.btb_updates == []
        pcu.issue(0)
        assert pcu.btb_updates == [(0, 0x300)]

    def test_mispredict_squashes_by_cid(self):
        pcu = InterleavedPCUnit(2, reset_pcs=[0x100, 0x500])
        pcu.issue(0)
        pcu.mispredict(0, 0x300)
        assert pcu.squashes == [0]

    def test_unavailable_and_restart(self):
        pcu = InterleavedPCUnit(2, reset_pcs=[0x100, 0x500])
        pcu.issue(0)                      # 0x100: the missing load
        pcu.issue(1)
        pcu.make_unavailable(0, miss_pc=0x100)
        assert 0 in pcu.squashes
        # When available again, the EPC drives the bus: re-execute the
        # instruction that caused the miss.
        assert pcu.issue(0) == 0x100
        assert pcu.issue(0) == 0x104      # then sequential flow resumes

    def test_context_pcs_inspection(self):
        pcu = InterleavedPCUnit(2, reset_pcs=[0x100, 0x500])
        pcu.issue(0)
        assert pcu.context_pcs() == [0x104, 0x500]
        pcu.make_unavailable(0, miss_pc=0x100)
        assert pcu.context_pcs()[0] == 0x100

    def test_single_cycle_mispredict_case(self):
        """Resolution before the predicted target issues costs 1 cycle.

        Section 6.3: "the determination of the mispredicted branch can
        actually occur before the predicted branch address has been
        issued ... the branch will only cost a single cycle."
        """
        pcu = InterleavedPCUnit(4, reset_pcs=[0x100, 0x500, 0x900, 0xD00])
        pcu.issue(0)                    # branch issues
        pcu.load_predicted(0, 0x200)    # BTB predicted (wrongly)
        pcu.issue(1)
        pcu.issue(2)
        # Branch resolves before context 0's next slot: no wrong-path
        # instruction from context 0 ever issued, so nothing to squash
        # but the redirect itself.
        pcu.mispredict(0, 0x300)
        pcu.issue(3)
        assert pcu.issue(0) == 0x300


def test_word_constant():
    assert WORD == 4
