"""Scoreboard hazard detection (Table 3 issue-to-issue distances)."""

from repro.isa.opcodes import Op
from repro.isa.instruction import Instruction
from repro.pipeline.scoreboard import Scoreboard


def I(op, **kw):
    return Instruction(op, **kw)


class TestRegisterHazards:
    def test_alu_back_to_back_no_stall(self):
        sb = Scoreboard(1)
        sb.issue(0, I(Op.ADD, rd=8, rs1=9, rs2=10), 0)
        until, kind = sb.hazard_until(0, I(Op.ADD, rd=11, rs1=8, rs2=9), 1)
        assert until == 1 and kind is None

    def test_load_two_delay_slots(self):
        sb = Scoreboard(1)
        sb.issue(0, I(Op.LW, rd=8, rs1=9), 0)
        until, kind = sb.hazard_until(0, I(Op.ADD, rd=11, rs1=8, rs2=9), 1)
        assert until == 3 and kind == "data"

    def test_fp_add_five_cycle_distance(self):
        sb = Scoreboard(1)
        sb.issue(0, I(Op.FADD, rd=33, rs1=34, rs2=35), 0)
        until, _ = sb.hazard_until(0, I(Op.FMUL, rd=36, rs1=33, rs2=34), 1)
        assert until == 5

    def test_fdiv_sixty_one_cycles(self):
        sb = Scoreboard(1)
        sb.issue(0, I(Op.FDIV, rd=33, rs1=34, rs2=35), 0)
        until, _ = sb.hazard_until(0, I(Op.FADD, rd=36, rs1=33, rs2=34), 1)
        assert until == 61

    def test_independent_instruction_unblocked(self):
        sb = Scoreboard(1)
        sb.issue(0, I(Op.FDIV, rd=33, rs1=34, rs2=35), 0)
        until, kind = sb.hazard_until(0, I(Op.ADD, rd=8, rs1=9, rs2=10), 1)
        assert until == 1 and kind is None

    def test_output_dependency_orders_writes(self):
        sb = Scoreboard(1)
        sb.issue(0, I(Op.FDIV, rd=33, rs1=34, rs2=35), 0)   # ready at 61
        # A 5-cycle op writing f1 must not complete before the divide.
        until, kind = sb.hazard_until(0, I(Op.FADD, rd=33, rs1=34,
                                           rs2=35), 1)
        assert until == 61 - 5
        assert kind == "data"

    def test_r0_not_tracked(self):
        sb = Scoreboard(1)
        sb.issue(0, I(Op.LW, rd=0, rs1=9), 0)   # writes discarded
        until, _ = sb.hazard_until(0, I(Op.ADD, rd=8, rs1=0, rs2=0), 1)
        assert until == 1


class TestStructuralHazards:
    def test_fdiv_unit_not_pipelined(self):
        sb = Scoreboard(2)
        sb.issue(0, I(Op.FDIV, rd=33, rs1=34, rs2=35), 0)
        # A *different context's* divide stalls on the shared unit.
        until, kind = sb.hazard_until(1, I(Op.FDIV, rd=33, rs1=34,
                                           rs2=35), 1)
        assert until == 61 and kind == "structural"

    def test_muldiv_unit_shared(self):
        sb = Scoreboard(2)
        sb.issue(0, I(Op.DIV, rd=8, rs1=9, rs2=10), 0)
        until, kind = sb.hazard_until(1, I(Op.MUL, rd=8, rs1=9, rs2=10), 1)
        assert until == 35 and kind == "structural"

    def test_fpadd_pipelined(self):
        sb = Scoreboard(2)
        sb.issue(0, I(Op.FADD, rd=33, rs1=34, rs2=35), 0)
        until, _ = sb.hazard_until(1, I(Op.FADD, rd=33, rs1=34, rs2=35), 1)
        assert until == 1


class TestContextIsolation:
    def test_contexts_have_independent_registers(self):
        sb = Scoreboard(2)
        sb.issue(0, I(Op.LW, rd=8, rs1=9), 0)
        until, _ = sb.hazard_until(1, I(Op.ADD, rd=11, rs1=8, rs2=9), 1)
        assert until == 1   # context 1's t0 is not context 0's t0

    def test_memory_flag_reported(self):
        sb = Scoreboard(1)
        sb.issue(0, I(Op.LW, rd=8, rs1=9), 0)
        sb.set_ready(0, 8, 40, memory=True)
        until, kind = sb.hazard_until(0, I(Op.ADD, rd=11, rs1=8,
                                           rs2=9), 1)
        assert until == 40 and kind == "memory"

    def test_clear_context(self):
        sb = Scoreboard(1)
        sb.issue(0, I(Op.FDIV, rd=33, rs1=34, rs2=35), 0)
        sb.clear_context(0)
        until, _ = sb.hazard_until(0, I(Op.FADD, rd=36, rs1=33,
                                        rs2=34), 1)
        assert until == 1

    def test_normal_write_clears_memory_flag(self):
        sb = Scoreboard(1)
        sb.set_ready(0, 8, 100, memory=True)
        sb.issue(0, I(Op.ADDI, rd=8, rs1=9), 200)
        until, kind = sb.hazard_until(0, I(Op.ADD, rd=11, rs1=8,
                                           rs2=9), 201)
        assert kind is None
