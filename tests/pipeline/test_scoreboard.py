"""Scoreboard hazard detection (Table 3 issue-to-issue distances)."""

from repro.isa.opcodes import Op
from repro.isa.instruction import Instruction
from repro.pipeline.scoreboard import Scoreboard


def I(op, **kw):
    return Instruction(op, **kw)


class TestRegisterHazards:
    def test_alu_back_to_back_no_stall(self):
        sb = Scoreboard(1)
        sb.issue(0, I(Op.ADD, rd=8, rs1=9, rs2=10), 0)
        until, kind = sb.hazard_until(0, I(Op.ADD, rd=11, rs1=8, rs2=9), 1)
        assert until == 1 and kind is None

    def test_load_two_delay_slots(self):
        sb = Scoreboard(1)
        sb.issue(0, I(Op.LW, rd=8, rs1=9), 0)
        until, kind = sb.hazard_until(0, I(Op.ADD, rd=11, rs1=8, rs2=9), 1)
        assert until == 3 and kind == "data"

    def test_fp_add_five_cycle_distance(self):
        sb = Scoreboard(1)
        sb.issue(0, I(Op.FADD, rd=33, rs1=34, rs2=35), 0)
        until, _ = sb.hazard_until(0, I(Op.FMUL, rd=36, rs1=33, rs2=34), 1)
        assert until == 5

    def test_fdiv_sixty_one_cycles(self):
        sb = Scoreboard(1)
        sb.issue(0, I(Op.FDIV, rd=33, rs1=34, rs2=35), 0)
        until, _ = sb.hazard_until(0, I(Op.FADD, rd=36, rs1=33, rs2=34), 1)
        assert until == 61

    def test_independent_instruction_unblocked(self):
        sb = Scoreboard(1)
        sb.issue(0, I(Op.FDIV, rd=33, rs1=34, rs2=35), 0)
        until, kind = sb.hazard_until(0, I(Op.ADD, rd=8, rs1=9, rs2=10), 1)
        assert until == 1 and kind is None

    def test_output_dependency_orders_writes(self):
        sb = Scoreboard(1)
        sb.issue(0, I(Op.FDIV, rd=33, rs1=34, rs2=35), 0)   # ready at 61
        # A 5-cycle op writing f1 must not complete before the divide.
        until, kind = sb.hazard_until(0, I(Op.FADD, rd=33, rs1=34,
                                           rs2=35), 1)
        assert until == 61 - 5
        assert kind == "data"

    def test_r0_not_tracked(self):
        sb = Scoreboard(1)
        sb.issue(0, I(Op.LW, rd=0, rs1=9), 0)   # writes discarded
        until, _ = sb.hazard_until(0, I(Op.ADD, rd=8, rs1=0, rs2=0), 1)
        assert until == 1


class TestStructuralHazards:
    def test_fdiv_unit_not_pipelined(self):
        sb = Scoreboard(2)
        sb.issue(0, I(Op.FDIV, rd=33, rs1=34, rs2=35), 0)
        # A *different context's* divide stalls on the shared unit.
        until, kind = sb.hazard_until(1, I(Op.FDIV, rd=33, rs1=34,
                                           rs2=35), 1)
        assert until == 61 and kind == "structural"

    def test_muldiv_unit_shared(self):
        sb = Scoreboard(2)
        sb.issue(0, I(Op.DIV, rd=8, rs1=9, rs2=10), 0)
        until, kind = sb.hazard_until(1, I(Op.MUL, rd=8, rs1=9, rs2=10), 1)
        assert until == 35 and kind == "structural"

    def test_fpadd_pipelined(self):
        sb = Scoreboard(2)
        sb.issue(0, I(Op.FADD, rd=33, rs1=34, rs2=35), 0)
        until, _ = sb.hazard_until(1, I(Op.FADD, rd=33, rs1=34, rs2=35), 1)
        assert until == 1


class TestContextIsolation:
    def test_contexts_have_independent_registers(self):
        sb = Scoreboard(2)
        sb.issue(0, I(Op.LW, rd=8, rs1=9), 0)
        until, _ = sb.hazard_until(1, I(Op.ADD, rd=11, rs1=8, rs2=9), 1)
        assert until == 1   # context 1's t0 is not context 0's t0

    def test_memory_flag_reported(self):
        sb = Scoreboard(1)
        sb.issue(0, I(Op.LW, rd=8, rs1=9), 0)
        sb.set_ready(0, 8, 40, memory=True)
        until, kind = sb.hazard_until(0, I(Op.ADD, rd=11, rs1=8,
                                           rs2=9), 1)
        assert until == 40 and kind == "memory"

    def test_clear_context(self):
        sb = Scoreboard(1)
        sb.issue(0, I(Op.FDIV, rd=33, rs1=34, rs2=35), 0)
        sb.clear_context(0)
        until, _ = sb.hazard_until(0, I(Op.FADD, rd=36, rs1=33,
                                        rs2=34), 1)
        assert until == 1

    def test_normal_write_clears_memory_flag(self):
        sb = Scoreboard(1)
        sb.set_ready(0, 8, 100, memory=True)
        sb.issue(0, I(Op.ADDI, rd=8, rs1=9), 200)
        until, kind = sb.hazard_until(0, I(Op.ADD, rd=11, rs1=8,
                                           rs2=9), 201)
        assert kind is None


class TestWAWTail:
    """Output dependencies whose adjusted bound lands beyond ``now``."""

    def test_waw_bound_strictly_in_the_future(self):
        # FDIV's write to f1 completes at 61; a 5-cycle FADD writing f1
        # attempted at 10 has ready[w] - latency == 56 > now and must
        # wait there, not at the raw ready time.
        sb = Scoreboard(1)
        sb.issue(0, I(Op.FDIV, rd=33, rs1=34, rs2=35), 0)
        until, kind = sb.hazard_until(0, I(Op.FADD, rd=33, rs1=40,
                                           rs2=41), 10)
        assert until == 56 and kind == "data"

    def test_waw_bound_exactly_now_is_free(self):
        # At now == 56 the in-order write completes at 61 == the divide's
        # completion: legal, no hazard reported.
        sb = Scoreboard(1)
        sb.issue(0, I(Op.FDIV, rd=33, rs1=34, rs2=35), 0)
        until, kind = sb.hazard_until(0, I(Op.FADD, rd=33, rs1=40,
                                           rs2=41), 56)
        assert until == 56 and kind is None

    def test_waw_on_memory_pending_register_attributes_memory(self):
        # The stalled writer waits on an outstanding miss's write-back
        # ordering: the slot belongs to the data-cache category.
        sb = Scoreboard(1)
        sb.set_ready(0, 8, 50, memory=True)
        until, kind = sb.hazard_until(0, I(Op.ADD, rd=8, rs1=9,
                                           rs2=10), 10)
        assert until == 49 and kind == "memory"


class TestBackToBackDivides:
    """The non-pipelined FP divider serialises its users."""

    def test_same_context_independent_registers(self):
        sb = Scoreboard(1)
        sb.issue(0, I(Op.FDIV, rd=33, rs1=34, rs2=35), 0)
        until, kind = sb.hazard_until(0, I(Op.FDIV, rd=36, rs1=37,
                                           rs2=38), 1)
        assert until == 61 and kind == "structural"

    def test_unit_frees_exactly_at_busy_until(self):
        sb = Scoreboard(1)
        sb.issue(0, I(Op.FDIV, rd=33, rs1=34, rs2=35), 0)
        until, kind = sb.hazard_until(0, I(Op.FDIV, rd=36, rs1=37,
                                           rs2=38), 61)
        assert until == 61 and kind is None

    def test_structural_outranks_waw_on_same_register(self):
        # Same destination: the WAW bound (61 - 61 == 0) is long past,
        # the shared unit is the real limiter and names the category.
        sb = Scoreboard(1)
        sb.issue(0, I(Op.FDIV, rd=33, rs1=34, rs2=35), 0)
        until, kind = sb.hazard_until(0, I(Op.FDIV, rd=33, rs1=37,
                                           rs2=38), 1)
        assert until == 61 and kind == "structural"

    def test_short_divide_then_long_divide(self):
        # FDIVS holds the unit 31 cycles; a following FDIV waits for the
        # unit, then its own consumer waits the full 61 from its issue.
        sb = Scoreboard(1)
        sb.issue(0, I(Op.FDIVS, rd=33, rs1=34, rs2=35), 0)
        until, kind = sb.hazard_until(0, I(Op.FDIV, rd=36, rs1=37,
                                           rs2=38), 1)
        assert until == 31 and kind == "structural"
        sb.issue(0, I(Op.FDIV, rd=36, rs1=37, rs2=38), 31)
        until, kind = sb.hazard_until(0, I(Op.FADD, rd=40, rs1=36,
                                           rs2=37), 32)
        assert until == 31 + 61 and kind == "data"


class TestStallAttribution:
    """The *limiting* register decides memory-vs-data attribution."""

    def test_data_limiter_wins_over_earlier_memory_pending(self):
        sb = Scoreboard(1)
        sb.set_ready(0, 8, 20, memory=True)   # miss returns at 20
        sb.set_ready(0, 9, 30, memory=False)  # pipeline result at 30
        until, kind = sb.hazard_until(0, I(Op.ADD, rd=11, rs1=8,
                                           rs2=9), 1)
        assert until == 30 and kind == "data"

    def test_memory_limiter_wins_over_earlier_data_pending(self):
        sb = Scoreboard(1)
        sb.set_ready(0, 8, 30, memory=True)
        sb.set_ready(0, 9, 20, memory=False)
        until, kind = sb.hazard_until(0, I(Op.ADD, rd=11, rs1=8,
                                           rs2=9), 1)
        assert until == 30 and kind == "memory"


class TestBurstBulkOps:
    """apply_burst / can_dispatch_burst: the burst engine's fast path."""

    def test_apply_burst_matches_serial_issues(self):
        insts = [I(Op.ADD, rd=8, rs1=9, rs2=10),
                 I(Op.FADD, rd=33, rs1=34, rs2=35),
                 I(Op.SLL, rd=9, rs1=8)]
        serial = Scoreboard(2)
        now = 100
        for inst in insts:
            serial.issue(1, inst, now)
            now += 1
        bulk = Scoreboard(2)
        bulk.reg_mem[(1 << 6) + 8] = 1   # stale miss flag must clear
        bulk.apply_burst(1, 100, ((8, 1), (9, 4), (33, 6)))
        assert list(bulk.reg_ready) == list(serial.reg_ready)
        assert bytes(bulk.reg_mem) == bytes(serial.reg_mem)

    def test_can_dispatch_burst_boundary(self):
        from repro.isa.segments import schedule_burst
        insts = [I(Op.ADD, rd=8, rs1=9, rs2=10),
                 I(Op.ADD, rd=11, rs1=8, rs2=9)]
        burst = schedule_burst(insts, 0, 4)
        sb = Scoreboard(1)
        for reg, slack in burst.guard:
            sb.set_ready(0, reg, 200 + slack)
        assert sb.can_dispatch_burst(0, burst, 200)
        assert not sb.can_dispatch_burst(0, burst, 199)

    def test_other_contexts_untouched(self):
        sb = Scoreboard(2)
        sb.apply_burst(0, 50, ((8, 3), (33, 7)))
        assert all(t == 0 for t in sb.reg_ready[64:])
        assert sb.reg_ready[8] == 53 and sb.reg_ready[33] == 57
