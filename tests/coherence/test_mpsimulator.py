"""Multiprocessor simulator end-to-end behaviour."""

import pytest

from repro.config import MultiprocessorParams
from repro.core.mpsimulator import MultiprocessorSimulator
from repro.workloads.splash import build_app


def simulate(app_name="ocean", scheme="single", n_contexts=1, n_nodes=2,
             scale=0.25, seed=5):
    params = MultiprocessorParams(n_nodes=n_nodes)
    app = build_app(app_name, n_threads=n_nodes * n_contexts,
                    threads_per_node=n_contexts, scale=scale)
    sim = MultiprocessorSimulator(app, scheme=scheme,
                                  n_contexts=n_contexts, params=params,
                                  seed=seed)
    run = sim.run(until=10_000_000)
    assert run.completed
    return sim, run.raw


class TestCompletion:
    def test_runs_to_completion(self):
        sim, result = simulate()
        assert result.cycles > 0
        assert all(p.all_halted() for p in sim.processors)

    def test_thread_count_must_match_machine(self):
        params = MultiprocessorParams(n_nodes=4)
        app = build_app("ocean", n_threads=2, scale=0.25)
        with pytest.raises(ValueError):
            MultiprocessorSimulator(app, n_contexts=1, params=params)

    def test_incomplete_run_reports_not_completed(self):
        params = MultiprocessorParams(n_nodes=2)
        app = build_app("ocean", n_threads=2, scale=0.5)
        sim = MultiprocessorSimulator(app, params=params)
        result = sim.run(until=100)
        assert result.completed is False


class TestResults:
    def test_stats_cover_all_nodes(self):
        sim, result = simulate(n_nodes=2)
        assert len(result.node_stats) == 2
        assert result.stats.total_cycles == sum(
            s.total_cycles for s in result.node_stats)

    def test_breakdown_fractions_normalised(self):
        _, result = simulate()
        total = sum(result.breakdown_fractions().values())
        assert abs(total - 1.0) < 1e-9

    def test_more_nodes_go_faster(self):
        _, small = simulate("barnes", n_nodes=2)
        _, large = simulate("barnes", n_nodes=4)
        assert large.cycles < small.cycles

    def test_multiple_contexts_change_thread_count(self):
        sim, _ = simulate("ocean", scheme="interleaved", n_contexts=2,
                          n_nodes=2)
        assert len(sim.processes) == 4

    def test_placement_pins_private_pages(self):
        sim, _ = simulate("mp3d", n_nodes=2)
        machine = sim.machine
        pinned = [page for page, node in machine.page_home.items()]
        assert pinned            # mp3d pins particle slices
