"""Advanced multiprocessor scenarios: multi-issue, idle skip, deadlock."""

import pytest
from dataclasses import replace

from repro.config import MultiprocessorParams, PipelineParams
from repro.core.mpsimulator import MultiprocessorSimulator
from repro.core.simulator import SimulationDeadlock
from repro.workloads.splash import build_app


@pytest.mark.slow
class TestMultiIssueMP:
    def test_wider_machine_is_not_slower(self):
        params = MultiprocessorParams(n_nodes=2)
        results = {}
        for width in (1, 2):
            app = build_app("ocean", n_threads=4, threads_per_node=2,
                            scale=0.5)
            pp = replace(PipelineParams(), issue_width=width)
            sim = MultiprocessorSimulator(app, scheme="interleaved",
                                          n_contexts=2, params=params,
                                          pipeline=pp)
            run = sim.run()
            assert run.completed
            results[width] = run.cycles
        assert results[2] <= results[1]

    def test_width_helps_dependency_bound_app(self):
        """Ocean is short-dependency bound: two contexts can dual-issue."""
        params = MultiprocessorParams(n_nodes=2)
        results = {}
        for width in (1, 4):
            app = build_app("ocean", n_threads=8, threads_per_node=4,
                            scale=0.5)
            pp = replace(PipelineParams(), issue_width=width)
            sim = MultiprocessorSimulator(app, scheme="interleaved",
                                          n_contexts=4, params=params,
                                          pipeline=pp)
            run = sim.run()
            assert run.completed
            results[width] = run.cycles
        assert results[4] < results[1]


class TestGlobalIdleSkip:
    def test_skip_preserves_cycle_accounting(self):
        """Idle-skipped cycles must still land in some stall bucket on
        every node (total slots == width x cycles x nodes)."""
        params = MultiprocessorParams(n_nodes=2)
        app = build_app("cholesky", n_threads=2, scale=0.25)
        sim = MultiprocessorSimulator(app, scheme="single",
                                      n_contexts=1, params=params)
        run = sim.run()
        assert run.completed
        result = run.raw
        # cholesky serialises: plenty of global idle to skip.
        for node_stats in result.node_stats:
            assert node_stats.total_cycles == result.cycles

    def test_deterministic_with_and_without_contention(self):
        params = MultiprocessorParams(n_nodes=2)
        runs = []
        for _ in range(2):
            app = build_app("locus", n_threads=2, scale=0.25)
            sim = MultiprocessorSimulator(app, scheme="single",
                                          n_contexts=1, params=params,
                                          seed=9)
            run = sim.run()
            assert run.completed
            runs.append(run.cycles)
        assert runs[0] == runs[1]


class TestDeadlockDetection:
    def test_unreleasable_lock_is_detected(self):
        """Two threads acquiring each other's held locks must raise."""
        from repro.workloads.splash.base import (
            SharedLayout, AppInstance, thread_builder)
        layout = SharedLayout()
        la = layout.alloc("la", 8, init=[0] * 8)
        lb = layout.alloc("lb", 8, init=[0] * 8)
        programs = []
        for tid, (first, second) in enumerate(((la, lb), (lb, la))):
            b = thread_builder("deadlock", tid)
            b.li("t0", first)
            b.li("t1", second)
            b.lock(0, "t0")
            # spin a while so both threads hold their first lock
            b.li("t2", 200)
            top = b.fresh_label("spin")
            b.label(top)
            b.addi("t2", "t2", -1)
            b.bgtz("t2", top)
            b.lock(0, "t1")        # classic AB/BA deadlock
            b.halt()
            programs.append(b.build())
        app = AppInstance("deadlock", programs, layout, barriers={})
        sim = MultiprocessorSimulator(
            app, scheme="single", n_contexts=1,
            params=MultiprocessorParams(n_nodes=2))
        with pytest.raises(SimulationDeadlock):
            sim.run(until=100_000)
