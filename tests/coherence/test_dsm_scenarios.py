"""Directed multi-step coherence scenarios (protocol walkthroughs)."""

from repro.config import MultiprocessorParams
from repro.coherence.dsm import DSMachine


def machine(n_nodes=4, seed=21):
    return DSMachine(MultiprocessorParams(n_nodes=n_nodes), seed=seed)


def complete(m, node, addr, write, now):
    res = m.access(node, addr, write, now)
    return max(now + 1, res.ready + 1), res


class TestMigratoryPattern:
    """MP3D-style: a line read-modify-written by one node after another
    migrates, staying dirty, always serviced cache-to-cache."""

    def test_line_migrates_between_writers(self):
        m = machine()
        now = 0
        now, first = complete(m, 0, 0x3000, True, now)
        assert first.level in ("local", "remote")
        for node in (1, 2, 3, 0):
            now, res = complete(m, node, 0x3000, True, now)
            assert res.level == "remote_cache", node
            assert m.directory.entry(0x3000).owner == node
        assert m.dirty_remote_services == 4

    def test_migration_leaves_no_stale_copies(self):
        m = machine()
        now = 0
        for node in (0, 1, 2):
            now, _ = complete(m, node, 0x3000, True, now)
        for node in (0, 1):
            assert not m.nodes[node].cache.present(0x3000)
        m.check_coherence_invariants()


class TestProducerConsumerPattern:
    """Ocean-style: one node writes, neighbours read, repeat."""

    def test_round_trip_costs(self):
        m = machine()
        now = 0
        # Producer writes; consumer reads (3-hop); producer re-writes
        # (upgrade over the now-shared line); consumer re-reads (3-hop).
        now, w1 = complete(m, 0, 0x5000, True, now)
        now, r1 = complete(m, 1, 0x5000, False, now)
        assert r1.level == "remote_cache"
        now, w2 = complete(m, 0, 0x5000, True, now)
        assert w2.level == "upgrade"
        now, r2 = complete(m, 1, 0x5000, False, now)
        assert r2.level == "remote_cache"

    def test_consumer_count_scales_invalidations(self):
        m = machine()
        now = 0
        now, _ = complete(m, 0, 0x5000, False, now)
        now, _ = complete(m, 1, 0x5000, False, now)
        now, _ = complete(m, 2, 0x5000, False, now)
        before = m.invalidations_sent
        now, _ = complete(m, 3, 0x5000, True, now)
        assert m.invalidations_sent - before == 3


class TestReadSharedPattern:
    """Barnes-style: everybody reads, nobody writes — free after fill."""

    def test_all_nodes_hit_after_first_read(self):
        m = machine()
        now = 0
        for node in range(4):
            now, _ = complete(m, node, 0x7000, False, now)
        for node in range(4):
            res = m.access(node, 0x7000, False, now)
            assert res.level == "l1", node
            now += 2


class TestEvictionInteractions:
    def test_dirty_eviction_releases_ownership(self):
        m = machine()
        now = 0
        now, _ = complete(m, 0, 0x3000, True, now)
        # Conflict-evict by touching the aliasing line (cache size apart)
        alias = 0x3000 + m.params.cache.size
        now, _ = complete(m, 0, alias, False, now)
        entry = m.directory.entry(0x3000)
        assert entry.owner == -1
        m.check_coherence_invariants()

    def test_reread_after_dirty_eviction_is_a_plain_miss(self):
        m = machine()
        now = 0
        now, _ = complete(m, 0, 0x3000, True, now)
        alias = 0x3000 + m.params.cache.size
        now, _ = complete(m, 0, alias, False, now)
        now, res = complete(m, 0, 0x3000, False, now)
        assert res.level in ("local", "remote")   # not remote_cache

    def test_silent_clean_eviction_tolerated(self):
        """Stale sharer bits only cause harmless invalidations."""
        m = machine()
        now = 0
        now, _ = complete(m, 1, 0x3000, False, now)
        alias = 0x3000 + m.params.cache.size
        now, _ = complete(m, 1, alias, False, now)   # silently evicts
        # Node 0 writes: invalidation goes to node 1's absent copy.
        now, _ = complete(m, 0, 0x3000, True, now)
        m.check_coherence_invariants()


class TestPortContention:
    def test_owner_port_busy_during_transfer(self):
        m = machine()
        now = 0
        now, _ = complete(m, 0, 0x9000, True, now)
        res = m.access(1, 0x9000, False, now)
        owner_port = m.nodes[0].cache.port
        assert owner_port.busy_until > now

    def test_back_to_back_requests_queue_on_requester_port(self):
        m = machine()
        m.access(0, 0x9000, False, 100)
        second = m.access(0, 0xA000, False, 100)
        # Same-cycle second access starts after the port frees.
        assert second.ready >= 100
