"""Multiprocessor burst engine vs the naive lockstep reference.

Same contract as the workstation side (tests/core/test_burst_engine.py):
``engine="burst"`` must reproduce the naive per-cycle loop bit for bit.
On the multiprocessor, burst dispatch additionally requires that no
*external* wake (lock handoff, barrier release — wake_at pinned to
NEVER) could land mid-burst, so these runs exercise the conservative
sole-runner veto on real lock/barrier-heavy SPLASH stand-ins.
"""

import dataclasses

import pytest

from repro.api import Simulation
from repro.config import MultiprocessorParams

SMALL_PARAMS = MultiprocessorParams(n_nodes=2)


def comparable(result):
    d = dataclasses.asdict(result)
    d.pop("engine")
    d.pop("raw")
    return d


def run_app(app, scheme, n_contexts, engine, params=SMALL_PARAMS,
            scale=0.25, seed=7):
    simulation = Simulation.from_config(
        params, scheme=scheme, n_contexts=n_contexts, seed=seed,
        engine=engine).load(app, scale=scale)
    return simulation.run()


class TestBitIdentical:
    @pytest.mark.parametrize("app", ("mp3d", "cholesky"))
    def test_splash_interleaved(self, app):
        burst = run_app(app, "interleaved", 2, "burst")
        naive = run_app(app, "interleaved", 2, "naive")
        assert burst.completed and naive.completed
        assert comparable(burst) == comparable(naive)

    def test_mp3d_blocked(self):
        burst = run_app("mp3d", "blocked", 2, "burst")
        naive = run_app("mp3d", "blocked", 2, "naive")
        assert burst.completed and naive.completed
        assert comparable(burst) == comparable(naive)

    def test_mp3d_single_context(self):
        burst = run_app("mp3d", "single", 1, "burst")
        naive = run_app("mp3d", "single", 1, "naive")
        assert burst.completed and naive.completed
        assert comparable(burst) == comparable(naive)

    @pytest.mark.slow
    @pytest.mark.parametrize("app", ("mp3d", "cholesky"))
    @pytest.mark.parametrize("scheme,n_contexts",
                             [("blocked", 1), ("blocked", 2),
                              ("blocked", 4),
                              ("interleaved", 1), ("interleaved", 2),
                              ("interleaved", 4)])
    def test_acceptance_matrix(self, app, scheme, n_contexts):
        """mp3d/cholesky x 1/2/4 contexts x both schemes."""
        burst = run_app(app, scheme, n_contexts, "burst")
        naive = run_app(app, scheme, n_contexts, "naive")
        assert burst.completed and naive.completed
        assert comparable(burst) == comparable(naive)
