"""Directory coherence protocol: transitions, latencies, invariants."""

import random

import pytest
from hypothesis import given, settings, strategies as st

from repro.config import MultiprocessorParams
from repro.coherence.dsm import DSMachine


def machine(n_nodes=4, seed=7):
    return DSMachine(MultiprocessorParams(n_nodes=n_nodes), seed=seed)


class TestProtocolTransitions:
    def test_read_miss_then_hit(self):
        m = machine()
        res = m.access(0, 0x1000, False, 10)
        assert res.level in ("local", "remote")
        res2 = m.access(0, 0x1000, False, res.ready + 1)
        assert res2.level == "l1"

    def test_read_sharing_multiple_nodes(self):
        m = machine()
        m.access(0, 0x1000, False, 10)
        m.access(1, 0x1000, False, 200)
        entry = m.directory.entry(0x1000)
        assert entry.sharers & 0b11 == 0b11
        assert not entry.is_dirty

    def test_write_gains_exclusive_ownership(self):
        m = machine()
        res = m.access(0, 0x1000, True, 10)
        assert res.level in ("local", "remote")
        entry = m.directory.entry(0x1000)
        assert entry.owner == 0

    def test_write_invalidates_sharers(self):
        """Communication misses: a write kills the other copies."""
        m = machine()
        ra = m.access(0, 0x1000, False, 10)
        rb = m.access(1, 0x1000, False, 200)
        m.access(2, 0x1000, True, 400)
        assert not m.nodes[0].cache.present(0x1000)
        assert not m.nodes[1].cache.present(0x1000)
        # Their next reads miss again — the invalidation is visible.
        assert m.access(0, 0x1000, False, 600).level != "l1"

    def test_upgrade_on_shared_write_hit(self):
        m = machine()
        r = m.access(0, 0x1000, False, 10)
        m.access(1, 0x1000, False, 200)
        res = m.access(0, 0x1000, True, 400)
        assert res.level == "upgrade"
        assert m.upgrades == 1
        assert not m.nodes[1].cache.present(0x1000)

    def test_write_hit_on_owned_line_is_free(self):
        m = machine()
        first = m.access(0, 0x1000, True, 10)
        res = m.access(0, 0x1000, True, first.ready + 1)
        assert res.level == "l1"

    def test_dirty_remote_service(self):
        """A read of a dirty-remote line is a cache-to-cache transfer."""
        m = machine()
        w = m.access(0, 0x1000, True, 10)
        res = m.access(1, 0x1000, False, w.ready + 10)
        assert res.level == "remote_cache"
        assert m.dirty_remote_services == 1
        entry = m.directory.entry(0x1000)
        assert not entry.is_dirty           # owner downgraded to shared
        assert entry.sharers & 0b11 == 0b11

    def test_write_to_dirty_remote_transfers_ownership(self):
        m = machine()
        w = m.access(0, 0x1000, True, 10)
        res = m.access(1, 0x1000, True, w.ready + 10)
        assert res.level == "remote_cache"
        assert m.directory.entry(0x1000).owner == 1
        assert not m.nodes[0].cache.present(0x1000)


class TestLatencyClasses:
    def test_local_vs_remote_ranges(self):
        params = MultiprocessorParams(n_nodes=4)
        m = DSMachine(params, seed=3)
        m.place(0x1000, 8, 0)
        m.place(0x200000, 8, 1)
        local = m.access(0, 0x1000, False, 0)
        remote = m.access(0, 0x200000, False, 0)
        lo, hi = params.local_memory
        assert lo <= local.ready <= hi
        rlo, rhi = params.remote_memory
        assert rlo <= remote.ready <= rhi

    def test_remote_cache_range(self):
        params = MultiprocessorParams(n_nodes=4)
        m = DSMachine(params, seed=3)
        w = m.access(0, 0x1000, True, 0)
        r = m.access(1, 0x1000, False, w.ready + 5)
        lo, hi = params.remote_cache
        assert lo <= r.ready - (w.ready + 5) <= hi + 4  # + port queueing

    def test_default_interleave_and_placement(self):
        m = machine(n_nodes=4)
        assert m.home_of(0x0000) == 0
        assert m.home_of(0x1000) == 1
        m.place(0x1000, 1024, 3)
        assert m.home_of(0x1000) == 3


class TestMSHRs:
    def test_pending_merge(self):
        m = machine()
        first = m.access(0, 0x1000, False, 0)
        second = m.access(0, 0x1004, False, 1)
        assert second.level == "pending"
        assert second.ready == first.ready

    def test_capacity_stall_before_mutation(self):
        m = DSMachine(MultiprocessorParams(n_nodes=2), seed=1,
                      mshr_capacity=1)
        m.access(0, 0x1000, False, 0)
        res = m.access(0, 0x200000, False, 1)
        assert res.level == "mshr"
        # The stalled access must not have installed its tag.
        assert not m.nodes[0].cache.present(0x200000)


class TestInvariants:
    def test_clean_start(self):
        machine().check_coherence_invariants()

    def test_invariants_after_directed_sequence(self):
        m = machine()
        now = 0
        for node, addr, write in [(0, 0x1000, True), (1, 0x1000, False),
                                  (2, 0x1000, True), (0, 0x2000, False),
                                  (2, 0x2000, True), (1, 0x1000, True)]:
            res = m.access(node, addr, write, now)
            now = max(now + 1, res.ready + 1)
        m.check_coherence_invariants()

    @settings(max_examples=40, deadline=None)
    @given(st.lists(st.tuples(st.integers(0, 3),
                              st.integers(0, 31),
                              st.booleans()),
                    min_size=1, max_size=120))
    def test_invariants_under_random_traffic(self, ops):
        """At most one dirty copy machine-wide, directory always exact."""
        m = machine()
        now = 0
        for node, line_idx, write in ops:
            addr = 0x1000 + line_idx * 32
            res = m.access(node, addr, write, now)
            now = max(now + 1, res.ready + 1)  # complete before the next
            m.check_coherence_invariants()
