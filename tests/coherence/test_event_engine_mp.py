"""Multiprocessor event engine vs the naive lockstep reference.

Same contract as the workstation side (tests/core/test_event_engine.py):
``engine="events"`` must reproduce the naive per-cycle loop bit for bit
— including the RNG-sensitive interconnect latencies, which is why the
event loop steps runnable nodes in node order every cycle and only
jumps when *every* node is parked.
"""

import dataclasses

import pytest

from repro.api import Simulation
from repro.config import MultiprocessorParams

SMALL_PARAMS = MultiprocessorParams(n_nodes=2)

#: Memory-latency-bound machine (~4x DASH latencies) where the event
#: engine's fast-forward dominates; mirrors benchmarks.
STRESS_PARAMS = MultiprocessorParams(
    n_nodes=4,
    local_memory=(120, 160),
    remote_memory=(400, 520),
    remote_cache=(520, 640),
)


def comparable(result):
    d = dataclasses.asdict(result)
    d.pop("engine")
    d.pop("raw")
    return d


def run_app(app, scheme, n_contexts, engine, params=SMALL_PARAMS,
            scale=0.25, seed=7):
    simulation = Simulation.from_config(
        params, scheme=scheme, n_contexts=n_contexts, seed=seed,
        engine=engine).load(app, scale=scale)
    return simulation.run()


class TestBitIdentical:
    @pytest.mark.parametrize("app", ("mp3d", "cholesky"))
    def test_splash_interleaved(self, app):
        events = run_app(app, "interleaved", 2, "events")
        naive = run_app(app, "interleaved", 2, "naive")
        assert events.completed and naive.completed
        assert comparable(events) == comparable(naive)

    def test_mp3d_blocked(self):
        events = run_app("mp3d", "blocked", 2, "events")
        naive = run_app("mp3d", "blocked", 2, "naive")
        assert events.completed and naive.completed
        assert comparable(events) == comparable(naive)

    def test_mp3d_single_context(self):
        events = run_app("mp3d", "single", 1, "events")
        naive = run_app("mp3d", "single", 1, "naive")
        assert events.completed and naive.completed
        assert comparable(events) == comparable(naive)

    @pytest.mark.slow
    @pytest.mark.parametrize("app", ("mp3d", "cholesky"))
    def test_memory_bound_stress_machine(self, app):
        """The benchmark-gate configuration, where jumps are longest."""
        events = run_app(app, "interleaved", 2, "events",
                         params=STRESS_PARAMS, scale=0.5, seed=1994)
        naive = run_app(app, "interleaved", 2, "naive",
                        params=STRESS_PARAMS, scale=0.5, seed=1994)
        assert events.completed and naive.completed
        assert comparable(events) == comparable(naive)


class TestUnifiedRunAPI:
    def _sim(self, **kwargs):
        return Simulation.from_config(
            SMALL_PARAMS, scheme="interleaved", n_contexts=2, seed=7,
            **kwargs).load("mp3d", scale=0.25).simulator

    def test_positional_cycles_warns(self):
        sim = self._sim()
        with pytest.warns(DeprecationWarning, match="deprecated"):
            result = sim.run(1_000)
        assert sim.now <= 1_000
        assert result.completed is (sim.now < 1_000)

    def test_run_defaults_to_completion(self):
        from repro.api import RunResult
        sim = self._sim()
        result = sim.run()
        assert isinstance(result, RunResult)
        assert result.kind == "multiprocessor"
        assert result.completed
        assert result.cycles == sim.now

    def test_run_to_completion_shim_warns_and_returns_mpresult(self):
        from repro.core.mpsimulator import MPResult
        sim = self._sim()
        with pytest.warns(DeprecationWarning, match="run_to_completion"):
            result = sim.run_to_completion(max_cycles=10_000_000)
        assert isinstance(result, MPResult)
        assert result.cycles == sim.now

    def test_run_to_completion_shim_raises_on_timeout(self):
        sim = self._sim()
        with pytest.warns(DeprecationWarning):
            with pytest.raises(RuntimeError, match="did not finish"):
                sim.run_to_completion(max_cycles=10)

    def test_engine_argument_validated(self):
        with pytest.raises(ValueError, match="engine"):
            self._sim(engine="warp")
