"""Directory entries and the Table 8 latency model."""

from repro.config import MultiprocessorParams
from repro.coherence.directory import Directory, DirEntry
from repro.coherence.interconnect import LatencyModel


class TestDirEntry:
    def test_initial_state_uncached(self):
        e = DirEntry()
        assert not e.is_dirty
        assert e.sharer_list() == []

    def test_sharer_list(self):
        e = DirEntry()
        e.sharers = 0b1011
        assert e.sharer_list() == [0, 1, 3]

    def test_dirty_state(self):
        e = DirEntry()
        e.owner = 2
        assert e.is_dirty

    def test_repr_states(self):
        e = DirEntry()
        assert "uncached" in repr(e)
        e.sharers = 1
        assert "shared" in repr(e)
        e.owner = 0
        assert "dirty" in repr(e)


class TestDirectory:
    def test_entry_allocates_once(self):
        d = Directory()
        e1 = d.entry(0x100)
        e2 = d.entry(0x100)
        assert e1 is e2

    def test_peek_does_not_allocate(self):
        d = Directory()
        assert d.peek(0x100) is None
        d.entry(0x100)
        assert d.peek(0x100) is not None


class TestLatencyModel:
    def test_ranges_respected(self):
        params = MultiprocessorParams()
        lm = LatencyModel(params, seed=11)
        for _ in range(100):
            assert params.local_memory[0] <= lm.local_memory() \
                <= params.local_memory[1]
            assert params.remote_memory[0] <= lm.remote_memory() \
                <= params.remote_memory[1]
            assert params.remote_cache[0] <= lm.remote_cache() \
                <= params.remote_cache[1]

    def test_latency_ordering(self):
        """local < remote < remote-cache on average (Table 8 / DASH)."""
        lm = LatencyModel(MultiprocessorParams(), seed=5)
        local = sum(lm.local_memory() for _ in range(200)) / 200
        remote = sum(lm.remote_memory() for _ in range(200)) / 200
        rcache = sum(lm.remote_cache() for _ in range(200)) / 200
        assert local < remote < rcache

    def test_requester_dispatch(self):
        params = MultiprocessorParams()
        lm = LatencyModel(params, seed=5)
        assert params.local_memory[0] <= lm.memory_latency(2, 2) \
            <= params.local_memory[1]
        assert params.remote_memory[0] <= lm.memory_latency(2, 3) \
            <= params.remote_memory[1]

    def test_deterministic_with_seed(self):
        a = LatencyModel(MultiprocessorParams(), seed=9)
        b = LatencyModel(MultiprocessorParams(), seed=9)
        assert [a.remote_memory() for _ in range(10)] == \
               [b.remote_memory() for _ in range(10)]

    def test_sample_counts(self):
        lm = LatencyModel(MultiprocessorParams(), seed=9)
        lm.local_memory()
        lm.remote_cache()
        assert lm.samples["local"] == 1
        assert lm.samples["remote_cache"] == 1
