"""JobSpec validation, spool round-trip, and cache-key interchange."""

import pytest

from repro.config import SystemConfig, MultiprocessorParams
from repro.experiments.runner import ExperimentContext
from repro.service.jobs import JobSpec

FAST = SystemConfig.fast()
MPP = MultiprocessorParams(n_nodes=2)


def _spec(points, **kwargs):
    kwargs.setdefault("config", FAST)
    kwargs.setdefault("mp_params", MPP)
    return JobSpec(points=points, **kwargs)


def test_points_are_normalised_and_deduped():
    spec = _spec((("uniproc", "R1", "single", 1),
                  ("uniproc", "R1", "single", 1),
                  ("uniproc", "R1", "interleaved", 2)))
    assert len(spec.points) == 2
    assert spec.points[0].kind == "uniproc"


def test_empty_job_rejected():
    with pytest.raises(ValueError):
        _spec(())


def test_unknown_engine_rejected():
    with pytest.raises(ValueError):
        _spec((("uniproc", "R1", "single", 1),), engine="warp")


def test_sweep_classmethod_covers_default_points():
    from repro.experiments.sweep import default_points
    spec = JobSpec.sweep(workloads=("R1",), apps=("cholesky",),
                        config=FAST, mp_params=MPP)
    assert spec.points == tuple(default_points(workloads=("R1",),
                                               apps=("cholesky",)))


def test_mp_points_use_the_mp_window():
    spec = _spec((("mp", "cholesky", "single", 1),), warmup=123,
                 measure=456)
    from repro.experiments.runner import MP_MAX_CYCLES
    assert spec.point_window(spec.points[0]) == (0, MP_MAX_CYCLES)


def test_cache_keys_interchangeable_with_batch_context():
    """The acceptance contract: service cache entries ARE batch entries."""
    spec = _spec((("uniproc", "R1", "interleaved", 2),
                  ("mp", "cholesky", "single", 1)),
                 warmup=1_000, measure=6_000)
    ctx = ExperimentContext(config=FAST, mp_params=MPP,
                            warmup=1_000, measure=6_000)
    for point in spec.points:
        assert spec.cache_key(point) == ctx.point_cache_key(
            point.kind, point.name, point.scheme, point.n_contexts)


def test_spool_dict_round_trip():
    spec = _spec((("uniproc", "R1", "single", 1),
                  ("mp", "cholesky", "interleaved", 2)),
                 seed=7, warmup=500, measure=2_000, engine="burst",
                 timeout=12.5, max_retries=4)
    back = JobSpec.from_dict(spec.to_dict())
    assert back.points == spec.points
    assert back.config == spec.config
    assert back.mp_params == spec.mp_params
    assert (back.seed, back.warmup, back.measure) == (7, 500, 2_000)
    assert back.engine == "burst"
    assert back.timeout == 12.5
    assert back.max_retries == 4


def test_spool_dict_rejects_unknown_schema():
    payload = _spec((("uniproc", "R1", "single", 1),)).to_dict()
    payload["schema"] = 999
    with pytest.raises(ValueError):
        JobSpec.from_dict(payload)


def test_spool_dict_rejects_custom_config():
    import dataclasses
    custom = dataclasses.replace(SystemConfig.fast(), workload_scale=3.5)
    spec = _spec((("uniproc", "R1", "single", 1),), config=custom)
    with pytest.raises(ValueError):
        spec.to_dict()
