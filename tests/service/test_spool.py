"""Spool transport and the serve/submit/jobs CLI verbs."""

import json

import pytest

from repro.config import SystemConfig, MultiprocessorParams
from repro.experiments.cache import ResultCache
from repro.experiments.cli import main as cli_main
from repro.service import JobManager, JobSpec
from repro.service.spool import Spool, serve_forever

FAST = SystemConfig.fast()
MPP = MultiprocessorParams(n_nodes=2)


def _spec(points=(("uniproc", "R1", "single", 1),), **kwargs):
    kwargs.setdefault("config", FAST)
    kwargs.setdefault("mp_params", MPP)
    kwargs.setdefault("warmup", 1_000)
    kwargs.setdefault("measure", 6_000)
    return JobSpec(points=points, **kwargs)


def test_submit_claim_round_trip(tmp_path):
    spool = Spool(tmp_path)
    spec = _spec()
    job_id = spool.submit(spec)
    assert job_id == "sj-00001"
    pending = spool.pending()
    assert [jid for jid, _ in pending] == [job_id]
    claimed = spool.claim(*pending[0])
    assert claimed.points == spec.points
    assert spool.pending() == []
    assert (spool.jobs_dir / job_id / "spec.json").exists()


def test_ids_are_unique_and_ordered(tmp_path):
    spool = Spool(tmp_path)
    ids = [spool.submit(_spec()) for _ in range(3)]
    assert ids == ["sj-00001", "sj-00002", "sj-00003"]


def test_bad_spec_is_parked_not_fatal(tmp_path):
    spool = Spool(tmp_path)
    spool.queue_dir.mkdir(parents=True, exist_ok=True)
    (spool.queue_dir / "sj-00001.json").write_text("{ bad json")
    job_id, path = spool.pending()[0]
    assert spool.claim(job_id, path) is None
    assert spool.pending() == []
    status = spool.read_status(job_id)
    assert status["status"] == "failed"
    assert "unreadable" in status["error"]


def test_serve_once_runs_queued_jobs(tmp_path):
    spool = Spool(tmp_path / "sp")
    job_id = spool.submit(_spec(points=(
        ("uniproc", "R1", "single", 1),
        ("uniproc", "R1", "interleaved", 2))))
    manager = JobManager(workers=2, cache=ResultCache(tmp_path / "rc"))
    served = serve_forever(spool, manager, once=True, poll=0.02)
    assert served == 1
    status = spool.read_status(job_id)
    assert status["status"] == "completed"
    assert status["completed"] == 2
    results = spool.read_results(job_id)
    assert len(results) == 2
    assert {json.loads(r)["scheme"] for r in results} == {"single",
                                                          "interleaved"}


def test_cli_submit_serve_jobs_round_trip(tmp_path, capsys):
    spool_dir = str(tmp_path / "sp")
    rc = cli_main(["submit", "--spool", spool_dir,
                   "--warmup", "1000", "--measure", "6000",
                   "--points",
                   "uniproc:R1:single:1,uniproc:R1:interleaved:2"])
    assert rc == 0
    job_id = capsys.readouterr().out.strip()
    assert job_id == "sj-00001"

    rc = cli_main(["serve", "--spool", spool_dir, "--once",
                   "--workers", "2",
                   "--cache-dir", str(tmp_path / "rc"),
                   "--burst-cache-dir", str(tmp_path / "bc")])
    assert rc == 0
    assert "served 1 job(s)" in capsys.readouterr().err

    rc = cli_main(["jobs", "--spool", spool_dir])
    assert rc == 0
    listing = capsys.readouterr().out
    assert job_id in listing and "completed" in listing

    rc = cli_main(["jobs", job_id, "--spool", spool_dir])
    assert rc == 0
    status = json.loads(capsys.readouterr().out)
    assert status["status"] == "completed"
    assert status["results"] == 2


def test_cli_submit_rejects_bad_point(tmp_path):
    with pytest.raises(SystemExit):
        cli_main(["submit", "--spool", str(tmp_path / "sp"),
                  "--points", "uniproc:R1:single"])
    with pytest.raises(SystemExit):
        cli_main(["submit", "--spool", str(tmp_path / "sp"),
                  "--points", "uniproc:NOPE:single:1"])


def test_cli_jobs_unknown_id_errors(tmp_path):
    with pytest.raises(SystemExit):
        cli_main(["jobs", "sj-99999", "--spool", str(tmp_path / "sp")])


def test_serve_writes_burst_stats_into_status(tmp_path):
    spool = Spool(tmp_path / "sp")
    job_id = spool.submit(_spec(points=(
        ("uniproc", "R1", "single", 1),
        ("uniproc", "R1", "interleaved", 2)), engine="burst"))
    manager = JobManager(workers=1, cache=ResultCache(tmp_path / "rc"),
                         burst_dir=tmp_path / "bc")
    serve_forever(spool, manager, once=True, poll=0.02)
    status = spool.read_status(job_id)
    assert status["burst_cache"]["stores"] > 0
    assert status["burst_cache"]["hits"] > 0
