"""Spool transport and the serve/submit/jobs CLI verbs."""

import json

import pytest

from repro.config import SystemConfig, MultiprocessorParams
from repro.experiments.cache import ResultCache
from repro.experiments.cli import main as cli_main
from repro.service import JobManager, JobSpec
from repro.service.spool import Spool, serve_forever

FAST = SystemConfig.fast()
MPP = MultiprocessorParams(n_nodes=2)


def _spec(points=(("uniproc", "R1", "single", 1),), **kwargs):
    kwargs.setdefault("config", FAST)
    kwargs.setdefault("mp_params", MPP)
    kwargs.setdefault("warmup", 1_000)
    kwargs.setdefault("measure", 6_000)
    return JobSpec(points=points, **kwargs)


def test_submit_claim_round_trip(tmp_path):
    spool = Spool(tmp_path)
    spec = _spec()
    job_id = spool.submit(spec)
    assert job_id == "sj-00001"
    pending = spool.pending()
    assert [jid for jid, _ in pending] == [job_id]
    claimed = spool.claim(*pending[0])
    assert claimed.points == spec.points
    assert spool.pending() == []
    assert (spool.jobs_dir / job_id / "spec.json").exists()


def test_ids_are_unique_and_ordered(tmp_path):
    spool = Spool(tmp_path)
    ids = [spool.submit(_spec()) for _ in range(3)]
    assert ids == ["sj-00001", "sj-00002", "sj-00003"]


def test_bad_spec_is_parked_not_fatal(tmp_path):
    spool = Spool(tmp_path)
    spool.queue_dir.mkdir(parents=True, exist_ok=True)
    (spool.queue_dir / "sj-00001.json").write_text("{ bad json")
    job_id, path = spool.pending()[0]
    assert spool.claim(job_id, path) is None
    assert spool.pending() == []
    status = spool.read_status(job_id)
    assert status["status"] == "failed"
    assert "unreadable" in status["error"]


def test_serve_once_runs_queued_jobs(tmp_path):
    spool = Spool(tmp_path / "sp")
    job_id = spool.submit(_spec(points=(
        ("uniproc", "R1", "single", 1),
        ("uniproc", "R1", "interleaved", 2))))
    manager = JobManager(workers=2, cache=ResultCache(tmp_path / "rc"))
    served = serve_forever(spool, manager, once=True, poll=0.02)
    assert served == 1
    status = spool.read_status(job_id)
    assert status["status"] == "completed"
    assert status["completed"] == 2
    results = spool.read_results(job_id)
    assert len(results) == 2
    assert {json.loads(r)["scheme"] for r in results} == {"single",
                                                          "interleaved"}


def test_cli_submit_serve_jobs_round_trip(tmp_path, capsys):
    spool_dir = str(tmp_path / "sp")
    rc = cli_main(["submit", "--spool", spool_dir,
                   "--warmup", "1000", "--measure", "6000",
                   "--points",
                   "uniproc:R1:single:1,uniproc:R1:interleaved:2"])
    assert rc == 0
    job_id = capsys.readouterr().out.strip()
    assert job_id == "sj-00001"

    rc = cli_main(["serve", "--spool", spool_dir, "--once",
                   "--workers", "2",
                   "--cache-dir", str(tmp_path / "rc"),
                   "--burst-cache-dir", str(tmp_path / "bc")])
    assert rc == 0
    assert "served 1 job(s)" in capsys.readouterr().err

    rc = cli_main(["jobs", "--spool", spool_dir])
    assert rc == 0
    listing = capsys.readouterr().out
    assert job_id in listing and "completed" in listing

    rc = cli_main(["jobs", job_id, "--spool", spool_dir])
    assert rc == 0
    status = json.loads(capsys.readouterr().out)
    assert status["status"] == "completed"
    assert status["results"] == 2


def test_cli_submit_rejects_bad_point(tmp_path):
    with pytest.raises(SystemExit):
        cli_main(["submit", "--spool", str(tmp_path / "sp"),
                  "--points", "uniproc:R1:single"])
    with pytest.raises(SystemExit):
        cli_main(["submit", "--spool", str(tmp_path / "sp"),
                  "--points", "uniproc:NOPE:single:1"])


def test_cli_jobs_unknown_id_errors(tmp_path):
    with pytest.raises(SystemExit):
        cli_main(["jobs", "sj-99999", "--spool", str(tmp_path / "sp")])


def test_serve_writes_burst_stats_into_status(tmp_path):
    spool = Spool(tmp_path / "sp")
    job_id = spool.submit(_spec(points=(
        ("uniproc", "R1", "single", 1),
        ("uniproc", "R1", "interleaved", 2)), engine="burst"))
    manager = JobManager(workers=1, cache=ResultCache(tmp_path / "rc"),
                         burst_dir=tmp_path / "bc")
    serve_forever(spool, manager, once=True, poll=0.02)
    status = spool.read_status(job_id)
    assert status["burst_cache"]["stores"] > 0
    assert status["burst_cache"]["hits"] > 0


# -- stale claim markers (a submitter killed mid-submit) -------------------

def _age(path, seconds):
    import os
    old = path.stat().st_mtime - seconds
    os.utime(str(path), (old, old))


def test_killed_submit_strands_claim_and_retires_the_id(tmp_path):
    """Regression setup: a submitter dying between the O_EXCL claim and
    the spec write leaves a marker that retires the id forever."""
    import repro.service.spool as spool_mod
    spool = Spool(tmp_path / "sp")
    real_write = spool_mod._write_json

    def killed_write(path, payload):     # dies before the spec lands
        raise KeyboardInterrupt("submitter killed mid-submit")

    spool_mod._write_json = killed_write
    try:
        with pytest.raises(KeyboardInterrupt):
            spool.submit(_spec())
    finally:
        spool_mod._write_json = real_write
    assert list(spool.queue_dir.glob("*.claim")) == [
        spool.queue_dir / "sj-00001.claim"]
    # the orphaned marker retires sj-00001: the next submit skips it
    assert spool.submit(_spec()) == "sj-00002"


def test_sweep_stale_claims_recovers_the_id(tmp_path):
    spool = Spool(tmp_path / "sp")
    marker = spool.queue_dir / "sj-00001.claim"
    spool.queue_dir.mkdir(parents=True)
    marker.touch()
    # a fresh marker is a live submit in flight: never swept
    assert spool.sweep_stale_claims(max_age=60.0) == 0
    _age(marker, 120.0)
    assert spool.sweep_stale_claims(max_age=60.0) == 1
    assert not marker.exists()
    # the allocator hands the recovered id out again
    assert spool.submit(_spec()) == "sj-00001"


def test_serve_forever_sweeps_stale_claims(tmp_path):
    """The serving loop itself clears orphans, so a long-lived server
    heals a spool no matter which client died into it."""
    spool = Spool(tmp_path / "sp")
    job_id = spool.submit(_spec())
    stale = spool.queue_dir / "sj-09999.claim"
    stale.touch()
    _age(stale, 120.0)
    manager = JobManager(workers=1, cache=ResultCache(tmp_path / "rc"))
    serve_forever(spool, manager, once=True, poll=0.02)
    assert not stale.exists()
    assert spool.read_status(job_id)["status"] == "completed"


def test_completed_job_claim_leftover_is_safe_to_sweep(tmp_path):
    """A marker whose spec DID land (then got claimed by a server) is
    also swept without disturbing the job's directory."""
    spool = Spool(tmp_path / "sp")
    job_id = spool.submit(_spec())
    # simulate the unlink in submit() having been lost (e.g. ENOSPC)
    leftover = spool.queue_dir / (job_id + ".claim")
    leftover.touch()
    _age(leftover, 120.0)
    manager = JobManager(workers=1, cache=ResultCache(tmp_path / "rc"))
    serve_forever(spool, manager, once=True, poll=0.02)
    assert not leftover.exists()
    assert spool.read_status(job_id)["status"] == "completed"
    assert len(spool.read_results(job_id)) == 1
