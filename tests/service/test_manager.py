"""JobManager end-to-end: bit-identity with the serial path, cache
read-through, retry/timeout/cancel robustness, and streaming."""

import asyncio
import json

import pytest

from repro.config import SystemConfig, MultiprocessorParams
from repro.experiments.cache import ResultCache
from repro.service import JobManager, JobSpec, JobStatus
from repro.service.manager import ServiceError

FAST = SystemConfig.fast()
MPP = MultiprocessorParams(n_nodes=2)

UNIPROC_2PT = (("uniproc", "R1", "single", 1),
               ("uniproc", "R1", "interleaved", 2))


def _spec(points=UNIPROC_2PT, **kwargs):
    kwargs.setdefault("config", FAST)
    kwargs.setdefault("mp_params", MPP)
    kwargs.setdefault("warmup", 1_000)
    kwargs.setdefault("measure", 6_000)
    return JobSpec(points=points, **kwargs)


def _by_point(payloads):
    out = {}
    for p in payloads:
        d = json.loads(p)
        out[(d["workload"], d["scheme"], d["n_contexts"])] = p
    return out


def test_smoke_bit_identical_to_serial_sweep(tmp_path):
    """Submit a 2-point sweep; results must be bit-identical to the
    serial SweepEngine/facade computation of the same points."""
    from repro.api import Simulation
    with JobManager(workers=2, cache=ResultCache(tmp_path / "rc")) as mgr:
        job_id = mgr.submit(_spec())
        payloads = mgr.results(job_id, timeout=240)
        status = mgr.status(job_id)
    assert status["status"] == JobStatus.COMPLETED
    assert status["completed"] == 2

    serial = {}
    for scheme, n in (("single", 1), ("interleaved", 2)):
        result = Simulation.from_config(
            FAST, scheme=scheme, n_contexts=n, seed=1994,
            engine="events").load("R1").run(warmup=1_000, measure=6_000)
        serial[("R1", scheme, n)] = result.to_json()
    assert _by_point(payloads) == serial


def test_cache_read_through_and_warm_resubmit(tmp_path):
    cache = ResultCache(tmp_path / "rc")
    spec = _spec()
    with JobManager(workers=2, cache=cache) as mgr:
        first = mgr.results(mgr.submit(spec), timeout=240)
    assert cache.stores == 2

    with JobManager(workers=2, cache=cache) as mgr:
        job_id = mgr.submit(spec)
        second = mgr.results(job_id, timeout=60)
        status = mgr.status(job_id)
    # All points satisfied from cache, byte-identical payload stream.
    assert status["cache_hits"] == 2
    assert sorted(second) == sorted(first)


def test_service_entries_readable_by_batch_cache_get(tmp_path):
    """What the service writes, ExperimentContext-style reads accept."""
    cache = ResultCache(tmp_path / "rc")
    spec = _spec(points=(("uniproc", "R1", "single", 1),))
    with JobManager(workers=1, cache=cache) as mgr:
        mgr.results(mgr.submit(spec), timeout=240)
    point = spec.points[0]
    result = cache.get(spec.cache_key(point), point.kind)
    assert result is not None
    assert result.duration == 6_000


def test_worker_death_is_retried(tmp_path):
    spec = _spec(points=(("uniproc", "R1", "single", 1),), max_retries=3)
    with JobManager(workers=1, backoff=0.02) as mgr:
        job_id = mgr.submit(spec, fail_times=2)
        payloads = mgr.results(job_id, timeout=240)
        status = mgr.status(job_id)
    assert status["status"] == JobStatus.COMPLETED
    assert status["points"][0]["attempts"] == 3
    assert len(payloads) == 1


def test_retries_exhausted_fails_the_job(tmp_path):
    spec = _spec(points=(("uniproc", "R1", "single", 1),), max_retries=1)
    with JobManager(workers=1, backoff=0.02) as mgr:
        job_id = mgr.submit(spec, fail_times=99)
        with pytest.raises(ServiceError):
            mgr.results(job_id, timeout=120)
        status = mgr.status(job_id)
    assert status["status"] == JobStatus.FAILED
    assert "died" in status["error"]


def test_simulation_error_fails_without_retry(tmp_path):
    # An unknown workload name raises inside the worker — a
    # deterministic error, so exactly one attempt must be made.
    spec = JobSpec(points=(("uniproc", "no-such-workload", "single", 1),),
                   config=FAST, mp_params=MPP, warmup=100, measure=500,
                   max_retries=5)
    with JobManager(workers=1, backoff=0.02) as mgr:
        job_id = mgr.submit(spec)
        with pytest.raises(ServiceError):
            mgr.results(job_id, timeout=120)
        status = mgr.status(job_id)
    assert status["status"] == JobStatus.FAILED
    assert status["points"][0]["attempts"] == 1


def test_job_timeout(tmp_path):
    spec = _spec(points=(("mp", "cholesky", "interleaved", 2),),
                 timeout=0.15)
    with JobManager(workers=1) as mgr:
        job_id = mgr.submit(spec)
        with pytest.raises(ServiceError):
            mgr.results(job_id, timeout=60)
        assert mgr.status(job_id)["status"] == JobStatus.TIMEOUT


def test_cancel(tmp_path):
    with JobManager(workers=1) as mgr:
        job_id = mgr.submit(_spec(points=(("mp", "mp3d", "single", 1),)))
        assert mgr.cancel(job_id)
        assert mgr.status(job_id)["status"] == JobStatus.CANCELLED
        assert not mgr.cancel(job_id)      # idempotent


def test_unknown_job_id():
    with JobManager(workers=1) as mgr:
        with pytest.raises(KeyError):
            mgr.status("job-9999")


def test_iter_results_streams_in_completion_order(tmp_path):
    with JobManager(workers=1, cache=ResultCache(tmp_path / "rc")) as mgr:
        job_id = mgr.submit(_spec())
        streamed = list(mgr.iter_results(job_id, timeout=240))
        final = mgr.results(job_id, timeout=10)
    assert streamed == final


def test_async_stream(tmp_path):
    async def drain():
        with JobManager(workers=2) as mgr:
            job_id = mgr.submit(_spec())
            got = []
            async for payload in mgr.stream(job_id):
                got.append(payload)
            return got, mgr.status(job_id)

    got, status = asyncio.run(drain())
    assert status["status"] == JobStatus.COMPLETED
    assert len(got) == 2
    assert {json.loads(p)["scheme"] for p in got} == {"single",
                                                      "interleaved"}


def test_async_stream_raises_on_failed_job(tmp_path):
    async def drain():
        with JobManager(workers=1, backoff=0.02) as mgr:
            job_id = mgr.submit(
                _spec(points=(("uniproc", "R1", "single", 1),),
                      max_retries=0), fail_times=9)
            async for _payload in mgr.stream(job_id):
                pass

    with pytest.raises(ServiceError):
        asyncio.run(drain())


def test_shutdown_flushes_completed_points(tmp_path):
    """Completed points reach the on-disk cache even when the manager
    is shut down (flush-on-shutdown is part of graceful stop)."""
    cache = ResultCache(tmp_path / "rc")
    with JobManager(workers=2, cache=cache) as mgr:
        job_id = mgr.submit(_spec())
        mgr.results(job_id, timeout=240)
    # context exit ran shutdown(); both points must be on disk
    assert cache.disk_stats()["entries"] == 2


def test_corrupt_cache_entry_recovered_through_manager(tmp_path):
    """Corruption recovery end-to-end: a corrupted entry is detected,
    discarded, recomputed by a worker, and rewritten."""
    cache = ResultCache(tmp_path / "rc")
    spec = _spec(points=(("uniproc", "R1", "single", 1),))
    with JobManager(workers=1, cache=cache) as mgr:
        first = mgr.results(mgr.submit(spec), timeout=240)
    point = spec.points[0]
    entry = cache._path(spec.cache_key(point))
    entry.write_text(entry.read_text()[:40] + "GARBAGE")

    cache2 = ResultCache(tmp_path / "rc")
    with JobManager(workers=1, cache=cache2) as mgr:
        job_id = mgr.submit(spec)
        second = mgr.results(job_id, timeout=240)
        status = mgr.status(job_id)
    assert cache2.corrupt == 1
    assert status["cache_hits"] == 0
    assert status["points"][0]["source"] == "computed"
    assert second == first                  # recomputed bit-identically
    # and the entry is valid again on disk
    cache3 = ResultCache(tmp_path / "rc")
    assert cache3.get_state(spec.cache_key(point), point.kind) is not None


def test_two_jobs_run_concurrently(tmp_path):
    with JobManager(workers=2, cache=ResultCache(tmp_path / "rc")) as mgr:
        a = mgr.submit(_spec(points=(("uniproc", "R1", "single", 1),)))
        b = mgr.submit(_spec(points=(("dedicated", "mxm", "single", 1),)))
        ra = mgr.results(a, timeout=240)
        rb = mgr.results(b, timeout=240)
        listing = mgr.jobs()
    assert len(ra) == 1 and len(rb) == 1
    assert [j["job_id"] for j in listing] == [a, b]
    assert all(j["status"] == JobStatus.COMPLETED for j in listing)


def test_cross_worker_burst_cache_hits(tmp_path):
    """Acceptance: a burst-engine sweep whose points share a program
    must hit the shared table cache across worker processes."""
    spec = _spec(engine="burst")        # two R1 points, one program
    with JobManager(workers=1,          # serialise: 2nd worker sees
                    cache=ResultCache(tmp_path / "rc"),   # 1st's store
                    burst_dir=tmp_path / "bursts") as mgr:
        job_id = mgr.submit(spec)
        payloads = mgr.results(job_id, timeout=240)
        status = mgr.status(job_id)
    assert status["status"] == JobStatus.COMPLETED
    assert status["burst_cache"]["hits"] > 0
    assert status["burst_cache"]["stores"] > 0
    assert status["burst_cache"]["rejected"] == 0

    # ... and stays bit-identical to the events engine (service-level
    # restatement of the engines' bit-identity contract).
    events = _spec()
    with JobManager(workers=2) as mgr:
        baseline = mgr.results(mgr.submit(events), timeout=240)
    assert sorted(json.loads(p)["cycles"] for p in payloads) \
        == sorted(json.loads(p)["cycles"] for p in baseline)
