"""Network differential: the TCP transport must be invisible.

Submits the full 7-workload uniprocessor matrix over a real socket and
asserts the streamed payloads are byte-identical to the serial
``Simulation`` facade computing the same points — the interleaving-
independence argument extended across a network hop.  Also drives the
CLI end-to-end: a ``serve --listen`` server in one thread, ``submit
--connect --stream`` and ``jobs --connect`` as a filesystem-free
client in another.
"""

import json
import threading

from repro.api import Simulation
from repro.config import SystemConfig, MultiprocessorParams
from repro.experiments.cache import ResultCache
from repro.experiments.cli import main as cli_main
from repro.service import JobManager, JobSpec, connect
from repro.service.net import ServiceServer
from repro.workloads.uniprocessor import WORKLOAD_ORDER

FAST = SystemConfig.fast()
MPP = MultiprocessorParams(n_nodes=2)
WARMUP, MEASURE = 1_000, 6_000

#: One point per workload: the full 7-workload matrix, alternating
#: schemes/context counts so both code paths are exercised.
MATRIX = tuple(
    ("uniproc", name, ("interleaved" if i % 2 else "single"),
     (2 if i % 2 else 1))
    for i, name in enumerate(WORKLOAD_ORDER))


def _serial_payloads(points):
    out = {}
    for _, name, scheme, n in points:
        result = Simulation.from_config(
            FAST, scheme=scheme, n_contexts=n, seed=1994,
            engine="events").load(name).run(warmup=WARMUP,
                                            measure=MEASURE)
        out[(name, scheme, n)] = result.to_json()
    return out


def _by_point(payloads):
    out = {}
    for p in payloads:
        d = json.loads(p)
        out[(d["workload"], d["scheme"], d["n_contexts"])] = p
    return out


def test_full_matrix_over_socket_matches_serial(tmp_path):
    spec = JobSpec(points=MATRIX, config=FAST, mp_params=MPP,
                   warmup=WARMUP, measure=MEASURE)
    with JobManager(workers=4, cache=ResultCache(tmp_path / "rc")) as mgr:
        with ServiceServer(mgr) as server:
            with connect(server.host, server.port) as client:
                job_id = client.submit(spec)
                streamed = list(client.stream(job_id))
                status = client.status(job_id)
    assert status["status"] == "completed"
    assert status["completed"] == len(MATRIX)
    assert _by_point(streamed) == _serial_payloads(MATRIX)


def test_stream_resume_midway_is_byte_identical(tmp_path):
    """Disconnect after a prefix, resume with ``from_index``; the
    stitched stream equals the uninterrupted one byte for byte."""
    spec = JobSpec(points=MATRIX[:4], config=FAST, mp_params=MPP,
                   warmup=WARMUP, measure=MEASURE)
    with JobManager(workers=2, cache=ResultCache(tmp_path / "rc")) as mgr:
        with ServiceServer(mgr) as server:
            with connect(server.host, server.port) as first:
                job_id = first.submit(spec)
                stream = first.stream(job_id)
                prefix = [next(stream), next(stream)]
                first.close()              # drop mid-stream, on purpose
            with connect(server.host, server.port) as second:
                suffix = list(second.stream(job_id, from_index=2))
            whole = mgr.results(job_id, timeout=240)
    assert prefix + suffix == whole
    assert len(set(prefix + suffix)) == len(MATRIX[:4])


def test_cli_socket_round_trip(tmp_path, capsys, monkeypatch):
    """``submit --connect``/``jobs --connect`` against a ``serve
    --listen`` server, with the client forbidden filesystem access
    to the server's state."""
    monkeypatch.setenv("REPRO_SPOOL_DIR", str(tmp_path / "unused-spool"))
    ready = threading.Event()
    bound = {}

    def run_server():
        # _serve exercises the real CLI wiring; ready fires post-bind.
        cli_main(["serve", "--listen", "127.0.0.1:0", "--workers", "2",
                  "--serve-seconds", "60",
                  "--cache-dir", str(tmp_path / "rc")],
                 _ready=lambda h, p: (bound.update(host=h, port=p),
                                      ready.set()))

    server = threading.Thread(target=run_server, daemon=True)
    server.start()
    assert ready.wait(timeout=30), "serve --listen never bound"
    addr = "%s:%d" % (bound["host"], bound["port"])

    rc = cli_main(["submit", "--connect", addr, "--stream",
                   "--warmup", str(WARMUP), "--measure", str(MEASURE),
                   "--points",
                   "uniproc:R1:single:1,uniproc:R1:interleaved:2"])
    assert rc == 0
    lines = capsys.readouterr().out.strip().splitlines()
    job_id, payloads = lines[0], lines[1:]
    assert len(payloads) == 2
    serial = _serial_payloads((("uniproc", "R1", "single", 1),
                               ("uniproc", "R1", "interleaved", 2)))
    assert _by_point(payloads) == serial

    assert cli_main(["jobs", job_id, "--connect", addr]) == 0
    status = json.loads(capsys.readouterr().out)
    assert status["status"] == "completed"
    assert status["results"] == 2
    # the client side never created local service state
    assert not (tmp_path / "unused-spool").exists()
