"""The transport-agnostic client API: one surface, two wires.

Pins the api_redesign satellites: the ``Transport`` protocol is
implemented by both ``SpoolTransport`` and ``ServiceClient``; the
``repro.service`` public surface is stable; serialized specs, statuses
and payloads carry ``schema_version``; and the old positional
``--spool`` CLI form warns but works.
"""

import json
import threading
import warnings

import pytest

import repro.service as service
from repro.config import SystemConfig, MultiprocessorParams
from repro.experiments.cache import ResultCache
from repro.experiments.cli import main as cli_main
from repro.service import (JobManager, JobSpec, Transport, connect,
                           open_spool)
from repro.service.client import ServiceClient
from repro.service.net import ServiceServer
from repro.service.spool import Spool, SpoolTransport, serve_forever

FAST = SystemConfig.fast()
MPP = MultiprocessorParams(n_nodes=2)

POINTS = (("uniproc", "R1", "single", 1),
          ("uniproc", "R1", "interleaved", 2))


def _spec(points=POINTS, **kwargs):
    kwargs.setdefault("config", FAST)
    kwargs.setdefault("mp_params", MPP)
    kwargs.setdefault("warmup", 1_000)
    kwargs.setdefault("measure", 6_000)
    return JobSpec(points=points, **kwargs)


# -- public surface -------------------------------------------------------

def test_stable_public_surface():
    for name in ("JobSpec", "JobStatus", "Transport", "connect",
                 "open_spool"):
        assert name in service.__all__, name
        assert hasattr(service, name), name
    # everything promised in __all__ actually resolves
    for name in service.__all__:
        assert hasattr(service, name), name


def test_factories_return_transports(tmp_path):
    spool_t = open_spool(tmp_path / "sp")
    assert isinstance(spool_t, SpoolTransport)
    assert isinstance(spool_t, Transport)
    client = connect("127.0.0.1:1")       # no connection made yet
    assert isinstance(client, ServiceClient)
    assert isinstance(client, Transport)
    assert (client.host, client.port) == ("127.0.0.1", 1)
    client2 = connect("127.0.0.1", 2)
    assert (client2.host, client2.port) == ("127.0.0.1", 2)


def test_transport_protocol_method_set():
    for method in ("submit", "status", "results", "payloads", "stream",
                   "cancel", "jobs", "close"):
        assert callable(getattr(SpoolTransport, method)), method
        assert callable(getattr(ServiceClient, method)), method


# -- schema versions ------------------------------------------------------

def test_spec_dict_carries_schema_version():
    payload = _spec().to_dict()
    assert payload["schema_version"] == 1
    assert payload["schema"] == 1          # legacy field kept
    assert JobSpec.from_dict(payload).points == _spec().points


def test_spec_rejects_mismatched_schema_fields():
    payload = _spec().to_dict()
    payload["schema_version"] = 2
    with pytest.raises(ValueError, match="schema"):
        JobSpec.from_dict(payload)
    legacy_only = _spec().to_dict()
    del legacy_only["schema_version"]      # a pre-network spool file
    assert JobSpec.from_dict(legacy_only).points == _spec().points


def test_status_and_payload_carry_schema_version(tmp_path):
    with JobManager(workers=2,
                    cache=ResultCache(tmp_path / "rc")) as mgr:
        job_id = mgr.submit(_spec(points=POINTS[:1]))
        payloads = mgr.results(job_id, timeout=240)
        status = mgr.status(job_id)
    assert status["schema_version"] == 1
    assert json.loads(payloads[0])["schema_version"] == 1


# -- spool transport over a live server -----------------------------------

def test_spool_transport_round_trip(tmp_path):
    spool = Spool(tmp_path / "sp")
    transport = open_spool(tmp_path / "sp")
    job_id = transport.submit(_spec(), idempotency_key="key-1")
    assert transport.submit(_spec(), idempotency_key="key-1") == job_id
    assert transport.status(job_id)["status"] == "queued"

    manager = JobManager(workers=2, cache=ResultCache(tmp_path / "rc"))
    server = threading.Thread(
        target=serve_forever, args=(spool, manager),
        kwargs={"once": True, "poll": 0.02})
    server.start()
    payloads = list(transport.stream(job_id))
    server.join(timeout=120)
    assert len(payloads) == 2
    assert transport.results(job_id, timeout=10) == payloads
    assert transport.payloads(job_id, from_index=1) == payloads[1:]
    statuses = transport.jobs()
    assert [s["job_id"] for s in statuses] == [job_id]
    assert statuses[0]["status"] == "completed"


def test_spool_and_socket_stream_identical_bytes(tmp_path):
    """The transport-agnosticism contract: the same spec through both
    transports yields byte-identical payload sets."""
    spec = _spec()
    # spool side
    spool = Spool(tmp_path / "sp")
    spool_t = open_spool(tmp_path / "sp")
    sid = spool_t.submit(spec)
    manager = JobManager(workers=2, cache=ResultCache(tmp_path / "rc1"))
    serve_forever(spool, manager, once=True, poll=0.02)
    spool_payloads = spool_t.results(sid, timeout=10)
    # socket side (fresh cache: genuinely recomputed)
    with JobManager(workers=2,
                    cache=ResultCache(tmp_path / "rc2")) as mgr:
        with ServiceServer(mgr) as server:
            with connect(server.host, server.port) as client:
                nid = client.submit(spec)
                net_payloads = list(client.stream(nid))
    assert sorted(spool_payloads) == sorted(net_payloads)


def test_spool_transport_cancel_queued_job(tmp_path):
    transport = open_spool(tmp_path / "sp")
    job_id = transport.submit(_spec())
    assert transport.cancel(job_id) is True
    assert transport.status(job_id)["status"] == "cancelled"
    # nothing left for a server to claim
    assert Spool(tmp_path / "sp").pending() == []


def test_spool_transport_cancel_claimed_job(tmp_path):
    spool = Spool(tmp_path / "sp")
    transport = open_spool(tmp_path / "sp")
    # a job big enough to still be running when the cancel lands
    job_id = transport.submit(_spec(
        points=(("uniproc", "R1", "single", 1),),
        measure=4_000_000, warmup=0))
    manager = JobManager(workers=1)
    server = threading.Thread(
        target=serve_forever, args=(spool, manager),
        kwargs={"once": True, "poll": 0.02})
    server.start()
    try:
        cancelled = transport.cancel(job_id, timeout=60.0)
    finally:
        server.join(timeout=120)
    assert cancelled is True
    assert transport.status(job_id)["status"] == "cancelled"


def test_unknown_job_id_raises_key_error(tmp_path):
    transport = open_spool(tmp_path / "sp")
    with pytest.raises(KeyError):
        transport.status("sj-99999")


# -- CLI: transports and the deprecated positional spool ------------------

def test_cli_positional_spool_warns_and_works(tmp_path, capsys):
    spool_dir = str(tmp_path / "sp")
    with warnings.catch_warnings(record=True) as caught:
        warnings.simplefilter("always")
        rc = cli_main(["submit", spool_dir,
                       "--warmup", "1000", "--measure", "6000",
                       "--points", "uniproc:R1:single:1"])
    assert rc == 0
    assert any(w.category is DeprecationWarning
               and "--spool" in str(w.message) for w in caught)
    job_id = capsys.readouterr().out.strip()
    assert job_id == "sj-00001"
    # the spec landed in the directory named positionally
    assert Spool(spool_dir).pending()[0][0] == job_id


def test_cli_jobs_job_id_is_not_mistaken_for_a_spool(tmp_path, capsys):
    spool_dir = str(tmp_path / "sp")
    cli_main(["submit", "--spool", spool_dir,
              "--warmup", "1000", "--measure", "6000",
              "--points", "uniproc:R1:single:1"])
    job_id = capsys.readouterr().out.strip()
    with warnings.catch_warnings(record=True) as caught:
        warnings.simplefilter("always")
        rc = cli_main(["jobs", job_id, "--spool", spool_dir])
    assert rc == 0
    assert not any(w.category is DeprecationWarning for w in caught)
    assert json.loads(capsys.readouterr().out)["status"] == "queued"


def test_cli_submit_with_idempotency_key(tmp_path, capsys):
    spool_dir = str(tmp_path / "sp")
    argv = ["submit", "--spool", spool_dir,
            "--warmup", "1000", "--measure", "6000",
            "--points", "uniproc:R1:single:1",
            "--idempotency-key", "ci-rerun-7"]
    assert cli_main(argv) == 0
    first = capsys.readouterr().out.strip()
    assert cli_main(list(argv)) == 0
    assert capsys.readouterr().out.strip() == first
    assert len(Spool(spool_dir).pending()) == 1
