"""The TCP transport: protocol, robustness, resume, and concurrency.

Covers the wire layer end to end against a live ``ServiceServer`` on
an ephemeral port: handshake versioning, every verb, idempotent
submits, resumable streams (including a server-injected mid-stream
connection drop), protocol fuzzing (garbage JSON, truncated and
oversized frames, wrong schema versions — the server must park the
request and stay up), per-connection read timeouts, and the metrics
the ``stats`` verb exposes.
"""

import json
import socket
import threading

import pytest

from repro.config import SystemConfig, MultiprocessorParams
from repro.experiments.cache import ResultCache
from repro.service import (JobManager, JobSpec, JobStatus, ServiceError,
                           Transport, connect)
from repro.service.net import (PROTO_VERSION, ServiceServer,
                               encode_frame)

FAST = SystemConfig.fast()
MPP = MultiprocessorParams(n_nodes=2)

UNIPROC_2PT = (("uniproc", "R1", "single", 1),
               ("uniproc", "R1", "interleaved", 2))
UNIPROC_3PT = UNIPROC_2PT + (("uniproc", "R1", "interleaved", 4),)


def _spec(points=UNIPROC_2PT, **kwargs):
    kwargs.setdefault("config", FAST)
    kwargs.setdefault("mp_params", MPP)
    kwargs.setdefault("warmup", 1_000)
    kwargs.setdefault("measure", 6_000)
    return JobSpec(points=points, **kwargs)


@pytest.fixture
def manager(tmp_path):
    with JobManager(workers=2,
                    cache=ResultCache(tmp_path / "rc")) as mgr:
        yield mgr


@pytest.fixture
def server(manager):
    with ServiceServer(manager) as srv:
        yield srv


@pytest.fixture
def client(server):
    with connect(server.host, server.port, backoff=0.05) as c:
        yield c


def _raw_connection(server, do_hello=True):
    """A bare socket past (or up to) the handshake, plus its reader."""
    sock = socket.create_connection((server.host, server.port),
                                    timeout=10.0)
    file = sock.makefile("rb")
    hello = json.loads(file.readline())
    if do_hello:
        sock.sendall(encode_frame({"type": "hello",
                                   "proto": PROTO_VERSION}))
    return sock, file, hello


# -- handshake ------------------------------------------------------------

def test_server_greets_with_versioned_hello(server):
    sock, file, hello = _raw_connection(server, do_hello=False)
    assert hello["type"] == "hello"
    assert hello["proto"] == PROTO_VERSION
    assert hello["server"] == "repro-service"
    assert hello["spec_schema"] == 1
    sock.close()


def test_wrong_proto_hello_is_rejected(server):
    sock, file, _hello = _raw_connection(server, do_hello=False)
    sock.sendall(encode_frame({"type": "hello", "proto": 999}))
    response = json.loads(file.readline())
    assert response["ok"] is False
    assert "hello" in response["error"]
    assert file.readline() == b""      # server hung up
    sock.close()


def test_request_before_hello_is_rejected(server):
    sock, file, _hello = _raw_connection(server, do_hello=False)
    sock.sendall(encode_frame({"id": 1, "verb": "jobs"}))
    response = json.loads(file.readline())
    assert response["ok"] is False
    sock.close()


def test_client_rejects_non_service_server():
    # A server that speaks the wrong protocol version entirely.
    probe = socket.socket()
    probe.bind(("127.0.0.1", 0))
    probe.listen(1)
    host, port = probe.getsockname()

    def fake_server():
        conn, _ = probe.accept()
        conn.sendall(b'{"type":"hello","proto":999}\n')
        conn.recv(4096)
        conn.close()

    thread = threading.Thread(target=fake_server, daemon=True)
    thread.start()
    with connect(host, port, retries=0) as c:
        with pytest.raises(Exception):
            c.jobs()
    probe.close()


# -- verbs ----------------------------------------------------------------

def test_submit_stream_results_round_trip(client):
    job_id = client.submit(_spec())
    payloads = list(client.stream(job_id))
    assert len(payloads) == 2
    status = client.status(job_id)
    assert status["status"] == JobStatus.COMPLETED
    assert status["schema_version"] == 1
    # results (blocking) returns the identical list
    assert client.results(job_id, timeout=120) == payloads
    # non-blocking suffix fetch
    assert client.payloads(job_id, from_index=1) == payloads[1:]
    jobs = client.jobs()
    assert [j["job_id"] for j in jobs] == [job_id]


def test_submit_is_idempotent_under_retry_key(client):
    job_id = client.submit(_spec(), idempotency_key="retry-1")
    again = client.submit(_spec(), idempotency_key="retry-1")
    assert again == job_id
    assert len(client.jobs()) == 1
    # a different key queues fresh work
    other = client.submit(_spec(), idempotency_key="retry-2")
    assert other != job_id
    stats = client.stats()
    assert stats["idempotent_hits"] == 1
    assert stats["submits"] == 3


def test_unknown_job_raises_service_error(client):
    with pytest.raises(ServiceError):
        client.status("job-9999")
    with pytest.raises(ServiceError):
        list(client.stream("job-9999"))
    with pytest.raises(ServiceError):
        client.cancel("job-9999")


def test_cancelled_job_stream_raises(manager, server):
    spec = _spec(points=(("uniproc", "R1", "single", 1),),
                 measure=4_000_000, warmup=0)
    with connect(server.host, server.port) as client:
        job_id = client.submit(spec)
        assert client.cancel(job_id) is True
        with pytest.raises(ServiceError, match="cancelled"):
            list(client.stream(job_id))


def test_client_is_a_transport(client):
    assert isinstance(client, Transport)


# -- resumable streaming --------------------------------------------------

def test_stream_from_index_replays_exact_suffix(client):
    job_id = client.submit(_spec(UNIPROC_3PT))
    payloads = list(client.stream(job_id))
    assert len(payloads) == 3
    assert list(client.stream(job_id, from_index=2)) == payloads[2:]
    assert list(client.stream(job_id, from_index=0)) == payloads


def test_injected_drop_resumes_without_loss_or_duplication(tmp_path):
    """A mid-stream connection drop must replay exactly the missing
    suffix: every point once, bytes identical to an undropped stream."""
    with JobManager(workers=2, cache=ResultCache(tmp_path / "rc")) as mgr:
        with ServiceServer(mgr, _stream_drop_after=1,
                           _stream_drop_times=1) as server:
            with connect(server.host, server.port,
                         backoff=0.05) as client:
                job_id = client.submit(_spec(UNIPROC_3PT))
                dropped = list(client.stream(job_id))
                stats = client.stats()
                clean = list(client.stream(job_id))
    assert dropped == clean
    assert len(dropped) == len(set(dropped)) == 3
    assert stats["resumes"] >= 1


def test_stream_gives_up_after_retry_budget(tmp_path):
    """Drops with zero progress burn the retry budget; the client must
    surface a ServiceError instead of spinning forever."""
    with JobManager(workers=2, cache=ResultCache(tmp_path / "rc")) as mgr:
        with ServiceServer(mgr, _stream_drop_after=0,
                           _stream_drop_times=99) as server:
            with connect(server.host, server.port, retries=2,
                         backoff=0.01) as client:
                job_id = client.submit(_spec())
                client.results(job_id, timeout=240)
                with pytest.raises(ServiceError, match="dropped"):
                    list(client.stream(job_id))


# -- concurrency ----------------------------------------------------------

def test_two_concurrent_clients_stream_identical_results(tmp_path):
    """The CI socket smoke: two clients, one job each, interleaved
    streams; payload sets must match a third client's view and carry
    no duplicates."""
    results = {}
    errors = []
    with JobManager(workers=2, cache=ResultCache(tmp_path / "rc")) as mgr:
        with ServiceServer(mgr) as server:
            def run(name):
                try:
                    with connect(server.host, server.port) as c:
                        job = c.submit(_spec())
                        results[name] = (job, list(c.stream(job)))
                except Exception as exc:       # pragma: no cover
                    errors.append((name, exc))
            threads = [threading.Thread(target=run, args=("c%d" % i,))
                       for i in range(2)]
            for t in threads:
                t.start()
            for t in threads:
                t.join(timeout=300)
            assert not errors
            (job_a, pay_a), (job_b, pay_b) = (results["c0"],
                                              results["c1"])
            stats = server.stats.snapshot()
    assert job_a != job_b
    # both ran the same points: payload *sets* agree byte-for-byte
    assert sorted(pay_a) == sorted(pay_b)
    assert len(pay_a) == len(set(pay_a)) == 2
    assert stats["connections"] >= 2
    assert stats["streams"] >= 2


# -- protocol fuzzing -----------------------------------------------------

def test_garbage_json_is_parked_and_connection_survives(server):
    sock, file, _hello = _raw_connection(server)
    sock.sendall(b"this is not json at all\n")
    response = json.loads(file.readline())
    assert response["ok"] is False
    assert "bad frame" in response["error"]
    # connection still usable
    sock.sendall(encode_frame({"id": 7, "verb": "jobs"}))
    response = json.loads(file.readline())
    assert response == {"id": 7, "jobs": [], "ok": True}
    sock.close()


def test_non_object_frame_is_parked(server):
    sock, file, _hello = _raw_connection(server)
    sock.sendall(b"[1,2,3]\n")
    response = json.loads(file.readline())
    assert response["ok"] is False
    assert "object" in response["error"]
    sock.close()


def test_unknown_verb_is_parked(server):
    sock, file, _hello = _raw_connection(server)
    sock.sendall(encode_frame({"id": 1, "verb": "explode"}))
    response = json.loads(file.readline())
    assert response["ok"] is False and response["id"] == 1
    assert "unknown verb" in response["error"]
    sock.close()


def test_wrong_spec_schema_version_is_parked(server):
    sock, file, _hello = _raw_connection(server)
    spec = _spec().to_dict()
    spec["schema_version"] = 999
    sock.sendall(encode_frame({"id": 1, "verb": "submit",
                               "spec": spec}))
    response = json.loads(file.readline())
    assert response["ok"] is False
    assert "schema" in response["error"]
    # the server is still up and serving this same connection
    sock.sendall(encode_frame({"id": 2, "verb": "stats"}))
    assert json.loads(file.readline())["ok"] is True
    sock.close()


def test_truncated_frame_then_disconnect_leaves_server_up(server):
    sock, _file, _hello = _raw_connection(server)
    sock.sendall(b'{"id": 1, "verb": "sub')    # no newline, then gone
    sock.close()
    # a fresh connection works fine
    sock2, file2, _ = _raw_connection(server)
    sock2.sendall(encode_frame({"id": 1, "verb": "jobs"}))
    assert json.loads(file2.readline())["ok"] is True
    sock2.close()


def test_oversized_frame_is_refused(manager):
    with ServiceServer(manager, max_frame=4096) as server:
        sock, file, _hello = _raw_connection(server)
        sock.sendall(b'{"pad": "' + b"x" * 8192 + b'"}\n')
        response = json.loads(file.readline())
        assert response["ok"] is False
        assert "exceeds" in response["error"]
        assert file.readline() == b""  # frame boundary lost: hang up
        sock.close()
        # server itself is unharmed
        sock2, file2, _ = _raw_connection(server)
        sock2.sendall(encode_frame({"id": 1, "verb": "stats"}))
        assert json.loads(file2.readline())["ok"] is True
        sock2.close()


def test_idle_connection_is_closed_after_read_timeout(manager):
    with ServiceServer(manager, read_timeout=0.2) as server:
        sock, file, _hello = _raw_connection(server)
        response = json.loads(file.readline())   # no request sent
        assert response["ok"] is False
        assert "timeout" in response["error"]
        assert file.readline() == b""
        sock.close()


# -- metrics --------------------------------------------------------------

def test_stats_verb_counts_traffic(client, server):
    job_id = client.submit(_spec())
    list(client.stream(job_id))
    stats = client.stats()
    assert stats["proto"] == PROTO_VERSION
    assert stats["connections"] >= 1
    assert stats["connections_open"] >= 1
    assert stats["requests"] >= 3
    assert stats["submits"] == 1
    assert stats["streams"] == 1
    assert stats["resumes"] == 0
    assert stats["bytes_in"] > 0
    assert stats["bytes_out"] > stats["bytes_in"]
    assert stats["jobs"] == 1
    assert server.stats.snapshot()["errors"] == 0
