"""Nightly soak: concurrent jobs under injected and real worker kills.

The PR lane runs only the quick variants in test_manager.py; these are
marked slow and exercise N concurrent jobs with fault injection plus a
live ``Process.kill`` from outside, asserting every point is retried
and none is lost.
"""

import json
import time

import pytest

from repro.config import SystemConfig, MultiprocessorParams
from repro.experiments.cache import ResultCache
from repro.service import JobManager, JobSpec, JobStatus

pytestmark = pytest.mark.slow

FAST = SystemConfig.fast()
MPP = MultiprocessorParams(n_nodes=2)


def _spec(points, **kwargs):
    kwargs.setdefault("config", FAST)
    kwargs.setdefault("mp_params", MPP)
    kwargs.setdefault("warmup", 1_000)
    kwargs.setdefault("measure", 6_000)
    return JobSpec(points=points, **kwargs)


def test_soak_concurrent_jobs_with_injected_kills(tmp_path):
    """Three concurrent jobs, every worker attempt dying once, must all
    complete with zero lost points and bit-identical payloads to an
    undisturbed run."""
    cache = ResultCache(tmp_path / "rc")
    specs = [
        _spec((("uniproc", "R1", "single", 1),
               ("uniproc", "R1", "interleaved", 2)), max_retries=3),
        _spec((("dedicated", "mxm", "single", 1),
               ("uniproc", "DC", "single", 1)), max_retries=3),
        _spec((("mp", "cholesky", "single", 1),
               ("mp", "cholesky", "interleaved", 2)), max_retries=3),
    ]
    with JobManager(workers=4, cache=cache, backoff=0.02) as mgr:
        job_ids = [mgr.submit(s, fail_times=1) for s in specs]
        outcomes = [mgr.results(j, timeout=480) for j in job_ids]
        statuses = [mgr.status(j) for j in job_ids]

    for spec, status, payloads in zip(specs, statuses, outcomes):
        assert status["status"] == JobStatus.COMPLETED
        assert status["completed"] == len(spec.points)   # no lost points
        assert len(payloads) == len(spec.points)
        for ps in status["points"]:
            assert ps["attempts"] == 2      # died once, retried once

    # Bit-identity: a clean (no-kill) run of the same specs, against a
    # separate cache so every point recomputes, streams identical bytes.
    with JobManager(workers=4, cache=ResultCache(tmp_path / "rc2")) as mgr:
        clean = [mgr.results(mgr.submit(s), timeout=480) for s in specs]
    for disturbed, undisturbed in zip(outcomes, clean):
        assert sorted(disturbed) == sorted(undisturbed)


def test_soak_external_worker_kill_is_retried(tmp_path):
    """Kill a live worker process from outside mid-run; the manager
    must observe the death and retry the point."""
    spec = _spec((("mp", "mp3d", "interleaved", 2),), max_retries=2)
    with JobManager(workers=1, backoff=0.02) as mgr:
        job_id = mgr.submit(spec)
        # Wait for the worker process to appear, then kill it.
        deadline = time.monotonic() + 30
        while time.monotonic() < deadline:
            with mgr._lock:
                slots = list(mgr._slots)
            if slots:
                slots[0].process.kill()
                break
            time.sleep(0.01)
        else:
            pytest.fail("worker never started")
        payloads = mgr.results(job_id, timeout=480)
        status = mgr.status(job_id)
    assert status["status"] == JobStatus.COMPLETED
    assert status["points"][0]["attempts"] >= 2
    assert len(payloads) == 1
    assert json.loads(payloads[0])["completed"] is True


def test_soak_burst_cache_under_concurrency(tmp_path):
    """Many concurrent burst-engine jobs sharing programs: the shared
    table cache must serve hits and never reject a valid entry."""
    specs = [_spec((("uniproc", "R1", "single", 1),
                    ("uniproc", "R1", "interleaved", i)), engine="burst")
             for i in (2, 4)]
    with JobManager(workers=4, cache=ResultCache(tmp_path / "rc"),
                    burst_dir=tmp_path / "bursts") as mgr:
        job_ids = [mgr.submit(s) for s in specs]
        for job_id in job_ids:
            mgr.results(job_id, timeout=480)
        stats = [mgr.status(j)["burst_cache"] for j in job_ids]
    total = {k: sum(s[k] for s in stats) for k in stats[0]}
    assert total["rejected"] == 0
    assert total["hits"] > 0
