"""Cross-worker burst-table cache: keying, validation, and the provider
hook inside ``Program.bursts_for``."""

import json

import pytest

from repro.analysis import program_fingerprint
from repro.config import PipelineParams
from repro.isa.program import Program
from repro.service.burst_cache import BurstTableCache
from repro.workloads.uniprocessor import build_workload

THRESHOLD = PipelineParams().short_stall_threshold


@pytest.fixture
def program():
    processes, _instances, _barriers = build_workload("R1", scale=1.0)
    return processes[0].program


@pytest.fixture(autouse=True)
def no_global_provider():
    """Tests set Program.burst_provider; never leak it across tests."""
    yield
    Program.burst_provider = None


def _fresh(program):
    """A structurally identical program with no compiled tables (as a
    different worker process would hold it)."""
    processes, _instances, _barriers = build_workload("R1", scale=1.0)
    clone = processes[0].program
    assert program_fingerprint(clone) == program_fingerprint(program)
    return clone


def test_store_then_load_round_trip(tmp_path, program):
    cache = BurstTableCache(tmp_path)
    compiled = program.bursts_for(THRESHOLD, 1)
    cache.store(program, THRESHOLD, 1)
    assert cache.entry_count() == 1

    clone = _fresh(program)
    assert cache.load(clone, THRESHOLD, 1)
    loaded = clone._burst_tables[(THRESHOLD, 1)]
    assert len(loaded) == len(compiled)
    for got, want in zip(loaded, compiled):
        if want is None:
            assert got is None
            continue
        assert (got.start, got.n, got.duration, got.width,
                got.short_stalls, got.long_stalls, got.guard,
                got.writes_out) == (
            want.start, want.n, want.duration, want.width,
            want.short_stalls, want.long_stalls, want.guard,
            want.writes_out)
    assert cache.hits == 1


def test_miss_on_absent_entry(tmp_path, program):
    cache = BurstTableCache(tmp_path)
    assert not cache.load(program, THRESHOLD, 1)
    assert cache.misses == 1


def test_width_and_threshold_key_separately(tmp_path, program):
    cache = BurstTableCache(tmp_path)
    cache.store(program, THRESHOLD, 1)
    assert not cache.load(_fresh(program), THRESHOLD, 2)
    assert not cache.load(_fresh(program), THRESHOLD + 1, 1)
    assert cache.load(_fresh(program), THRESHOLD, 1)


def test_corrupt_entry_rejected_and_deleted(tmp_path, program):
    cache = BurstTableCache(tmp_path)
    path = cache.store(program, THRESHOLD, 1)
    path.write_text("{ not json")
    assert not cache.load(_fresh(program), THRESHOLD, 1)
    assert cache.rejected == 1
    assert not path.exists()


def test_tampered_table_fails_the_audit(tmp_path, program):
    """A decodable but wrong table must be caught by audit_bursts."""
    cache = BurstTableCache(tmp_path)
    path = cache.store(program, THRESHOLD, 1)
    payload = json.loads(path.read_text())
    entry = next(e for e in payload["table"] if e is not None
                 and e["n"] >= 2)
    entry["duration"] += 5              # silently slower schedule
    path.write_text(json.dumps(payload))

    clone = _fresh(program)
    assert not cache.load(clone, THRESHOLD, 1)
    assert cache.rejected == 1
    assert (THRESHOLD, 1) not in clone._burst_tables
    assert not path.exists()


def test_fingerprint_mismatch_is_a_miss(tmp_path, program):
    cache = BurstTableCache(tmp_path)
    cache.store(program, THRESHOLD, 1)
    other = build_workload("DC", scale=1.0)[0][0].program
    assert program_fingerprint(other) != program_fingerprint(program)
    assert not cache.load(other, THRESHOLD, 1)


def test_provider_hook_publishes_and_reuses(tmp_path, program):
    """bursts_for() itself consults the installed provider."""
    cache = BurstTableCache(tmp_path)
    Program.burst_provider = cache
    program.bursts_for(THRESHOLD, 1)    # compiles, publishes via hook
    assert cache.stores == 1

    clone = _fresh(program)
    table = clone.bursts_for(THRESHOLD, 1)   # loads, no compile
    assert cache.hits == 1
    assert table is clone._burst_tables[(THRESHOLD, 1)]


def test_loaded_tables_drive_identical_simulation(tmp_path):
    """A burst run whose tables came from the cache is bit-identical."""
    from repro.api import Simulation
    from repro.config import SystemConfig
    cfg = SystemConfig.fast()

    def run():
        return Simulation.from_config(
            cfg, scheme="interleaved", n_contexts=2, seed=1994,
            engine="burst").load("R1").run(
                warmup=1_000, measure=6_000).to_json()

    baseline = run()                    # no provider: local compile
    cache = BurstTableCache(tmp_path)
    Program.burst_provider = cache
    first = run()                       # compiles + publishes
    assert cache.stores > 0
    second = run()                      # loads from cache
    assert cache.hits > 0
    assert first == baseline
    assert second == baseline
