"""JSON export of experiment results."""

import json

from repro.config import SystemConfig, MultiprocessorParams
from repro.experiments.runner import ExperimentContext
from repro.experiments.export import (
    stats_to_dict, uniproc_run_to_dict, mp_result_to_dict,
    context_to_dict, write_json,
)
from repro.core.stats import CycleStats
from repro.pipeline.stalls import Stall

import pytest


@pytest.fixture(scope="module")
def ctx():
    c = ExperimentContext(config=SystemConfig.fast(),
                          mp_params=MultiprocessorParams(n_nodes=2),
                          warmup=2_000, measure=10_000)
    c.uniproc_run("R1", "single", 1)
    c.mp_run("cholesky", "single", 1)
    return c


class TestStatsDict:
    def test_fields_present(self):
        s = CycleStats()
        s.add(Stall.BUSY, 4)
        s.retired = 4
        s.end_run(4)
        d = stats_to_dict(s)
        assert d["cycles"] == 4
        assert d["ipc"] == 1.0
        assert d["slots"]["busy"] == 4
        assert d["mean_runlength"] == 4

    def test_json_serialisable(self):
        json.dumps(stats_to_dict(CycleStats()))


class TestRunDicts:
    def test_uniproc_run(self, ctx):
        run = ctx.uniproc_run("R1", "single", 1)
        d = uniproc_run_to_dict(run)
        assert d["duration"] == 10_000
        assert sum(d["per_process"].values()) == d["stats"]["retired"]
        json.dumps(d)

    def test_mp_result(self, ctx):
        res = ctx.mp_run("cholesky", "single", 1)
        d = mp_result_to_dict(res)
        assert d["cycles"] == res.cycles
        assert len(d["nodes"]) == 2
        assert "upgrades" in d["protocol"]
        json.dumps(d)


class TestContextExport:
    def test_whole_context(self, ctx):
        d = context_to_dict(ctx)
        assert "R1/single/1" in d["uniprocessor"]
        assert "cholesky/single/1" in d["multiprocessor"]
        json.dumps(d)

    def test_write_json(self, ctx, tmp_path):
        path = tmp_path / "out.json"
        write_json(str(path), context_to_dict(ctx))
        loaded = json.loads(path.read_text())
        assert "uniprocessor" in loaded
