"""Summary verdict machinery (with stubbed experiment results)."""

from repro.experiments import summary


def stub_results(interleaved_wins=True):
    """Synthetic results exercising both verdict outcomes."""
    hi, lo = (1.8, 1.1) if interleaved_wins else (1.1, 1.8)
    workloads = ("IC", "DC", "DT", "FP", "R0", "R1", "SP")
    apps = ("mp3d", "barnes", "water", "ocean", "locus", "pthor",
            "cholesky")
    t7 = {}
    for scheme, v in (("interleaved", hi), ("blocked", lo)):
        for n in (2, 4):
            t7[(scheme, n)] = {w: v for w in workloads}
    t10 = {}
    for scheme, v in (("interleaved", hi), ("blocked", lo)):
        for n in (2, 4, 8):
            row = {a: v for a in apps}
            row["cholesky"] = 1.0
            row["mp3d"] = 1.0 if interleaved_wins else v
            t10[(scheme, n)] = row
    return {
        "figure2": {"blocked": 7, "interleaved": 2},
        "figure3": {"blocked": (73, "", 28), "interleaved": (57, "", 14)},
        "table4": {("explicit", "blocked"): 3,
                   ("explicit", "interleaved"): 1},
        "table7": t7,
        "table10": t10,
    }


class TestClaims:
    def test_all_claims_pass_on_paper_shaped_results(self):
        results = stub_results(interleaved_wins=True)
        for claim in summary.CLAIMS:
            assert claim.evaluate(results), claim.text

    def test_inverted_results_fail_the_ordering_claims(self):
        results = stub_results(interleaved_wins=False)
        outcomes = [c.evaluate(results) for c in summary.CLAIMS]
        assert not all(outcomes)

    def test_render_reports_counts(self):
        results = stub_results()
        for claim in summary.CLAIMS:
            claim.evaluate(results)
        text = summary.render(results)
        assert "12/12" in text
        assert "PASS" in text

    def test_every_claim_names_its_source(self):
        for claim in summary.CLAIMS:
            assert claim.source.startswith(("Figure", "Table"))
