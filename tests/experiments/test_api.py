"""The repro.api facade: construction, dispatch, RunResult contract."""

import json

import pytest

import repro
from repro.api import Simulation, RunResult
from repro.config import SystemConfig, MultiprocessorParams


def ws_simulation(**kwargs):
    defaults = dict(scheme="interleaved", n_contexts=4, seed=1994)
    defaults.update(kwargs)
    return Simulation.from_config(SystemConfig.fast(), **defaults)


class TestConstruction:
    def test_top_level_export(self):
        assert repro.Simulation is Simulation
        assert repro.RunResult is RunResult

    def test_config_type_dispatch(self):
        assert ws_simulation().kind == "workstation"
        mp = Simulation.from_config(MultiprocessorParams(n_nodes=2))
        assert mp.kind == "multiprocessor"
        assert Simulation.from_config(None).kind == "workstation"

    def test_rejects_unknown_config_type(self):
        with pytest.raises(TypeError, match="SystemConfig"):
            Simulation.from_config(42)

    def test_run_before_load_rejected(self):
        with pytest.raises(RuntimeError, match="load"):
            ws_simulation().run(measure=100)

    def test_double_load_rejected(self):
        simulation = ws_simulation().load("DC")
        with pytest.raises(RuntimeError, match="already loaded"):
            simulation.load("FP")


class TestWorkstationRuns:
    def test_mix_run(self):
        result = ws_simulation().load("DC").run(warmup=2_000,
                                                measure=10_000)
        assert result.kind == "workstation"
        assert result.workload == "DC"
        assert result.scheme == "interleaved"
        assert result.n_contexts == 4
        assert result.completed is True
        assert result.cycles == 10_000
        assert result.retired > 0
        assert result.ipc == pytest.approx(result.retired / 10_000)
        assert 0.0 < result.utilization <= 1.0
        assert abs(sum(result.breakdown.values()) - 1.0) < 1e-9
        assert sum(result.per_process.values()) == result.retired

    def test_kernel_run_matches_dedicated_construction(self):
        """Single-kernel load() reproduces the calibration-run path."""
        result = Simulation.from_config(
            SystemConfig.fast(), scheme="single",
            n_contexts=1).load("cfft2d").run(warmup=2_000,
                                             measure=10_000)
        assert list(result.per_process) == ["cfft2d.0"]
        assert result.retired > 0

    def test_unknown_workload_rejected(self):
        with pytest.raises(KeyError, match="unknown kernel"):
            ws_simulation().load("no-such-workload")

    def test_until_is_absolute(self):
        simulation = ws_simulation().load("DC")
        result = simulation.run(until=12_000, warmup=2_000)
        assert simulation.simulator.now == 12_000
        assert result.cycles == 10_000

    def test_until_before_warmup_rejected(self):
        with pytest.raises(ValueError, match="warmup"):
            ws_simulation().load("DC").run(until=1_000, warmup=2_000)

    def test_measure_or_until_required(self):
        with pytest.raises(TypeError):
            ws_simulation().load("DC").run()


class TestMultiprocessorRuns:
    def _simulation(self, **kwargs):
        return Simulation.from_config(
            MultiprocessorParams(n_nodes=2), scheme="interleaved",
            n_contexts=2, seed=7, **kwargs).load("mp3d", scale=0.25)

    def test_run_to_completion(self):
        result = self._simulation().run()
        assert result.kind == "multiprocessor"
        assert result.workload == "mp3d"
        assert result.completed is True
        assert result.cycles > 0
        assert len(result.per_process) == 4      # 2 nodes x 2 contexts

    def test_bound_hit_reports_incomplete(self):
        result = self._simulation().run(until=100)
        assert result.completed is False
        assert result.cycles == 100

    def test_warmup_measure_rejected(self):
        with pytest.raises(ValueError, match="workstation"):
            self._simulation().run(warmup=1_000)


class TestRunResultJson:
    def test_stable_and_raw_excluded(self):
        run = lambda: ws_simulation().load("DC").run(warmup=2_000,
                                                     measure=10_000)
        a, b = run(), run()
        assert a.to_json() == b.to_json()
        payload = json.loads(a.to_json())
        assert "raw" not in payload
        assert payload["kind"] == "workstation"
        assert payload["counts"]["BUSY"] > 0
        # sorted-keys contract: byte-stable across dict orderings
        assert list(payload) == sorted(payload)

    def test_raw_keeps_core_result(self):
        from repro.core.simulator import RunResult as CoreRunResult
        result = ws_simulation().load("DC").run(warmup=2_000,
                                                measure=10_000)
        assert isinstance(result.raw, CoreRunResult)
        assert result.raw.total_ipc() == pytest.approx(result.ipc)

    def test_with_workload(self):
        result = ws_simulation().load("DC").run(measure=5_000)
        renamed = result.with_workload("DC-alias")
        assert renamed.workload == "DC-alias"
        assert renamed.retired == result.retired
