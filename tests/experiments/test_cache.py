"""The on-disk result cache: keys, round-trips, corruption handling."""

import json

import pytest

from repro.config import SystemConfig, MultiprocessorParams
from repro.core.simulator import RunResult
from repro.core.mpsimulator import MPResult
from repro.core.stats import CycleStats
from repro.experiments import cache as cache_mod
from repro.experiments.cache import (
    CachedProtocol,
    ResultCache,
    code_version,
    mp_from_state,
    mp_to_state,
    point_key,
    stats_from_state,
    stats_to_state,
    uniproc_from_state,
    uniproc_to_state,
)


def _stats(offset=0):
    s = CycleStats()
    s.counts = [i + offset for i in range(len(s.counts))]
    s.retired = 1000 + offset
    s.issued = 1100 + offset
    s.squashed = 7 + offset
    s.context_switches = 3
    s.backoffs = 5
    s.run_count = 40
    s.run_inst_sum = 900
    s.run_max = 60
    return s


def _uniproc_result():
    return RunResult(20_000, _stats(), {"mxm.0": 5000, "li.1": 4000})


def _mp_result():
    return MPResult(123_456, [_stats(0), _stats(2)],
                    CachedProtocol(10, 20, 30, 40, 50, 60, 70))


def _key(**overrides):
    base = dict(kind="uniproc", name="R1", scheme="interleaved",
                n_contexts=4, config=SystemConfig.fast(),
                mp_params=MultiprocessorParams(), seed=1994,
                warmup=2000, measure=10000, version="v0")
    base.update(overrides)
    return point_key(**base)


class TestPointKey:
    def test_deterministic(self):
        assert _key() == _key()

    @pytest.mark.parametrize("override", [
        {"kind": "mp"},
        {"name": "DC"},
        {"scheme": "blocked"},
        {"n_contexts": 2},
        {"seed": 1},
        {"warmup": 1},
        {"measure": 1},
        {"version": "v1"},
        {"mp_params": MultiprocessorParams(n_nodes=4)},
    ])
    def test_any_field_changes_key(self, override):
        assert _key(**override) != _key()

    def test_config_field_changes_key(self):
        tweaked = SystemConfig.fast().with_memory(l1_hit_latency=2)
        assert _key(config=tweaked) != _key()
        deep = SystemConfig.fast().with_pipeline(issue_width=2)
        assert _key(config=deep) != _key()

    def test_code_version_component(self):
        """Default version comes from hashing the simulator sources."""
        v = code_version()
        assert len(v) == 64 and int(v, 16) >= 0
        assert code_version() == v          # memoised and stable
        assert _key(version=None) == _key(version=v)


class TestRoundTrips:
    def test_stats_roundtrip(self):
        s = _stats(3)
        s2 = stats_from_state(stats_to_state(s))
        assert stats_to_state(s2) == stats_to_state(s)
        assert s2.total_cycles == s.total_cycles
        assert s2.mean_runlength() == s.mean_runlength()

    def test_uniproc_roundtrip(self):
        r = _uniproc_result()
        r2 = uniproc_from_state(uniproc_to_state(r))
        assert r2.duration == r.duration
        assert r2.per_process == r.per_process
        assert list(r2.stats.counts) == list(r.stats.counts)

    def test_mp_roundtrip(self):
        r = _mp_result()
        r2 = mp_from_state(mp_to_state(r))
        assert r2.cycles == r.cycles
        assert len(r2.node_stats) == 2
        assert r2.machine.read_misses == 10
        assert r2.machine.dirty_remote_services == 50
        assert r2.machine.remote_fills == 60
        assert r2.machine.nack_retries == 70
        # merged stats are recomputed identically
        assert list(r2.stats.counts) == list(r.stats.counts)

    def test_json_safe(self):
        """States survive an actual JSON round-trip (the disk format)."""
        state = json.loads(json.dumps(mp_to_state(_mp_result())))
        assert mp_from_state(state).cycles == 123_456


class TestResultCache:
    def test_miss_then_hit(self, tmp_path):
        cache = ResultCache(tmp_path)
        key = _key()
        assert cache.get(key, "uniproc") is None
        cache.put(key, "uniproc", _uniproc_result())
        got = cache.get(key, "uniproc")
        assert got is not None and got.duration == 20_000
        assert cache.session_stats() == {
            "hits": 1, "misses": 1, "stores": 1, "corrupt": 0}

    def test_undecodable_entry_is_discarded_and_recomputable(
            self, tmp_path):
        cache = ResultCache(tmp_path)
        key = _key()
        path = cache.put(key, "uniproc", _uniproc_result())
        path.write_text("{not json at all")
        assert cache.get(key, "uniproc") is None
        assert cache.corrupt == 1
        assert not path.exists()            # discarded for recompute
        cache.put(key, "uniproc", _uniproc_result())
        assert cache.get(key, "uniproc").duration == 20_000

    def test_checksum_tamper_detected(self, tmp_path):
        cache = ResultCache(tmp_path)
        key = _key()
        path = cache.put(key, "uniproc", _uniproc_result())
        payload = json.loads(path.read_text())
        payload["result"]["duration"] = 999
        path.write_text(json.dumps(payload))
        assert cache.get(key, "uniproc") is None
        assert cache.corrupt == 1

    def test_schema_and_kind_mismatch_detected(self, tmp_path):
        cache = ResultCache(tmp_path)
        key = _key()
        path = cache.put(key, "uniproc", _uniproc_result())
        payload = json.loads(path.read_text())
        payload["schema"] = cache_mod.CACHE_SCHEMA + 1
        path.write_text(json.dumps(payload))
        assert cache.get(key, "uniproc") is None
        cache.put(key, "uniproc", _uniproc_result())
        assert cache.get(key, "mp") is None      # wrong kind never served

    def test_disk_stats_and_clear(self, tmp_path):
        cache = ResultCache(tmp_path)
        cache.put(_key(), "uniproc", _uniproc_result())
        cache.put(_key(kind="mp"), "mp", _mp_result())
        stats = cache.disk_stats()
        assert stats["entries"] == 2
        assert stats["by_kind"] == {"uniproc": 1, "mp": 1}
        assert stats["bytes"] > 0
        assert cache.clear() == 2
        assert cache.disk_stats()["entries"] == 0

    def test_atomic_write_leaves_no_temp_files(self, tmp_path):
        cache = ResultCache(tmp_path)
        cache.put(_key(), "uniproc", _uniproc_result())
        leftovers = list(tmp_path.rglob("*.tmp"))
        assert leftovers == []
