"""Table/figure renderers against stubbed results (fast, no simulation)."""

from repro.experiments import table7, table10, figures6_7, figures8_9
from repro.workloads.uniprocessor import WORKLOAD_ORDER
from repro.workloads.splash import SPLASH_ORDER


def stub_table7():
    return {(scheme, n): {w: 1.0 + 0.1 * n for w in WORKLOAD_ORDER}
            for scheme in ("interleaved", "blocked") for n in (2, 4)}


def stub_table10():
    return {(scheme, n): {a: 1.5 for a in SPLASH_ORDER}
            for scheme in ("interleaved", "blocked") for n in (2, 4, 8)}


class TestTable7Render:
    def test_contains_all_workloads_and_mean(self):
        text = table7.render(stub_table7())
        for w in WORKLOAD_ORDER:
            assert w in text
        assert "Mean" in text

    def test_geometric_mean(self):
        assert abs(table7.geometric_mean([1.0, 4.0]) - 2.0) < 1e-9
        assert table7.geometric_mean([2.0]) == 2.0


class TestTable10Render:
    def test_contains_all_apps(self):
        text = table10.render(stub_table10())
        for a in SPLASH_ORDER:
            assert a in text

    def test_partial_configs(self):
        partial = {("interleaved", 4): {a: 1.5 for a in SPLASH_ORDER}}
        text = table10.render(partial,
                              configs=(("interleaved", 4),))
        assert "4 ctx interleaved" in text
        assert "ctx blocked" not in text   # no blocked row rendered


class TestFigureRenders:
    def test_figures6_7_stub(self):
        fractions = {"busy": 0.5, "instruction": 0.2, "inst_cache": 0.1,
                     "data_cache": 0.1, "context_switch": 0.1}
        result = {w: {n: dict(fractions) for n in (1, 2, 4)}
                  for w in WORKLOAD_ORDER}
        text = figures6_7.render(result, scheme="blocked")
        assert "Figure 6" in text
        text = figures6_7.render(result, scheme="interleaved")
        assert "Figure 7" in text

    def test_figures8_9_stub(self):
        fractions = {"busy": 0.4, "instruction_short": 0.1,
                     "instruction_long": 0.1, "memory": 0.2,
                     "synchronization": 0.1, "context_switch": 0.1}
        result = {a: {n: (1.0 / n, dict(fractions))
                      for n in (1, 2, 4, 8)}
                  for a in SPLASH_ORDER}
        blocked = figures8_9.render(result, scheme="blocked")
        assert "Figure 8" in blocked
        # Bars shrink with contexts (normalised time 1/n).
        lines = [l for l in blocked.splitlines() if "mp3d" in l]
        assert lines[0].count("#") > lines[-1].count("#")
