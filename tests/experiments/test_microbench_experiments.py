"""Figure 2, Figure 3, and Table 4 reproductions (exact paper values)."""

from repro.experiments import figure2, figure3, table4


class TestFigure2:
    def test_paper_values(self):
        result = figure2.run()
        assert result["blocked"] == 7         # pipeline depth
        assert result["interleaved"] == 2     # A's two in-flight slots

    def test_render(self):
        text = figure2.render()
        assert "blocked" in text and "7" in text


class TestFigure3:
    def test_interleaved_finishes_first(self):
        result = figure3.run()
        assert result["interleaved"][0] < result["blocked"][0]

    def test_blocked_squashes_seven_per_miss(self):
        result = figure3.run()
        assert result["blocked"][2] == 4 * 7

    def test_interleaved_squashes_less(self):
        result = figure3.run()
        assert result["interleaved"][2] < result["blocked"][2]

    def test_trace_round_robin_prefix(self):
        """The interleaved trace starts ABCD ABCD, as in the paper."""
        _, cells, _ = figure3.run()["interleaved"]
        assert cells.startswith("ABCDABCD")

    def test_render_contains_both_lanes(self):
        text = figure3.render()
        assert "blocked" in text and "interleaved" in text


class TestTable4:
    def test_paper_costs(self):
        result = table4.run()
        assert result[("cache_miss", "blocked")] == 7
        assert result[("explicit", "blocked")] == 3
        assert result[("explicit", "interleaved")] == 1
        assert 1 <= result[("cache_miss", "interleaved_4ctx")] <= 3
        assert (result[("cache_miss", "interleaved_2ctx")]
                >= result[("cache_miss", "interleaved_4ctx")])

    def test_render(self):
        assert "cache miss" in table4.render()
