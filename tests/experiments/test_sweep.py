"""The parallel sweep engine: determinism, caching, point enumeration.

Small windows and a 2-node machine keep this fast-lane quick; the
engine's value is orchestration, which these sizes exercise fully.
"""

import pytest

from repro.config import SystemConfig, MultiprocessorParams
from repro.experiments.cache import ResultCache
from repro.experiments.runner import ExperimentContext
from repro.experiments.sweep import (
    SweepEngine,
    SweepPoint,
    dedupe,
    default_points,
)

POINTS = [
    SweepPoint("uniproc", "R1", "single", 1),
    SweepPoint("uniproc", "R1", "interleaved", 2),
    SweepPoint("dedicated", "mxm", "single", 1),
    SweepPoint("mp", "cholesky", "single", 1),
    SweepPoint("mp", "cholesky", "interleaved", 2),
]


def make_ctx(cache=None):
    return ExperimentContext(
        config=SystemConfig.fast(),
        mp_params=MultiprocessorParams(n_nodes=2),
        warmup=1_000, measure=6_000, cache=cache)


@pytest.fixture(scope="module")
def serial_ctx():
    """Reference results computed through the plain serial path."""
    ctx = make_ctx()
    for p in POINTS:
        if p.kind == "uniproc":
            ctx.uniproc_run(p.name, p.scheme, p.n_contexts)
        elif p.kind == "dedicated":
            ctx.dedicated_rate(p.name)
        else:
            ctx.mp_run(p.name, p.scheme, p.n_contexts)
    return ctx


class TestParallelEqualsSerial:
    @pytest.fixture(scope="class")
    def parallel_ctx(self, tmp_path_factory):
        cache = ResultCache(tmp_path_factory.mktemp("cache"))
        ctx = make_ctx(cache)
        report = SweepEngine(ctx, jobs=2).run(POINTS)
        assert report.count("computed") == len(POINTS)
        return ctx

    def test_uniproc_bit_identical(self, serial_ctx, parallel_ctx):
        for scheme, n in (("single", 1), ("interleaved", 2)):
            a = serial_ctx.uniproc_run("R1", scheme, n).result
            b = parallel_ctx.uniproc_run("R1", scheme, n).result
            assert a.duration == b.duration
            assert a.per_process == b.per_process
            assert list(a.stats.counts) == list(b.stats.counts)
            assert a.stats.retired == b.stats.retired

    def test_mp_bit_identical(self, serial_ctx, parallel_ctx):
        for scheme, n in (("single", 1), ("interleaved", 2)):
            a = serial_ctx.mp_run("cholesky", scheme, n)
            b = parallel_ctx.mp_run("cholesky", scheme, n)
            assert a.cycles == b.cycles
            assert list(a.stats.counts) == list(b.stats.counts)
            assert a.machine.read_misses == b.machine.read_misses

    def test_dedicated_rate_identical(self, serial_ctx, parallel_ctx):
        assert (serial_ctx.dedicated_rate("mxm")
                == parallel_ctx.dedicated_rate("mxm"))

    def test_derived_metric_identical(self, serial_ctx, parallel_ctx):
        assert (serial_ctx.normalized_throughput("R1", "interleaved", 2)
                == parallel_ctx.normalized_throughput(
                    "R1", "interleaved", 2))


class TestCacheBehaviour:
    def test_warm_rerun_skips_all_simulation(self, tmp_path):
        cache_dir = tmp_path / "cache"
        cold = make_ctx(ResultCache(cache_dir))
        SweepEngine(cold, jobs=1).run(POINTS)
        assert cold.sim_count == len(POINTS)

        warm = make_ctx(ResultCache(cache_dir))
        report = SweepEngine(warm, jobs=1).run(POINTS)
        assert warm.sim_count == 0
        assert report.count("cache") == len(POINTS)
        assert warm.cache.session_stats()["hits"] == len(POINTS)

    def test_context_reads_through_cache(self, tmp_path):
        """Plain ExperimentContext accessors hit the same cache the
        sweep engine fills — no re-simulation, identical numbers."""
        cache_dir = tmp_path / "cache"
        cold = make_ctx(ResultCache(cache_dir))
        run = cold.uniproc_run("R1", "interleaved", 2)

        warm = make_ctx(ResultCache(cache_dir))
        cached = warm.uniproc_run("R1", "interleaved", 2)
        assert warm.sim_count == 0
        assert cached.simulator is None      # loaded, not simulated
        assert cached.result.per_process == run.result.per_process

    def test_need_simulator_forces_live_run(self, tmp_path):
        cache_dir = tmp_path / "cache"
        make_ctx(ResultCache(cache_dir)).uniproc_run("R1", "single", 1)
        warm = make_ctx(ResultCache(cache_dir))
        run = warm.uniproc_run("R1", "single", 1, need_simulator=True)
        assert run.simulator is not None
        assert warm.sim_count == 1

    def test_corrupt_entry_recomputed(self, tmp_path):
        cache_dir = tmp_path / "cache"
        cold = make_ctx(ResultCache(cache_dir))
        reference = cold.mp_run("cholesky", "single", 1).cycles
        key = cold.point_cache_key("mp", "cholesky", "single", 1)
        path = cold.cache._path(key)
        path.write_text("garbage")

        warm = make_ctx(ResultCache(cache_dir))
        result = warm.mp_run("cholesky", "single", 1)
        assert warm.sim_count == 1           # recomputed, not served
        assert warm.cache.corrupt == 1
        assert result.cycles == reference    # deterministic recompute
        # and the recompute repaired the entry on disk
        fresh = make_ctx(ResultCache(cache_dir))
        assert fresh.mp_run("cholesky", "single", 1).cycles == reference
        assert fresh.sim_count == 0

    def test_partial_sweep_resumes(self, tmp_path):
        """A sweep over a superset only computes the missing points."""
        cache_dir = tmp_path / "cache"
        SweepEngine(make_ctx(ResultCache(cache_dir)),
                    jobs=1).run(POINTS[:3])
        ctx = make_ctx(ResultCache(cache_dir))
        report = SweepEngine(ctx, jobs=1).run(POINTS)
        assert report.count("cache") == 3
        assert report.count("computed") == 2
        assert ctx.sim_count == 2


class TestPointEnumeration:
    def test_default_points_deduplicated(self):
        points = default_points()
        assert len(points) == len(set(points))

    def test_default_points_cover_tables_and_figures(self):
        from repro.workloads.uniprocessor import WORKLOAD_ORDER, WORKLOADS
        from repro.workloads.splash import SPLASH_ORDER
        points = set(default_points())
        for w in WORKLOAD_ORDER:
            assert SweepPoint("uniproc", w, "single", 1) in points
            for scheme in ("blocked", "interleaved"):
                for n in (2, 4):
                    assert SweepPoint("uniproc", w, scheme, n) in points
            for kernel in WORKLOADS[w]:
                assert SweepPoint("dedicated", kernel, "single",
                                  1) in points
        for app in SPLASH_ORDER:
            assert SweepPoint("mp", app, "single", 1) in points
            for scheme in ("blocked", "interleaved"):
                for n in (2, 4, 8):
                    assert SweepPoint("mp", app, scheme, n) in points

    def test_subset_selection(self):
        points = default_points(workloads=("R1",), apps=("cholesky",))
        names = {p.name for p in points if p.kind == "uniproc"}
        assert names == {"R1"}
        assert {p.name for p in points if p.kind == "mp"} == {"cholesky"}

    def test_dedupe_preserves_order(self):
        pts = [POINTS[0], POINTS[1], POINTS[0], POINTS[2]]
        assert dedupe(pts) == [POINTS[0], POINTS[1], POINTS[2]]


class TestReport:
    def test_report_shapes(self, tmp_path):
        ctx = make_ctx(ResultCache(tmp_path / "cache"))
        report = SweepEngine(ctx, jobs=1).run(POINTS[:2])
        d = report.to_dict()
        assert d["computed"] == 2 and d["jobs"] == 1
        assert len(d["points"]) == 2
        assert "computed" in report.summary()
        # a second run over the same engine is pure memo
        report2 = SweepEngine(ctx, jobs=1).run(POINTS[:2])
        assert report2.count("memo") == 2
