"""System-analysis reports."""

import pytest

from repro.config import SystemConfig, MultiprocessorParams
from repro.core.simulator import WorkstationSimulator
from repro.core.mpsimulator import MultiprocessorSimulator
from repro.workloads import build_workload
from repro.workloads.splash import build_app
from repro.experiments.analysis import (
    analyze_workstation, analyze_multiprocessor,
    render_workstation, render_multiprocessor,
)


@pytest.fixture(scope="module")
def ws_run():
    procs, instances, barriers = build_workload("DC", scale=1.0)
    sim = WorkstationSimulator(procs, scheme="interleaved", n_contexts=4,
                               config=SystemConfig.fast(),
                               app_instances=instances, barriers=barriers)
    result = sim.measure(30_000, warmup=8_000)
    return sim, result


@pytest.fixture(scope="module")
def mp_run():
    params = MultiprocessorParams(n_nodes=2)
    app = build_app("water", n_threads=4, threads_per_node=2, scale=0.5)
    sim = MultiprocessorSimulator(app, scheme="interleaved",
                                  n_contexts=2, params=params)
    run = sim.run()
    assert run.completed
    return sim, run.raw


class TestWorkstationAnalysis:
    def test_fields_consistent(self, ws_run):
        sim, result = ws_run
        a = analyze_workstation(sim, result)
        assert a["scheme"] == "interleaved"
        assert a["n_contexts"] == 4
        assert 0 <= a["utilization"] <= 1
        assert 0 <= a["l1d_miss_rate"] <= 1
        assert 0 <= a["btb_accuracy"] <= 1
        assert a["cycles"] == result.stats.total_cycles

    def test_breakdown_matches_stats(self, ws_run):
        sim, result = ws_run
        a = analyze_workstation(sim, result)
        assert a["breakdown"] == result.stats.breakdown_fractions()

    def test_runlengths_present_for_multithreaded_run(self, ws_run):
        sim, result = ws_run
        a = analyze_workstation(sim, result)
        assert a["mean_runlength"] > 0

    def test_render(self, ws_run):
        sim, result = ws_run
        text = render_workstation(analyze_workstation(sim, result))
        assert "IPC" in text and "BTB" in text and "runlength" in text


class TestMultiprocessorAnalysis:
    def test_fields_consistent(self, mp_run):
        sim, result = mp_run
        a = analyze_multiprocessor(sim, result)
        assert a["cycles"] == result.cycles
        assert a["lock_acquires"] >= a["lock_contentions"] >= 0
        assert 0 <= a["miss_rate"] <= 1
        assert a["node_utilization_min"] <= a["node_utilization_max"]

    def test_latency_samples_recorded(self, mp_run):
        sim, result = mp_run
        a = analyze_multiprocessor(sim, result)
        assert sum(a["latency_samples"].values()) > 0

    def test_render(self, mp_run):
        sim, result = mp_run
        text = render_multiprocessor(analyze_multiprocessor(sim, result))
        assert "cache-to-cache" in text
        assert "barrier episodes" in text
