"""ExperimentContext: memoisation and the fair-share throughput metric.

Uses short measurement windows so this stays test-suite fast; the full
windows live in benchmarks/.
"""

import pytest

from repro.config import SystemConfig, MultiprocessorParams
from repro.experiments.runner import ExperimentContext


@pytest.fixture(scope="module")
def ctx():
    return ExperimentContext(
        config=SystemConfig.fast(),
        mp_params=MultiprocessorParams(n_nodes=2),
        warmup=4_000, measure=20_000)


class TestMemoisation:
    def test_uniproc_run_cached(self, ctx):
        r1 = ctx.uniproc_run("R1", "single", 1)
        r2 = ctx.uniproc_run("R1", "single", 1)
        assert r1 is r2

    def test_dedicated_rate_cached_and_positive(self, ctx):
        rate = ctx.dedicated_rate("mxm")
        assert 0 < rate <= 1.0
        assert ctx.dedicated_rate("mxm") == rate

    def test_mp_run_cached(self, ctx):
        r1 = ctx.mp_run("cholesky", "single", 1)
        assert ctx.mp_run("cholesky", "single", 1) is r1


class TestThroughputMetric:
    def test_single_context_near_unity(self, ctx):
        """Timesliced single-context throughput ~ 1.0 by construction."""
        tp = ctx.normalized_throughput("R1", "single", 1)
        assert 0.5 < tp < 1.3

    def test_interleaving_beats_single(self, ctx):
        single = ctx.normalized_throughput("R1", "single", 1)
        multi = ctx.normalized_throughput("R1", "interleaved", 4)
        assert multi > single

    def test_throughput_bounded_by_issue_width(self, ctx):
        tp = ctx.normalized_throughput("R1", "interleaved", 4)
        assert tp < 4.0


class TestMPSpeedup:
    def test_speedup_reports_optimum(self, ctx):
        """Like Table 10: never below 1.0 (fewer contexts always allowed)."""
        s = ctx.mp_speedup("cholesky", "interleaved", 4)
        assert s >= 1.0

    def test_base_speedup_is_one(self, ctx):
        assert ctx.mp_speedup("cholesky", "interleaved", 1) == 1.0
