"""The interleaving-experiments command-line interface."""

import pytest

from repro.experiments.cli import main, EXPERIMENTS


class TestArguments:
    def test_unknown_experiment_rejected(self, capsys):
        with pytest.raises(SystemExit):
            main(["figure99"])

    def test_experiment_registry_names(self):
        for name in ("figure2", "figure3", "table4", "table7",
                     "table10", "figure6", "figure7", "figure8",
                     "figure9", "configs"):
            assert name in EXPERIMENTS

    def test_help_exits_cleanly(self):
        with pytest.raises(SystemExit) as exc:
            main(["--help"])
        assert exc.value.code == 0


class TestLightExperiments:
    def test_figure3_prints_timeline(self, capsys):
        assert main(["figure3"]) == 0
        out = capsys.readouterr().out
        assert "blocked" in out and "interleaved" in out

    def test_table4_prints_costs(self, capsys):
        assert main(["table4"]) == 0
        out = capsys.readouterr().out
        assert "cache miss" in out

    def test_configs_prints_all_tables(self, capsys):
        assert main(["configs"]) == 0
        out = capsys.readouterr().out
        assert "Table 1" in out and "Table 9" in out

    def test_seed_option_accepted(self, capsys):
        assert main(["figure2", "--seed", "3"]) == 0

    def test_measurement_options(self, capsys):
        # A tiny table7 run through the full uniprocessor path.
        assert main(["table7", "--measure", "8000", "--warmup",
                     "2000"]) == 0
        out = capsys.readouterr().out
        assert "Mean" in out
