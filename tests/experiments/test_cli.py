"""The interleaving-experiments command-line interface."""

import pytest

from repro.experiments.cli import main, EXPERIMENTS


class TestArguments:
    def test_unknown_experiment_rejected(self, capsys):
        with pytest.raises(SystemExit):
            main(["figure99"])

    def test_experiment_registry_names(self):
        for name in ("figure2", "figure3", "table4", "table7",
                     "table10", "figure6", "figure7", "figure8",
                     "figure9", "configs"):
            assert name in EXPERIMENTS

    def test_help_exits_cleanly(self):
        with pytest.raises(SystemExit) as exc:
            main(["--help"])
        assert exc.value.code == 0


class TestLightExperiments:
    def test_figure3_prints_timeline(self, capsys):
        assert main(["figure3"]) == 0
        out = capsys.readouterr().out
        assert "blocked" in out and "interleaved" in out

    def test_table4_prints_costs(self, capsys):
        assert main(["table4"]) == 0
        out = capsys.readouterr().out
        assert "cache miss" in out

    def test_configs_prints_all_tables(self, capsys):
        assert main(["configs"]) == 0
        out = capsys.readouterr().out
        assert "Table 1" in out and "Table 9" in out

    def test_seed_option_accepted(self, capsys):
        assert main(["figure2", "--seed", "3"]) == 0

    def test_measurement_options(self, capsys):
        # A tiny table7 run through the full uniprocessor path.
        assert main(["table7", "--measure", "8000", "--warmup",
                     "2000"]) == 0
        out = capsys.readouterr().out
        assert "Mean" in out


class TestSweepAndCacheVerbs:
    def test_sweep_renders_everything_and_caches(self, capsys, tmp_path):
        cache_dir = str(tmp_path / "cache")
        argv = ["sweep", "--jobs", "1", "--nodes", "2",
                "--measure", "5000", "--warmup", "1000",
                "--workloads", "R1", "--apps", "cholesky",
                "--cache-dir", cache_dir]
        assert main(argv) == 0
        out = capsys.readouterr().out
        assert "Table 7" in out and "Table 10" in out
        assert "Figure 6" in out and "Figure 9" in out

        # warm rerun is served from the on-disk cache
        assert main(argv) == 0
        err = capsys.readouterr().err
        assert "0 computed" in err

    def test_cache_stats_and_clear(self, capsys, tmp_path):
        cache_dir = str(tmp_path / "cache")
        assert main(["cache", "stats", "--cache-dir", cache_dir]) == 0
        assert "entries         : 0" in capsys.readouterr().out
        assert main(["cache", "clear", "--cache-dir", cache_dir]) == 0
        assert "cleared 0" in capsys.readouterr().out

    def test_no_cache_flag(self, capsys, tmp_path):
        # --no-cache suppresses the cache a --cache-dir would enable;
        # the wiring is shared by every verb, so a static one suffices.
        cache_dir = tmp_path / "cache"
        assert main(["table4", "--cache-dir", str(cache_dir),
                     "--no-cache"]) == 0
        assert not cache_dir.exists()
