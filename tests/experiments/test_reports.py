"""Report rendering primitives."""

from repro.experiments.report import (
    render_table, render_stacked_bars, render_timeline,
)
from repro.experiments import configs


class TestRenderTable:
    def test_alignment_and_values(self):
        text = render_table("T", ["a", "b"],
                            [("row1", [1.5, "x"]), ("row2", [2, 3])])
        assert "T" in text
        assert "1.50" in text
        assert "row2" in text


class TestStackedBars:
    def test_normalized_bars_fill_width(self):
        text = render_stacked_bars(
            "B", [("lbl", {"busy": 0.5, "data_cache": 0.5})], width=20)
        line = [l for l in text.splitlines() if "lbl" in l][0]
        bar = line.split("|")[1]
        assert len(bar) == 20
        assert bar.count("#") == 10

    def test_unnormalized_bars_scale_with_total(self):
        bars = [("one", {"busy": 1.0}), ("half", {"busy": 0.5})]
        text = render_stacked_bars("B", bars, width=20, normalize=False)
        lines = [l for l in text.splitlines() if "|" in l]
        assert lines[0].split("|")[1].count("#") == 20
        assert lines[1].split("|")[1].count("#") == 10

    def test_legend_only_lists_used_categories(self):
        text = render_stacked_bars("B", [("l", {"busy": 1.0})])
        assert "#=busy" in text
        assert "s=synchronization" not in text


class TestTimeline:
    def test_lane_rendering(self):
        text = render_timeline("T", [("lane", "ABCD....")], max_cycles=8)
        assert "ABCD...." in text


class TestConfigTables:
    def test_all_config_tables_render(self):
        text = configs.render_all()
        for fragment in ("Table 1", "Table 2", "Table 3", "Table 5",
                         "Table 6", "Table 8", "Table 9"):
            assert fragment in text

    def test_table2_shows_paper_latencies(self):
        text = configs.table2()
        assert "9" in text and "34" in text

    def test_table3_shows_divide_latency(self):
        assert "61" in configs.table3()
