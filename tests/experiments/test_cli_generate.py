"""The 'generate' CLI verb: deterministic families from the terminal.

``repro-experiments generate`` is the human entry point to the
parameterised workload generator — the contract mirrors the library's:
deterministic per seed, verified at birth by default, and the emitted
assembly re-assembles bit-identically.
"""

import re

import pytest

from repro.analysis.verifier import program_fingerprint
from repro.experiments.cli import main
from repro.isa.assembler import assemble

#: A compact spec so verified generation stays fast in the PR lane.
SMALL = "block_size=16;footprint_words=64;loop_iterations=8"

_MEMBER_RE = re.compile(
    r"^(\S+)\s+seed=(\d+)\s+(\d+) insts\s+([0-9a-f]{16,})", re.M)


def _members(out):
    """[(name, seed, n_insts, fingerprint), ...] from generate output."""
    return [(m.group(1), int(m.group(2)), int(m.group(3)), m.group(4))
            for m in _MEMBER_RE.finditer(out)]


class TestGenerateVerb:
    def test_default_invocation(self, capsys):
        assert main(["generate", "--spec", SMALL]) == 0
        out = capsys.readouterr().out
        assert "spec fingerprint:" in out
        members = _members(out)
        assert len(members) == 1
        assert "verified" in out

    def test_family_seeds_increment(self, capsys):
        assert main(["generate", "--spec", SMALL, "--seed", "100",
                     "--count", "3", "--no-verify"]) == 0
        members = _members(capsys.readouterr().out)
        assert [m[1] for m in members] == [100, 101, 102]
        assert [m[0] for m in members] == \
            ["gen-0000", "gen-0001", "gen-0002"]

    def test_deterministic_across_invocations(self, capsys):
        argv = ["generate", "--spec", SMALL, "--seed", "7",
                "--count", "2", "--no-verify"]
        assert main(argv) == 0
        first = _members(capsys.readouterr().out)
        assert main(argv) == 0
        second = _members(capsys.readouterr().out)
        assert first == second

    def test_spec_seed_beats_seed_flag(self, capsys):
        assert main(["generate", "--spec", SMALL + ";seed=55",
                     "--seed", "7", "--no-verify"]) == 0
        assert _members(capsys.readouterr().out)[0][1] == 55

    def test_emit_asm_reassembles_identically(self, capsys, tmp_path):
        out_dir = tmp_path / "asm"
        assert main(["generate", "--spec", SMALL, "--seed", "3",
                     "--emit-asm", str(out_dir)]) == 0
        name, _, n_insts, fp = _members(capsys.readouterr().out)[0]
        source = (out_dir / ("%s.s" % name)).read_text()
        # Family members sit at staggered bases; the emitted header
        # comment records them for exactly this round trip.
        bases = re.search(r"# code_base: (0x[0-9A-Fa-f]+)\s+"
                          r"data_base: (0x[0-9A-Fa-f]+)", source)
        program = assemble(source, name=name,
                           code_base=int(bases.group(1), 16),
                           data_base=int(bases.group(2), 16))
        assert program_fingerprint(program) == fp
        assert len(program.instructions) == n_insts

    def test_bad_spec_exits(self, capsys):
        with pytest.raises(SystemExit):
            main(["generate", "--spec", "warp_factor=9"])

    def test_verify_flags_mutually_exclusive(self, capsys):
        with pytest.raises(SystemExit):
            main(["generate", "--spec", SMALL, "--verify",
                  "--no-verify"])

    def test_bad_gen_point_rejected_up_front(self, capsys, tmp_path):
        with pytest.raises(SystemExit):
            main(["submit", "--spool", str(tmp_path / "spool"),
                  "--points", "gen:warp_factor=9:interleaved:2"])
