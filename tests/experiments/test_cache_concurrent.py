"""ResultCache under concurrent writers.

The cache's atomicity claim is that temp-file + ``os.replace`` writes
mean racing writers — parallel sweep workers, service workers, or a
batch sweep and the service sharing one directory — always leave a
valid entry.  These tests drive real processes at one key and verify
no interleaving ever yields a half-written (corrupt-on-read) file.
"""

import json
import multiprocessing

from repro.experiments.cache import ResultCache, point_key, CACHE_SCHEMA
from repro.config import SystemConfig, MultiprocessorParams

FAST = SystemConfig.fast()
MPP = MultiprocessorParams(n_nodes=2)


def _key(tag="R1"):
    return point_key("uniproc", tag, "single", 1, FAST, MPP,
                     1994, 1_000, 6_000)


def _state(tag):
    # Shape-valid uniproc state (stats fields as stats_from_state reads
    # them); writers disagree on payload to make torn writes visible.
    return {
        "duration": 6_000,
        "per_process": {tag: 1},
        "stats": {"counts": [int(ch) for ch in tag.encode()],
                  "retired": 1, "issued": 1, "squashed": 0,
                  "context_switches": 0, "backoffs": 0,
                  "run_count": 1, "run_inst_sum": 1, "run_max": 1},
    }


def _hammer(root, key, tag, n_writes, barrier):
    cache = ResultCache(root)
    barrier.wait()
    for i in range(n_writes):
        cache.put_state(key, "uniproc", _state("%s%d" % (tag, i)))


def test_racing_writers_leave_a_valid_entry(tmp_path):
    key = _key()
    ctx = multiprocessing.get_context()
    barrier = ctx.Barrier(4)
    procs = [ctx.Process(target=_hammer,
                         args=(str(tmp_path), key, "w%d-" % w, 25,
                               barrier))
             for w in range(4)]
    for p in procs:
        p.start()
    for p in procs:
        p.join(60)
        assert p.exitcode == 0

    # Whatever write won, the entry must validate end-to-end.
    cache = ResultCache(tmp_path)
    result = cache.get(key, "uniproc")
    assert result is not None
    assert cache.corrupt == 0
    assert result.duration == 6_000

    # The raw payload is fully-formed JSON with a matching checksum.
    payload = json.loads(cache._path(key).read_text())
    assert payload["schema"] == CACHE_SCHEMA
    assert payload["key"] == key


def test_racing_writers_distinct_keys_all_land(tmp_path):
    ctx = multiprocessing.get_context()
    keys = [_key("k%d" % i) for i in range(6)]
    barrier = ctx.Barrier(len(keys))
    procs = [ctx.Process(target=_hammer,
                         args=(str(tmp_path), k, "t", 5, barrier))
             for k in keys]
    for p in procs:
        p.start()
    for p in procs:
        p.join(60)
        assert p.exitcode == 0
    cache = ResultCache(tmp_path)
    for k in keys:
        assert cache.get_state(k, "uniproc") is not None
    assert cache.corrupt == 0


def test_get_state_mirrors_get_semantics(tmp_path):
    """get_state shares get's validation: corrupt entries are misses
    and are deleted for recomputation."""
    cache = ResultCache(tmp_path)
    key = _key()
    path = cache.put_state(key, "uniproc", _state("x"))
    assert cache.get_state(key, "uniproc") == _state("x")

    path.write_text(path.read_text()[:30])
    cache2 = ResultCache(tmp_path)
    assert cache2.get_state(key, "uniproc") is None
    assert cache2.corrupt == 1
    assert not path.exists()
